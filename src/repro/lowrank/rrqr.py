"""Rank-revealing QR compression kernel (paper §3.1.2).

A from-scratch column-pivoted Householder QR — the equivalent of the
BLR-MUMPS extension of LAPACK's ``xGEQP3`` the paper uses — with the crucial
property the paper's complexity analysis relies on: the factorization *stops
as soon as the trailing submatrix norm drops below the tolerance*, giving
Θ(m·n·r) work instead of Θ(m·n·min(m,n)).

Pivoting uses the classical partial-column-norm downdating with the LAPACK
safeguard (recompute a column norm exactly when cancellation has destroyed
the downdated estimate).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.lowrank.block import LowRankBlock

#: when a downdated squared column norm falls below this fraction of its
#: last exactly-computed value, recompute it exactly (cancellation guard)
_RECOMPUTE_THRESHOLD = 1e-6


class RRQRResult(NamedTuple):
    """Outcome of :func:`rrqr`.

    ``q`` is ``(m, rank)`` with orthonormal columns, ``r`` is ``(rank, n)``
    upper trapezoidal, ``jpvt`` the column permutation such that
    ``a[:, jpvt] ≈ q @ r``; ``converged`` is False when the tolerance was
    not reached within ``max_rank`` steps (the caller should then keep the
    block dense).
    """

    q: np.ndarray
    r: np.ndarray
    jpvt: np.ndarray
    converged: bool


def rrqr_flops(m: int, n: int, r: int) -> float:
    """Flop model: r Householder steps, each touching the trailing block."""
    return 4.0 * m * n * r


def rrqr(a: np.ndarray, tol: float,
         max_rank: Optional[int] = None,
         norm_ref: Optional[float] = None) -> RRQRResult:
    """Truncated column-pivoted QR: stop once ``||trailing||_F <= tol ||a||_F``.

    Parameters
    ----------
    a:
        Input block (not modified).
    tol:
        Relative Frobenius tolerance τ.
    max_rank:
        Abort (``converged=False``) if the revealed rank would exceed this.
    norm_ref:
        Optional external norm scale; the stopping threshold becomes
        ``tol * max(||a||_F, norm_ref)``.  Recompression passes the norms of
        the *operands* here, so an update that cancels a block truncates to
        rank 0 instead of keeping a full-rank representation of noise.
    """
    if np.asarray(a).dtype.kind == "c":
        # the Householder loop below is written for real arithmetic
        # (np.copysign); complex blocks take the LAPACK path, which
        # handles them natively
        return rrqr_lapack(a, tol, max_rank, norm_ref)

    m, n = a.shape
    kmax = min(m, n)
    limit = kmax if max_rank is None else min(kmax, int(max_rank))

    # run natively in the input precision: a float32 block is compressed in
    # float32 (non-inexact inputs are promoted to float64 once, here)
    dt = a.dtype if a.dtype.kind == "f" else np.dtype(np.float64)
    w = np.array(a, dtype=dt, copy=True, order="F")
    jpvt = np.arange(n, dtype=np.int64)
    colnorms2 = np.einsum("ij,ij->j", w, w)
    ref_norms2 = colnorms2.copy()  # last exactly-computed values
    norm_a = float(np.sqrt(colnorms2.sum()))
    scale = max(norm_a, norm_ref or 0.0)
    threshold2 = (tol * scale) ** 2

    vs = np.zeros((m, limit), dtype=dt)  # Householder vectors (unit lead)
    taus = np.zeros(limit, dtype=dt)

    rank = 0
    converged = norm_a == 0.0 or threshold2 >= norm_a ** 2
    if not converged:
        for k in range(kmax):
            trailing2 = float(colnorms2[k:].sum())
            if trailing2 <= threshold2:
                converged = True
                break
            if k >= limit:
                break  # rank would exceed the cap: not converged

            # --- pivot -------------------------------------------------
            j = k + int(np.argmax(colnorms2[k:]))
            if j != k:
                w[:, [k, j]] = w[:, [j, k]]
                colnorms2[[k, j]] = colnorms2[[j, k]]
                ref_norms2[[k, j]] = ref_norms2[[j, k]]
                jpvt[[k, j]] = jpvt[[j, k]]

            # --- Householder reflector for column k ---------------------
            x = w[k:, k]
            sigma = float(np.linalg.norm(x))
            if sigma == 0.0:
                taus[k] = 0.0
                rank = k + 1
                continue
            alpha = float(x[0])
            beta = -np.copysign(sigma, alpha)
            v = x.copy()
            v[0] = alpha - beta
            vnorm2 = float(v @ v)
            if vnorm2 == 0.0:  # pragma: no cover - x already e1-aligned
                taus[k] = 0.0
                rank = k + 1
                continue
            tau = 2.0 / vnorm2
            vs[k:, k] = v
            taus[k] = tau
            w[k, k] = beta
            w[k + 1:, k] = 0.0

            # --- apply to the trailing submatrix (the Θ(m n) step) -------
            if k + 1 < n:
                trailing = w[k:, k + 1:]
                proj = v @ trailing  # (n - k - 1,)
                trailing -= np.outer(v, tau * proj)
                # downdate column norms, with cancellation safeguard
                row = w[k, k + 1:]
                colnorms2[k + 1:] -= row * row
                np.maximum(colnorms2[k + 1:], 0.0, out=colnorms2[k + 1:])
                stale = colnorms2[k + 1:] < _RECOMPUTE_THRESHOLD * ref_norms2[k + 1:]
                if np.any(stale):
                    idx = np.flatnonzero(stale) + k + 1
                    fresh = np.einsum("ij,ij->j", w[k + 1:, idx], w[k + 1:, idx])
                    colnorms2[idx] = fresh
                    ref_norms2[idx] = fresh
            colnorms2[k] = 0.0
            rank = k + 1
        else:
            converged = True  # exhausted all kmax columns: exact QR

        if rank == kmax:
            converged = True

    r_mat = np.triu(w[:rank, :]) if rank else np.zeros((0, n), dtype=dt)
    q = _form_q(vs[:, :rank], taus[:rank], m, rank)
    return RRQRResult(q=q, r=r_mat, jpvt=jpvt, converged=converged)


def _form_q(vs: np.ndarray, taus: np.ndarray, m: int, rank: int) -> np.ndarray:
    """Accumulate Q_r = H_0 H_1 ... H_{r-1} @ I_{m x r} (reverse application)."""
    q = np.zeros((m, rank), dtype=vs.dtype)
    q[:rank, :rank] = np.eye(rank, dtype=vs.dtype)
    for k in range(rank - 1, -1, -1):
        tau = taus[k]
        if tau == 0.0:
            continue
        v = vs[k:, k]
        proj = v @ q[k:, :]
        q[k:, :] -= np.outer(v, tau * proj)
    return q


def rrqr_lapack(a: np.ndarray, tol: float,
                max_rank: Optional[int] = None,
                norm_ref: Optional[float] = None) -> RRQRResult:
    """Truncated RRQR via LAPACK ``dgeqp3`` (scipy's pivoted QR).

    LAPACK computes the *full* pivoted factorization — it cannot stop at the
    revealed rank like :func:`rrqr` — but it runs at C speed, which at
    laptop-scale block sizes beats the early exit by a wide margin (the
    substitution is recorded in DESIGN.md; the complexity benchmark
    ``benchmarks/bench_table1_complexity.py`` uses the genuinely truncated
    :func:`rrqr` to demonstrate the Θ(m·n·r) behaviour the paper relies
    on).  Truncation picks the smallest r with
    ``||R[r:, :]||_F <= tol ||a||_F``.
    """
    import scipy.linalg as sla

    m, n = a.shape
    q, r, jpvt = sla.qr(a, mode="economic", pivoting=True,
                        check_finite=False)
    # Frobenius tail of discarding rows >= rank
    row_sq = np.einsum("ij,ij->i", r.conj(), r).real
    tail = np.sqrt(np.maximum(np.cumsum(row_sq[::-1])[::-1], 0.0))
    norm_a = float(tail[0]) if tail.size else 0.0
    scale = max(norm_a, norm_ref or 0.0)
    if scale == 0.0:
        rank = 0
    else:
        ok = np.flatnonzero(tail <= tol * scale)
        rank = int(ok[0]) if ok.size else int(r.shape[0])
    if max_rank is not None and rank > max_rank:
        return RRQRResult(q=q[:, :0], r=r[:0], jpvt=jpvt.astype(np.int64),
                          converged=False)
    return RRQRResult(q=np.ascontiguousarray(q[:, :rank]),
                      r=np.ascontiguousarray(r[:rank]),
                      jpvt=jpvt.astype(np.int64), converged=True)


def rrqr_compress(a: np.ndarray, tol: float,
                  max_rank: Optional[int] = None,
                  impl: str = "lapack",
                  norm_ref: Optional[float] = None) -> Optional[LowRankBlock]:
    """Compress ``a`` into ``u vᵗ`` via truncated RRQR.

    ``u = Q_r`` (orthonormal), ``vᵗ = R_r Pᵗ`` (the column permutation
    undone), so ``||a - u vᵗ||_F <= tol ||a||_F``.  Returns ``None`` when
    the rank cap is exceeded.  ``impl`` selects the LAPACK-backed kernel
    (default) or the pure-Python early-exit Householder loop
    (``"householder"``).  ``norm_ref`` raises the truncation reference to
    ``max(||a||_F, norm_ref)`` for the global threshold modes.
    """
    m, n = a.shape
    if min(m, n) == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    res = (rrqr_lapack if impl == "lapack" else rrqr)(a, tol, max_rank,
                                                     norm_ref=norm_ref)
    if not res.converged:
        return None
    rank = res.q.shape[1]
    if rank == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    vt = np.empty((rank, n), dtype=res.r.dtype)
    vt[:, res.jpvt] = res.r
    return LowRankBlock(res.q, vt.T.copy())


def qr_split(a: np.ndarray) -> LowRankBlock:
    """Exact (full-rank) ``u vᵗ`` split of ``a`` via unpivoted QR.

    Used by the update kernels when a block is incompressible but the
    low-rank *form* is still required (LUAR accumulators, lr2lr fallbacks):
    ``u = Q`` orthonormal, ``v = Rᵗ``, ``a = u vᵗ`` exactly.  Lives here so
    the decomposition stays on the sanctioned numeric surface instead of
    scattering ``np.linalg.qr`` calls through the kernels.
    """
    q, r = np.linalg.qr(a)
    return LowRankBlock(q, r.T.copy())
