"""Recompression of low-rank sums (paper §3.3.2).

The extend-add ``Ĉ' = uC vCᵗ − uAB vABᵗ = [uC, uAB] [vC, −vAB]ᵗ`` doubles
the stored rank; recompression restores a minimal rank while preserving the
prescribed accuracy.  Both of the paper's variants are implemented:

* **SVD recompression** (eqs. 7–8): QR both concatenated factors, SVD the
  small core ``R1 R2ᵗ``, truncate.
* **RRQR recompression** (eqs. 9–12): exploit the orthonormality of ``uC``
  — orthogonalize ``uAB`` against it (eq. 9), so only the *new* directions
  need a QR — then run the truncated RRQR on the small stacked core and map
  back.  ``uC'`` comes out orthonormal, ready for the next update.

Both return ``None`` instead of a block when the revealed rank exceeds
``max_rank``: the caller then falls back to dense storage for the target.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg as sla

from repro.lowrank.block import LowRankBlock
from repro.lowrank.rrqr import rrqr_lapack as rrqr
from repro.lowrank.svd import svd_truncate


def _operand_scale(v_c: np.ndarray, v_ab: np.ndarray) -> float:
    """Norm scale of the extend-add operands.

    With orthonormal ``u`` factors, ``||uvᵗ||_F = ||v||_F``, so the operand
    scale is ``hypot(||vC||, ||vAB||)``.  Truncating relative to this scale
    (rather than to the possibly tiny result) makes a cancelling update
    collapse to rank 0 instead of storing full-rank roundoff noise.
    """
    return float(np.hypot(np.linalg.norm(v_c), np.linalg.norm(v_ab)))


def recompress_svd(u_c: np.ndarray, v_c: np.ndarray,
                   u_ab: np.ndarray, v_ab: np.ndarray,
                   tol: float,
                   max_rank: Optional[int] = None,
                   norm_ref: Optional[float] = None) -> Optional[LowRankBlock]:
    """SVD extend-add: ``C' = uC vCᵗ − uAB vABᵗ`` recompressed at ``tol``.

    ``uAB`` / ``vAB`` must already be padded to C's row/column frame
    (Figure 4).  Complexity Θ((mC + nC)(rC + rAB)² + (rC + rAB)³).
    ``norm_ref`` folds an external reference (e.g. ``||A||_F`` for the
    global threshold modes) into the truncation scale.
    """
    u_cat = np.hstack([u_c, u_ab])
    v_cat = np.hstack([v_c, -v_ab])
    dt = np.result_type(u_cat, v_cat)
    if u_cat.shape[1] == 0:
        return LowRankBlock.zero(u_c.shape[0], v_c.shape[0], dtype=dt)
    q1, r1 = np.linalg.qr(u_cat)       # eq. (7)
    q2, r2 = np.linalg.qr(v_cat)
    core = r1 @ r2.T
    uu, sigma, vvt = sla.svd(core, full_matrices=False,
                             check_finite=False)
    scale = max(float(np.linalg.norm(sigma)), _operand_scale(v_c, v_ab))
    if norm_ref is not None:
        scale = max(scale, float(norm_ref))
    rank = svd_truncate(sigma, tol, norm_a=scale)
    if max_rank is not None and rank > max_rank:
        return None
    if rank == 0:
        return LowRankBlock.zero(u_c.shape[0], v_c.shape[0], dtype=dt)
    u_new = q1 @ uu[:, :rank]          # eq. (8)
    v_new = q2 @ (vvt[:rank].T * sigma[:rank])
    return LowRankBlock(u_new, v_new)


def recompress_rrqr(u_c: np.ndarray, v_c: np.ndarray,
                    u_ab: np.ndarray, v_ab: np.ndarray,
                    tol: float,
                    max_rank: Optional[int] = None,
                    norm_ref: Optional[float] = None) -> Optional[LowRankBlock]:
    """RRQR extend-add (eqs. 9–12).

    Requires ``uC`` orthonormal (the solver invariant).  ``uAB``/``vAB``
    must be padded to C's frame.  The returned ``u`` is orthonormal; the
    CGS2 projection against ``uC`` applies ``uCᴴ`` — a Hermitian adjoint,
    a no-copy pass-through for real factors.

    Complexity Θ(mC rC rAB + nC (rC + rAB) rC') — it depends on the target
    size ``mC, nC`` rather than on the contribution size, the very property
    that makes Minimal Memory slower than the dense solver (paper §3.4).
    """
    m, n = u_c.shape[0], v_c.shape[0]
    r_c, r_ab = u_c.shape[1], u_ab.shape[1]
    dt = np.result_type(u_c, v_c, u_ab, v_ab)
    scale = _operand_scale(v_c, v_ab)
    if norm_ref is not None:
        scale = max(scale, float(norm_ref))
    if r_ab == 0:
        return LowRankBlock(u_c, v_c)
    if r_c == 0:
        # no existing directions: plain truncated QR of the contribution
        q2, r2 = np.linalg.qr(u_ab)
        core = r2 @ (-v_ab.T)
        res = rrqr(core, tol, max_rank, norm_ref=scale)
        if not res.converged:
            return None
        rank = res.q.shape[1]
        if rank == 0:
            return LowRankBlock.zero(m, n, dtype=dt)
        vt = np.empty((rank, n), dtype=res.r.dtype)
        vt[:, res.jpvt] = res.r
        return LowRankBlock(q2 @ res.q, vt.T.copy())

    # eq. (9): orthogonalize the new directions against uC (Hermitian
    # projection — .conj() is a no-copy pass-through for real factors)
    x = u_c.conj().T @ u_ab                # (rC, rAB)
    e = u_ab - u_c @ x
    # one reorthogonalization pass for numerical safety (CGS2)
    x2 = u_c.conj().T @ e
    e -= u_c @ x2
    x += x2
    q2, r2 = np.linalg.qr(e)               # new orthonormal directions

    # eq. (11): the small core [[I, X], [0, R2]] @ [vC, -vAB]ᵗ
    top = v_c.T - x @ v_ab.T               # (rC, n)
    bot = -(r2 @ v_ab.T)                   # (rAB, n)
    core = np.vstack([top, bot])

    res = rrqr(core, tol, max_rank, norm_ref=scale)
    if not res.converged:
        return None
    rank = res.q.shape[1]
    if rank == 0:
        return LowRankBlock.zero(m, n, dtype=dt)

    # eq. (12): map back through the orthonormal basis [uC, Q2]
    basis = np.hstack([u_c, q2])
    u_new = basis @ res.q
    vt = np.empty((rank, n), dtype=res.r.dtype)
    vt[:, res.jpvt] = res.r
    return LowRankBlock(u_new, vt.T.copy())
