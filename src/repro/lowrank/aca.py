"""Adaptive Cross Approximation compression kernel.

ACA builds a low-rank approximation from *rows and columns of the matrix
itself* (cross/skeleton approximation) instead of orthogonal
transformations.  It is the workhorse of dense BEM BLR solvers — the LSTC
solver the paper compares against in §5 compresses its blocks this way —
and completes our kernel-family zoo next to SVD, RRQR and randomized
sampling.  Selectable with ``SolverConfig(kernel="aca")``.

The dense-block variant with full pivoting is implemented: at step k the
largest residual entry ``(i, j)`` is selected, the cross
``R[:, j] R[i, :] / R[i, j]`` is subtracted, and iteration stops when
``||R||_F <= τ ||A||_F``.  The accumulated factors are re-orthonormalized
(QR on ``u``) so the solver's "orthonormal u" invariant holds.

Cost Θ(m n r) like the truncated RRQR, but with rank-1 updates only — no
Householder sweeps — which is why BEM codes favour it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lowrank.block import LowRankBlock


def aca_flops(m: int, n: int, r: int) -> float:
    """r cross subtractions + residual-norm scans over the block."""
    return 4.0 * m * n * r


def aca_compress(a: np.ndarray, tol: float,
                 max_rank: Optional[int] = None,
                 norm_ref: Optional[float] = None) -> Optional[LowRankBlock]:
    """Fully-pivoted ACA of a dense block at tolerance ``tol``.

    Returns ``None`` when the revealed rank exceeds ``max_rank``.
    ``norm_ref`` raises the stopping reference to ``max(||a||_F, norm_ref)``.
    """
    m, n = a.shape
    if min(m, n) == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    norm_a2 = float(np.einsum("ij,ij->", a.conj(), a).real)
    if norm_a2 == 0.0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    ref2 = norm_a2 if norm_ref is None else max(norm_a2, float(norm_ref) ** 2)
    threshold2 = (tol ** 2) * ref2
    kmax = min(m, n)
    limit = kmax if max_rank is None else min(kmax, int(max_rank))

    residual = np.array(a, copy=True)
    if residual.dtype.kind not in "fc":
        residual = residual.astype(np.float64)
    # termination floor on the pivot magnitude, relative to ||A||_F: once
    # every residual entry is at roundoff level the cross is numerically
    # rank-deficient and iterating further only accumulates noise crosses
    # (an exact `pivot == 0.0` test misses near-singular residuals whose
    # largest entry is eps-sized but nonzero).  np.finfo of a complex dtype
    # reports the eps of its real component, and abs() handles both kinds.
    pivot_floor = float(np.finfo(residual.dtype).eps) * np.sqrt(norm_a2)
    us, vs = [], []
    resid2 = norm_a2
    while resid2 > threshold2:
        if len(us) >= limit:
            if limit == kmax:
                break  # block is numerically full rank; exact cross basis
            return None
        # full pivoting: the largest remaining entry anchors the cross
        flat = int(np.argmax(np.abs(residual)))
        i, j = divmod(flat, n)
        pivot = residual[i, j]
        if abs(pivot) <= pivot_floor:
            break  # residual is numerically rank-deficient
        col = residual[:, j].copy()
        row = residual[i, :] / pivot
        residual -= np.outer(col, row)
        us.append(col)
        vs.append(row)
        resid2 = float(np.einsum("ij,ij->", residual.conj(), residual).real)

    if not us:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    u = np.column_stack(us)
    v = np.column_stack(vs)
    # restore the orthonormal-u invariant
    q, r_mat = np.linalg.qr(u)
    return LowRankBlock(q, v @ r_mat.T)
