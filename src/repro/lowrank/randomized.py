"""Randomized SVD compression kernel (the paper's future-work direction).

The conclusion of the paper announces the study of "new kernel families,
such as RRQR with randomization techniques"; §3.4 also suggests randomized
methods to make the extend-add cost depend on the contribution size.  This
module implements the standard adaptive randomized range finder
(Halko–Martinsson–Tropp) as a third compression kernel, selectable with
``SolverConfig(kernel="rsvd")``:

1. sample the range with Gaussian blocks, orthogonalizing against what is
   already captured, until the Frobenius residual
   ``||A - Q Qᵗ A||_F = sqrt(||A||² - ||QᵗA||²)`` drops below ``τ ||A||``;
2. SVD the small core ``B = Qᵗ A`` and re-truncate.

Cost Θ(m n (r + p)) with oversampling ``p`` — the same main factor as the
truncated RRQR, but built from GEMMs (BLAS3) instead of Householder sweeps,
which is exactly why randomized kernels are attractive for BLR solvers.

The recompression path of the Minimal Memory strategy reuses the RRQR
recompression (randomization brings nothing on the already-small stacked
cores), so ``rsvd`` only changes the block-compression kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg as sla

from repro.lowrank.block import LowRankBlock
from repro.lowrank.svd import svd_truncate

#: fixed seed: compression must be deterministic run-to-run
_SEED = 0x5EED


def rsvd_flops(m: int, n: int, r: int, oversample: int = 8) -> float:
    """Flop model: range sampling + projection, Θ(m n (r + p))."""
    return 4.0 * m * n * (r + oversample)


def rsvd_compress(a: np.ndarray, tol: float,
                  max_rank: Optional[int] = None,
                  block: int = 8,
                  seed: int = _SEED,
                  norm_ref: Optional[float] = None) -> Optional[LowRankBlock]:
    """Adaptive randomized compression of ``a`` at tolerance ``tol``.

    Returns ``None`` when the revealed rank exceeds ``max_rank`` (caller
    keeps the block dense), mirroring the SVD/RRQR kernels.  The range
    finder projects with ``Qᴴ`` — a Hermitian adjoint, applied via
    ``q.conj().T`` (a no-copy pass-through for real blocks).  ``norm_ref``
    raises the truncation reference to ``max(||a||_F, norm_ref)``.
    """
    m, n = a.shape
    if min(m, n) == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    norm2 = float(np.einsum("ij,ij->", a.conj(), a).real)
    if norm2 == 0.0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    ref2 = norm2 if norm_ref is None else max(norm2, float(norm_ref) ** 2)
    # the error budget is split between range capture and core truncation:
    # sqrt(resid² + trunc²) <= tol ||A|| with each stage at tol/sqrt(2)
    tol_stage = tol / np.sqrt(2.0)
    threshold2 = (tol_stage ** 2) * ref2
    kmax = min(m, n)
    limit = kmax if max_rank is None else min(kmax, int(max_rank))

    rng = np.random.default_rng(seed + m * 31 + n)
    complex_input = a.dtype.kind == "c"
    q = np.empty((m, 0), dtype=a.dtype)
    b = np.empty((0, n), dtype=a.dtype)
    # The cheap residual estimate ||A||² - ||QᵗA||² suffers catastrophic
    # cancellation once the residual falls near sqrt(eps)·||A||; below that
    # regime the residual is measured exactly (one extra GEMM per round).
    eps = np.finfo(np.zeros(0, dtype=a.dtype).real.dtype).eps
    exact_resid = threshold2 < 64.0 * eps * norm2

    def residual2() -> float:
        if not exact_resid:
            captured2 = float(np.einsum("ij,ij->", b.conj(), b).real)
            return norm2 - captured2
        r = a - q @ b if q.shape[1] else a
        return float(np.einsum("ij,ij->", r.conj(), r).real)

    while residual2() > threshold2:
        if q.shape[1] >= limit:
            # tolerance not reached within the rank cap
            if limit == kmax:
                break  # numerically full-rank: fall through to exact SVD
            return None
        nb = min(block, limit - q.shape[1])
        if complex_input:
            g = (rng.standard_normal((n, nb))
                 + 1j * rng.standard_normal((n, nb))).astype(a.dtype)
        else:
            g = rng.standard_normal((n, nb)).astype(a.dtype, copy=False)
        y = a @ g
        if q.shape[1]:
            y -= q @ (q.conj().T @ y)
        # re-orthogonalize once (classical Gram-Schmidt twice is enough)
        y, _ = np.linalg.qr(y)
        if q.shape[1]:
            y -= q @ (q.conj().T @ y)
            y, _ = np.linalg.qr(y)
        rows = y.conj().T @ a
        q = np.hstack([q, y])
        b = np.vstack([b, rows])

    # small-core SVD re-truncation against the original norm
    if b.shape[0] == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    uu, sigma, vvt = sla.svd(b, full_matrices=False)
    rank = svd_truncate(sigma, tol_stage, norm_a=float(np.sqrt(ref2)))
    if max_rank is not None and rank > max_rank:
        return None
    if rank == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    return LowRankBlock(q @ uu[:, :rank], (vvt[:rank].T * sigma[:rank]))
