"""Low-rank block container.

A block ``A`` of shape ``(m, n)`` is represented as ``Â = u @ v.T`` with
``u`` of shape ``(m, r)`` and ``v`` of shape ``(n, r)`` (paper §3.1).  The
solver maintains the invariant that ``u`` has orthonormal columns — both
compression kernels produce orthonormal ``u`` and the RRQR recompression of
eq. (12) explicitly preserves it ("note that uC' is kept orthogonal for
future updates") — which the recompression kernels exploit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.runtime.memory import FLOAT_NBYTES


class LowRankBlock:
    """``u @ v.T`` factorization of an ``m x n`` block."""

    __slots__ = ("u", "v")

    def __init__(self, u: np.ndarray, v: np.ndarray) -> None:
        u = np.ascontiguousarray(u, dtype=np.float64)
        v = np.ascontiguousarray(v, dtype=np.float64)
        if u.ndim != 2 or v.ndim != 2:
            raise ValueError("u and v must be 2-D")
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"rank mismatch: u has {u.shape[1]} columns, v has {v.shape[1]}")
        self.u = u
        self.v = v

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, m: int, n: int) -> "LowRankBlock":
        """The rank-0 block (an all-zero ``m x n`` block)."""
        return cls(np.zeros((m, 0)), np.zeros((n, 0)))

    @property
    def m(self) -> int:
        return self.u.shape[0]

    @property
    def n(self) -> int:
        return self.v.shape[0]

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    @property
    def nbytes(self) -> int:
        """Storage of the compressed representation."""
        return (self.m + self.n) * self.rank * FLOAT_NBYTES

    @property
    def dense_nbytes(self) -> int:
        """Storage the block would need uncompressed."""
        return self.m * self.n * FLOAT_NBYTES

    def to_dense(self) -> np.ndarray:
        if self.rank == 0:
            return np.zeros((self.m, self.n))
        return self.u @ self.v.T

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``Â @ x`` in O((m + n) r) per vector."""
        if self.rank == 0:
            shape = (self.m,) if x.ndim == 1 else (self.m, x.shape[1])
            return np.zeros(shape)
        return self.u @ (self.v.T @ x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``Â.T @ x``."""
        if self.rank == 0:
            shape = (self.n,) if x.ndim == 1 else (self.n, x.shape[1])
            return np.zeros(shape)
        return self.v @ (self.u.T @ x)

    def copy(self) -> "LowRankBlock":
        return LowRankBlock(self.u.copy(), self.v.copy())

    def is_profitable(self) -> bool:
        """True when the compressed form is strictly smaller than dense."""
        return self.nbytes < self.dense_nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LowRankBlock(m={self.m}, n={self.n}, rank={self.rank})"
