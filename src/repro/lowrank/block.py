"""Low-rank block container.

A block ``A`` of shape ``(m, n)`` is represented as ``Â = u @ v.T`` with
``u`` of shape ``(m, r)`` and ``v`` of shape ``(n, r)`` (paper §3.1).  The
solver maintains the invariant that ``u`` has orthonormal columns — both
compression kernels produce orthonormal ``u`` and the RRQR recompression of
eq. (12) explicitly preserves it ("note that uC' is kept orthogonal for
future updates") — which the recompression kernels exploit.

The representation is a *pure transpose* product even for complex blocks
(matching PaStiX's z-kernels, where ``v`` holds ``Σ Vᴴ`` rows transposed):
``Â = u @ v.T``, never ``u @ v.conj().T``.  Conjugation therefore appears
only where the mathematics demands a Hermitian adjoint — :meth:`rmatvec`
and the orthogonal-projection steps of the recompression kernels — while
all the structural products (``lr_product``, updates, trisolve panels) stay
conjugation-free.

Blocks are dtype-generic: ``u``/``v`` keep whatever inexact dtype they are
built with (float32/float64/complex64/complex128), and byte accounting uses
the actual itemsize.  Mixed-precision storage (``SolverConfig.storage_dtype``)
stores ``u``/``v`` in a narrower dtype; consumers promote on read.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class LowRankBlock:
    """``u @ v.T`` factorization of an ``m x n`` block."""

    __slots__ = ("u", "v")

    def __init__(self, u: np.ndarray, v: np.ndarray) -> None:
        u = np.ascontiguousarray(u)
        v = np.ascontiguousarray(v)
        if u.dtype.kind not in "fc":
            u = np.ascontiguousarray(u, dtype=np.float64)
        if v.dtype.kind not in "fc":
            v = np.ascontiguousarray(v, dtype=np.float64)
        if u.ndim != 2 or v.ndim != 2:
            raise ValueError("u and v must be 2-D")
        if u.shape[1] != v.shape[1]:
            raise ValueError(
                f"rank mismatch: u has {u.shape[1]} columns, v has {v.shape[1]}")
        self.u = u
        self.v = v

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, m: int, n: int,
             dtype: np.dtype | str | type = np.float64) -> "LowRankBlock":
        """The rank-0 block (an all-zero ``m x n`` block)."""
        return cls(np.zeros((m, 0), dtype=dtype), np.zeros((n, 0), dtype=dtype))

    @property
    def m(self) -> int:
        return self.u.shape[0]

    @property
    def n(self) -> int:
        return self.v.shape[0]

    @property
    def rank(self) -> int:
        return self.u.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    @property
    def dtype(self) -> np.dtype:
        return np.result_type(self.u, self.v)

    @property
    def nbytes(self) -> int:
        """Storage of the compressed representation (actual itemsizes, so
        mixed-precision storage is reported honestly)."""
        return self.u.nbytes + self.v.nbytes

    @property
    def dense_nbytes(self) -> int:
        """Storage the block would need uncompressed."""
        return self.m * self.n * self.dtype.itemsize

    def to_dense(self) -> np.ndarray:
        if self.rank == 0:
            return np.zeros((self.m, self.n), dtype=self.dtype)
        return self.u @ self.v.T

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``Â @ x`` in O((m + n) r) per vector."""
        if self.rank == 0:
            dt = np.result_type(self.dtype, np.asarray(x).dtype)
            shape = (self.m,) if x.ndim == 1 else (self.m, x.shape[1])
            return np.zeros(shape, dtype=dt)
        return self.u @ (self.v.T @ x)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``Âᴴ @ x`` (the adjoint; equals ``Â.T @ x`` for real blocks)."""
        if self.rank == 0:
            dt = np.result_type(self.dtype, np.asarray(x).dtype)
            shape = (self.n,) if x.ndim == 1 else (self.n, x.shape[1])
            return np.zeros(shape, dtype=dt)
        return self.v.conj() @ (self.u.conj().T @ x)

    def tmatvec(self, x: np.ndarray) -> np.ndarray:
        """``Â.T @ x`` (pure transpose, no conjugation — the product LU
        transpose-solves need)."""
        if self.rank == 0:
            dt = np.result_type(self.dtype, np.asarray(x).dtype)
            shape = (self.n,) if x.ndim == 1 else (self.n, x.shape[1])
            return np.zeros(shape, dtype=dt)
        return self.v @ (self.u.T @ x)

    def conj(self) -> "LowRankBlock":
        """Elementwise conjugate (a no-copy pass-through for real blocks)."""
        return LowRankBlock(self.u.conj(), self.v.conj())

    def astype(self, dtype: np.dtype | str | type) -> "LowRankBlock":
        """Copy with ``u``/``v`` cast to ``dtype`` (mixed-precision store)."""
        dtype = np.dtype(dtype)
        if self.u.dtype == dtype and self.v.dtype == dtype:
            return self
        return LowRankBlock(self.u.astype(dtype), self.v.astype(dtype))

    def copy(self) -> "LowRankBlock":
        return LowRankBlock(self.u.copy(), self.v.copy())

    def is_profitable(self) -> bool:
        """True when the compressed form is strictly smaller than dense."""
        return self.nbytes < self.dense_nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LowRankBlock(m={self.m}, n={self.n}, rank={self.rank})"
