"""Low-rank update kernels (paper §3.3) with flop accounting.

Every kernel optionally charges a :class:`~repro.runtime.stats.KernelStats`
instance under the Table 2 categories.  Operands are either dense
``numpy.ndarray`` blocks or :class:`~repro.lowrank.block.LowRankBlock`; the
dispatch follows the paper:

* ``lr_product`` — contribution ``L(i),k · (Uᵗ(j),k)ᵗ`` in compressed form
  (eqs. 1–4, with the T-matrix recompression that exploits ``rank(ABᵗ) <=
  min(rA, rB)``);
* ``lr2ge_update`` — subtract a (possibly low-rank) contribution from a
  dense target: the Just-In-Time update, Θ(mA mB rAB);
* ``lr2lr_update`` — extend-add into a low-rank target with zero padding
  (Figure 4) and SVD/RRQR recompression: the Minimal Memory update.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

if TYPE_CHECKING:
    from repro.core.backend import KernelBackend

from repro.lowrank.aca import aca_compress, aca_flops
from repro.lowrank.block import LowRankBlock
from repro.lowrank.randomized import rsvd_compress, rsvd_flops
from repro.lowrank.recompress import recompress_rrqr, recompress_svd
from repro.lowrank.rrqr import qr_split, rrqr_compress, rrqr_flops
from repro.lowrank.svd import svd_compress, svd_flops
from repro.runtime.stats import KernelStats

Block = Union[np.ndarray, LowRankBlock]


def rank_cap(m: int, n: int, rank_ratio: float) -> int:
    """Admissible rank for an ``m x n`` block.

    Two ceilings apply: the paper's ratio cap (§3.4 — compression stops
    helping once ranks pass ``min(m, n) * rank_ratio``) and the
    storage-neutral bound ``(m + n) r < m n``, which guarantees every block
    kept in low-rank form is strictly smaller than its dense storage.
    """
    ratio_cap = int(rank_ratio * min(m, n))
    storage_cap = (m * n - 1) // (m + n) if (m + n) else 0
    return max(1, min(ratio_cap, storage_cap))


def block_to_dense(b: Block) -> np.ndarray:
    return b.to_dense() if isinstance(b, LowRankBlock) else b


def block_nbytes(b: Block) -> int:
    if isinstance(b, LowRankBlock):
        return b.nbytes
    return int(b.size) * int(b.itemsize)


def compress_block(a: np.ndarray, tol: float, kernel: str,
                   max_rank: Optional[int] = None,
                   stats: Optional[KernelStats] = None,
                   category: str = "compress",
                   norm_ref: Optional[float] = None) -> Optional[LowRankBlock]:
    """Compress a dense block; ``None`` when the rank cap is exceeded.

    ``kernel`` selects ``"svd"`` or ``"rrqr"`` (§3.1); flops are charged to
    ``category`` (``compress`` by default).  ``norm_ref`` raises the
    truncation reference from the block's own Frobenius norm to
    ``max(||a||_F, norm_ref)`` — how the global threshold modes of
    :mod:`repro.core.variants` reach every kernel.
    """
    m, n = a.shape
    t0 = time.perf_counter()
    try:
        if kernel == "svd":
            out = svd_compress(a, tol, max_rank, norm_ref=norm_ref)
            fl = svd_flops(m, n)
        elif kernel == "rrqr":
            out = rrqr_compress(a, tol, max_rank, norm_ref=norm_ref)
            r = out.rank if out is not None else (max_rank or min(m, n))
            fl = rrqr_flops(m, n, max(r, 1))
        elif kernel == "rsvd":
            out = rsvd_compress(a, tol, max_rank, norm_ref=norm_ref)
            r = out.rank if out is not None else (max_rank or min(m, n))
            fl = rsvd_flops(m, n, max(r, 1))
        elif kernel == "aca":
            out = aca_compress(a, tol, max_rank, norm_ref=norm_ref)
            r = out.rank if out is not None else (max_rank or min(m, n))
            fl = aca_flops(m, n, max(r, 1))
        else:
            # unknown kernel is a config error, not a numerical failure —
            # it must not fall through to the keep-dense verdict below
            raise ValueError(f"unknown kernel {kernel!r}")
    except np.linalg.LinAlgError as exc:
        # kernel non-convergence: keep the block dense (always-on verdict,
        # independent of the recovery policy) and record the failure
        out = None
        fl = 0.0
        if stats is not None and stats.telemetry is not None:
            stats.telemetry.record_recovery(
                "compress_failure", site=kernel,
                error=type(exc).__name__, m=m, n=n)
    if stats is not None:
        stats.add(category, seconds=time.perf_counter() - t0, flops=fl)
        if stats.telemetry is not None:
            stats.telemetry.record_compress(
                m, n, out.rank if out is not None else -1, kernel,
                category=category)
    return out


def lr_product(a: Block, b: Block, tol: float, kernel: str,
               stats: Optional[KernelStats] = None,
               backend: Optional["KernelBackend"] = None,
               recompress: bool = True,
               norm_ref: Optional[float] = None
               ) -> Optional[Block]:
    """Contribution ``a @ b.T`` in the cheapest exact-at-τ representation.

    Returns a :class:`LowRankBlock` when at least one operand is low-rank,
    a dense array when both are dense, and ``None`` when the product is
    numerically zero at the working tolerance.  The GEMMs run through
    ``backend`` when given (:mod:`repro.core.backend`), else through the
    process default.

    ``recompress=False`` disables the intermediate T-core truncation (the
    BLR variant toggle): the exact core is folded into whichever orbit has
    the smaller rank, so the product keeps rank ``min(rA, rB)`` instead of
    the revealed rank of ``T``.
    """
    if backend is None:
        from repro.core.backend import get_backend

        backend = get_backend()
    t0 = time.perf_counter()
    fl = 0.0
    out: Optional[Block]
    if isinstance(a, LowRankBlock) and isinstance(b, LowRankBlock):
        if a.rank == 0 or b.rank == 0:
            return None
        # eqs. (1)-(4): T = vAᵗ vB, compress T, fold into the orbits
        t_mat = backend.gemm(a.v, b.v, trans_a="T")  # (rA, rB)
        fl += 2.0 * a.v.shape[0] * a.rank * b.rank   # (1): Θ(nA rA rB)
        if not recompress:
            # exact product at rank min(rA, rB): fold T into the smaller
            # orbit without revealing its numerical rank
            if a.rank <= b.rank:
                v_new = backend.gemm(b.u, t_mat, trans_b="T")  # (mB, rA)
                fl += 2.0 * b.m * b.rank * a.rank
                out = LowRankBlock(a.u, v_new)
            else:
                u_new = backend.gemm(a.u, t_mat)               # (mA, rB)
                fl += 2.0 * a.m * a.rank * b.rank
                out = LowRankBlock(u_new, b.u)
            if stats is not None:
                stats.add("lr_product",
                          seconds=time.perf_counter() - t0, flops=fl)
            return out
        # the T core is tiny (rA x rB): randomized sampling brings nothing
        # there, so 'rsvd' shares the RRQR path
        t_hat = (svd_compress(t_mat, tol, norm_ref=norm_ref)
                 if kernel == "svd"
                 else rrqr_compress(t_mat, tol, norm_ref=norm_ref))
        if t_hat is None:  # pragma: no cover - no cap given, cannot happen
            t_hat = qr_split(t_mat)
        fl += (svd_flops(*t_mat.shape) if kernel == "svd"
               else rrqr_flops(t_mat.shape[0], t_mat.shape[1],
                               max(t_hat.rank, 1)))
        if t_hat.rank == 0:
            out = None
        else:
            u_ab = backend.gemm(a.u, t_hat.u)        # (3): Θ(mA rA rAB)
            v_ab = backend.gemm(b.u, t_hat.v)        # (4): Θ(mB rB rAB)
            fl += 2.0 * a.m * a.rank * t_hat.rank
            fl += 2.0 * b.m * b.rank * t_hat.rank
            out = LowRankBlock(u_ab, v_ab)
    elif isinstance(a, LowRankBlock):
        if a.rank == 0:
            return None
        b_arr = b  # dense (m_b, n) — contribution is (a.m, m_b)
        v_new = backend.gemm(b_arr, a.v)             # (m_b, rA)
        fl += 2.0 * b_arr.shape[0] * b_arr.shape[1] * a.rank
        out = LowRankBlock(a.u, v_new)
    elif isinstance(b, LowRankBlock):
        if b.rank == 0:
            return None
        a_arr = a
        u_new = backend.gemm(a_arr, b.v)             # (m_a, rB)
        fl += 2.0 * a_arr.shape[0] * a_arr.shape[1] * b.rank
        out = LowRankBlock(u_new, b.u)
    else:
        out = backend.gemm(a, b, trans_b="T")
        fl += 2.0 * a.shape[0] * b.shape[0] * a.shape[1]
    if stats is not None:
        stats.add("lr_product", seconds=time.perf_counter() - t0, flops=fl)
    return out


def lr2ge_update(target: np.ndarray, contrib: Block,
                 row_off: int, col_off: int,
                 stats: Optional[KernelStats] = None,
                 backend: Optional["KernelBackend"] = None) -> None:
    """Subtract ``contrib`` from ``target[row_off:.., col_off:..]`` in place.

    The Just-In-Time update kernel: when the contribution is low-rank the
    dense apply costs Θ(mA mB rAB) (Table 1, LR2GE "dense update" row).
    """
    t0 = time.perf_counter()
    if isinstance(contrib, LowRankBlock):
        if contrib.rank == 0:
            return
        if backend is None:
            from repro.core.backend import get_backend

            backend = get_backend()
        m, n = contrib.m, contrib.n
        target[row_off:row_off + m, col_off:col_off + n] -= \
            backend.gemm(contrib.u, contrib.v, trans_b="T")
        fl = 2.0 * m * n * contrib.rank + m * n
    else:
        m, n = contrib.shape
        target[row_off:row_off + m, col_off:col_off + n] -= contrib
        fl = float(m * n)
    if stats is not None:
        stats.add("dense_update", seconds=time.perf_counter() - t0, flops=fl)


def lr2lr_update(target: LowRankBlock, contrib: Block,
                 row_off: int, col_off: int,
                 tol: float, kernel: str,
                 max_rank: Optional[int] = None,
                 stats: Optional[KernelStats] = None,
                 norm_ref: Optional[float] = None
                 ) -> Optional[LowRankBlock]:
    """Extend-add ``target -= contrib`` with both sides low-rank (§3.3.2).

    The contribution (shape ``(m, n)``, dense or low-rank) lands at offset
    ``(row_off, col_off)`` inside the ``(mC, nC)`` target; its factors are
    zero-padded to the target frame (Figure 4) before recompression.

    Returns the new target block, or ``None`` when the recompressed rank
    exceeds ``max_rank`` — the caller must then fall back to dense storage.
    """
    t0 = time.perf_counter()
    if isinstance(contrib, np.ndarray):
        # dense contributions from uncompressed source blocks: compress
        # first so the extend-add stays in low-rank arithmetic
        lr = compress_block(contrib, tol, kernel,
                            max_rank=min(contrib.shape), stats=stats,
                            norm_ref=norm_ref)
        if lr is None:  # incompressible small block: full-rank QR split
            lr = qr_split(contrib)
        contrib = lr
        t0 = time.perf_counter()  # compression charged separately
    if contrib.rank == 0:
        return target

    m_c, n_c = target.m, target.n
    dt = np.result_type(target.dtype, contrib.dtype)
    u_pad = np.zeros((m_c, contrib.rank), dtype=dt)
    u_pad[row_off:row_off + contrib.m] = contrib.u
    v_pad = np.zeros((n_c, contrib.rank), dtype=dt)
    v_pad[col_off:col_off + contrib.n] = contrib.v

    if kernel == "svd":
        out = recompress_svd(target.u, target.v, u_pad, v_pad, tol, max_rank,
                             norm_ref=norm_ref)
        r_tot = target.rank + contrib.rank
        fl = (2.0 * (m_c + n_c) * r_tot * r_tot     # eq. (7) QRs
              + 22.0 * r_tot ** 3                   # small SVD
              + 2.0 * (m_c + n_c) * r_tot *
              (out.rank if out is not None else r_tot))  # eq. (8)
    else:
        out = recompress_rrqr(target.u, target.v, u_pad, v_pad, tol, max_rank,
                              norm_ref=norm_ref)
        r_new = out.rank if out is not None else (max_rank or target.rank)
        fl = (2.0 * m_c * target.rank * contrib.rank      # eq. (9)
              + 2.0 * m_c * contrib.rank * contrib.rank   # QR of E
              + 2.0 * n_c * contrib.rank * target.rank    # eq. (11) core
              + 4.0 * (target.rank + contrib.rank) * n_c * max(r_new, 1)
              + 2.0 * m_c * (target.rank + contrib.rank) * max(r_new, 1))
    if stats is not None:
        stats.add("lr_addition", seconds=time.perf_counter() - t0, flops=fl)
        if stats.telemetry is not None:
            stats.telemetry.record_recompress(
                m_c, n_c, target.rank,
                out.rank if out is not None else -1)
    return out


def lr2lr_update_multi(target: LowRankBlock,
                       contribs: Sequence[LowRankBlock],
                       tol: float, kernel: str,
                       max_rank: Optional[int] = None,
                       stats: Optional[KernelStats] = None,
                       norm_ref: Optional[float] = None
                       ) -> Optional[LowRankBlock]:
    """Grouped extend-add (the LUAR-like accumulation of BLR-MUMPS, §5).

    ``contribs`` is a list of ``(block, row_off, col_off)`` landing in the
    same target.  All contributions are padded to the target frame,
    concatenated, and recompressed *once* — fewer recompressions at the
    price of a larger stacked rank, exactly the trade-off the paper
    attributes to LUAR ("would imply larger ranks in the extend-add
    operations").  Enabled by ``SolverConfig.accumulate_updates``.
    """
    m_c, n_c = target.m, target.n
    u_parts, v_parts = [], []
    for contrib, row_off, col_off in contribs:
        if isinstance(contrib, np.ndarray):
            lr = compress_block(contrib, tol, kernel,
                                max_rank=min(contrib.shape), stats=stats,
                                norm_ref=norm_ref)
            if lr is None:
                lr = qr_split(contrib)
            contrib = lr
        if contrib.rank == 0:
            continue
        dt = np.result_type(target.dtype, contrib.dtype)
        u_pad = np.zeros((m_c, contrib.rank), dtype=dt)
        u_pad[row_off:row_off + contrib.m] = contrib.u
        v_pad = np.zeros((n_c, contrib.rank), dtype=dt)
        v_pad[col_off:col_off + contrib.n] = contrib.v
        u_parts.append(u_pad)
        v_parts.append(v_pad)
    if not u_parts:
        return target

    t0 = time.perf_counter()
    u_cat = np.hstack(u_parts)
    v_cat = np.hstack(v_parts)
    if kernel == "svd":
        out = recompress_svd(target.u, target.v, u_cat, v_cat, tol, max_rank,
                             norm_ref=norm_ref)
    else:
        out = recompress_rrqr(target.u, target.v, u_cat, v_cat, tol,
                              max_rank, norm_ref=norm_ref)
    r_tot = target.rank + u_cat.shape[1]
    r_new = out.rank if out is not None else (max_rank or target.rank)
    fl = (2.0 * (m_c + n_c) * r_tot * r_tot
          + 2.0 * (m_c + n_c) * r_tot * max(r_new, 1))
    if stats is not None:
        stats.add("lr_addition", seconds=time.perf_counter() - t0, flops=fl)
        if stats.telemetry is not None:
            stats.telemetry.record_recompress(
                m_c, n_c, target.rank,
                out.rank if out is not None else -1)
    return out
