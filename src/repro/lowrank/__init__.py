"""Low-rank block representations and kernels (paper §3).

Off-diagonal blocks of the factor are stored either dense (``numpy.ndarray``)
or as a :class:`~repro.lowrank.block.LowRankBlock` ``u @ v.T`` with ``u``
orthonormal.  Two compression families are provided — SVD
(:mod:`repro.lowrank.svd`) and rank-revealing QR (:mod:`repro.lowrank.rrqr`,
a from-scratch column-pivoted Householder QR with τ-based early exit) — and
the low-rank arithmetic of §3.3: the product of two low-rank blocks with
T-matrix recompression (eqs. 1–4), the low-rank-to-dense update ``LR2GE``,
and the low-rank-to-low-rank extend-add ``LR2LR`` with padding (Figure 4)
followed by SVD (eqs. 7–8) or RRQR (eqs. 9–12) recompression.
"""

from repro.lowrank.aca import aca_compress
from repro.lowrank.block import LowRankBlock
from repro.lowrank.randomized import rsvd_compress
from repro.lowrank.svd import svd_compress, svd_truncate
from repro.lowrank.rrqr import rrqr, rrqr_compress
from repro.lowrank.recompress import recompress_svd, recompress_rrqr
from repro.lowrank.kernels import (
    compress_block,
    lr_product,
    lr2ge_update,
    lr2lr_update,
    block_to_dense,
)

__all__ = [
    "LowRankBlock",
    "aca_compress",
    "rsvd_compress",
    "svd_compress",
    "svd_truncate",
    "rrqr",
    "rrqr_compress",
    "recompress_svd",
    "recompress_rrqr",
    "compress_block",
    "lr_product",
    "lr2ge_update",
    "lr2lr_update",
    "block_to_dense",
]
