"""SVD compression kernel (paper §3.1.1).

``A = U σ Vᵗ``; the rank-r approximation keeps the first r singular triplets
with r chosen as the smallest value satisfying the tolerance.  Following the
paper, the singular values are folded into ``v`` (``u = U_r``,
``vᵗ = σ_{1:r} Vᵗ_r``) so that ``u`` stays orthonormal.

Truncation rule: the paper prescribes ``||A - Â|| <= τ ||A||``.  We measure
both norms in Frobenius (the tail of the singular spectrum), i.e. the rank is
the smallest r with ``sqrt(Σ_{i>r} σ_i²) <= τ ||A||_F`` — the same rule our
RRQR kernel applies to its trailing submatrix, which keeps the two kernel
families comparable at equal τ.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla

from repro.lowrank.block import LowRankBlock


def svd_flops(m: int, n: int) -> float:
    """Rough flop model of a dense SVD — Θ(m²n + n²m + n³) per the paper.

    The constant follows the Golub–Van Loan count for a full
    Golub–Reinsch SVD with accumulation of both orbit matrices.
    """
    return 4.0 * m * m * n + 8.0 * m * n * n + 9.0 * n * n * n


def svd_truncate(sigma: np.ndarray, tol: float, norm_a: Optional[float] = None
                 ) -> int:
    """Smallest rank whose discarded Frobenius tail is below ``tol * ||A||_F``.

    ``norm_a`` defaults to the Frobenius norm implied by ``sigma``.
    """
    if sigma.size == 0:
        return 0
    tail = np.sqrt(np.cumsum((sigma ** 2)[::-1]))[::-1]  # tail[r] = ||σ_{r+1:}||
    norm = float(tail[0]) if norm_a is None else float(norm_a)
    if norm == 0.0:
        return 0
    threshold = tol * norm
    # rank r keeps sigma[:r]; tail after keeping r is tail[r] (0 for r = len)
    keep = np.flatnonzero(tail <= threshold)
    return int(keep[0]) if keep.size else int(sigma.size)


def svd_compress(a: np.ndarray, tol: float,
                 max_rank: Optional[int] = None,
                 norm_ref: Optional[float] = None) -> Optional[LowRankBlock]:
    """Compress ``a`` by truncated SVD.

    Returns ``None`` when the revealed rank exceeds ``max_rank`` (the caller
    keeps the block dense, per §3.4 — ranks above ``min(m,n)/4`` make
    compression pointless).  ``norm_ref`` switches the truncation reference
    from the block's own norm to ``max(||a||_F, norm_ref)`` — the global
    threshold modes of the BLR variant space.
    """
    m, n = a.shape
    if min(m, n) == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    try:
        u, sigma, vt = sla.svd(a, full_matrices=False,
                               lapack_driver="gesdd", check_finite=False)
    except np.linalg.LinAlgError:
        # gesdd (divide & conquer) occasionally fails to converge where
        # the slower QR-iteration driver succeeds; a genuine double
        # failure propagates LinAlgError to compress_block's keep-dense
        # verdict
        u, sigma, vt = sla.svd(a, full_matrices=False,
                               lapack_driver="gesvd", check_finite=False)
    norm_a = None
    if norm_ref is not None:
        norm_a = max(float(np.linalg.norm(sigma)), float(norm_ref))
    rank = svd_truncate(sigma, tol, norm_a=norm_a)
    if max_rank is not None and rank > max_rank:
        return None
    if rank == 0:
        return LowRankBlock.zero(m, n, dtype=a.dtype)
    # fold singular values into v so u stays orthonormal
    return LowRankBlock(u[:, :rank].copy(),
                        (vt[:rank].T * sigma[:rank]).copy())


def svd_compress_lr(u: np.ndarray, v: np.ndarray, tol: float
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Re-truncate an existing ``u vᵗ`` product via SVD.

    Used by the SVD recompression path: QR-reduce the factors, SVD the small
    core, truncate.  Returns new ``(u, v)`` with ``u`` orthonormal.
    """
    if u.shape[1] == 0:
        return u, v
    qu, ru = np.linalg.qr(u)
    qv, rv = np.linalg.qr(v)
    core = ru @ rv.T
    uu, sigma, vvt = sla.svd(core, full_matrices=False)
    rank = svd_truncate(sigma, tol)
    if rank == 0:
        m, n = u.shape[0], v.shape[0]
        dt = np.result_type(u, v)
        return np.zeros((m, 0), dtype=dt), np.zeros((n, 0), dtype=dt)
    return qu @ uu[:, :rank], qv @ (vvt[:rank].T * sigma[:rank])
