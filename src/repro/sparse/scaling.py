"""Matrix equilibration (row/column scaling).

Production direct solvers (PaStiX included) optionally scale the matrix
before factorizing so that all entries are O(1) — it tames wildly varying
coefficients (our Serena proxy jumps by 10³–10⁶ across geological layers)
and makes the static-pivoting threshold meaningful.  We implement symmetric
iterative equilibration in the infinity norm (a Ruiz iteration):

``A_scaled = D_r A D_c`` with diagonal ``D_r, D_c``; for symmetric matrices
``D_r = D_c`` preserves symmetry.  Solving then transforms as
``x = D_c y`` where ``(D_r A D_c) y = D_r b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix


@dataclass
class Scaling:
    """Row/column scale vectors with the solve-transform helpers."""

    row: np.ndarray
    col: np.ndarray

    def scale_rhs(self, b: np.ndarray) -> np.ndarray:
        """``b_scaled = D_r b`` (dtype-preserving — complex rhs stays
        complex; non-inexact input is promoted to float64)."""
        b = np.asarray(b)
        if b.dtype.kind not in "fc":
            b = b.astype(np.float64)
        return b * (self.row if b.ndim == 1 else self.row[:, None])

    def unscale_solution(self, y: np.ndarray) -> np.ndarray:
        """``x = D_c y`` (dtype-preserving)."""
        y = np.asarray(y)
        if y.dtype.kind not in "fc":
            y = y.astype(np.float64)
        return y * (self.col if y.ndim == 1 else self.col[:, None])


def _real_dtype(dt: np.dtype) -> np.dtype:
    """Real counterpart of an inexact dtype (complex64 -> float32); scale
    vectors live in this dtype so scaling never promotes a float32 matrix."""
    return np.finfo(dt).dtype if dt.kind in "fc" else np.dtype(np.float64)


def _row_col_maxima(a: CSCMatrix) -> Tuple[np.ndarray, np.ndarray]:
    real_dt = _real_dtype(a.values.dtype)
    row_max = np.zeros(a.n, dtype=real_dt)
    col_max = np.zeros(a.n, dtype=real_dt)
    for j in range(a.n):
        rows, vals = a.column(j)
        if rows.size:
            av = np.abs(vals)
            col_max[j] = av.max()
            np.maximum.at(row_max, rows, av)
    return row_max, col_max


def equilibrate(a: CSCMatrix, symmetric: bool = True,
                iterations: int = 5) -> tuple:
    """Ruiz equilibration; returns ``(a_scaled, Scaling)``.

    After convergence every row and column of the scaled matrix has
    infinity norm ≈ 1.  ``symmetric=True`` uses ``sqrt`` scaling on both
    sides (preserves symmetry and SPD-ness); otherwise rows and columns are
    scaled independently.
    """
    values = a.values.copy()
    cols = np.repeat(np.arange(a.n, dtype=np.int64), np.diff(a.colptr))
    real_dt = _real_dtype(values.dtype)
    d_row = np.ones(a.n, dtype=real_dt)
    d_col = np.ones(a.n, dtype=real_dt)
    for _ in range(max(1, iterations)):
        cur = CSCMatrix(a.n, a.colptr, a.rowind, values, check=False)
        row_max, col_max = _row_col_maxima(cur)
        row_max[row_max == 0] = 1.0
        col_max[col_max == 0] = 1.0
        if symmetric:
            s = 1.0 / np.sqrt(np.sqrt(row_max * col_max))
            r_step = c_step = s
        else:
            r_step = 1.0 / np.sqrt(row_max)
            c_step = 1.0 / np.sqrt(col_max)
        values = values * r_step[a.rowind] * c_step[cols]
        d_row *= r_step
        d_col *= c_step
    scaled = CSCMatrix(a.n, a.colptr, a.rowind, values, check=False)
    return scaled, Scaling(row=d_row, col=d_col)


def scaled_extremes(a: CSCMatrix) -> tuple:
    """(min, max) of the nonzero magnitudes — equilibration quality check."""
    av = np.abs(a.values[a.values != 0])
    if av.size == 0:
        return (0.0, 0.0)
    return float(av.min()), float(av.max())
