"""Compressed Sparse Column matrix container.

The solver's analysis pipeline (ordering, symbolic factorization) consumes a
*pattern-symmetric* CSC matrix with sorted row indices and no duplicates; the
numerical pipeline scatters its values into the supernodal block structure.
This container enforces those invariants on construction so downstream code
never has to re-check them.

Only the operations the solver needs are implemented — construction from
triplets or scipy, symmetrization, transpose, matvec, extraction of the lower
pattern, and dense conversion for tests.  Anything fancier belongs in scipy.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

import numpy as np

#: dtypes the numeric pipeline supports (PaStiX's s/d/c/z)
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64),
                    np.dtype(np.complex64), np.dtype(np.complex128))


def _values_dtype(values: "np.typing.ArrayLike") -> np.dtype:
    """The storage dtype for a values array: s/d/c/z inputs are kept as-is,
    anything else (int, bool, float16, ...) is promoted to float64."""
    dt = np.asarray(values).dtype
    return dt if dt in SUPPORTED_DTYPES else np.dtype(np.float64)


class CSCMatrix:
    """Square sparse matrix in compressed-sparse-column form.

    Parameters
    ----------
    n:
        Matrix dimension (matrices here are always square — they come from
        discretized PDE operators).
    colptr:
        ``int64`` array of length ``n + 1``; column ``j`` owns entries
        ``colptr[j]:colptr[j+1]``.
    rowind:
        ``int64`` array of row indices, sorted strictly increasing within
        each column (checked).
    values:
        Array aligned with ``rowind``.  Inexact dtypes (float32/float64/
        complex64/complex128) are preserved; anything else is coerced to
        ``float64``.
    """

    __slots__ = ("n", "colptr", "rowind", "values")

    def __init__(self, n: int, colptr: np.ndarray, rowind: np.ndarray,
                 values: np.ndarray, check: bool = True) -> None:
        self.n = int(n)
        self.colptr = np.ascontiguousarray(colptr, dtype=np.int64)
        self.rowind = np.ascontiguousarray(rowind, dtype=np.int64)
        self.values = np.ascontiguousarray(values, dtype=_values_dtype(values))
        if check:
            self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.colptr.shape != (self.n + 1,):
            raise ValueError("colptr must have length n + 1")
        if self.colptr[0] != 0 or self.colptr[-1] != len(self.rowind):
            raise ValueError("colptr bounds inconsistent with rowind")
        if np.any(np.diff(self.colptr) < 0):
            raise ValueError("colptr must be non-decreasing")
        if len(self.rowind) != len(self.values):
            raise ValueError("rowind and values must have equal length")
        if len(self.rowind) and (self.rowind.min() < 0 or self.rowind.max() >= self.n):
            raise ValueError("row index out of range")
        # strictly increasing row indices per column => sorted and no dups
        for j in range(self.n):
            lo, hi = self.colptr[j], self.colptr[j + 1]
            col = self.rowind[lo:hi]
            if col.size > 1 and np.any(np.diff(col) <= 0):
                raise ValueError(f"column {j} has unsorted or duplicate rows")

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_coo(cls, n: int, rows: Iterable[int], cols: Iterable[int],
                 vals: Iterable[float], sum_duplicates: bool = True) -> "CSCMatrix":
        """Build from triplets; duplicate entries are summed."""
        rows = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows,
                          dtype=np.int64)
        cols = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols,
                          dtype=np.int64)
        vals = np.asarray(list(vals) if not isinstance(vals, np.ndarray) else vals)
        vals = np.asarray(vals, dtype=_values_dtype(vals))
        if not (rows.shape == cols.shape == vals.shape):
            raise ValueError("rows/cols/vals must have equal shapes")
        order = np.lexsort((rows, cols))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            keep = np.empty(rows.size, dtype=bool)
            keep[0] = True
            np.logical_or(rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=keep[1:])
            groups = np.cumsum(keep) - 1
            summed = np.zeros(int(groups[-1]) + 1, dtype=vals.dtype)
            np.add.at(summed, groups, vals)
            rows, cols, vals = rows[keep], cols[keep], summed
        colptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(colptr, cols + 1, 1)
        np.cumsum(colptr, out=colptr)
        return cls(n, colptr, rows, vals)

    @classmethod
    def from_dense(cls, a: np.ndarray, tol: float = 0.0) -> "CSCMatrix":
        a = np.asarray(a)
        a = np.asarray(a, dtype=_values_dtype(a))
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError("dense input must be square")
        rows, cols = np.nonzero(np.abs(a) > tol)
        return cls.from_coo(a.shape[0], rows, cols, a[rows, cols])

    @classmethod
    def from_scipy(cls, a: "Any") -> "CSCMatrix":
        """Convert any scipy.sparse matrix (kept optional at import time)."""
        a = a.tocsc()
        a.sort_indices()
        a.sum_duplicates()
        return cls(a.shape[0], a.indptr.astype(np.int64),
                   a.indices.astype(np.int64),
                   a.data.astype(_values_dtype(a.data)))

    def to_scipy(self) -> "Any":
        import scipy.sparse as sp

        return sp.csc_matrix((self.values, self.rowind, self.colptr),
                             shape=(self.n, self.n))

    # -- basic queries ----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(len(self.rowind))

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices and values of column ``j`` (views, do not mutate)."""
        lo, hi = self.colptr[j], self.colptr[j + 1]
        return self.rowind[lo:hi], self.values[lo:hi]

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    def diagonal(self) -> np.ndarray:
        d = np.zeros(self.n, dtype=self.values.dtype)
        for j in range(self.n):
            rows, vals = self.column(j)
            k = np.searchsorted(rows, j)
            if k < len(rows) and rows[k] == j:
                d[j] = vals[k]
        return d

    def to_dense(self) -> np.ndarray:
        a = np.zeros((self.n, self.n), dtype=self.values.dtype)
        for j in range(self.n):
            rows, vals = self.column(j)
            a[rows, j] = vals
        return a

    # -- operations -------------------------------------------------------
    def transpose(self) -> "CSCMatrix":
        """Return Aᵗ (CSC of the transpose = CSR of A reinterpreted)."""
        cols = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.colptr))
        return CSCMatrix.from_coo(self.n, cols, self.rowind, self.values,
                                  sum_duplicates=False)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A @ x`` (supports a single vector or a (n, k) block)."""
        x = np.asarray(x, dtype=np.result_type(self.values, np.asarray(x)))
        single = x.ndim == 1
        xb = x[:, None] if single else x
        y = np.zeros_like(xb)
        for j in range(self.n):
            rows, vals = self.column(j)
            if rows.size:
                y[rows] += vals[:, None] * xb[j]
        return y[:, 0] if single else y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``Aᵗ @ x``."""
        x = np.asarray(x, dtype=np.result_type(self.values, np.asarray(x)))
        single = x.ndim == 1
        xb = x[:, None] if single else x
        y = np.zeros_like(xb)
        for j in range(self.n):
            rows, vals = self.column(j)
            if rows.size:
                y[j] = vals @ xb[rows]
        return y[:, 0] if single else y

    def symmetrize_pattern(self) -> "CSCMatrix":
        """Return A with the pattern of ``A + Aᵗ`` (zeros added as explicit
        entries, values preserved).  The solver requires symmetric patterns
        (paper §1: "problems leading to sparse systems with a symmetric
        pattern")."""
        at = self.transpose()
        cols_a = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.colptr))
        cols_t = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(at.colptr))
        rows = np.concatenate([self.rowind, at.rowind])
        cols = np.concatenate([cols_a, cols_t])
        vals = np.concatenate(
            [self.values, np.zeros(at.nnz, dtype=self.values.dtype)])
        return CSCMatrix.from_coo(self.n, rows, cols, vals)

    def is_pattern_symmetric(self) -> bool:
        at = self.transpose()
        return (np.array_equal(self.colptr, at.colptr)
                and np.array_equal(self.rowind, at.rowind))

    def is_symmetric(self, tol: float = 0.0, hermitian: bool = False) -> bool:
        """``A == Aᵗ`` entrywise (or ``A == A^H`` with ``hermitian=True``,
        the natural notion for complex matrices handed to Cholesky/LDLᵀ)."""
        at = self.transpose()
        if not (np.array_equal(self.colptr, at.colptr)
                and np.array_equal(self.rowind, at.rowind)):
            return False
        other = np.conj(at.values) if hermitian else at.values
        return bool(np.all(np.abs(self.values - other) <= tol))

    def lower_pattern(self) -> "CSCMatrix":
        """Strictly-lower + diagonal part (used by Cholesky paths)."""
        keep = np.zeros(self.nnz, dtype=bool)
        for j in range(self.n):
            lo, hi = self.colptr[j], self.colptr[j + 1]
            keep[lo:hi] = self.rowind[lo:hi] >= j
        cols = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.colptr))
        return CSCMatrix.from_coo(self.n, self.rowind[keep], cols[keep],
                                  self.values[keep], sum_duplicates=False)

    def norm1(self) -> float:
        """Max column sum of absolute values."""
        best = 0.0
        for j in range(self.n):
            _, vals = self.column(j)
            s = float(np.abs(vals).sum())
            if s > best:
                best = s
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix(n={self.n}, nnz={self.nnz})"
