"""Problem generators for the evaluation suite.

The paper evaluates on five SuiteSparse matrices plus generated 3D Laplacians
(7-point stencils).  SuiteSparse downloads are not available offline, so each
matrix is replaced by a synthetic generator that reproduces the structural and
numerical character the evaluation depends on (see DESIGN.md §3):

================  =============================================  ==========
paper matrix      proxy generator                                 symmetry
================  =============================================  ==========
lap120            :func:`laplacian_3d`                            SPD
Atmosmodj         :func:`convection_diffusion_3d`                 general
Audi              :func:`elasticity_3d` (stiff, fine mesh)        SPD
Hook              :func:`elasticity_3d` (elongated bar)           SPD
Serena            :func:`heterogeneous_poisson_3d`                SPD
Geo1438           :func:`anisotropic_laplacian_3d`                SPD
================  =============================================  ==========

All generators assemble finite-difference / finite-element-like operators on
regular grids with Dirichlet boundary conditions, vectorized over numpy index
arrays; nnz assembly of a 48³ grid takes milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix


def _grid_index_3d(nx: int, ny: int, nz: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return the (i, j, k) coordinates of every grid point, in
    lexicographic (x fastest) node order."""
    k, j, i = np.meshgrid(np.arange(nz), np.arange(ny), np.arange(nx),
                          indexing="ij")
    return i.ravel(), j.ravel(), k.ravel()


def _stencil_links_3d(nx: int, ny: int, nz: int
                      ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Yield (node, neighbour) index arrays for the +x, +y, +z links of a
    7-point stencil (each undirected link once)."""
    idx = np.arange(nx * ny * nz).reshape(nz, ny, nx)
    links = []
    links.append((idx[:, :, :-1].ravel(), idx[:, :, 1:].ravel()))   # +x
    links.append((idx[:, :-1, :].ravel(), idx[:, 1:, :].ravel()))   # +y
    links.append((idx[:-1, :, :].ravel(), idx[1:, :, :].ravel()))   # +z
    return links


def laplacian_1d(n: int) -> CSCMatrix:
    """Tridiagonal ``[-1, 2, -1]`` operator (Dirichlet)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rows = np.concatenate([np.arange(n), np.arange(n - 1), np.arange(1, n)])
    cols = np.concatenate([np.arange(n), np.arange(1, n), np.arange(n - 1)])
    vals = np.concatenate([np.full(n, 2.0), np.full(n - 1, -1.0),
                           np.full(n - 1, -1.0)])
    return CSCMatrix.from_coo(n, rows, cols, vals)


def laplacian_2d(nx: int, ny: Optional[int] = None) -> CSCMatrix:
    """5-point Laplacian on an ``nx × ny`` grid (Dirichlet)."""
    ny = nx if ny is None else ny
    n = nx * ny
    idx = np.arange(n).reshape(ny, nx)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 4.0)]
    for a, b in [(idx[:, :-1].ravel(), idx[:, 1:].ravel()),
                 (idx[:-1, :].ravel(), idx[1:, :].ravel())]:
        rows += [a, b]
        cols += [b, a]
        vals += [np.full(a.size, -1.0), np.full(a.size, -1.0)]
    return CSCMatrix.from_coo(n, np.concatenate(rows), np.concatenate(cols),
                              np.concatenate(vals))


def laplacian_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None) -> CSCMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid (Dirichlet).

    This is the paper's ``lapN`` generator: ``laplacian_3d(120)`` would be
    lap120 (1.7M dofs); laptop-scale benches use 16-32 per side.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 6.0)]
    for a, b in _stencil_links_3d(nx, ny, nz):
        rows += [a, b]
        cols += [b, a]
        vals += [np.full(a.size, -1.0), np.full(a.size, -1.0)]
    return CSCMatrix.from_coo(n, np.concatenate(rows), np.concatenate(cols),
                              np.concatenate(vals))


def convection_diffusion_3d(nx: int, ny: Optional[int] = None,
                            nz: Optional[int] = None,
                            peclet: float = 0.5,
                            seed: int = 0) -> CSCMatrix:
    """Nonsymmetric convection–diffusion operator (Atmosmodj proxy).

    Atmosmodj is an atmospheric-model matrix: structurally symmetric,
    numerically nonsymmetric, diagonally dominant.  We discretize
    ``-Δu + β·∇u`` with central differences; the convection field β is a
    smooth spatially varying "wind" with magnitude ``peclet`` relative to
    diffusion, keeping the matrix mildly nonsymmetric and well conditioned —
    the same regime that makes atmosmodj the most compressible matrix of the
    paper's suite.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    rng = np.random.default_rng(seed)
    phase = rng.uniform(0, 2 * np.pi, size=3)
    i, j, k = _grid_index_3d(nx, ny, nz)
    # smooth periodic wind components at every node
    bx = peclet * np.sin(2 * np.pi * i / max(nx, 2) + phase[0])
    by = peclet * np.sin(2 * np.pi * j / max(ny, 2) + phase[1])
    bz = peclet * np.sin(2 * np.pi * k / max(nz, 2) + phase[2])

    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 6.0)]
    winds = [bx, by, bz]
    for axis, (a, b) in enumerate(_stencil_links_3d(nx, ny, nz)):
        w = winds[axis]
        # central-difference convection: -1 - w/2 toward +axis, -1 + w/2 back
        rows += [a, b]
        cols += [b, a]
        vals += [-1.0 - 0.5 * w[a], -1.0 + 0.5 * w[a]]
    return CSCMatrix.from_coo(n, np.concatenate(rows), np.concatenate(cols),
                              np.concatenate(vals))


def elasticity_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None,
                  lam: float = 1.0, mu: float = 1.0) -> CSCMatrix:
    """Linear-elasticity-like operator, 3 dofs per grid node (Audi / Hook
    proxy).

    Audi and Hook are structural-mechanics matrices: 3 unknowns per mesh
    node, SPD, and notably *harder to compress* than scalar Laplacians.  We
    build a vector operator where each displacement component carries a
    7-point Laplacian scaled by ``mu``, plus a grad-div coupling between
    components along the stencil links scaled by ``lam`` — the same coupling
    pattern a Q1 finite-element elasticity assembly produces, and enough to
    raise the off-diagonal block ranks the way the paper's hard matrices do.

    ``elasticity_3d(nx, ny=nx//4, nz=nx//4)`` gives the elongated "hook/bar"
    geometry.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    nn = nx * ny * nz
    n = 3 * nn

    rows_l, cols_l, vals_l = [], [], []

    def add(r: np.ndarray, c: np.ndarray, v: np.ndarray) -> None:
        rows_l.append(r)
        cols_l.append(c)
        vals_l.append(v)

    # diagonal: (2*mu + lam) on each component, x6 neighbours folded below
    node = np.arange(nn)
    for c in range(3):
        add(3 * node + c, 3 * node + c, np.full(nn, 6.0 * (2.0 * mu + lam) / 3.0))

    links = _stencil_links_3d(nx, ny, nz)
    for axis, (a, b) in enumerate(links):
        m = a.size
        for c in range(3):
            # component Laplacian along every axis
            w = -(mu + (lam if c == axis else 0.0))
            add(3 * a + c, 3 * b + c, np.full(m, w))
            add(3 * b + c, 3 * a + c, np.full(m, w))
        # grad-div cross-component coupling between the axis component and
        # the two others (symmetric, weak)
        for c in range(3):
            if c == axis:
                continue
            w = -0.25 * lam
            add(3 * a + axis, 3 * b + c, np.full(m, w))
            add(3 * b + c, 3 * a + axis, np.full(m, w))
            add(3 * b + axis, 3 * a + c, np.full(m, -w))
            add(3 * a + c, 3 * b + axis, np.full(m, -w))

    a = CSCMatrix.from_coo(n, np.concatenate(rows_l), np.concatenate(cols_l),
                           np.concatenate(vals_l))
    # guarantee SPD by diagonal shift to strict dominance
    return _make_diagonally_dominant(a, margin=0.05)


def heterogeneous_poisson_3d(nx: int, ny: Optional[int] = None,
                             nz: Optional[int] = None,
                             contrast: float = 1e3, nlayers: int = 4,
                             seed: int = 0) -> CSCMatrix:
    """Layered-coefficient diffusion (Serena proxy: gas-reservoir simulation).

    Reservoir models stack geological layers with permeability jumping by
    orders of magnitude.  Coefficients are constant within horizontal layers
    and jump by up to ``contrast`` across them, with harmonic averaging on
    the faces — SPD, ill conditioned, moderately compressible.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    rng = np.random.default_rng(seed)
    layer_of = (np.arange(nz) * nlayers // max(nz, 1)).clip(0, nlayers - 1)
    kappa_layer = contrast ** rng.uniform(-0.5, 0.5, size=nlayers)
    _, _, kcoord = _grid_index_3d(nx, ny, nz)
    kappa = kappa_layer[layer_of[kcoord]]

    rows = [np.arange(n)]
    cols = [np.arange(n)]
    diag = np.zeros(n, dtype=np.float64)  # generators build float64 matrices
    off_rows, off_cols, off_vals = [], [], []
    for a, b in _stencil_links_3d(nx, ny, nz):
        w = 2.0 * kappa[a] * kappa[b] / (kappa[a] + kappa[b])  # harmonic mean
        off_rows += [a, b]
        off_cols += [b, a]
        off_vals += [-w, -w]
        np.add.at(diag, a, w)
        np.add.at(diag, b, w)
    # Dirichlet-like shift so the operator is nonsingular
    diag += diag.mean() * 1e-3 + 1e-8
    vals = [diag]
    return CSCMatrix.from_coo(
        n,
        np.concatenate(rows + off_rows),
        np.concatenate(cols + off_cols),
        np.concatenate(vals + off_vals),
    )


def anisotropic_laplacian_3d(nx: int, ny: Optional[int] = None,
                             nz: Optional[int] = None,
                             epsx: float = 1.0, epsy: float = 25.0,
                             epsz: float = 625.0) -> CSCMatrix:
    """Strongly anisotropic diffusion (Geo1438 proxy: geomechanics).

    Geomechanical models couple very different stiffnesses along different
    axes; strong anisotropy raises the numerical ranks of separator blocks,
    which is why Geo1438 is among the paper's least compressible matrices.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    eps = [epsx, epsy, epsz]
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 2.0 * (epsx + epsy + epsz))]
    for axis, (a, b) in enumerate(_stencil_links_3d(nx, ny, nz)):
        w = -eps[axis]
        rows += [a, b]
        cols += [b, a]
        vals += [np.full(a.size, w), np.full(a.size, w)]
    return CSCMatrix.from_coo(n, np.concatenate(rows), np.concatenate(cols),
                              np.concatenate(vals))


def random_spd(n: int, density: float = 0.05, seed: int = 0) -> CSCMatrix:
    """Random sparse SPD matrix (for tests): symmetric pattern, strictly
    diagonally dominant."""
    rng = np.random.default_rng(seed)
    nnz_target = max(n, int(density * n * n / 2))
    rows = rng.integers(0, n, size=nnz_target)
    cols = rng.integers(0, n, size=nnz_target)
    off = rows != cols
    rows, cols = rows[off], cols[off]
    vals = rng.standard_normal(rows.size)
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    all_vals = np.concatenate([vals, vals])
    a = CSCMatrix.from_coo(n, all_rows, all_cols, all_vals)
    return _make_diagonally_dominant(a, margin=1.0)


def _make_diagonally_dominant(a: CSCMatrix, margin: float = 0.0) -> CSCMatrix:
    """Add to each diagonal entry enough to dominate its column strictly."""
    colsum = np.zeros(a.n, dtype=np.float64)
    for j in range(a.n):
        rows, vals = a.column(j)
        mask = rows != j
        colsum[j] = np.abs(vals[mask]).sum()
    d = a.diagonal()
    need = colsum * (1.0 + margin) - d
    need = np.maximum(need, margin)
    rows = np.concatenate([a.rowind, np.arange(a.n)])
    cols = np.concatenate(
        [np.repeat(np.arange(a.n, dtype=np.int64), np.diff(a.colptr)),
         np.arange(a.n)])
    vals = np.concatenate([a.values, need])
    return CSCMatrix.from_coo(a.n, rows, cols, vals)


def laplacian_3d_27pt(nx: int, ny: Optional[int] = None,
                      nz: Optional[int] = None) -> CSCMatrix:
    """27-point 3D Laplacian (trilinear finite elements on a box grid).

    Denser stencil than the 7-point operator: every grid node couples to
    its full 3x3x3 neighbourhood with the classical FE weights.  Produces
    fuller (hence more BLAS-efficient and slightly more compressible)
    blocks — the stencil used by several of the paper's related works.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    n = nx * ny * nz
    idx = np.arange(n).reshape(nz, ny, nx)
    rows_l, cols_l, vals_l = [], [], []
    # weights by Chebyshev distance: center 8/3, face -0, edge -1/... use
    # the standard trilinear FE stencil: face 0, edge -1/6? The classical
    # 27-point FE Laplacian weights: center 8/3, face 0, edge -1/3,
    # corner -1/12 (normalized).  Any diagonally dominant variant works for
    # the solver; we use distance-based weights that keep the matrix SPD.
    weights = {1: -2.0 / 9.0, 2: -1.0 / 18.0, 3: -1.0 / 72.0}
    diag = np.zeros(n, dtype=np.float64)
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                dist = abs(dx) + abs(dy) + abs(dz)
                if dist == 0:
                    continue
                w = weights[dist]
                src = idx[max(0, -dz):nz - max(0, dz),
                          max(0, -dy):ny - max(0, dy),
                          max(0, -dx):nx - max(0, dx)].ravel()
                dst = idx[max(0, dz):nz + min(0, dz) or nz,
                          max(0, dy):ny + min(0, dy) or ny,
                          max(0, dx):nx + min(0, dx) or nx].ravel()
                rows_l.append(src)
                cols_l.append(dst)
                vals_l.append(np.full(src.size, w))
                np.add.at(diag, src, -w)
    rows_l.append(np.arange(n))
    cols_l.append(np.arange(n))
    vals_l.append(diag + 1e-6)  # Dirichlet-like shift: strictly SPD
    return CSCMatrix.from_coo(n, np.concatenate(rows_l),
                              np.concatenate(cols_l),
                              np.concatenate(vals_l))


def helmholtz_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None,
                 wavenumber: float = 1.0,
                 damping: float = 0.0) -> CSCMatrix:
    """Shifted (indefinite) Helmholtz operator ``-Δ - (1 - iα) k² I``.

    The textbook hard case for compression-based solvers: block ranks grow
    with the wavenumber ``k`` because the Green's function oscillates.
    With ``damping == 0`` the operator is real symmetric indefinite —
    factorize with ``factotype='ldlt'`` (static pivoting).  A nonzero
    ``damping`` α adds the absorbing ``+iαk²`` shift used by shifted-Laplacian
    preconditioners, yielding a *complex symmetric* (not Hermitian) matrix —
    factorize with ``factotype='lu'`` and ``dtype='complex128'``.
    ``wavenumber`` is expressed in grid units (``k·h``).
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    base = laplacian_3d(nx, ny, nz)
    shift = float(wavenumber) ** 2
    if damping:
        shift = shift * complex(1.0, -float(damping))
    rows = np.concatenate([base.rowind, np.arange(base.n)])
    cols = np.concatenate(
        [np.repeat(np.arange(base.n, dtype=np.int64), np.diff(base.colptr)),
         np.arange(base.n)])
    diag = np.full(base.n, -shift)
    vals = np.concatenate([base.values.astype(diag.dtype), diag])
    return CSCMatrix.from_coo(base.n, rows, cols, vals)


# ---------------------------------------------------------------------------
# Matrix zoo: committed hard cases for the scenario harness
# ---------------------------------------------------------------------------


def saddle_point_kkt(nx: int, m: Optional[int] = None, penalty: float = 0.0,
                     seed: int = 0) -> CSCMatrix:
    """Symmetric indefinite KKT / saddle-point system.

    Builds the classic optimality system

    .. code-block:: text

        [ A   Bᵀ ]     A = 2D Laplacian (nx × nx grid, SPD, n = nx²)
        [ B  -γI ]     B = m × n full-row-rank constraint block

    with ``γ = penalty``.  Each constraint row couples one adjacent pair of
    unknowns with random weights (disjoint pairs, so B has full row rank m).
    With ``penalty == 0`` the (2,2) block is *exactly zero* — every
    constraint row has a structurally zero diagonal entry, the canonical
    case where static (perturbation-only) pivoting fails and threshold
    pivoting must build 2×2 pivots.  A small positive ``penalty`` gives the
    regularized variant with tiny negative diagonal entries instead.

    By Sylvester's law of inertia the system has exactly ``m`` negative and
    ``n`` positive eigenvalues (for any ``penalty >= 0`` and full-rank B),
    which the zoo tests check via :func:`repro.analysis.diagnostics.factor_inertia`.
    """
    a = laplacian_2d(nx)
    n = a.n
    if m is None:
        m = n // 4
    if m < 1 or 2 * m > n:
        raise ValueError("constraint count m must satisfy 1 <= m <= n/2")
    rng = np.random.default_rng(seed)
    ntot = n + m

    # A block (top-left, unchanged indices)
    rows_l = [a.rowind]
    cols_l = [np.repeat(np.arange(n, dtype=np.int64), np.diff(a.colptr))]
    vals_l = [np.asarray(a.values, dtype=np.float64)]

    # B block: constraint j couples unknowns (2j, 2j+1)
    j = np.arange(m, dtype=np.int64)
    crow = n + j
    w1 = rng.uniform(0.5, 1.5, size=m)
    w2 = -rng.uniform(0.5, 1.5, size=m)
    for col, w in ((2 * j, w1), (2 * j + 1, w2)):
        rows_l += [crow, col]
        cols_l += [col, crow]
        vals_l += [w, w]

    # (2,2) block: -penalty I, with *explicit* zeros when penalty == 0 so
    # the constraint diagonal entries exist structurally (and assemble to 0)
    rows_l.append(crow)
    cols_l.append(crow)
    vals_l.append(np.full(m, -float(penalty)))

    return CSCMatrix.from_coo(ntot, np.concatenate(rows_l),
                              np.concatenate(cols_l), np.concatenate(vals_l))


def stretched_mesh_3d(nx: int, ny: Optional[int] = None,
                      nz: Optional[int] = None,
                      stretch: float = 10.0) -> CSCMatrix:
    """Laplacian on a geometrically stretched grid (boundary-layer mesh).

    The grid spacing along z grows geometrically from ``1`` at the bottom
    layer to ``stretch`` at the top (the classic boundary-layer grading),
    so the +z link weights ``1/h²`` span a ``stretch²`` dynamic range while
    x/y links keep unit weight.  Unlike :func:`anisotropic_laplacian_3d`
    (constant coefficients), the anisotropy here varies *through* the
    domain, which stresses both the scaling robustness of the numerical
    factorization and the rank structure of separators.  SPD.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if nz < 2:
        raise ValueError("stretched mesh needs nz >= 2")
    if stretch <= 0:
        raise ValueError("stretch must be positive")
    n = nx * ny * nz
    # spacing between layer k and k+1: geometric from 1 to `stretch`
    hmid = np.asarray(stretch, dtype=np.float64) ** (
        (np.arange(nz - 1) + 0.5) / (nz - 1))
    wz_layer = 1.0 / (hmid * hmid)

    diag = np.zeros(n, dtype=np.float64)
    rows_l, cols_l, vals_l = [], [], []
    _, _, kcoord = _grid_index_3d(nx, ny, nz)
    for axis, (a, b) in enumerate(_stencil_links_3d(nx, ny, nz)):
        w = wz_layer[kcoord[a]] if axis == 2 else np.full(a.size, 1.0)
        rows_l += [a, b]
        cols_l += [b, a]
        vals_l += [-w, -w]
        np.add.at(diag, a, w)
        np.add.at(diag, b, w)
    # Dirichlet-like shift keeps the operator strictly SPD
    rows_l.append(np.arange(n))
    cols_l.append(np.arange(n))
    vals_l.append(diag * (1.0 + 1e-6) + 1e-8)
    return CSCMatrix.from_coo(n, np.concatenate(rows_l),
                              np.concatenate(cols_l), np.concatenate(vals_l))


def perturb(base: CSCMatrix, seed: int, magnitude: float = 1e-6) -> CSCMatrix:
    """Reproducible symmetry-preserving perturbation of ``base``.

    Multiplies every stored entry by ``1 + magnitude · ε(i, j)`` where the
    noise field ``ε(i, j) = g[i]·h[j] + g[j]·h[i]`` is built from two seeded
    node vectors — symmetric in (i, j) by construction, so a (skew-)symmetric
    input stays exactly symmetric, and the sparsity pattern is unchanged
    (zero entries stay zero).  ``|ε| <= 1/2``, so ``magnitude`` bounds the
    relative entrywise perturbation.  Same ``(base, seed, magnitude)``
    always yields the same matrix — the contract the scenario replay
    harness depends on.
    """
    if magnitude < 0:
        raise ValueError("magnitude must be >= 0")
    rng = np.random.default_rng(seed)
    g = rng.uniform(-0.5, 0.5, size=base.n)
    h = rng.uniform(-0.5, 0.5, size=base.n)
    rows = base.rowind
    cols = np.repeat(np.arange(base.n, dtype=np.int64), np.diff(base.colptr))
    eps = g[rows] * h[cols] + g[cols] * h[rows]
    vals = base.values * (1.0 + float(magnitude) * eps)
    return CSCMatrix.from_coo(base.n, rows.copy(), cols, vals)


def helmholtz_shift_sweep(nx: int, wavenumbers: Tuple[float, ...] = (1.0, 2.2, 3.0),
                          damping: float = 0.0
                          ) -> List[Tuple[str, CSCMatrix]]:
    """Shifted-Helmholtz sweep: one matrix per wavenumber.

    Returns ``[(label, matrix), ...]`` with labels like ``"helmholtz-k2.2"``.
    Increasing ``k`` drives the operator from SPD (small shift) through
    increasingly indefinite regimes — the sweep the scenario harness runs
    to chart where static pivoting stops being enough.
    """
    out: List[Tuple[str, CSCMatrix]] = []
    for k in wavenumbers:
        out.append((f"helmholtz-k{k:g}",
                    helmholtz_3d(nx, wavenumber=float(k), damping=damping)))
    return out


@dataclass(frozen=True)
class ZooCase:
    """One committed zoo matrix: a named builder plus declared spectrum.

    ``definiteness`` is the *declared* class ("positive" or "indefinite"),
    verified by the zoo tests via the factorization's inertia; the scenario
    harness uses it to pick admissible factotypes.
    """

    name: str
    build: Callable[[], CSCMatrix]
    definiteness: str
    description: str = ""


def zoo() -> List[ZooCase]:
    """The committed matrix zoo for scenario replay and CI.

    Small, fast instances (hundreds of unknowns) spanning the regimes the
    robustness machinery must survive: SPD baselines, graded/anisotropic
    meshes, indefinite Helmholtz shifts, and saddle-point systems whose
    zero diagonal block defeats static pivoting outright.
    """
    return [
        ZooCase("lap3d", lambda: laplacian_3d(8), "positive",
                "7-point 3D Laplacian, the SPD baseline"),
        ZooCase("stretched", lambda: stretched_mesh_3d(8, stretch=50.0),
                "positive",
                "boundary-layer graded mesh, 2500x weight contrast"),
        ZooCase("aniso", lambda: anisotropic_laplacian_3d(8), "positive",
                "constant-coefficient strong anisotropy (Geo1438 proxy)"),
        ZooCase("helmholtz-k2.2", lambda: helmholtz_3d(9, wavenumber=2.2),
                "indefinite",
                "shifted Helmholtz past the first eigenvalue cluster"),
        ZooCase("helmholtz-k3", lambda: helmholtz_3d(9, wavenumber=3.0),
                "indefinite",
                "deep Helmholtz shift with a near-singular active diagonal: "
                "static pivoting must perturb, threshold pivoting swaps"),
        ZooCase("kkt", lambda: saddle_point_kkt(12), "indefinite",
                "saddle point with an exactly zero (2,2) block; needs 2x2 "
                "pivots"),
        ZooCase("kkt-regularized", lambda: saddle_point_kkt(12, penalty=1e-2),
                "indefinite",
                "regularized KKT: tiny negative constraint diagonal"),
    ]
