"""Symmetric permutations of sparse matrices.

The ordering step produces a permutation ``perm`` where ``perm[k]`` is the
original index of the unknown placed at position ``k`` ("new-to-old").  The
solver then factorizes ``P A Pᵗ`` whose entry ``(i, j)`` is
``A[perm[i], perm[j]]``.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CSCMatrix


def is_permutation(perm: np.ndarray, n: int) -> bool:
    """True iff ``perm`` is a permutation of ``0..n-1``."""
    perm = np.asarray(perm)
    if perm.shape != (n,):
        return False
    seen = np.zeros(n, dtype=bool)
    ok = (perm >= 0) & (perm < n)
    if not ok.all():
        return False
    seen[perm] = True
    return bool(seen.all())


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Return ``iperm`` with ``iperm[perm[k]] == k`` ("old-to-new")."""
    perm = np.asarray(perm, dtype=np.int64)
    iperm = np.empty_like(perm)
    iperm[perm] = np.arange(len(perm), dtype=np.int64)
    return iperm


def permute_symmetric(a: CSCMatrix, perm: np.ndarray) -> CSCMatrix:
    """Compute ``P A Pᵗ`` for the new-to-old permutation ``perm``.

    Row ``i`` / column ``j`` of the result hold ``A[perm[i], perm[j]]``.
    """
    if not is_permutation(perm, a.n):
        raise ValueError("perm is not a valid permutation")
    iperm = invert_permutation(perm)
    cols = np.repeat(np.arange(a.n, dtype=np.int64), np.diff(a.colptr))
    new_rows = iperm[a.rowind]
    new_cols = iperm[cols]
    return CSCMatrix.from_coo(a.n, new_rows, new_cols, a.values,
                              sum_duplicates=False)


def permute_vector(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Apply P to a vector / block of vectors: ``(Px)[i] = x[perm[i]]``."""
    return np.asarray(x)[np.asarray(perm, dtype=np.int64)]


def unpermute_vector(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Apply Pᵗ: scatter permuted entries back to original positions."""
    out = np.empty_like(np.asarray(x))
    out[np.asarray(perm, dtype=np.int64)] = x
    return out
