"""Sparse-matrix substrate.

A small, self-contained CSC container (:class:`~repro.sparse.csc.CSCMatrix`)
plus symmetric permutation, pattern symmetrization, Matrix Market I/O and the
problem generators used by the evaluation suite.  ``scipy.sparse`` matrices
convert losslessly in both directions, but the solver pipeline only relies on
this module's structures.
"""

from repro.sparse.csc import CSCMatrix
from repro.sparse.permute import permute_symmetric, invert_permutation, is_permutation
from repro.sparse.generators import (
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    anisotropic_laplacian_3d,
    random_spd,
)
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.scaling import Scaling, equilibrate

__all__ = [
    "CSCMatrix",
    "permute_symmetric",
    "invert_permutation",
    "is_permutation",
    "laplacian_1d",
    "laplacian_2d",
    "laplacian_3d",
    "convection_diffusion_3d",
    "elasticity_3d",
    "heterogeneous_poisson_3d",
    "anisotropic_laplacian_3d",
    "random_spd",
    "read_matrix_market",
    "write_matrix_market",
    "Scaling",
    "equilibrate",
]
