"""Minimal Matrix Market (coordinate) reader / writer.

Supports ``matrix coordinate {real|complex} {general|symmetric}`` — the
format of the SuiteSparse collection the paper draws its matrices from, so a
user who *does* have Atmosmodj/Audi/... on disk can feed the genuine article
to the solver.  Complex files keep their complex128 values end-to-end.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Union

import numpy as np

from repro.sparse.csc import CSCMatrix


def _open(path: Union[str, Path], mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_matrix_market(path: Union[str, Path]) -> CSCMatrix:
    """Read a square real or complex matrix in MatrixMarket coordinate
    format."""
    with _open(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a MatrixMarket file")
        tokens = header.strip().split()
        if len(tokens) < 5:
            raise ValueError(f"malformed header: {header!r}")
        _, obj, fmt, field, sym = tokens[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise ValueError("only 'matrix coordinate' files are supported")
        field = field.lower()
        if field not in ("real", "integer", "pattern", "complex"):
            raise ValueError(f"unsupported field {field!r}")
        sym = sym.lower()
        if sym not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry {sym!r}")

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        m, n, nnz = (int(t) for t in line.split())
        if m != n:
            raise ValueError("only square matrices are supported")

        is_complex = field == "complex"
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz,
                        dtype=np.complex128 if is_complex else np.float64)
        pattern = field == "pattern"
        for i in range(nnz):
            parts = fh.readline().split()
            rows[i] = int(parts[0]) - 1
            cols[i] = int(parts[1]) - 1
            if pattern:
                vals[i] = 1.0
            elif is_complex:
                vals[i] = complex(float(parts[2]), float(parts[3]))
            else:
                vals[i] = float(parts[2])

    if sym == "symmetric":
        off = rows != cols
        mirror_rows, mirror_cols = cols[off], rows[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, vals[off]])
    return CSCMatrix.from_coo(n, rows, cols, vals)


def write_matrix_market(a: CSCMatrix, path: Union[str, Path],
                        symmetric: bool = False) -> None:
    """Write in ``coordinate {real|complex} {general|symmetric}`` format
    (1-based); the field follows the matrix dtype."""
    sym = "symmetric" if symmetric else "general"
    is_complex = a.values.dtype.kind == "c"
    field = "complex" if is_complex else "real"
    with _open(path, "w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} {sym}\n")
        cols = np.repeat(np.arange(a.n, dtype=np.int64), np.diff(a.colptr))
        if symmetric:
            keep = a.rowind >= cols
            rows, cs, vals = a.rowind[keep], cols[keep], a.values[keep]
        else:
            rows, cs, vals = a.rowind, cols, a.values
        fh.write(f"{a.n} {a.n} {len(rows)}\n")
        if is_complex:
            for r, c, v in zip(rows, cs, vals):
                fh.write(f"{r + 1} {c + 1} {v.real!r} {v.imag!r}\n")
        else:
            for r, c, v in zip(rows, cs, vals):
                fh.write(f"{r + 1} {c + 1} {float(v)!r}\n")
