"""Unified telemetry bus: labelled metrics, structured events, sinks.

The paper's whole argument is quantitative — memory peaks (Figures 6/7),
kernel-time breakdowns (Table 2), rank behaviour under LR2LR recompression
(§4.1) — and the studies that evaluate BLR solvers in production (JOREK
over MUMPS/PaStiX, rank-structured Cholesky) do it through longitudinal
memory/time/rank telemetry.  This module is the single funnel for all of
it:

* a **metric registry** — labelled :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` families, exposable as Prometheus text
  (:meth:`Telemetry.prometheus_text`) and as a JSON snapshot
  (:meth:`Telemetry.snapshot`);
* a **structured event bus** — :meth:`Telemetry.emit` fans each event out
  to pluggable sinks (:class:`RingBufferSink`, :class:`JSONLSink`,
  :class:`SummarySink`);
* bounded **time series** (:meth:`Telemetry.series`) for the
  rank-evolution samples, the memory high-water timeline and the
  refinement residual history that the per-run ``RunReport``
  (:mod:`repro.analysis.report`) aggregates.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Telemetry is *off by default*
   (``SolverConfig.telemetry is None``); every instrumentation site in the
   solver guards with a single ``is not None`` test, so a disabled run
   pays one attribute load per site and allocates nothing.
2. **Thread-safe when enabled.**  Metric children carry their own small
   locks (the threaded schedulers increment shared counters); series and
   sinks serialize through the bus lock.  The registry lock is taken only
   on family/child *creation*, not on updates.
3. **Self-contained artifacts.**  Snapshots are plain JSON-able dicts;
   JSONL sinks round-trip through :meth:`JSONLSink.read`; the Prometheus
   exposition round-trips through :func:`parse_prometheus_text`.

Instrumented layers (each funnels through one ``record_*`` helper so call
sites stay one guarded line):

========================  =============================================
layer                     helper / data
========================  =============================================
compression kernels       :meth:`Telemetry.record_compress` — per-block
                          ratio, chosen rank, kernel used
MM extend-add (LR2LR)     :meth:`Telemetry.record_recompress` — rank
                          before/after → ``rank_evolution`` series
``MemoryTracker``         :meth:`Telemetry.record_memory` — time-stamped
                          high-water timeline
threaded schedulers       task/busy counters, queue-depth series
refinement                :meth:`Telemetry.record_refinement` —
                          per-iteration residual history
========================  =============================================
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from pathlib import Path
from typing import (
    IO,
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "RingBufferSink",
    "SeriesBuffer",
    "Sink",
    "SummarySink",
    "Telemetry",
    "parse_prometheus_text",
]

#: label set key: sorted ``(name, value)`` pairs
LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram bucket upper bounds (generic positive quantities:
#: ratios, seconds, ranks all fit this two-decades-around-1 ladder)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 1000.0)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _prom_name(name: str) -> str:
    """Sanitize a metric name for Prometheus exposition."""
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: ``\\``, ``"`` and newline."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_escape_label_value(v)}"'
                     for k, v in key)
    return "{" + inner + "}"


# ----------------------------------------------------------------------
# metric children
# ----------------------------------------------------------------------

class Counter:
    """Monotonically increasing labelled counter."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Labelled gauge: a value that can move both ways; tracks its max."""

    __slots__ = ("_lock", "value", "max_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set_value(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            if self.value > self.max_value:
                self.max_value = self.value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            if self.value > self.max_value:
                self.max_value = self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    __slots__ = ("_lock", "buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self._lock = threading.Lock()
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +Inf last
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        with self._lock:
            idx = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    idx = i
                    break
            self.counts[idx] += 1
            self.total += float(value)
            self.count += 1

    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0


Metric = Union[Counter, Gauge, Histogram]


class _Family:
    """All children of one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.help = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        self.children: Dict[LabelKey, Metric] = {}


# ----------------------------------------------------------------------
# event sinks
# ----------------------------------------------------------------------

class Sink:
    """Event-sink interface: receives every event emitted on the bus."""

    def handle(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; the bus never calls this implicitly."""


class RingBufferSink(Sink):
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.dropped: int = 0

    def handle(self, event: Dict[str, Any]) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)


class JSONLSink(Sink):
    """Streams one JSON object per line to a file (or file-like object).

    ``max_bytes`` bounds the file with *keep-last* semantics (like the
    race sanitizer's bounded event log): when appending the next line
    would exceed the budget, the file is rewritten in place with only
    the most recent lines — trimmed to half the budget, so rotations
    amortize — and ``rotations`` / ``dropped`` count what happened.
    The default (``None``) is unlimited, preserving the historical
    behavior; a non-seekable target silently disables the bound.
    """

    def __init__(self, target: Union[str, Path, IO[str]],
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024 (or None)")
        if isinstance(target, (str, Path)):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.max_bytes = max_bytes
        self.written: int = 0
        #: completed in-place rewrites / lines discarded by them
        self.rotations: int = 0
        self.dropped: int = 0
        self._nbytes = 0
        self._nlines = 0
        self._tail: Deque[str] = deque()
        self._tail_bytes = 0

    def handle(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True) + "\n"
        self.written += 1
        if self.max_bytes is not None:
            self._tail.append(line)
            self._tail_bytes += len(line)
            budget = self.max_bytes // 2
            while self._tail_bytes > budget and len(self._tail) > 1:
                self._tail_bytes -= len(self._tail.popleft())
            if self._nbytes + len(line) > self.max_bytes and self._nlines:
                if self._rotate():
                    return
        self._fh.write(line)
        self._nbytes += len(line)
        self._nlines += 1

    def _rotate(self) -> bool:
        """Rewrite the file with only the tail buffer (keep-last)."""
        try:
            seekable = self._fh.seekable()
        except (AttributeError, ValueError):  # pragma: no cover
            seekable = False
        if not seekable:
            # a pipe/socket target cannot truncate: drop the bound and
            # keep streaming rather than lose events
            self.max_bytes = None
            self._tail.clear()
            self._tail_bytes = 0
            return False
        self._fh.seek(0)
        self._fh.truncate()
        for line in self._tail:
            self._fh.write(line)
        # +1: the event that triggered the rotation is already in _tail
        self.dropped += self._nlines + 1 - len(self._tail)
        self._nbytes = self._tail_bytes
        self._nlines = len(self._tail)
        self.rotations += 1
        return True

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    @staticmethod
    def read(path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Parse a JSONL event stream back into a list of event dicts."""
        out: List[Dict[str, Any]] = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                out.append(json.loads(line))
        return out


class SummarySink(Sink):
    """Aggregates event counts (and time extent) per event kind."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None

    def handle(self, event: Dict[str, Any]) -> None:
        kind = str(event.get("kind", "?"))
        self.counts[kind] = self.counts.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            if self.first_t is None or t < self.first_t:
                self.first_t = float(t)
            if self.last_t is None or t > self.last_t:
                self.last_t = float(t)

    def summary(self) -> Dict[str, Any]:
        return {
            "counts": dict(self.counts),
            "total": sum(self.counts.values()),
            "first_t": self.first_t,
            "last_t": self.last_t,
        }


# ----------------------------------------------------------------------
# bounded time series
# ----------------------------------------------------------------------

class SeriesBuffer:
    """Bounded series of time-stamped points with stride decimation.

    When the buffer fills, every other retained point is dropped and the
    accept stride doubles, so a series of arbitrary length keeps at most
    ``maxlen`` roughly uniformly spaced samples — exactly what a memory
    high-water timeline or a rank-evolution record needs.
    """

    def __init__(self, name: str, maxlen: int = 4096) -> None:
        if maxlen < 8:
            raise ValueError("maxlen must be >= 8")
        self.name = name
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._points: List[Dict[str, Any]] = []
        self._stride = 1
        self._seen = 0

    def append(self, t: float, **fields: Any) -> None:
        with self._lock:
            self._seen += 1
            if (self._seen - 1) % self._stride:
                return
            if len(self._points) >= self.maxlen:
                self._points = self._points[::2]
                self._stride *= 2
                if (self._seen - 1) % self._stride:
                    return
            point = {"t": float(t)}
            point.update(fields)
            self._points.append(point)

    def points(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._points)

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    @property
    def seen(self) -> int:
        """How many points were offered (recorded + decimated away)."""
        with self._lock:
            return self._seen


# ----------------------------------------------------------------------
# the bus
# ----------------------------------------------------------------------

class Telemetry:
    """Metric registry + structured event bus + bounded series.

    One instance accompanies one solver run (attach it via
    ``SolverConfig(telemetry=...)``).  All methods are thread-safe.

    >>> tele = Telemetry()
    >>> tele.counter("blocks", kernel="rrqr").inc()
    >>> tele.gauge("queue_depth").set_value(3)
    >>> tele.emit("compress", rank=5)
    >>> tele.snapshot()["counters"]["blocks"][0]["value"]
    1.0
    """

    def __init__(self, sinks: Iterable[Sink] = (),
                 ring_capacity: Optional[int] = 4096) -> None:
        self._origin = time.perf_counter()
        self._lock: Any = threading.Lock()       # registry + series creation
        self._bus_lock: Any = threading.Lock()   # event emission
        self._sanitizer: Any = None
        self._families: Dict[str, _Family] = {}
        self._series: Dict[str, SeriesBuffer] = {}
        self._sinks: List[Sink] = list(sinks)
        self.events_emitted: int = 0
        #: always-on ring buffer so a bare ``Telemetry()`` keeps evidence
        self.ring: Optional[RingBufferSink] = None
        if ring_capacity is not None:
            self.ring = RingBufferSink(ring_capacity)
            self._sinks.append(self.ring)

    # -- clock ---------------------------------------------------------
    def clock(self) -> float:
        """Seconds since this bus was created (monotonic)."""
        return time.perf_counter() - self._origin

    def attach_sanitizer(self, san: Any) -> None:
        """Track the registry/bus locks and family-map mutations in the
        race sanitizer (wired by the solver under ``sanitize_enabled``)."""
        self._sanitizer = san
        self._lock = san.wrap_lock(self._lock, "telemetry._lock")
        self._bus_lock = san.wrap_lock(self._bus_lock, "telemetry._bus_lock")

    # -- metric registry -----------------------------------------------
    def _family(self, name: str, kind: str,
                buckets: Optional[Sequence[float]] = None) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            with self._lock:
                if self._sanitizer is not None:
                    self._sanitizer.note("telemetry.families", "write",
                                         site="telemetry.py:_family")
                fam = self._families.get(name)
                if fam is None:
                    fam = _Family(name, kind, buckets=buckets)
                    self._families[name] = fam
        if fam.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {fam.kind}, not a {kind}")
        return fam

    def counter(self, name: str, **labels: str) -> Counter:
        """The labelled counter child (created on first use)."""
        fam = self._family(name, "counter")
        key = _label_key(labels)
        child = fam.children.get(key)
        if child is None:
            with self._lock:
                child = fam.children.setdefault(key, Counter())
        assert isinstance(child, Counter)
        return child

    def gauge(self, name: str, **labels: str) -> Gauge:
        fam = self._family(name, "gauge")
        key = _label_key(labels)
        child = fam.children.get(key)
        if child is None:
            with self._lock:
                child = fam.children.setdefault(key, Gauge())
        assert isinstance(child, Gauge)
        return child

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        fam = self._family(name, "histogram", buckets=buckets)
        key = _label_key(labels)
        child = fam.children.get(key)
        if child is None:
            with self._lock:
                child = fam.children.setdefault(
                    key, Histogram(fam.buckets or DEFAULT_BUCKETS))
        assert isinstance(child, Histogram)
        return child

    # -- series --------------------------------------------------------
    def series(self, name: str, maxlen: int = 4096) -> SeriesBuffer:
        """The named bounded series (created on first use)."""
        s = self._series.get(name)
        if s is None:
            with self._lock:
                s = self._series.get(name)
                if s is None:
                    s = SeriesBuffer(name, maxlen=maxlen)
                    self._series[name] = s
        return s

    # -- event bus -----------------------------------------------------
    def add_sink(self, sink: Sink) -> Sink:
        with self._bus_lock:
            self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        with self._bus_lock:
            self._sinks = [s for s in self._sinks if s is not sink]

    def emit(self, kind: str, **fields: Any) -> None:
        """Publish one structured event to every sink."""
        event: Dict[str, Any] = {"kind": kind, "t": self.clock()}
        event.update(fields)
        with self._bus_lock:
            if self._sanitizer is not None:
                self._sanitizer.note("telemetry.events", "write",
                                     site="telemetry.py:emit")
            self.events_emitted += 1
            for sink in self._sinks:
                sink.handle(event)

    def close(self) -> None:
        """Close every sink (flushes JSONL streams)."""
        with self._bus_lock:
            for sink in self._sinks:
                sink.close()

    # -- domain helpers (one guarded call per instrumentation site) -----
    def record_compress(self, m: int, n: int, rank: int, kernel: str,
                        category: str = "compress") -> None:
        """One compression attempt: ``rank < 0`` means 'stored dense'."""
        outcome = "lowrank" if rank >= 0 else "dense"
        self.counter("compress_blocks", kernel=kernel,
                     outcome=outcome, category=category).inc()
        if rank >= 0:
            ratio = ((m + n) * rank / (m * n)) if m and n else 1.0
            self.histogram("compress_ratio").observe(ratio)
            self.histogram("compress_rank").observe(float(rank))
            self.series("rank_evolution").append(
                self.clock(), site="compress", m=m, n=n,
                rank_before=-1, rank_after=rank)
            self.emit("compress", m=m, n=n, rank=rank, kernel=kernel,
                      ratio=ratio, category=category)
        else:
            self.emit("compress", m=m, n=n, rank=-1, kernel=kernel,
                      ratio=1.0, category=category)

    def record_recompress(self, m: int, n: int, rank_before: int,
                          rank_after: int) -> None:
        """One LR2LR extend-add recompression (``rank_after < 0``:
        the rank cap was exceeded and the block densified)."""
        outcome = "lowrank" if rank_after >= 0 else "densified"
        self.counter("recompress_blocks", outcome=outcome).inc()
        if rank_after >= 0:
            self.histogram("recompress_rank").observe(float(rank_after))
            grow = rank_after - rank_before
            if grow > 0:
                self.counter("recompress_rank_growth").inc(float(grow))
        self.series("rank_evolution").append(
            self.clock(), site="recompress", m=m, n=n,
            rank_before=rank_before, rank_after=rank_after)
        self.emit("recompress", m=m, n=n, rank_before=rank_before,
                  rank_after=rank_after)

    def record_variant_decision(self, cblk: int, order: str, reason: str,
                                ratio: Optional[float] = None) -> None:
        """One adaptive per-supernode loop-order decision.

        Publishes a labelled ``variant_decisions`` counter (order +
        reason) plus a structured ``variant_decision`` event carrying the
        probe/history ratio the decision was based on."""
        self.counter("variant_decisions", order=order, reason=reason).inc()
        self.emit("variant_decision", cblk=cblk, order=order,
                  reason=reason,
                  ratio=None if ratio is None else float(ratio))

    def record_memory(self, current: int, peak: int) -> None:
        """A new tracked-memory high water mark."""
        self.gauge("memory_peak_bytes").set_value(float(peak))
        self.series("memory_highwater").append(
            self.clock(), current=int(current), peak=int(peak))

    def record_refinement(self, method: str, history: Sequence[float],
                          converged: bool) -> None:
        """A refinement run's full per-iteration residual history."""
        series = self.series("refinement_residual")
        t = self.clock()
        for i, r in enumerate(history):
            series.append(t, iteration=i, residual=float(r))
        self.counter("refinement_runs", method=method,
                     converged=str(bool(converged)).lower()).inc()
        self.counter("refinement_iterations", method=method).inc(
            float(max(len(history) - 1, 0)))
        self.emit("refinement", method=method, converged=bool(converged),
                  iterations=max(len(history) - 1, 0),
                  residual_history=[float(r) for r in history])

    def record_backend_kernels(self, backend: str,
                               calls: Mapping[str, int],
                               phase: str = "factorize") -> None:
        """Per-backend kernel call counts of one phase (factorize/solve).

        Publishes one labelled ``backend_kernel_calls`` counter per op
        (labels: backend name, op, phase) plus a structured
        ``backend_kernels`` event carrying the whole delta.
        """
        total = 0
        for op, n in calls.items():
            if n:
                self.counter("backend_kernel_calls", backend=backend,
                             op=op, phase=phase).inc(float(n))
                total += int(n)
        self.emit("backend_kernels", backend=backend, phase=phase,
                  total=total, calls={op: int(n) for op, n in calls.items()})

    def record_recovery(self, action: str, site: str = "",
                        cblk: Optional[int] = None,
                        **detail: Any) -> None:
        """One recovery-layer action (breakdown, retry, fallback, ...).

        Publishes a per-action ``recovery_<action>`` counter (the names
        surfaced in RunReports and CI chaos artifacts), a labelled
        aggregate ``recovery_actions`` counter, and one structured
        ``recovery`` event carrying the full detail.
        """
        self.counter(f"recovery_{action}").inc()
        self.counter("recovery_actions", action=action,
                     site=site or "-").inc()
        fields: Dict[str, Any] = {"action": action, "site": site}
        if cblk is not None:
            fields["cblk"] = int(cblk)
        fields.update(detail)
        self.emit("recovery", **fields)

    def record_pivoting(self, cblk: int, swaps: int = 0,
                        two_by_two: int = 0, perturbations: int = 0,
                        growth: float = 0.0) -> None:
        """Pivot health of one threshold-pivoted diagonal block.

        Publishes the per-run ``pivot_swaps`` / ``pivots_2x2`` /
        ``pivot_perturbations`` counters, a ``pivot_growth`` gauge whose
        max-tracking keeps the worst block growth factor of the run, and
        one structured ``pivoting`` event per block that actually pivoted
        (identity blocks stay silent to keep the event stream small).
        """
        if swaps:
            self.counter("pivot_swaps").inc(int(swaps))
        if two_by_two:
            self.counter("pivots_2x2").inc(int(two_by_two))
        if perturbations:
            self.counter("pivot_perturbations").inc(int(perturbations))
        self.gauge("pivot_growth").set_value(float(growth))
        if swaps or two_by_two or perturbations:
            self.emit("pivoting", cblk=int(cblk), swaps=int(swaps),
                      two_by_two=int(two_by_two),
                      perturbations=int(perturbations),
                      growth=float(growth))

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of all metrics and series."""
        counters: Dict[str, List[Dict[str, Any]]] = {}
        gauges: Dict[str, List[Dict[str, Any]]] = {}
        histograms: Dict[str, List[Dict[str, Any]]] = {}
        with self._lock:
            families = list(self._families.values())
            series = dict(self._series)
        for fam in families:
            for key, child in sorted(fam.children.items()):
                labels = dict(key)
                if isinstance(child, Counter):
                    counters.setdefault(fam.name, []).append(
                        {"labels": labels, "value": child.value})
                elif isinstance(child, Gauge):
                    gauges.setdefault(fam.name, []).append(
                        {"labels": labels, "value": child.value,
                         "max": child.max_value})
                else:
                    histograms.setdefault(fam.name, []).append({
                        "labels": labels,
                        "buckets": list(child.buckets),
                        "counts": list(child.counts),
                        "sum": child.total,
                        "count": child.count,
                        "mean": child.mean(),
                    })
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "series": {name: s.points() for name, s in series.items()},
            "events_emitted": self.events_emitted,
        }

    def prometheus_text(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.values(),
                              key=lambda f: f.name)
        for fam in families:
            pname = _prom_name(fam.name)
            if fam.kind == "counter":
                pname += "_total"
            lines.append(f"# TYPE {pname} {fam.kind}")
            for key, child in sorted(fam.children.items()):
                lab = _prom_labels(key)
                if isinstance(child, Counter):
                    lines.append(f"{pname}{lab} {child.value!r}")
                elif isinstance(child, Gauge):
                    lines.append(f"{pname}{lab} {child.value!r}")
                elif isinstance(child, Histogram):
                    cum = 0
                    for bound, cnt in zip(child.buckets, child.counts):
                        cum += cnt
                        blab = _merge_label(key, "le", _fmt_bound(bound))
                        lines.append(f"{pname}_bucket{blab} {cum}")
                    cum += child.counts[-1]
                    blab = _merge_label(key, "le", "+Inf")
                    lines.append(f"{pname}_bucket{blab} {cum}")
                    lines.append(f"{pname}_sum{lab} {child.total!r}")
                    lines.append(f"{pname}_count{lab} {child.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_bound(bound: float) -> str:
    return repr(bound) if bound != int(bound) else str(int(bound))


def _merge_label(key: LabelKey, name: str, value: str) -> str:
    return _prom_labels(tuple(sorted(key + ((name, value),))))


# ----------------------------------------------------------------------
# Prometheus text parsing (round-trip verification / scrape testing)
# ----------------------------------------------------------------------

# quoted label values may contain escaped quotes/backslashes (and even a
# literal "}"), so both regexes are escape-sequence aware rather than
# stopping at the first '"' or '}'
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>\S+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` (``\\\\``, ``\\"``, ``\\n``)."""
    out: List[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append(_UNESCAPES.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Parse Prometheus text exposition into ``{"types": ..., "samples":
    ...}``; samples map ``(name, label_key)`` to float values.

    Only the subset :meth:`Telemetry.prometheus_text` produces is
    supported — enough for round-trip tests and scrape verification.
    Escaped label values round-trip (backslash, quote, newline), and
    ``NaN`` / ``+Inf`` / ``-Inf`` sample values parse to the matching
    floats.
    """
    types: Dict[str, str] = {}
    samples: Dict[Tuple[str, LabelKey], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = tuple(sorted(
            (name, _unescape_label_value(value))
            for name, value in _LABEL_RE.findall(m.group("labels") or "")))
        samples[(m.group("name"), labels)] = float(m.group("value"))
    return {"types": types, "samples": samples}
