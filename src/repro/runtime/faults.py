"""Deterministic fault injection for the factorization runtime.

Scheduler failure paths (worker exceptions, NaN corruption, stalls) are
impossible to exercise from the public API — the numerical kernels simply do
not fail on well-posed test matrices.  A :class:`FaultInjector` attached to
a :class:`~repro.core.factor.NumericFactor` (``fac.faults``) makes them
testable: the drivers call :meth:`FaultInjector.on_factor` /
:meth:`FaultInjector.on_update` at the top of every task — and, since the
recovery layer landed, :meth:`on_compress` at every compression point,
:meth:`on_trisolve` at the top of every triangular solve, and
:meth:`on_serialize` before every factor/checkpoint archive write — and the
injector fires whatever faults were registered for that site.

All choices are deterministic: faults are registered for explicit column
blocks, and :meth:`pick_block` derives "random" blocks from the injector's
seeded generator so a test can reproduce a failure exactly.

Fault actions (applied in this order when several are registered):

* ``delay`` — sleep for a fixed duration (artificial kernel latency, for
  schedule perturbation and overhead studies);
* ``stall`` — block on a :class:`threading.Event` until the test releases
  it (synthetic deadlock, exercises the scheduler watchdog);
* ``nan`` — overwrite one entry of the column block's panel (or diagonal
  block) with NaN (silent-corruption drills);
* ``raise`` — raise :class:`FaultError` (or a caller-supplied exception).

**Transient faults** (``transient=True`` on any registration) fire exactly
once and then heal — the deterministic model of a flaky worker, a cosmic
ray, or a kernel hiccup.  They are what the recovery layer's retry paths
are tested against: the first attempt dies, the retry finds the site
healthy.  Spent-marking happens under the injector's lock, so a transient
fault fires once even when several workers race through the site.

Every fault that fires is appended to :attr:`FaultInjector.fired` so tests
can assert on what actually happened.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.core.factor import NumericFactor

import numpy as np

__all__ = ["FaultError", "FaultInjector"]


class FaultError(RuntimeError):
    """An injected (deliberate, test-only) failure."""


class FaultInjector:
    """Seedable registry of faults, fired by site.

    Sites: ``factor`` / ``update`` (per column block), ``compress`` (per
    column block, at the JIT/minimal-memory compression points),
    ``trisolve`` (once per :func:`~repro.core.trisolve.solve_factored`
    call) and ``serialize`` (before every archive write).

    Thread-safety: registration happens before the run; firing mutates
    only :attr:`fired` and transient spent-flags (both lock-guarded) and
    reads otherwise-immutable registries.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.rng = np.random.default_rng(seed)
        #: faults fired so far: (site, cblk, target, action) tuples
        #: (siteless hooks — trisolve/serialize — use cblk = -1)
        self.fired: List[Tuple[str, int, Optional[int], str]] = []
        self._lock = threading.Lock()
        self._factor: Dict[int, List[dict]] = {}
        self._update: Dict[Tuple[int, Optional[int]], List[dict]] = {}
        self._compress: Dict[int, List[dict]] = {}
        self._trisolve: List[dict] = []
        self._serialize: List[dict] = []
        self._latency: Dict[str, float] = {}
        #: seeded-race mode (sanitizer regression tests): every factor
        #: task bumps this counter WITHOUT a lock and reports the access
        #: to ``fac.sanitizer`` — a deliberately unguarded shared mutation
        #: the Eraser tracker must flag
        self.race_counter_enabled = False
        self.racy_count = 0

    def enable_race_counter(self) -> None:
        """Arm the deliberately-unguarded counter (sanitizer tests)."""
        self.race_counter_enabled = True

    # -- deterministic choices ----------------------------------------
    def pick_block(self, ncblk: int, low: int = 0) -> int:
        """A reproducible 'random' column block in ``[low, ncblk)``."""
        if ncblk <= low:
            raise ValueError("empty block range")
        return int(self.rng.integers(low, ncblk))

    # -- registration --------------------------------------------------
    def fail_factor(self, k: int, exc: Optional[BaseException] = None,
                    delay: float = 0.0, transient: bool = False) -> None:
        """Raise when column block ``k`` is about to be factored.

        ``delay`` sleeps first — useful to guarantee that several workers
        are mid-task when the failures fire (multi-error aggregation
        tests).  ``transient=True`` fires once, then heals."""
        self._factor.setdefault(k, []).append(
            {"action": "raise", "exc": exc, "delay": delay,
             "transient": transient, "spent": False})

    def fail_update(self, k: int, target: Optional[int] = None,
                    exc: Optional[BaseException] = None,
                    transient: bool = False) -> None:
        """Raise when updates from ``k`` (optionally only those aimed at
        ``target``) are about to be applied."""
        self._update.setdefault((k, target), []).append(
            {"action": "raise", "exc": exc, "delay": 0.0,
             "transient": transient, "spent": False})

    def nan_in_panel(self, k: int, transient: bool = False) -> None:
        """Poison one entry of ``k``'s off-diagonal panel (falling back to
        the diagonal block when ``k`` has no off-diagonal rows) just before
        ``k`` is factored."""
        self._factor.setdefault(k, []).append(
            {"action": "nan", "transient": transient, "spent": False})

    def stall_factor(self, k: int,
                     event: Optional[threading.Event] = None
                     ) -> threading.Event:
        """Make the worker factoring ``k`` block until ``event`` is set.

        Returns the event so the test can release the stalled worker after
        asserting that the watchdog fired."""
        event = event or threading.Event()
        self._factor.setdefault(k, []).append(
            {"action": "stall", "event": event,
             "transient": False, "spent": False})
        return event

    def fail_compress(self, k: int, exc: Optional[BaseException] = None,
                      transient: bool = False) -> None:
        """Raise when column block ``k``'s blocks are about to be
        compressed (the JIT compression point, or minimal-memory assembly
        compression — whichever the strategy reaches)."""
        self._compress.setdefault(k, []).append(
            {"action": "raise", "exc": exc, "delay": 0.0,
             "transient": transient, "spent": False})

    def fail_trisolve(self, exc: Optional[BaseException] = None,
                      transient: bool = False) -> None:
        """Raise at the top of the next triangular solve
        (:func:`~repro.core.trisolve.solve_factored`) — once per *solve
        call*, not per block."""
        self._trisolve.append(
            {"action": "raise", "exc": exc, "delay": 0.0,
             "transient": transient, "spent": False})

    def fail_serialize(self, exc: Optional[BaseException] = None,
                       transient: bool = False) -> None:
        """Raise when a factor/checkpoint archive is about to be written
        (exercises checkpoint-write failure handling)."""
        self._serialize.append(
            {"action": "raise", "exc": exc, "delay": 0.0,
             "transient": transient, "spent": False})

    def add_latency(self, site: str, seconds: float) -> None:
        """Sleep ``seconds`` at every task of ``site`` ('factor'/'update')."""
        if site not in ("factor", "update"):
            raise ValueError("site must be 'factor' or 'update'")
        self._latency[site] = self._latency.get(site, 0.0) + float(seconds)

    # -- firing (called from the factorization drivers) ----------------
    def _mark(self, site: str, k: int, target: Optional[int],
              action: str) -> None:
        with self._lock:
            self.fired.append((site, k, target, action))

    def _take(self, fault: dict) -> bool:
        """Claim a fault for firing; ``False`` when a transient fault has
        already fired (healed).  Spent-marking is atomic under the lock so
        racing workers cannot both fire the same transient fault."""
        if not fault.get("transient"):
            return True
        with self._lock:
            if fault["spent"]:
                return False
            fault["spent"] = True
            return True

    def on_factor(self, fac: "NumericFactor", k: int) -> None:
        if self.race_counter_enabled:
            san = getattr(fac, "sanitizer", None)
            if san is not None:
                san.note("faults.racy_count", "write",
                         site="faults.py:on_factor")
            # deliberately unguarded read-modify-write across workers
            self.racy_count += 1  # solverlint: ignore[shared-mutation-lockset] -- seeded race for the sanitizer regression tests, armed only by enable_race_counter()
        lat = self._latency.get("factor", 0.0)
        if lat:
            self._mark("factor", k, None, "delay")
            time.sleep(lat)
        for fault in self._factor.get(k, ()):
            action = fault["action"]
            if not self._take(fault):
                continue
            if action == "stall":
                self._mark("factor", k, None, "stall")
                fault["event"].wait()
            elif action == "nan":
                self._mark("factor", k, None, "nan")
                nc = fac.cblks[k]
                if nc.lpanel is not None and nc.offrows:
                    nc.lpanel[0, 0] = np.nan
                else:
                    nc.diag[0, 0] = np.nan
            elif action == "raise":
                if fault["delay"]:
                    time.sleep(fault["delay"])
                self._mark("factor", k, None, "raise")
                raise (fault["exc"] or
                       FaultError(f"injected failure factoring "
                                  f"column block {k}"))

    def on_update(self, fac: "NumericFactor", k: int,
                  target: Optional[int]) -> None:
        lat = self._latency.get("update", 0.0)
        if lat:
            self._mark("update", k, target, "delay")
            time.sleep(lat)
        faults = list(self._update.get((k, target), ()))
        if target is not None:
            faults += self._update.get((k, None), ())
        for fault in faults:
            if not self._take(fault):
                continue
            if fault["delay"]:
                time.sleep(fault["delay"])
            self._mark("update", k, target, "raise")
            raise (fault["exc"] or
                   FaultError(f"injected failure applying updates from "
                              f"column block {k}"
                              + (f" to {target}" if target is not None
                                 else "")))

    def on_compress(self, fac: "NumericFactor", k: int) -> None:
        """Fired just before column block ``k``'s compression."""
        for fault in self._compress.get(k, ()):
            if not self._take(fault):
                continue
            self._mark("compress", k, None, "raise")
            raise (fault["exc"] or
                   FaultError(f"injected compression failure on "
                              f"column block {k}"))

    def on_trisolve(self, fac: "NumericFactor") -> None:
        """Fired at the top of every :func:`solve_factored` call."""
        for fault in self._trisolve:
            if not self._take(fault):
                continue
            self._mark("trisolve", -1, None, "raise")
            raise (fault["exc"] or
                   FaultError("injected failure in the triangular solve"))

    def on_serialize(self, path: str) -> None:
        """Fired just before a factor/checkpoint archive is written."""
        for fault in self._serialize:
            if not self._take(fault):
                continue
            self._mark("serialize", -1, None, "raise")
            raise (fault["exc"] or
                   FaultError(f"injected failure writing archive {path}"))
