"""Runtime task tracing for the factorization engines.

The paper's parallel-efficiency claims (Fig. 5, Table 2) rest on the
supernodal task DAG executing well under concurrency; this module records
*which thread ran which task when* so those claims become observable instead
of assumed.  A :class:`TaskTracer` is attached to a
:class:`~repro.core.factor.NumericFactor` (``fac.tracer``) and the
factorization drivers report one event per task:

* ``kind="factor"`` — :func:`~repro.core.factorization.factor_column_block`
  on column block ``cblk`` (exactly one per column block per run);
* ``kind="update"`` — :func:`~repro.core.factorization.apply_updates_from`
  with source ``cblk`` and target ``target`` (``-1`` when a right-looking
  sweep pushes to every target at once).

Design constraints, in order:

1. **Zero cost when absent.**  All call sites guard with
   ``if fac.tracer is not None`` — a disabled run pays one attribute load
   and a ``None`` test per task, nothing else.
2. **No cross-thread contention when present.**  Events append to
   per-thread buffers (``threading.local``); the single shared lock is
   taken once per thread (registration), not once per event.
3. **Self-contained artifacts.**  :meth:`TaskTracer.to_json` round-trips
   through :meth:`TaskTracer.from_json`; the schema is documented in
   ``docs/observability.md``.

Timestamps are ``time.perf_counter`` offsets from the tracer's creation
(monotonic, seconds).  Thread ids are dense indices in registration order,
so a 4-thread run always shows threads 0–3 regardless of interpreter-level
thread idents.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["TraceEvent", "TaskTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced task: ``[t0, t1]`` on ``thread``, acting on ``cblk``.

    ``target`` is the update's destination column block (``-1`` for factor
    tasks and for right-looking sweeps that push to all targets); ``tag``
    names the kernel flavour (factotype for factor tasks, the storage mode
    for updates).
    """

    kind: str
    cblk: int
    target: int
    tag: str
    thread: int
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class TaskTracer:
    """Low-overhead, thread-safe recorder of factorization task events."""

    def __init__(self) -> None:
        #: free-form run metadata (engine name, thread count, matrix id…)
        self.meta: Dict[str, object] = {}
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._buffers: Dict[int, List[TraceEvent]] = {}
        self._local = threading.local()

    # -- recording -----------------------------------------------------
    def clock(self) -> float:
        """Seconds since tracer creation (monotonic)."""
        return time.perf_counter() - self._origin

    def _thread_slot(self) -> Tuple[int, List[TraceEvent]]:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            with self._lock:
                tid = len(self._buffers)
                buf = self._buffers[tid] = []
            self._local.buf = buf
            self._local.tid = tid
        return self._local.tid, buf

    def record(self, kind: str, cblk: int, t0: float,
               target: int = -1, tag: str = "") -> None:
        """Record a task that started at ``t0`` (from :meth:`clock`) and
        ends now.  Called from worker threads; lock-free after the first
        event of each thread."""
        tid, buf = self._thread_slot()
        buf.append(TraceEvent(kind, cblk, target, tag, tid, t0, self.clock()))

    # -- access --------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """All events, merged across threads, sorted by start time."""
        with self._lock:
            merged = [ev for buf in self._buffers.values() for ev in buf]
        merged.sort(key=lambda ev: (ev.t0, ev.thread))
        return merged

    def nthreads(self) -> int:
        with self._lock:
            return len(self._buffers)

    def task_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for ev in self.events():
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    # -- summaries -----------------------------------------------------
    def span(self) -> float:
        """Wall-clock from first task start to last task end."""
        evs = self.events()
        if not evs:
            return 0.0
        return max(ev.t1 for ev in evs) - min(ev.t0 for ev in evs)

    def thread_busy(self) -> Dict[int, float]:
        """Busy seconds (sum of task durations) per thread."""
        busy: Dict[int, float] = {}
        for ev in self.events():
            busy[ev.thread] = busy.get(ev.thread, 0.0) + ev.duration
        return busy

    def utilization(self) -> Dict[int, float]:
        """Busy fraction of the trace span, per thread."""
        span = self.span()
        if span <= 0.0:
            return {t: 0.0 for t in self.thread_busy()}
        return {t: b / span for t, b in self.thread_busy().items()}

    def critical_path(self) -> float:
        """Length (seconds) of the longest dependency chain in the trace.

        Edges follow the block elimination DAG as the engines execute it:
        an update ``c → k`` runs after ``factor(c)``, and ``factor(k)``
        runs after every update targeting ``k``.  Right-looking sequential
        traces (``target == -1``) execute as a single chain, so the
        critical path is simply the total busy time.
        """
        evs = self.events()
        if not evs:
            return 0.0
        if any(ev.kind == "update" and ev.target < 0 for ev in evs):
            return sum(ev.duration for ev in evs)
        factor_dur: Dict[int, float] = {}
        updates_into: Dict[int, List[TraceEvent]] = {}
        for ev in evs:
            if ev.kind == "factor":
                factor_dur[ev.cblk] = factor_dur.get(ev.cblk, 0.0) \
                    + ev.duration
            elif ev.kind == "update":
                updates_into.setdefault(ev.target, []).append(ev)
        cp: Dict[int, float] = {}
        for k in sorted(factor_dur):  # contributors precede their targets
            ups = updates_into.get(k, [])
            base = max((cp.get(ev.cblk, 0.0) for ev in ups), default=0.0)
            cp[k] = base + sum(ev.duration for ev in ups) + factor_dur[k]
        return max(cp.values(), default=0.0)

    def summary(self) -> Dict[str, object]:
        """Aggregate view: thread counts, utilization, critical path."""
        evs = self.events()
        span = self.span()
        busy = self.thread_busy()
        total_busy = sum(busy.values())
        nthreads = max(len(busy), 1)
        cp = self.critical_path()
        return {
            "n_events": len(evs),
            "task_counts": self.task_counts(),
            "n_threads": len(busy),
            "span": span,
            "thread_busy": busy,
            "utilization": self.utilization(),
            "mean_utilization": (total_busy / (nthreads * span)
                                 if span > 0 else 0.0),
            "critical_path": cp,
            "parallelism": (total_busy / cp) if cp > 0 else 0.0,
            "meta": dict(self.meta),
        }

    # -- invariants ----------------------------------------------------
    def check_invariants(self, ncblk: Optional[int] = None) -> List[str]:
        """Return a list of violated trace invariants (empty = healthy).

        Checked: every event has ``t0 <= t1``; events on one thread never
        overlap; every column block is factored exactly once; with
        ``ncblk`` given, the factor-task count equals it.
        """
        problems: List[str] = []
        evs = self.events()
        per_thread: Dict[int, List[TraceEvent]] = {}
        factored: Dict[int, int] = {}
        for ev in evs:
            if ev.t1 < ev.t0:
                problems.append(f"event {ev} ends before it starts")
            per_thread.setdefault(ev.thread, []).append(ev)
            if ev.kind == "factor":
                factored[ev.cblk] = factored.get(ev.cblk, 0) + 1
        for tid, tevs in per_thread.items():
            tevs = sorted(tevs, key=lambda ev: ev.t0)
            for a, b in zip(tevs, tevs[1:]):
                if b.t0 < a.t1 - 1e-9:
                    problems.append(
                        f"thread {tid}: {a.kind}({a.cblk}) overlaps "
                        f"{b.kind}({b.cblk})")
        for k, n in factored.items():
            if n != 1:
                problems.append(f"column block {k} factored {n} times")
        if ncblk is not None:
            if sorted(factored) != list(range(ncblk)):
                problems.append(
                    f"factored {len(factored)}/{ncblk} column blocks")
        return problems

    # -- persistence ---------------------------------------------------
    def to_json(self, path: Optional[Union[str, Path]] = None) -> dict:
        """Serialize to a JSON-compatible dict; write it when ``path``."""
        doc = {
            "version": 1,
            "meta": dict(self.meta),
            "events": [asdict(ev) for ev in self.events()],
        }
        if path is not None:
            Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True))
        return doc

    @classmethod
    def from_json(cls, source: Union[dict, str, Path]) -> "TaskTracer":
        """Rebuild a tracer from :meth:`to_json` output (dict or file)."""
        if not isinstance(source, dict):
            source = json.loads(Path(source).read_text())
        tracer = cls()
        tracer.meta.update(source.get("meta", {}))
        for raw in source.get("events", []):
            ev = TraceEvent(**raw)
            tracer._buffers.setdefault(ev.thread, []).append(ev)
        return tracer
