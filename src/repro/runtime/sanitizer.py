"""Eraser-style runtime race sanitizer (the dynamic half of the analysis).

The static lockset engine (``tools/solverlint/dataflow.py``) proves what it
can see in the source; this module watches what actually happens.  A
:class:`RaceSanitizer` applies the classic Eraser lockset algorithm
[Savage et al., SOSP '97] to the solver's *named shared structures* — the
scheduler's pending/processed counters, the FUC pull-sets, per-column-block
factor storage, :class:`~repro.runtime.recovery.RecoveryState` and the
telemetry registry:

* every instrumented access reports ``(thread, variable, kind, lockset)``
  where the lockset is the set of :meth:`wrap_lock`-tracked locks the
  calling thread currently holds;
* per variable the monitor runs Virgin → Exclusive(owner) → Shared /
  Shared-Modified, intersecting the candidate lockset ``C(v)`` on every
  access once a second thread appears;
* a write leaving ``C(v)`` empty is a candidate race — recorded with both
  access sites and raised as a structured :class:`RaceReport` by
  :meth:`check` (the solver calls it right after the scheduler join).

Instrumentation is *structure-grained*, not element-grained: one event per
task/structure touch, never per matrix entry, so the factorization's
numerical work is untouched and overhead stays bounded (a deque append and
a few set operations per event, ≤ ``max_events`` retained).  Measured on the
threaded suites this costs single-digit percent wall clock — ~6% on a
4-thread BLR factorization (see docs/static-analysis.md for the numbers).

Two deliberate blind spots, shared with Eraser:

* initialization and join transfer — handled with :meth:`epoch`, called by
  the schedulers at spawn and after join, so the main thread's setup and
  teardown accesses never poison worker-phase state;
* dependency-ordered ownership transfer (the FUC compression point: the
  *last pulling task* compresses the source column block it just drained)
  — handled with the explicit :meth:`handoff` annotation at
  ``note_updates_pulled``'s True return.

Enable via ``SolverConfig(sanitize=True)`` or ``$REPRO_TSAN=1``; dump the
bounded event log with :meth:`dump` (the CI tsan job uploads it as an
artifact, path from ``$REPRO_TSAN_LOG``).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, FrozenSet, List, Optional, Union

__all__ = [
    "RaceReport",
    "RaceSanitizer",
    "TrackedLock",
    "TrackedCondition",
]

#: Eraser variable states
_VIRGIN = "virgin"
_EXCLUSIVE = "exclusive"
_SHARED = "shared"
_SHARED_MOD = "shared-modified"


class RaceReport(RuntimeError):
    """A candidate data race detected by the lockset tracker.

    ``races`` holds one dict per offending variable with the conflicting
    access sites, threads and the (empty) candidate lockset at detection.
    """

    def __init__(self, races: List[Dict[str, Any]]) -> None:
        self.races = races
        lines = [f"{len(races)} candidate race(s) detected:"]
        for r in races:
            lines.append(
                f"  {r['var']}: {r['kind']} at {r['site']} "
                f"[thread {r['thread']}] conflicts with prior access at "
                f"{r['prior_site']} [thread {r['prior_thread']}] — "
                f"no common lock (lockset={sorted(r['lockset'])})")
        super().__init__("\n".join(lines))


class TrackedLock:
    """A ``threading.Lock`` proxy that maintains the holder's lockset."""

    def __init__(self, lock: Any, name: str, san: "RaceSanitizer") -> None:
        self._lock = lock
        self._name = name
        self._san = san

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._san._held().add(self._name)
        return got

    def release(self) -> None:
        self._san._held().discard(self._name)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._lock.locked())


class TrackedCondition:
    """A ``threading.Condition`` proxy that maintains the holder's lockset.

    ``wait`` drops the lock while blocked (as the real condition does), so
    accesses made by *other* threads during the wait see a truthful
    lockset.
    """

    def __init__(self, cond: Any, name: str, san: "RaceSanitizer") -> None:
        self._cond = cond
        self._name = name
        self._san = san

    def acquire(self, *args: Any) -> bool:
        got = self._cond.acquire(*args)
        if got:
            self._san._held().add(self._name)
        return bool(got)

    def release(self) -> None:
        self._san._held().discard(self._name)
        self._cond.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        held = self._san._held()
        held.discard(self._name)
        try:
            return bool(self._cond.wait(timeout))
        finally:
            held.add(self._name)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __enter__(self) -> "TrackedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class RaceSanitizer:
    """Per-run Eraser lockset monitor for the solver's shared structures."""

    def __init__(self, max_events: int = 20000) -> None:
        #: internal mutex — deliberately NOT a TrackedLock
        self._mu = threading.Lock()
        self._local = threading.local()
        #: var → {state, owner, lockset, prior_site, prior_thread}
        self._vars: Dict[str, Dict[str, Any]] = {}
        self._races: List[Dict[str, Any]] = []
        self._raced: set = set()  # vars already reported (one race per var)
        self.events: Deque[Dict[str, Any]] = deque(maxlen=max_events)
        self.total_events = 0

    # -- lockset plumbing ----------------------------------------------
    def _held(self) -> set:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = set()
        return held

    def wrap_lock(self, lock: Any, name: str) -> TrackedLock:
        """Wrap a lock so the tracker sees it in holders' locksets."""
        return TrackedLock(lock, name, self)

    def wrap_condition(self, cond: Any, name: str) -> TrackedCondition:
        return TrackedCondition(cond, name, self)

    # -- the state machine ---------------------------------------------
    def note(self, var: str, kind: str, site: str = "") -> None:
        """Record one access (``kind`` is ``"read"`` or ``"write"``)."""
        tid = threading.current_thread().name
        lockset: FrozenSet[str] = frozenset(self._held())
        with self._mu:
            self.total_events += 1
            self.events.append({
                "var": var, "kind": kind, "thread": tid,
                "lockset": sorted(lockset), "site": site,
            })
            st = self._vars.get(var)
            if st is None or st["state"] == _VIRGIN:
                self._vars[var] = {
                    "state": _EXCLUSIVE, "owner": tid, "lockset": None,
                    "prior_site": site, "prior_thread": tid,
                }
                return
            if st["state"] == _EXCLUSIVE:
                if st["owner"] == tid:
                    st["prior_site"], st["prior_thread"] = site, tid
                    return
                # second thread: start lockset refinement
                st["state"] = _SHARED_MOD if kind == "write" else _SHARED
                st["lockset"] = set(lockset)
            else:
                st["lockset"] &= lockset
                if kind == "write":
                    st["state"] = _SHARED_MOD
            racy = st["state"] == _SHARED_MOD and not st["lockset"]
            if racy and var not in self._raced:
                self._raced.add(var)
                self._races.append({
                    "var": var, "kind": kind, "thread": tid, "site": site,
                    "prior_site": st["prior_site"],
                    "prior_thread": st["prior_thread"],
                    "lockset": sorted(st["lockset"]),
                })
            st["prior_site"], st["prior_thread"] = site, tid

    def handoff(self, var: str) -> None:
        """Dependency-ordered ownership transfer: the next accessor becomes
        the exclusive owner (the FUC compression point — the last pulling
        task takes over the drained source block)."""
        with self._mu:
            self._vars.pop(var, None)

    def epoch(self) -> None:
        """Synchronization point (thread spawn / join): every variable
        returns to Virgin so setup/teardown accesses by the main thread do
        not alias with worker-phase history.  Recorded races persist."""
        with self._mu:
            self._vars.clear()

    # -- results --------------------------------------------------------
    def races(self) -> List[Dict[str, Any]]:
        with self._mu:
            return [dict(r) for r in self._races]

    def check(self) -> None:
        """Raise :class:`RaceReport` when candidate races were recorded."""
        races = self.races()
        if races:
            raise RaceReport(races)

    def summary(self) -> Dict[str, Any]:
        with self._mu:
            return {
                "total_events": self.total_events,
                "retained_events": len(self.events),
                "variables": len(self._vars),
                "races": [dict(r) for r in self._races],
            }

    def dump(self, path: Union[str, Path]) -> None:
        """Write the bounded event log (JSONL: summary line, then events)."""
        with self._mu:
            events = list(self.events)
            summary = {
                "total_events": self.total_events,
                "retained_events": len(events),
                "races": [dict(r) for r in self._races],
            }
        with Path(path).open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"summary": summary}) + "\n")
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
