"""Runtime support: timing, flop accounting, and memory-peak tracking.

These utilities instrument the solver the way the paper's Table 2 and
Figures 6/7 require: every numerical kernel charges its wall-clock time and
floating-point operation count to a named category (``compress``,
``block_facto``, ``panel_solve``, ``lr_product``, ``lr_addition``,
``dense_update``), and every allocation/release of factor storage is reported
to a :class:`~repro.runtime.memory.MemoryTracker` so the *peak* working set of
a factorization can be compared between the Dense, Just-In-Time and Minimal
Memory strategies.

Two further layers make the runtime *observable* and *testable* (see
``docs/observability.md``): :mod:`repro.runtime.trace` records which thread
ran which task when (per-thread utilization, critical path, Gantt export),
and :mod:`repro.runtime.faults` injects deterministic failures into the
factorization drivers so scheduler error paths can be exercised.

:mod:`repro.runtime.recovery` closes the loop: the faults the injector
(or real arithmetic) produces are detected as structured
:class:`~repro.runtime.recovery.NumericalBreakdown` events and healed by
a configurable escalation ladder (see ``docs/robustness.md``).
"""

from repro.runtime.recovery import (
    NumericalBreakdown,
    RecoveryPolicy,
    RecoveryState,
)
from repro.runtime.timers import Timer, CategoryTimers
from repro.runtime.stats import KernelStats, FactorizationStats, KERNEL_CATEGORIES
from repro.runtime.memory import MemoryTracker, nbytes_dense, nbytes_lowrank
from repro.runtime.trace import TaskTracer, TraceEvent
from repro.runtime.faults import FaultError, FaultInjector
from repro.runtime.telemetry import (
    Counter,
    Gauge,
    Histogram,
    JSONLSink,
    RingBufferSink,
    SeriesBuffer,
    Sink,
    SummarySink,
    Telemetry,
    parse_prometheus_text,
)

__all__ = [
    "Timer",
    "CategoryTimers",
    "KernelStats",
    "FactorizationStats",
    "KERNEL_CATEGORIES",
    "MemoryTracker",
    "nbytes_dense",
    "nbytes_lowrank",
    "TaskTracer",
    "TraceEvent",
    "FaultError",
    "FaultInjector",
    "NumericalBreakdown",
    "RecoveryPolicy",
    "RecoveryState",
    "Counter",
    "Gauge",
    "Histogram",
    "JSONLSink",
    "RingBufferSink",
    "SeriesBuffer",
    "Sink",
    "SummarySink",
    "Telemetry",
    "parse_prometheus_text",
]
