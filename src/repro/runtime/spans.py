"""Hierarchical causal span profiler (`SolverConfig(profiler=...)`).

Design goals, mirroring :mod:`repro.runtime.trace`:

* **Zero cost when absent.**  `SolverConfig.profiler` defaults to `None`
  and every instrumentation site pays one attribute load plus one
  `is not None` test — the same contract the telemetry-guard lint rule
  enforces for the telemetry bus (and, since PR 9, for `*.profiler.*`
  call sites too).
* **Causal, not merely temporal.**  Spans carry trace-id / span-id /
  parent-id.  Synchronous children (`link="child"`) nest through a
  per-thread context stack; scheduler hand-offs produce
  `link="follows"` edges whose parent is the *dependency* that released
  the task — the greatest contributor in the pull-mode fan-in order —
  so a 4-thread factorization records exactly the same causal tree as
  the sequential sweep (timestamps and thread ids aside).  The enqueuing
  span's id still travels with the work item (`ready.put((k, span_id))`
  in the dynamic scheduler) and is kept as a fallback parent, but the
  canonical edge is the deterministic one.
* **Self-contained artifacts.**  `to_json()` round-trips through
  :meth:`SpanProfiler.from_json`; the exporters in
  :mod:`repro.analysis.profile` turn the same document into Chrome
  ``trace_event`` JSON and speedscope flamegraphs.

Layering on the telemetry bus: construct with
``SpanProfiler(telemetry=tele)`` and every *phase* span (direct child of
the root) is also emitted as a structured ``span`` event on the bus, so
existing sinks (ring buffer, JSONL, summary) see phase boundaries.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.telemetry import Telemetry

#: synchronous child span, temporally contained in its parent
LINK_CHILD = "child"
#: causal hand-off edge: the child starts after the parent *started*
#: (typically after it ended) — a scheduler task released by a dependency
LINK_FOLLOWS = "follows"

_EPS = 1e-9


@dataclass
class Span:
    """One closed (or still-open, ``t1 < 0``) span."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread: int
    t0: float
    t1: float = -1.0
    link: str = LINK_CHILD
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.t1 - self.t0, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "t0": self.t0,
            "t1": self.t1,
            "link": self.link,
            "attrs": dict(self.attrs),
        }


class SpanProfiler:
    """Thread-safe hierarchical span recorder with causal hand-offs.

    A single implicit **root span** (``"run"``) is opened at construction
    and closed by :meth:`finish` (idempotent; `events()`/`to_json()` call
    it) — every trace therefore has exactly one root, which the
    invariant checker asserts.
    """

    ROOT_NAME = "run"

    def __init__(self, telemetry: Optional["Telemetry"] = None,
                 trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id is not None else uuid.uuid4().hex
        self.meta: Dict[str, Any] = {}
        self._telemetry = telemetry
        self._origin = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: Dict[int, Span] = {}
        self._next_id = 1
        self._tls = threading.local()
        self._threads: Dict[int, int] = {}
        # per-engine-run task registry: cblk -> span id, plus the phase
        # span task spans attach to when they have no contributors
        self._task_spans: Dict[int, int] = {}
        self._task_root: Optional[int] = None
        self._task_levels: Optional[List[int]] = None
        self._root_id = self._new_span(self.ROOT_NAME, parent=None,
                                       link=LINK_CHILD, attrs={})

    # -- clocks and per-thread state -----------------------------------

    def clock(self) -> float:
        """Seconds since this profiler's origin (perf_counter based)."""
        return time.perf_counter() - self._origin

    def _thread_slot(self) -> int:
        slot = getattr(self._tls, "slot", None)
        if slot is None:
            with self._lock:
                slot = self._threads.setdefault(threading.get_ident(),
                                                len(self._threads))
            self._tls.slot = slot
        return int(slot)

    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    # -- span lifecycle -------------------------------------------------

    def _new_span(self, name: str, parent: Optional[int], link: str,
                  attrs: Dict[str, Any]) -> int:
        t0 = self.clock()
        thread = self._thread_slot()
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            self._spans[sid] = Span(name, sid, parent, thread, t0,
                                    link=link, attrs=attrs)
        return sid

    def start(self, name: str, parent: Optional[int] = None,
              link: str = LINK_CHILD, **attrs: Any) -> int:
        """Open a span and push it on this thread's context stack.

        Without an explicit ``parent`` the span attaches to the thread's
        current span, falling back to the root — that is the context-stack
        propagation rule.  Pass ``parent`` (and ``link=LINK_FOLLOWS``) for
        causal cross-thread edges.
        """
        stack = self._stack()
        if parent is None:
            parent = stack[-1] if stack else self._root_id
        sid = self._new_span(name, parent, link, dict(attrs))
        stack.append(sid)
        return sid

    def end(self, span_id: Optional[int], **attrs: Any) -> None:
        """Close a span (no-op on ``None``), merging late attributes."""
        if span_id is None:
            return
        t1 = self.clock()
        stack = self._stack()
        if stack and stack[-1] == span_id:
            stack.pop()
        elif span_id in stack:  # pragma: no cover - defensive
            stack.remove(span_id)
        with self._lock:
            span = self._spans.get(span_id)
            if span is None:  # pragma: no cover - defensive
                return
            span.t1 = t1
            if attrs:
                span.attrs.update(attrs)
            is_phase = span.parent_id == self._root_id
            payload = (dict(span.attrs) if is_phase else None)
            name, dur = span.name, span.duration
        tele = self._telemetry
        if tele is not None and is_phase and payload is not None:
            tele.emit("span", name=name, duration_s=dur, **payload)

    @contextmanager
    def span(self, name: str, parent: Optional[int] = None,
             link: str = LINK_CHILD, **attrs: Any) -> Iterator[int]:
        sid = self.start(name, parent=parent, link=link, **attrs)
        try:
            yield sid
        finally:
            self.end(sid)

    def current(self) -> Optional[int]:
        """This thread's innermost open span id (``None`` outside any)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- scheduler hand-off support ------------------------------------

    def begin_tasks(self, levels: Optional[Sequence[int]] = None) -> None:
        """Arm a fresh task registry for one engine run.

        Must be called from the thread holding the enclosing phase span
        (the engines call it before spawning workers): contributor-less
        tasks attach to that span as plain children.  ``levels`` is the
        per-cblk elimination-tree depth used for the ``level`` attribute.
        """
        current = self.current()
        with self._lock:
            self._task_spans = {}
            self._task_root = current
            self._task_levels = list(levels) if levels is not None else None

    def task_start(self, cblk: int, contributors: Sequence[int],
                   enqueuer: Optional[int] = None, **attrs: Any) -> int:
        """Open the causal span for the fan-in task on ``cblk``.

        The parent is the span of the **canonical releaser** — the
        greatest contributor, i.e. the dependency whose updates are
        pulled last in the ascending fan-in order — which makes the
        recorded tree independent of scheduling: threaded and sequential
        runs agree edge for edge.  ``enqueuer`` is the span id that
        physically travelled with the work item (dynamic scheduler); it
        is only used as a fallback when the canonical span is unknown.
        """
        parent: Optional[int] = None
        link = LINK_CHILD
        with self._lock:
            if contributors:
                parent = self._task_spans.get(max(contributors))
                link = LINK_FOLLOWS
            if parent is None and enqueuer is not None:
                parent = enqueuer
                link = LINK_FOLLOWS
            if parent is None:
                parent = self._task_root
                link = LINK_CHILD
            levels = self._task_levels
        if levels is not None and 0 <= cblk < len(levels):
            attrs.setdefault("level", levels[cblk])
        attrs["cblk"] = cblk
        sid = self.start("task", parent=parent, link=link, **attrs)
        with self._lock:
            self._task_spans[cblk] = sid
        return sid

    def task_span_of(self, cblk: int) -> Optional[int]:
        """Span id of ``cblk``'s task in the current engine run."""
        with self._lock:
            return self._task_spans.get(cblk)

    # -- export and inspection -----------------------------------------

    def finish(self) -> None:
        """Close the root span (idempotent); open spans keep ``t1 < 0``."""
        with self._lock:
            root = self._spans[self._root_id]
            if root.t1 < 0.0:
                root.t1 = self.clock()

    @property
    def root_id(self) -> int:
        return self._root_id

    def events(self) -> List[Span]:
        """All spans, root first then sorted by ``(t0, span_id)``."""
        self.finish()
        with self._lock:
            spans = list(self._spans.values())
        spans.sort(key=lambda s: (s.parent_id is not None, s.t0, s.span_id))
        return spans

    def check_invariants(self) -> List[str]:
        """Violation strings for the span-tree contract (empty = healthy).

        * exactly one root (``parent_id is None``);
        * no orphan parents — every ``parent_id`` names a recorded span;
        * every non-root span is closed, with ``t1 >= t0``;
        * ``child``-linked spans are temporally contained in their
          parent; ``follows``-linked spans start no earlier than their
          parent started.
        """
        spans = self.events()
        by_id = {s.span_id: s for s in spans}
        problems: List[str] = []
        roots = [s for s in spans if s.parent_id is None]
        if len(roots) != 1:
            problems.append(f"expected exactly 1 root span, got {len(roots)}")
        for s in spans:
            if s.t1 < 0.0:
                problems.append(f"span {s.span_id} ({s.name}) never ended")
                continue
            if s.t1 < s.t0 - _EPS:
                problems.append(f"span {s.span_id} ({s.name}) ends before "
                                f"it starts")
            if s.parent_id is None:
                continue
            parent = by_id.get(s.parent_id)
            if parent is None:
                problems.append(f"span {s.span_id} ({s.name}) has orphan "
                                f"parent {s.parent_id}")
                continue
            if s.t0 < parent.t0 - _EPS:
                problems.append(
                    f"span {s.span_id} ({s.name}) starts before its "
                    f"parent {parent.span_id} ({parent.name})")
            if s.link == LINK_CHILD and parent.t1 >= 0.0 \
                    and s.t1 > parent.t1 + _EPS:
                problems.append(
                    f"child span {s.span_id} ({s.name}) ends after its "
                    f"parent {parent.span_id} ({parent.name})")
        return problems

    def to_json(self, path: Optional[Union[str, Path]] = None
                ) -> Dict[str, Any]:
        """Version-1 span document ``{version, trace_id, meta, spans}``."""
        doc = {
            "version": 1,
            "trace_id": self.trace_id,
            "meta": dict(self.meta),
            "spans": [s.to_dict() for s in self.events()],
        }
        if path is not None:
            Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True))
        return doc

    @staticmethod
    def from_json(source: Union[str, Path, Mapping[str, Any]]
                  ) -> "SpanProfiler":
        """Rebuild a profiler (spans + meta) from :meth:`to_json` output."""
        doc: Mapping[str, Any]
        if isinstance(source, (str, Path)):
            doc = json.loads(Path(source).read_text())
        else:
            doc = source
        if doc.get("version") != 1:
            raise ValueError(
                f"unsupported span document version {doc.get('version')!r}")
        prof = SpanProfiler(trace_id=str(doc.get("trace_id", "")))
        prof.meta.update(doc.get("meta", {}))
        spans: Dict[int, Span] = {}
        root_id: Optional[int] = None
        for raw in doc["spans"]:
            span = Span(
                name=str(raw["name"]),
                span_id=int(raw["span_id"]),
                parent_id=(None if raw["parent_id"] is None
                           else int(raw["parent_id"])),
                thread=int(raw["thread"]),
                t0=float(raw["t0"]),
                t1=float(raw["t1"]),
                link=str(raw.get("link", LINK_CHILD)),
                attrs=dict(raw.get("attrs", {})),
            )
            spans[span.span_id] = span
            if span.parent_id is None and root_id is None:
                root_id = span.span_id
        with prof._lock:
            prof._spans = spans
            prof._next_id = (max(spans) + 1) if spans else 1
            if root_id is not None:
                prof._root_id = root_id
        return prof


def canonical_tree(spans: Sequence[Union[Span, Mapping[str, Any]]]
                   ) -> Any:
    """Timestamp- and thread-independent shape of a span forest.

    Each span maps to ``[name, link, sorted-attrs, sorted-children]``;
    children are ordered by their serialized form, so two runs with the
    same causal edges and attributes — no matter the interleaving —
    canonicalize identically.  This is the equality the acceptance
    criterion "threaded and sequential traced runs produce equal span
    trees" is tested against.
    """
    norm: List[Dict[str, Any]] = []
    for s in spans:
        if isinstance(s, Span):
            norm.append(s.to_dict())
        else:
            norm.append(dict(s))
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for raw in norm:
        children.setdefault(raw["parent_id"], []).append(raw)

    def render(raw: Dict[str, Any]) -> Any:
        kids = [render(c) for c in children.get(raw["span_id"], [])]
        kids.sort(key=lambda node: json.dumps(node, sort_keys=True))
        attrs = dict(raw.get("attrs", {}))
        return [raw["name"], raw.get("link", LINK_CHILD),
                sorted(attrs.items()), kids]

    roots = [render(raw) for raw in children.get(None, [])]
    roots.sort(key=lambda node: json.dumps(node, sort_keys=True))
    return roots
