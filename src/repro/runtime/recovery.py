"""Breakdown detection and self-healing escalation policies.

The BLR solver is explicitly a *backward-stable-enough* preconditioner
(paper §V): a τ-tolerance factorization plus refinement is expected to
recover full accuracy, and PaStiX's static pivoting can silently degrade
the factors.  This module supplies the layer between "instrumented" and
"production": structured *breakdown* signals raised at the point of
failure, and a bounded, telemetry-logged *escalation ladder* that turns
those signals into a completed solve instead of an aborted run.

Three kinds of breakdown are detected when a
:class:`RecoveryPolicy` is attached (``SolverConfig.recovery``):

* **numerical** — NaN/Inf sentinels on each column block's assembled input
  and factored diagonal, plus a pivot-perturbation budget
  (:class:`NumericalBreakdown` carries the column block id and cause);
* **compression** — RRQR/SVD non-convergence or an injected compression
  fault: the verdict is *keep the block dense* (never propagate garbage);
* **iterative** — refinement stagnation (no ``refine_drop``× residual
  reduction over ``refine_window`` iterations) or divergence, classified
  by :func:`repro.core.refinement.classify_history`.

The escalation ladder (:func:`escalate_config`) retries the whole solve at
a tightened tolerance (``τ × tau_shrink`` per rung, floored at
``tau_floor``) and then downgrades the strategy
(minimal-memory → just-in-time → dense) — at most
:attr:`RecoveryPolicy.max_retries` rungs, every action recorded through
:meth:`RecoveryState.record` (``recovery_*`` telemetry counters + one
``recovery`` event each).  Transient task failures are retried locally
against a pre-task snapshot (:attr:`RecoveryPolicy.task_retries`, seeded
backoff) before anything escalates.

Everything is off by default: ``SolverConfig.recovery=None`` leaves every
hot path with a single ``is not None`` test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

import numpy as np

if TYPE_CHECKING:
    from repro.config import SolverConfig
    from repro.runtime.telemetry import Telemetry

__all__ = [
    "NumericalBreakdown",
    "RecoveryPolicy",
    "RecoveryState",
    "escalate_config",
    "find_breakdown",
]

#: legacy strategy-alias downgrade ladder used when tolerance tightening
#: is exhausted.  Alias-named configs walk this (preserving the historic
#: MM → JIT → dense behaviour); configs that pin an explicit BLR loop
#: order instead walk :data:`repro.core.variants.ORDER_LADDER` through
#: the variant space (compress-later each rung) and only then drop to
#: dense — see :func:`escalate_config`.
STRATEGY_LADDER: Dict[str, str] = {
    "minimal-memory": "just-in-time",
    "just-in-time": "dense",
    "adaptive": "just-in-time",
}

#: breakdown causes raised by the detection layer
BREAKDOWN_CAUSES = (
    "nan-input",        # non-finite entries in the assembled column block
    "nan-factor",       # the diagonal factorization produced non-finites
    "pivot-budget",     # static pivoting perturbed more pivots than allowed
    "pivot-failure",    # threshold pivoting found no admissible pivot
    "pivot-growth",     # threshold pivoting exceeded the growth limit
    "compress-failure", # a compression kernel failed and fallback is off
)

#: the causes for which :func:`escalate_config` walks the pivoting rungs
#: (relax ``pivot_u`` → delayed-pivot dense fallback) before the legacy
#: τ-tightening / strategy-downgrade ladder
PIVOT_CAUSES = ("pivot-failure", "pivot-growth")


class NumericalBreakdown(RuntimeError):
    """A detected numerical failure, raised at the point of breakdown.

    Unlike a propagated NaN (which silently poisons everything downstream),
    a breakdown is *structured*: it names the column block, the cause (one
    of :data:`BREAKDOWN_CAUSES`) and the site, so the solver-level
    escalation ladder can decide what to do — and a bug report says where
    the factorization actually died.
    """

    def __init__(self, cause: str, cblk: Optional[int] = None,
                 site: str = "factor", detail: str = "") -> None:
        msg = f"numerical breakdown [{cause}] at site {site!r}"
        if cblk is not None:
            msg += f", column block {cblk}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.cause = cause
        self.cblk = cblk
        self.site = site
        self.detail = detail


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the self-healing layer (attach via ``SolverConfig.recovery``).

    The defaults give a production-flavoured posture: sentinels on, dense
    fallback on compression failure, two local task retries, three
    whole-solve escalation rungs, no pivot budget (perturbations are
    counted but tolerated — set :attr:`pivot_budget` to enforce one), and
    checkpoints written only on fault when a checkpoint path is given.
    """

    #: whole-solve escalation rungs (tightened τ / downgraded strategy)
    max_retries: int = 3
    #: tolerance multiplier per escalation rung (τ → τ × tau_shrink)
    tau_shrink: float = 0.1
    #: stop tightening below this tolerance; downgrade the strategy instead
    tau_floor: float = 1e-14
    #: after τ is exhausted, walk minimal-memory → just-in-time → dense
    strategy_downgrade: bool = True
    #: on compression-kernel failure, keep the block dense instead of
    #: raising (per-block fallback — the cheapest rung of the ladder)
    dense_fallback: bool = True
    #: local retries of a failed factorization task against its pre-task
    #: snapshot (transient faults); ``NumericalBreakdown`` never retries
    #: locally — deterministic causes go straight to the solver ladder
    task_retries: int = 2
    #: base seconds of the seeded exponential backoff between task retries
    retry_backoff: float = 0.0
    #: maximum tolerated fraction of perturbed pivots per diagonal block
    #: (``nperturbed > pivot_budget * width`` raises a breakdown);
    #: ``None`` disables the budget
    pivot_budget: Optional[float] = None
    #: multiplier applied to ``pivot_u`` on each relax-threshold rung of
    #: the pivoting ladder (a smaller ``u`` accepts more pivots in place)
    pivot_relax: float = 0.25
    #: stop relaxing ``pivot_u`` below this floor; the next pivoting rung
    #: turns on the delayed-pivot perturbation fallback instead
    pivot_u_floor: float = 1e-4
    #: refinement stagnates when the last ``refine_window`` iterations did
    #: not shrink the residual by ``refine_drop``×  (the "no 10× drop in k
    #: iterations" rule)
    refine_window: int = 4
    refine_drop: float = 10.0
    #: write a checkpoint every N completed column blocks when a
    #: checkpoint path is given (0 = only on fault)
    checkpoint_every: int = 0
    #: also write a checkpoint when the factorization dies mid-run
    checkpoint_on_fault: bool = True
    #: seed of the retry-backoff jitter generator
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not (0.0 < self.tau_shrink < 1.0):
            raise ValueError("tau_shrink must be in (0, 1)")
        if self.tau_floor <= 0.0:
            raise ValueError("tau_floor must be positive")
        if self.task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if self.retry_backoff < 0.0:
            raise ValueError("retry_backoff must be >= 0")
        if self.pivot_budget is not None and self.pivot_budget < 0.0:
            raise ValueError("pivot_budget must be >= 0 (or None)")
        if not (0.0 < self.pivot_relax < 1.0):
            raise ValueError("pivot_relax must be in (0, 1)")
        if self.pivot_u_floor <= 0.0:
            raise ValueError("pivot_u_floor must be positive")
        if self.refine_window < 1:
            raise ValueError("refine_window must be >= 1")
        if self.refine_drop <= 1.0:
            raise ValueError("refine_drop must be > 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")


class RecoveryState:
    """Per-run mutable recovery context (attached as ``fac.recovery``).

    Collects every recovery action taken (thread-safe), mirrors each one
    onto the telemetry bus when present (``recovery_<action>`` counters +
    a structured ``recovery`` event), and owns the seeded backoff
    generator so retry timing is reproducible.
    """

    def __init__(self, policy: RecoveryPolicy,
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.policy = policy
        self.telemetry = telemetry
        self.actions: List[Dict[str, Any]] = []
        self._lock: Any = threading.Lock()
        self._sanitizer: Any = None
        self._rng = np.random.default_rng(policy.seed)

    def attach_sanitizer(self, san: Any) -> None:
        """Track this state's lock and action log in the race sanitizer."""
        self._sanitizer = san
        self._lock = san.wrap_lock(self._lock, "recovery._lock")

    def record(self, action: str, site: str = "",
               cblk: Optional[int] = None, **detail: Any) -> None:
        """Log one recovery action (list + telemetry, never silent)."""
        entry: Dict[str, Any] = {"action": action, "site": site}
        if cblk is not None:
            entry["cblk"] = int(cblk)
        entry.update(detail)
        with self._lock:
            if self._sanitizer is not None:
                self._sanitizer.note("recovery.actions", "write",
                                     site="recovery.py:record")
            self.actions.append(entry)
        if self.telemetry is not None:
            self.telemetry.record_recovery(action, site=site, cblk=cblk,
                                           **detail)

    def backoff(self, attempt: int) -> float:
        """Seeded exponential backoff (seconds) before retry ``attempt``."""
        base = self.policy.retry_backoff
        if base <= 0.0:
            return 0.0
        with self._lock:
            jitter = float(self._rng.random())
        return base * (2.0 ** attempt) * (0.5 + jitter)

    def counts(self) -> Dict[str, int]:
        """Action-name → occurrence count of everything recorded so far."""
        with self._lock:
            actions = list(self.actions)
        out: Dict[str, int] = {}
        for a in actions:
            name = str(a["action"])
            out[name] = out.get(name, 0) + 1
        return out

    def summary(self) -> Dict[str, Any]:
        """JSON-able digest (feeds ``Solver.last_recovery`` / RunReport)."""
        with self._lock:
            actions = list(self.actions)
        counts: Dict[str, int] = {}
        for a in actions:
            name = str(a["action"])
            counts[name] = counts.get(name, 0) + 1
        return {"actions": actions, "counts": counts}


def escalate_config(config: "SolverConfig", policy: RecoveryPolicy,
                    cause: Optional[str] = None
                    ) -> Optional["SolverConfig"]:
    """The next rung of the escalation ladder, or ``None`` when exhausted.

    A static-pivoting run that blows its perturbation budget
    (``cause == 'pivot-budget'``) escalates straight to threshold
    pivoting, which interchanges instead of perturbing.  Pivoting
    breakdowns (``cause`` in :data:`PIVOT_CAUSES` on a
    threshold-pivoted config) walk the pivoting rungs first: relax the
    threshold (``pivot_u × pivot_relax`` while the result stays at or
    above ``pivot_u_floor`` — a smaller ``u`` accepts more pivots in
    place, trading growth control for progress), then enable the
    delayed-pivot perturbation fallback (``pivot_fallback=True``, the
    dense-style last resort for the block).  Only once those are
    exhausted does the legacy ladder below take over.

    The legacy ladder: tolerance tightening first (``τ × tau_shrink``
    while the result stays at or above ``tau_floor``), then a downgrade
    through the variant space.  A config with an explicit ``variant``
    moves to the next compress-later loop order
    (:data:`repro.core.variants.ORDER_LADDER` — denser intermediates,
    better stability) and drops to ``dense`` after ``fuc``; alias-named
    strategies keep the historic :data:`STRATEGY_LADDER`
    (MM → JIT → dense, adaptive → JIT).  The ``dense`` strategy has no τ
    rungs left — its accuracy does not depend on τ — but pivoting rungs
    still apply to it (a dense-strategy LDLᵀ can still hit a pivot
    failure).

    Escalation reuses the cached symbolic analysis: neither the strategy,
    the variant, the tolerance, nor the pivoting knobs participate in
    ``SymbolicOptions.from_config``.
    """
    if cause == "pivot-budget" and config.pivoting == "static":
        # static perturbation blew its budget: escalate to threshold
        # pivoting, which reorders instead of perturbing (the budget is
        # only charged for perturbed pivots, so the retry starts clean)
        return config.with_options(pivoting="threshold")
    if cause in PIVOT_CAUSES and config.pivoting == "threshold":
        relaxed = config.pivot_u * policy.pivot_relax
        if relaxed >= policy.pivot_u_floor:
            return config.with_options(pivot_u=relaxed)
        if not config.pivot_fallback:
            return config.with_options(pivot_fallback=True)
    if config.strategy == "dense":
        return None
    new_tol = config.tolerance * policy.tau_shrink
    if new_tol >= policy.tau_floor:
        return config.with_options(tolerance=new_tol)
    if policy.strategy_downgrade:
        if config.variant is not None:
            from repro.core.variants import ORDER_LADDER

            nxt = ORDER_LADDER[config.variant]
            if nxt is not None:
                return config.with_options(variant=nxt)
            return config.with_options(strategy="dense", variant=None)
        downgraded = STRATEGY_LADDER.get(config.strategy)
        if downgraded is not None:
            return config.with_options(strategy=downgraded)
    return None


def find_breakdown(exc: BaseException) -> Optional[NumericalBreakdown]:
    """The :class:`NumericalBreakdown` buried in ``exc``, if any.

    Walks the exception itself, aggregated scheduler errors
    (``SchedulerError.errors``) and ``__cause__`` chains — a breakdown
    raised inside a worker surfaces wrapped, and the solver-level ladder
    must still recognise it.
    """
    seen: Set[int] = set()
    stack: List[BaseException] = [exc]
    while stack:
        e = stack.pop()
        if id(e) in seen:
            continue
        seen.add(id(e))
        if isinstance(e, NumericalBreakdown):
            return e
        nested = getattr(e, "errors", None)
        if nested:
            stack.extend(err for err in nested
                         if isinstance(err, BaseException))
        if e.__cause__ is not None:
            stack.append(e.__cause__)
    return None
