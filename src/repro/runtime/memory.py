"""Byte-accurate tracking of factor storage.

The Minimal Memory strategy's whole point (paper §2.2.1, Figures 6 and 7) is
that the dense factor structure is *never allocated*: blocks live compressed
from the start, so the peak working set of the factorization equals roughly
the final compressed factor size.  The Just-In-Time strategy allocates each
supernode dense before compressing it, so its peak matches the dense solver.

Python cannot observe allocator high-water marks portably and cheaply, so the
solver reports every block allocation/free to a :class:`MemoryTracker` —
`alloc(nbytes)` / `free(nbytes)` — which maintains ``current`` and ``peak``.
The factorization drivers charge the storage of every diagonal block, dense
off-diagonal block and low-rank (u, v) pair.  This is the same accounting the
paper performs ("memory used to store the final coefficients").
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.runtime.telemetry import Telemetry

#: bytes per element of float64, the *default* arithmetic.  This is only a
#: default: the solver is dtype-generic (float32/complex64/complex128 too),
#: so accounting code must pass the actual ``np.dtype(...).itemsize`` (4 for
#: float32, 8 for float64/complex64, 16 for complex128) instead of relying
#: on this constant.
FLOAT_NBYTES = 8


def nbytes_dense(m: int, n: int, itemsize: int = FLOAT_NBYTES) -> int:
    """Storage of an ``m x n`` dense block of elements of ``itemsize`` bytes.

    ``itemsize`` defaults to float64 for backward compatibility; pass
    ``np.dtype(dtype).itemsize`` for any other precision.
    """
    return int(m) * int(n) * int(itemsize)


def nbytes_lowrank(m: int, n: int, rank: int, itemsize: int = FLOAT_NBYTES) -> int:
    """Storage of a rank-``rank`` block: ``u`` is m-by-r, ``v`` is n-by-r.

    ``itemsize`` defaults to float64; pass the actual element size for
    other precisions (mixed-precision storage uses the narrower one).
    """
    return (int(m) + int(n)) * int(rank) * int(itemsize)


class MemoryTracker:
    """Tracks current and peak tracked bytes.

    The tracker is shared between worker threads during a threaded
    factorization, hence the lock; the per-call cost is negligible compared to
    the BLAS work each call accounts for.

    With a :class:`~repro.runtime.telemetry.Telemetry` bus attached, every
    *meaningful* new high-water mark (first peak, then growth beyond 1/64
    of the previous recorded peak) is published to the bounded
    ``memory_highwater`` series — a time-stamped timeline of the working
    set, not just the scalar ``peak`` the paper's Figure 7 reduces to.
    Disabled (``telemetry=None``) the peak update path is unchanged.
    """

    def __init__(self, telemetry: Optional["Telemetry"] = None) -> None:
        self.current = 0
        self.peak = 0
        self._lock = threading.Lock()
        self._telemetry = telemetry
        self._last_recorded = -1  # force a sample on the first peak

    def _record_peak_locked(self) -> None:
        """Publish a new high-water mark (caller holds the lock)."""
        if self._telemetry is None:
            return
        if self.peak - self._last_recorded >= max(1, self.peak >> 6):
            self._last_recorded = self.peak
            self._telemetry.record_memory(self.current, self.peak)

    def alloc(self, nbytes: int) -> None:
        with self._lock:
            self.current += int(nbytes)
            if self.current > self.peak:
                self.peak = self.current
                self._record_peak_locked()

    def free(self, nbytes: int) -> None:
        with self._lock:
            self.current -= int(nbytes)

    def resize(self, old_nbytes: int, new_nbytes: int) -> None:
        """Account for a block whose storage changed size (e.g. rank growth)."""
        with self._lock:
            self.current += int(new_nbytes) - int(old_nbytes)
            if self.current > self.peak:
                self.peak = self.current
                self._record_peak_locked()

    def reset(self) -> None:
        with self._lock:
            self.current = 0
            self.peak = 0
            self._last_recorded = -1

    def checkpoint(self) -> int:
        """Return the current tracked footprint (bytes)."""
        return self.current


def array_nbytes(a: "np.ndarray") -> int:
    """Actual byte size of a numpy array (contiguous assumption)."""
    return int(a.size) * int(a.itemsize)
