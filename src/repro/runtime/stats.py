"""Per-kernel statistics for a factorization run.

``KernelStats`` charges wall-clock seconds, flop counts and call counts to
named categories.  ``FactorizationStats`` is the full record returned by a
factorization: kernel tallies plus factor-size and memory-peak figures, i.e.
exactly the rows of the paper's Table 2:

=====================  ==================================================
Table 2 row            category key
=====================  ==================================================
Compression            ``compress``
Block factorization    ``block_facto``
Panel solve            ``panel_solve``
LR product             ``lr_product``
LR addition            ``lr_addition``
Dense update           ``dense_update``
=====================  ==================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.runtime.timers import CategoryTimers

if TYPE_CHECKING:
    from repro.runtime.telemetry import Telemetry

#: Kernel categories reported by Table 2 of the paper (in paper row order).
KERNEL_CATEGORIES = (
    "compress",
    "block_facto",
    "panel_solve",
    "lr_product",
    "lr_addition",
    "dense_update",
)


class KernelStats:
    """Accumulates time / flops / call counts per kernel category.

    Thread-safety: ``add`` takes a lock only when the instance was created
    with ``locked=True``; the factorization drivers create one unlocked
    instance per worker thread and merge them, so the hot path is lock-free.
    """

    def __init__(self, locked: bool = False,
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.timers = CategoryTimers()
        self.flops: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._lock = threading.Lock() if locked else None
        #: optional :class:`~repro.runtime.telemetry.Telemetry` bus carried
        #: alongside the tallies — the low-rank kernels read it off the
        #: ``stats`` argument they already receive, so enabling telemetry
        #: does not change any kernel signature.  ``None`` (default) keeps
        #: the kernels' telemetry branch at a single attribute test.
        self.telemetry = telemetry

    def add(self, category: str, seconds: float = 0.0, flops: float = 0.0,
            calls: int = 1) -> None:
        """Charge ``seconds`` and ``flops`` to ``category``."""
        if self._lock is not None:
            with self._lock:
                self._add(category, seconds, flops, calls)
        else:
            self._add(category, seconds, flops, calls)

    def _add(self, category: str, seconds: float, flops: float, calls: int) -> None:
        self.timers.timer(category).elapsed += seconds
        self.flops[category] = self.flops.get(category, 0.0) + flops
        self.calls[category] = self.calls.get(category, 0) + calls

    def time(self, category: str) -> float:
        return self.timers.elapsed(category)

    def flop(self, category: str) -> float:
        return self.flops.get(category, 0.0)

    def call_count(self, category: str) -> int:
        return self.calls.get(category, 0)

    def total_time(self) -> float:
        return self.timers.total()

    def total_flops(self) -> float:
        return sum(self.flops.values())

    def merge(self, other: "KernelStats") -> None:
        self.timers.merge(other.timers)
        for k, v in other.flops.items():
            self.flops[k] = self.flops.get(k, 0.0) + v
        for k, v in other.calls.items():
            self.calls[k] = self.calls.get(k, 0) + v

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        cats = set(self.timers.categories()) | set(self.flops) | set(self.calls)
        return {
            c: {
                "time": self.timers.elapsed(c),
                "flops": self.flops.get(c, 0.0),
                "calls": self.calls.get(c, 0),
            }
            for c in sorted(cats)
        }


@dataclass
class FactorizationStats:
    """Everything measured during one numerical factorization.

    Attributes
    ----------
    kernels:
        Per-category time/flops/calls.
    factor_nbytes:
        Final size in bytes of the factor blocks (compressed representation
        for BLR runs) — the paper's "factors final size".
    dense_factor_nbytes:
        Size the factors *would* occupy fully dense (baseline of Figures 6/7).
    peak_nbytes:
        Peak tracked working set during factorization (Figure 7's "total
        consumption" series uses this plus structure overhead).
    total_time:
        Wall-clock of the whole factorization (not the sum of categories,
        which double-counts nothing in sequential mode but is CPU time in
        threaded mode).
    nblocks_compressed / nblocks_dense:
        How many off-diagonal blocks ended compressed vs dense.
    backend / backend_kernel_calls:
        Name of the kernel backend the run executed on and its per-op call
        counts (gemm/trsm/getrf/…, accumulated over factorization and
        solves) — the :mod:`repro.core.backend` accounting.
    """

    kernels: KernelStats = field(default_factory=KernelStats)
    factor_nbytes: int = 0
    dense_factor_nbytes: int = 0
    peak_nbytes: int = 0
    total_time: float = 0.0
    solve_time: float = 0.0
    nblocks_compressed: int = 0
    nblocks_dense: int = 0
    backend: str = "numpy"
    backend_kernel_calls: Dict[str, int] = field(default_factory=dict)

    def add_backend_calls(self, delta: Dict[str, int]) -> None:
        """Accumulate a per-op call-count delta into the running totals."""
        for op, n in delta.items():
            self.backend_kernel_calls[op] = (
                self.backend_kernel_calls.get(op, 0) + n)

    @property
    def memory_ratio(self) -> float:
        """Compressed / dense factor size (the y-axis of Figure 6)."""
        if self.dense_factor_nbytes == 0:
            return 1.0
        return self.factor_nbytes / self.dense_factor_nbytes

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for c in KERNEL_CATEGORIES:
            out[f"time_{c}"] = self.kernels.time(c)
            out[f"flops_{c}"] = self.kernels.flop(c)
        out["total_time"] = self.total_time
        out["solve_time"] = self.solve_time
        out["factor_nbytes"] = float(self.factor_nbytes)
        out["dense_factor_nbytes"] = float(self.dense_factor_nbytes)
        out["peak_nbytes"] = float(self.peak_nbytes)
        out["memory_ratio"] = self.memory_ratio
        return out
