"""Lightweight wall-clock timers with named categories.

The paper's Table 2 decomposes the numerical factorization into six kernel
categories (compression, block factorization, panel solve, low-rank product,
low-rank addition, dense update).  :class:`CategoryTimers` accumulates elapsed
seconds per category; individual :class:`Timer` objects are context managers
around ``time.perf_counter``.

Timers are intentionally simple — no threading magic.  In threaded runs each
worker accumulates into its own :class:`CategoryTimers` and the per-thread
tallies are merged (summed) afterwards, which reports *CPU-ish* time per
category exactly as the sequential Table 2 does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


@dataclass
class Timer:
    """Accumulating stopwatch.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: Optional[float] = field(default=None, repr=False)

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()  # solverlint: ignore[shared-mutation-lockset] -- name-based call resolution conflates Timer.start with the worker-called SpanProfiler.start; timers only run on the coordinating thread (stats aggregation), never inside workers

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class CategoryTimers:
    """A dictionary of accumulating timers keyed by category name."""

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def timer(self, category: str) -> Timer:
        t = self._timers.get(category)
        if t is None:
            t = self._timers[category] = Timer()
        return t

    @contextmanager
    def time(self, category: str) -> Iterator[Timer]:
        t = self.timer(category)
        t.start()
        try:
            yield t
        finally:
            t.stop()

    def elapsed(self, category: str) -> float:
        t = self._timers.get(category)
        return 0.0 if t is None else t.elapsed

    def categories(self) -> Dict[str, float]:
        return {k: t.elapsed for k, t in self._timers.items()}

    def total(self) -> float:
        return sum(t.elapsed for t in self._timers.values())

    def merge(self, other: "CategoryTimers") -> None:
        """Sum another tally into this one (used to merge per-thread timers)."""
        for k, t in other._timers.items():
            self.timer(k).elapsed += t.elapsed

    def reset(self) -> None:
        for t in self._timers.values():
            t.reset()
