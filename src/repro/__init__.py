"""repro — a Block Low-Rank supernodal sparse direct solver.

A from-scratch Python reproduction of

    G. Pichon, E. Darve, M. Faverge, P. Ramet, J. Roman,
    "Sparse Supernodal Solver Using Block Low-Rank Compression",
    IPDPS/PDSEC 2017 (Inria RR-9022).

Public API highlights:

* :class:`~repro.core.solver.Solver` — analyze / factorize / solve / refine.
* :class:`~repro.config.SolverConfig` — strategy (``dense`` /
  ``just-in-time`` / ``minimal-memory``), kernel (``rrqr`` / ``svd``),
  tolerance τ, and every threshold of the paper's §4 setup.
* :mod:`repro.sparse.generators` — the evaluation workloads (3D Laplacians
  and proxies for the paper's SuiteSparse suite).
* :mod:`repro.lowrank` — the compression and extend-add kernels of §3,
  usable standalone on dense blocks.
* :class:`~repro.runtime.telemetry.Telemetry` — opt-in metric/event bus
  (``SolverConfig(telemetry=Telemetry())``) feeding the per-run
  ``RunReport`` of :mod:`repro.analysis.report`.
* :class:`~repro.runtime.spans.SpanProfiler` — opt-in causal span
  profiler (``SolverConfig(profiler=SpanProfiler())``): one trace tree
  per run, identical across sequential and threaded engines, exportable
  to Chrome ``about:tracing`` and speedscope via
  :mod:`repro.analysis.profile` (``docs/observability.md``).
* :class:`~repro.runtime.recovery.RecoveryPolicy` — opt-in self-healing
  (``SolverConfig(recovery=RecoveryPolicy())``): breakdown detection,
  escalation ladders and checkpoint/restart (``docs/robustness.md``).
* :mod:`repro.core.backend` — pluggable kernel backends
  (``SolverConfig(backend="numba")`` / ``$REPRO_BACKEND``) behind a
  column-stable multi-RHS solve path (``docs/performance.md``).
* :class:`~repro.core.variants.BlrVariant` /
  :class:`~repro.core.variants.AdaptivePolicy` — the composable variant
  engine: explicit loop orders (``cuf``/``ucf``/``ufc``/``fuc``), scaled
  compression thresholds, and per-supernode adaptive strategy selection
  (``SolverConfig(strategy="adaptive")``; ``docs/variants.md``).
"""

from repro.config import SolverConfig
from repro.core.backend import (
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.solver import Solver
from repro.core.variants import AdaptivePolicy, BlrVariant
from repro.runtime.recovery import NumericalBreakdown, RecoveryPolicy
from repro.runtime.spans import SpanProfiler
from repro.runtime.telemetry import Telemetry
from repro.core.refinement import gmres, conjugate_gradient, iterative_refinement
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    laplacian_2d,
    laplacian_3d,
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    anisotropic_laplacian_3d,
)

__version__ = "1.0.0"

__all__ = [
    "Solver",
    "SolverConfig",
    "AdaptivePolicy",
    "BlrVariant",
    "SpanProfiler",
    "Telemetry",
    "NumericalBreakdown",
    "RecoveryPolicy",
    "CSCMatrix",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "gmres",
    "conjugate_gradient",
    "iterative_refinement",
    "laplacian_2d",
    "laplacian_3d",
    "convection_diffusion_3d",
    "elasticity_3d",
    "heterogeneous_poisson_3d",
    "anisotropic_laplacian_3d",
    "__version__",
]
