"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``solve``
    Read a Matrix Market file (or generate a built-in workload), factorize
    under the chosen strategy/kernel/tolerance, solve against a right-hand
    side (all-ones by default), optionally refine, and print the Table
    2-style statistics.
``analyze``
    Run only the value-free analysis and print (or render to SVG) the
    symbolic block structure — the Figure 1 view.
``bench``
    Quick strategy comparison on one matrix (dense vs JIT vs MM vs
    adaptive).
``bench-variants``
    Ablation over the BLR variant space: every loop order (cuf/ucf/ufc/
    fuc) crossed with the requested threshold modes, plus the adaptive
    strategy and the dense reference.
``report``
    Render a ``RunReport`` JSON artifact (written by ``solve --report``)
    to markdown, optionally regenerating its SVG figures.
``flame``
    Render a span profile (written by ``solve --profile``) to a
    speedscope flamegraph and, optionally, a Chrome ``trace_event``
    JSON, printing the per-phase rollup.
``diff-report``
    Align two ``RunReport`` artifacts and print a ranked per-phase
    attribution table: which phases got slower or faster, factor byte
    deltas, rank-histogram drift and recovery-action deltas.
``resume``
    Finish a factorization from a checkpoint archive written by
    ``solve --checkpoint`` (same matrix required — the archive stores a
    fingerprint), then solve and optionally refine.
``scenarios``
    Replay the committed matrix-zoo scenarios (zoo case x factotype/
    pivoting x BLR strategy x bare/armed recovery), printing status,
    backward error and pivot statistics per scenario; ``--json`` writes
    the results, ``--baseline`` gates pass/fail flips against the
    committed ``SCENARIOS.json``.
``backends``
    List the registered kernel backends (``--backend`` /
    ``$REPRO_BACKEND`` select one for any command above).
``lint``
    Run the bundled solverlint static-analysis suite (solver-specific
    invariants, contract rules, and the shared-state lockset engine) over
    ``src/repro`` or explicit paths; ``--json`` for machine-readable
    findings.  Requires a source checkout (``tools/solverlint``).

Examples::

    python -m repro solve --generate lap3d:12 --strategy minimal-memory \
        --tolerance 1e-8 --refine
    python -m repro solve --generate lap3d:12 --refine --report run.json
    python -m repro report run.json -o run.md --figures figs/
    python -m repro analyze --generate lap3d:10 --svg structure.svg
    python -m repro solve matrix.mtx --factotype cholesky
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.runtime.faults import FaultInjector

from repro.config import (
    DTYPES,
    FACTOTYPES,
    KERNELS,
    ORDERINGS,
    PIVOTINGS,
    STRATEGIES,
    SolverConfig,
)
from repro.core.solver import Solver
from repro.core.variants import ORDERS, THRESHOLD_MODES
from repro.runtime.stats import KERNEL_CATEGORIES
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    anisotropic_laplacian_3d,
    convection_diffusion_3d,
    elasticity_3d,
    helmholtz_3d,
    heterogeneous_poisson_3d,
    laplacian_2d,
    laplacian_3d,
    saddle_point_kkt,
    stretched_mesh_3d,
)
from repro.sparse.io import read_matrix_market

GENERATORS = {
    "lap2d": lambda k: laplacian_2d(k),
    "lap3d": lambda k: laplacian_3d(k),
    "convdiff": lambda k: convection_diffusion_3d(k),
    "elasticity": lambda k: elasticity_3d(k),
    "hetero": lambda k: heterogeneous_poisson_3d(k),
    "aniso": lambda k: anisotropic_laplacian_3d(k),
    # real symmetric indefinite Helmholtz (ldlt territory)
    "helmholtz": lambda k: helmholtz_3d(k, wavenumber=0.6),
    # damped (absorbing) Helmholtz: complex symmetric, use lu + complex dtype
    "helmholtz-damped": lambda k: helmholtz_3d(k, wavenumber=0.6, damping=0.5),
    # saddle-point KKT (k is the grid side of the A block): symmetric
    # indefinite with an exactly-zero (2,2) block -- ldlt territory
    "kkt": lambda k: saddle_point_kkt(k),
    # boundary-layer graded mesh: SPD with strong through-domain anisotropy
    "stretched": lambda k: stretched_mesh_3d(k),
}


def _load_matrix(args: argparse.Namespace) -> CSCMatrix:
    if args.generate:
        try:
            name, _, size = args.generate.partition(":")
            return GENERATORS[name](int(size or 10))
        except KeyError:
            raise SystemExit(
                f"unknown generator {name!r}; choose from "
                f"{sorted(GENERATORS)} (e.g. lap3d:12)")
    if not args.matrix:
        raise SystemExit("provide a MatrixMarket file or --generate NAME:SIZE")
    return read_matrix_market(args.matrix)


def _config(args: argparse.Namespace) -> SolverConfig:
    recovery = None
    if getattr(args, "recovery", False):
        from repro.runtime.recovery import RecoveryPolicy

        recovery = RecoveryPolicy()
    return SolverConfig.laptop_scale(
        strategy=args.strategy,
        variant=getattr(args, "variant", None),
        threshold_mode=getattr(args, "threshold_mode", "local"),
        recompress_updates=getattr(args, "recompress_updates", True),
        kernel=args.kernel,
        tolerance=args.tolerance,
        factotype=args.factotype,
        pivoting=getattr(args, "pivoting", "static"),
        **({"pivot_u": args.pivot_u}
           if getattr(args, "pivot_u", None) is not None else {}),
        ordering=args.ordering,
        threads=args.threads,
        scheduler=args.scheduler,
        watchdog_timeout=getattr(args, "watchdog", None),
        trace=bool(getattr(args, "trace", None)),
        dtype=args.dtype,
        storage_dtype=args.storage_dtype,
        backend=getattr(args, "backend", None),
        recovery=recovery,
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("matrix", nargs="?", help="MatrixMarket file (.mtx[.gz])")
    p.add_argument("--generate", metavar="NAME:SIZE",
                   help=f"built-in workload: {sorted(GENERATORS)}")
    p.add_argument("--strategy", default="just-in-time", choices=STRATEGIES)
    p.add_argument("--variant", default=None, choices=ORDERS,
                   help="pin an explicit BLR loop order (cuf/ucf/ufc/fuc) "
                        "instead of the strategy alias; requires a BLR "
                        "strategy -- see docs/variants.md")
    p.add_argument("--threshold-mode", default="local",
                   dest="threshold_mode", choices=THRESHOLD_MODES,
                   help="compression threshold scaling (BLR-stability "
                        "betatype): local block norms, 1/p-scaled, or "
                        "global ||A||_F referenced")
    p.add_argument("--no-recompress", action="store_false",
                   dest="recompress_updates",
                   help="skip recompression of low-rank update products "
                        "(faster updates, larger intermediate ranks)")
    p.add_argument("--kernel", default="rrqr", choices=KERNELS)
    p.add_argument("--tolerance", type=float, default=1e-8)
    p.add_argument("--factotype", default="lu", choices=FACTOTYPES)
    p.add_argument("--pivoting", default="static", choices=PIVOTINGS,
                   help="LDLt pivoting mode: static perturbation or "
                        "Bunch-Kaufman-style 1x1/2x2 threshold pivoting "
                        "(indefinite systems) -- see docs/robustness.md")
    p.add_argument("--pivot-u", type=float, default=None, dest="pivot_u",
                   metavar="U",
                   help="threshold-pivoting acceptance threshold in "
                        "(0, 0.5] (default 0.1)")
    p.add_argument("--ordering", default="nested-dissection",
                   choices=ORDERINGS)
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--scheduler", default="dynamic",
                   choices=("dynamic", "static"),
                   help="threaded engine: shared ready queue or "
                        "PaStiX-style static mapping")
    p.add_argument("--dtype", default=None, choices=DTYPES,
                   help="arithmetic precision (default: the matrix dtype; "
                        "float64 for real inputs)")
    p.add_argument("--storage-dtype", default=None, choices=DTYPES,
                   dest="storage_dtype",
                   help="store compressed low-rank factors in this narrower "
                        "dtype (mixed precision), e.g. float32 under a "
                        "float64 factorization")
    p.add_argument("--backend", default=None,
                   help="kernel backend (numpy, numba when installed, or a "
                        "registered custom one; default: $REPRO_BACKEND or "
                        "numpy) -- list with 'repro backends'")
    p.add_argument("--recovery", action="store_true",
                   help="arm the self-healing layer (breakdown detection + "
                        "escalation ladder) with default RecoveryPolicy "
                        "knobs; see docs/robustness.md")


def _arm_chaos(solver: Solver, seed: int) -> "FaultInjector":
    """Arm one transient fault at each of the three recovery sites.

    Picks pseudo-random column blocks (seeded, so runs are reproducible)
    and injects a factor-kernel failure, a NaN-poisoned panel and a
    compression failure — each fires exactly once, then heals.  With
    ``--recovery`` the solve must still complete; this is the CLI face of
    the chaos CI job.
    """
    from repro.runtime.faults import FaultInjector

    ncblk = solver.analyze().ncblk
    rng = np.random.default_rng(seed)
    inj = FaultInjector(seed=seed)
    inj.fail_factor(int(rng.integers(ncblk)), transient=True)
    inj.nan_in_panel(int(rng.integers(ncblk)), transient=True)
    inj.fail_compress(int(rng.integers(ncblk)), transient=True)
    return inj


def cmd_solve(args: argparse.Namespace) -> int:
    a = _load_matrix(args)
    cfg = _config(args)
    if getattr(args, "report", None):
        from repro.runtime.telemetry import Telemetry

        cfg = cfg.with_options(telemetry=Telemetry())
    profiler = None
    if getattr(args, "profile", None):
        from repro.runtime.spans import SpanProfiler

        profiler = SpanProfiler(telemetry=cfg.telemetry)
        cfg = cfg.with_options(profiler=profiler)
    solver = Solver(a, cfg)
    print(f"n = {a.n}, nnz = {a.nnz}, strategy = {args.strategy}/"
          f"{args.kernel}, tau = {args.tolerance:.0e}")
    faults = None
    if args.chaos is not None:
        if not args.recovery:
            raise SystemExit("--chaos requires --recovery (the injected "
                             "faults would simply kill the solve)")
        faults = _arm_chaos(solver, args.chaos)
        print(f"chaos: 3 transient faults armed (seed {args.chaos})")
    t0 = time.perf_counter()
    stats = solver.factorize(faults=faults, checkpoint=args.checkpoint)
    print(f"factorization: {time.perf_counter() - t0:.2f}s "
          f"(analysis {solver.analyze_time:.2f}s)")
    for cat in KERNEL_CATEGORIES:
        t = stats.kernels.time(cat)
        if t > 0:
            print(f"  {cat:<14} {t:8.2f}s  "
                  f"{stats.kernels.flop(cat) / 1e9:8.3f} Gflop")
    print(f"factor size: {stats.factor_nbytes / 1e6:.2f} MB "
          f"({stats.memory_ratio:.2f}x dense), "
          f"peak {stats.peak_nbytes / 1e6:.2f} MB")
    if solver.last_recovery is not None:
        counts = solver.last_recovery.get("counts") or {}
        acted = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"recovery: {acted or 'no actions needed'}")

    if args.trace and solver.tracer is not None:
        solver.tracer.to_json(args.trace)
        summ = solver.tracer.summary()
        print(f"trace: {summ['n_events']} events on "
              f"{summ['n_threads']} thread(s), "
              f"critical path {summ['critical_path']:.3f}s, "
              f"mean utilization {summ['mean_utilization']:.0%} "
              f"-> {args.trace}")
        if args.gantt:
            from repro.analysis.charts import gantt_chart
            gantt_chart(args.gantt, solver.tracer.events(),
                        title=f"factorization tasks ({args.strategy})")
            print(f"gantt chart -> {args.gantt}")

    rng = np.random.default_rng(args.seed)
    b = np.ones(a.n) if args.rhs == "ones" else rng.standard_normal(a.n)
    x = solver.solve(b)
    err = solver.backward_error(x, b)
    print(f"backward error: {err:.2e}")
    if args.refine:
        res = solver.refine(b, tol=1e-12, maxiter=20)
        print(f"refined ({res.iterations} iterations): "
              f"{res.backward_error:.2e}")
        err = res.backward_error

    if profiler is not None:
        profiler.finish()
        problems = profiler.check_invariants()
        if problems:  # pragma: no cover - diagnostic path
            for p in problems:
                print(f"profile invariant violation: {p}", file=sys.stderr)
        doc = profiler.to_json(args.profile)
        print(f"profile: {len(doc['spans'])} spans -> {args.profile} "
              f"(render with 'repro flame {args.profile}')")

    if getattr(args, "report", None):
        from repro.analysis.report import save_run_report

        workload = args.generate or args.matrix
        report = solver.run_report(workload=workload, backward_error=err)
        path = save_run_report(report, args.report)
        print(f"run report -> {path}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.core.serialize import checkpoint_config

    a = _load_matrix(args)
    cfg = checkpoint_config(args.checkpoint_file)
    solver = Solver(a, cfg)
    print(f"n = {a.n}, nnz = {a.nnz}; resuming from {args.checkpoint_file} "
          f"(strategy {cfg.strategy}/{cfg.kernel}, tau {cfg.tolerance:.0e})")
    t0 = time.perf_counter()
    stats = solver.resume_from(args.checkpoint_file)
    print(f"resumed factorization: {time.perf_counter() - t0:.2f}s")
    print(f"factor size: {stats.factor_nbytes / 1e6:.2f} MB "
          f"({stats.memory_ratio:.2f}x dense)")

    rng = np.random.default_rng(args.seed)
    b = np.ones(a.n) if args.rhs == "ones" else rng.standard_normal(a.n)
    x = solver.solve(b)
    print(f"backward error: {solver.backward_error(x, b):.2e}")
    if args.refine:
        res = solver.refine(b, tol=1e-12, maxiter=20)
        print(f"refined ({res.iterations} iterations): "
              f"{res.backward_error:.2e}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import (
        load_run_report,
        render_figures,
        render_markdown,
    )

    report = load_run_report(args.report_file)
    figures = render_figures(report, args.figures) if args.figures else None
    md = render_markdown(report, figures=figures)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(md, encoding="utf-8")
        print(f"markdown -> {args.output}")
        if figures:
            print(f"{len(figures)} figure(s) -> {args.figures}")
    else:
        print(md, end="")
    return 0


def cmd_flame(args: argparse.Namespace) -> int:
    """Render a saved span profile (``solve --profile``) to flamegraphs."""
    from pathlib import Path

    from repro.analysis.profile import (
        export_chrome_trace,
        export_speedscope,
        phase_rollup,
    )

    src = args.span_file
    out = args.output or str(Path(src).with_suffix("")) + ".speedscope.json"
    path = export_speedscope(src, out, name=Path(src).name)
    print(f"speedscope flamegraph -> {path}")
    if args.chrome:
        print(f"chrome trace -> {export_chrome_trace(src, args.chrome)}")
    rollup = phase_rollup(src)
    phases = sorted(rollup["phases"].items(),
                    key=lambda kv: -kv[1]["time"])
    for name, slot in phases:
        print(f"  {name:<12} {slot['time']:8.4f}s  "
              f"({int(slot['count'])} span(s))")
    return 0


def cmd_diff_report(args: argparse.Namespace) -> int:
    """Align two RunReports and print the ranked attribution table."""
    import json
    from pathlib import Path

    from repro.analysis.profile import (
        render_attribution,
        report_attribution,
    )
    from repro.analysis.report import load_run_report

    attribution = report_attribution(load_run_report(args.report_a),
                                     load_run_report(args.report_b))
    if args.json:
        Path(args.json).write_text(
            json.dumps(attribution, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"attribution -> {args.json}")
    print(render_attribution(attribution), end="")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.visualize import (
        structure_stats_table,
        structure_to_ascii,
        structure_to_svg,
    )

    a = _load_matrix(args)
    solver = Solver(a, _config(args))
    symb = solver.analyze()
    print(structure_stats_table(symb))
    if args.svg:
        path = structure_to_svg(symb, args.svg)
        print(f"\nstructure written to {path}")
    if args.ascii:
        print()
        print(structure_to_ascii(symb, width=args.ascii))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    a = _load_matrix(args)
    rng = np.random.default_rng(args.seed)
    b = rng.standard_normal(a.n)
    print(f"{'strategy':>16} {'time(s)':>8} {'mem':>6} {'backward':>10}")
    for strategy in STRATEGIES:
        cfg = _config(args).with_options(strategy=strategy)
        solver = Solver(a, cfg)
        t0 = time.perf_counter()
        stats = solver.factorize()
        dt = time.perf_counter() - t0
        err = solver.backward_error(solver.solve(b), b)
        print(f"{strategy:>16} {dt:8.2f} {stats.memory_ratio:6.3f} "
              f"{err:10.1e}")
    return 0


def cmd_bench_variants(args: argparse.Namespace) -> int:
    """Ablation table over the BLR variant space on one matrix.

    One row per (loop order × threshold mode) combination plus the
    adaptive strategy and the dense reference — factorization time,
    factor size, memory ratio and backward error, optionally dumped as
    JSON for archival/benchdiff-style consumption.  Every run carries a
    span profiler, so the JSON records include a per-phase/per-kernel
    attribution showing *where* the loop orders differ, not just their
    totals.
    """
    import json

    from repro.analysis.profile import phase_rollup
    from repro.runtime.spans import SpanProfiler

    a = _load_matrix(args)
    rng = np.random.default_rng(args.seed)
    b = rng.standard_normal(a.n)
    modes = [m for m in args.modes.split(",") if m]
    for m in modes:
        if m not in THRESHOLD_MODES:
            raise SystemExit(f"unknown threshold mode {m!r}; choose from "
                             f"{list(THRESHOLD_MODES)}")

    runs = [(f"{order}/{mode}",
             dict(strategy="just-in-time", variant=order,
                  threshold_mode=mode))
            for order in ORDERS for mode in modes]
    runs.append(("adaptive", dict(strategy="adaptive", variant=None)))
    runs.append(("dense", dict(strategy="dense", variant=None,
                               threshold_mode="local")))

    print(f"{'variant':>22} {'time(s)':>8} {'MB':>9} {'mem':>6} "
          f"{'backward':>10}")
    records = []
    for label, overrides in runs:
        prof = SpanProfiler()
        cfg = _config(args).with_options(profiler=prof, **overrides)
        solver = Solver(a, cfg)
        t0 = time.perf_counter()
        stats = solver.factorize()
        dt = time.perf_counter() - t0
        err = solver.backward_error(solver.solve(b), b)
        prof.finish()
        rollup = phase_rollup(prof.to_json())
        print(f"{label:>22} {dt:8.2f} {stats.factor_nbytes / 1e6:9.2f} "
              f"{stats.memory_ratio:6.3f} {err:10.1e}")
        records.append({"variant": label, "factor_time": dt,
                        "factor_nbytes": int(stats.factor_nbytes),
                        "memory_ratio": float(stats.memory_ratio),
                        "backward_error": float(err),
                        "phases": {name: slot["time"] for name, slot
                                   in rollup["phases"].items()},
                        "kernels": {name: slot["time"] for name, slot
                                    in rollup["kernels"].items()},
                        "by_order": {name: slot["time"] for name, slot
                                     in rollup["by_order"].items()}})

    if args.json:
        from pathlib import Path

        payload = {"workload": args.generate or args.matrix,
                   "tolerance": args.tolerance, "kernel": args.kernel,
                   "runs": records}
        Path(args.json).write_text(json.dumps(payload, indent=2,
                                              sort_keys=True) + "\n",
                                   encoding="utf-8")
        print(f"variant ablation -> {args.json}")
    return 0


def run_scenarios(seed: int = 0, cases: Optional[list] = None,
                  strategies: tuple = ("dense", "minimal-memory",
                                       "just-in-time")) -> list:
    """Run the matrix-zoo scenario sweep and return one record per run.

    Every zoo case is crossed with the admissible factotypes (Cholesky
    only for declared-positive matrices, LDLᵀ with static *and* threshold
    pivoting for everything), the requested strategies (``cuf`` =
    minimal-memory, ``ucf`` = just-in-time), and the recovery axis: bare
    (no recovery — breakdowns surface as recorded failures) and armed
    (escalation ladder with a zero perturbation budget, so static
    pivoting that perturbs must walk the static→threshold rung).

    Each record carries a stable ``id``, an outcome ``status`` (``"ok"``
    or ``"breakdown:<cause>"``), the raw (unrefined) backward error, the
    pivot statistics and the recovery attempt count — the replay contract
    the committed ``SCENARIOS.json`` baseline pins.
    """
    from repro.runtime.recovery import RecoveryPolicy
    from repro.sparse.generators import zoo

    zoo_cases = zoo()
    if cases:
        known = {c.name for c in zoo_cases}
        unknown = set(cases) - known
        if unknown:
            raise SystemExit(f"unknown zoo case(s) {sorted(unknown)}; "
                             f"choose from {sorted(known)}")
        zoo_cases = [c for c in zoo_cases if c.name in set(cases)]

    blr = dict(cmin=8, frat=0.08, split_size=16, split_min=8,
               compress_min_width=8, compress_min_height=3,
               tolerance=1e-10)
    results = []
    for case in zoo_cases:
        a = case.build()
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(a.n)
        combos = []
        if case.definiteness == "positive":
            combos.append(("cholesky", "static"))
        combos += [("ldlt", "static"), ("ldlt", "threshold")]
        for facto, pivoting in combos:
            for strategy in strategies:
                for armed in (False, True):
                    recovery = (RecoveryPolicy(max_retries=6,
                                               pivot_budget=0.0)
                                if armed else None)
                    cfg = SolverConfig.laptop_scale(
                        strategy=strategy, factotype=facto,
                        pivoting=pivoting, recovery=recovery, **blr)
                    sid = (f"{case.name}/{facto}-{pivoting}/{strategy}/"
                           f"{'recovery' if armed else 'bare'}")
                    rec = {"id": sid, "definiteness": case.definiteness}
                    try:
                        solver = Solver(a, cfg)
                        solver.factorize()
                        x = solver.solve(b)
                        be = float(np.linalg.norm(b - a.matvec(x))
                                   / np.linalg.norm(b))
                        fac = solver.factor
                        rec["status"] = "ok"
                        rec["backward_error"] = be
                        rec["pivoting"] = {
                            "swaps": int(fac.pivot_swaps),
                            "two_by_two": int(fac.pivots_2x2),
                            "perturbations": int(fac.nperturbed),
                            "growth": float(fac.pivot_growth),
                        }
                        if solver.last_recovery is not None:
                            rec["recovery_attempts"] = int(
                                solver.last_recovery.get("attempts", 1))
                    except Exception as exc:
                        cause = getattr(exc, "cause", None)
                        rec["status"] = (f"breakdown:{cause}" if cause
                                         else f"error:{type(exc).__name__}")
                        rec["backward_error"] = None
                    results.append(rec)
    return results


def compare_scenarios(current: list, baseline: dict) -> tuple:
    """Diff a scenario run against the committed baseline.

    Returns ``(failures, warnings)``: a pass/fail flip (or a scenario
    missing from the run) is a failure — the CI gate exits nonzero — while
    backward-error drift beyond 10× (above a 1e-14 noise floor) and
    baseline-less new scenarios only warn.
    """
    base = {r["id"]: r for r in baseline.get("scenarios", [])}
    cur = {r["id"]: r for r in current}
    failures, warnings = [], []
    for sid in sorted(cur):
        rec, old = cur[sid], base.get(sid)
        if old is None:
            warnings.append(f"new scenario (no baseline): {sid}")
            continue
        now_ok = rec["status"] == "ok"
        was_ok = old["status"] == "ok"
        if now_ok != was_ok:
            failures.append(f"{sid}: {old['status']} -> {rec['status']}")
        elif now_ok:
            ob = float(old.get("backward_error") or 0.0)
            nb = float(rec.get("backward_error") or 0.0)
            if nb > 10.0 * max(ob, 1e-14):
                warnings.append(f"{sid}: backward error drift "
                                f"{ob:.1e} -> {nb:.1e}")
    for sid in sorted(set(base) - set(cur)):
        failures.append(f"scenario missing from run: {sid}")
    return failures, warnings


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Replay the matrix-zoo scenario suite and gate against a baseline."""
    import json
    from pathlib import Path

    cases = [c for c in (args.cases or "").split(",") if c] or None
    results = run_scenarios(seed=args.seed, cases=cases)
    n_ok = sum(1 for r in results if r["status"] == "ok")
    for r in results:
        be = r.get("backward_error")
        piv = r.get("pivoting") or {}
        extra = ""
        if piv.get("swaps") or piv.get("two_by_two") or piv.get(
                "perturbations"):
            extra = (f"  [sw={piv['swaps']} 2x2={piv['two_by_two']} "
                     f"pert={piv['perturbations']}]")
        if r.get("recovery_attempts", 1) > 1:
            extra += f"  ({r['recovery_attempts']} attempts)"
        status = (f"BE={be:.1e}" if be is not None else r["status"])
        print(f"  {r['id']:<55} {status}{extra}")
    print(f"{n_ok}/{len(results)} scenarios ok")

    if args.json:
        payload = {"seed": args.seed, "scenarios": results}
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"scenario results -> {args.json}")

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text(
            encoding="utf-8"))
        failures, warnings = compare_scenarios(results, baseline)
        for w in warnings:
            print(f"warning: {w}")
        for f in failures:
            print(f"FAIL: {f}")
        if failures:
            print(f"{len(failures)} scenario regression(s) vs "
                  f"{args.baseline}")
            return 1
        print(f"baseline {args.baseline}: no pass/fail flips "
              f"({len(warnings)} warning(s))")
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    from repro.core.backend import (
        BACKEND_ENV,
        available_backends,
        get_backend,
        numba_available,
    )

    default = os.environ.get(BACKEND_ENV) or "numpy"
    for name in available_backends():
        be = get_backend(name)
        marker = " (default)" if name == default else ""
        print(f"{name}{marker}: {type(be).__name__}")
    if not numba_available():
        print("numba: not installed (JIT backend unavailable)")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Delegate to the bundled solverlint suite (``tools/solverlint``).

    The linter lives outside the installable package — it analyzes the
    source tree, so it only makes sense from a checkout.  Locate the repo
    root relative to this file and fail with a clear message otherwise.
    """
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    if not (root / "tools" / "solverlint").is_dir():
        raise SystemExit(
            "repro lint needs a source checkout: tools/solverlint not "
            f"found under {root}")
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.solverlint.cli import run

    argv = list(args.paths) or [str(root / "src" / "repro")]
    if args.json:
        argv += ["--format", "json"]
    if args.rules:
        argv += ["--rules", args.rules]
    if args.no_scope:
        argv.append("--no-scope")
    if args.suppressions:
        argv += ["--suppressions", args.suppressions]
    if args.check_suppressions:
        argv += ["--check-suppressions", args.check_suppressions]
    return run(argv)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Block Low-Rank supernodal sparse direct solver")
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="factorize and solve")
    _add_common(p_solve)
    p_solve.add_argument("--refine", action="store_true",
                         help="run preconditioned GMRES/CG afterwards")
    p_solve.add_argument("--rhs", choices=("ones", "random"), default="ones")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--trace", metavar="FILE",
                         help="record a task trace and write it as JSON")
    p_solve.add_argument("--gantt", metavar="FILE",
                         help="with --trace: also render a Gantt SVG")
    p_solve.add_argument("--watchdog", type=float, metavar="SECONDS",
                         help="raise DeadlockError (with a pending-counter "
                              "dump) if a threaded run stalls this long")
    p_solve.add_argument("--report", metavar="FILE",
                         help="enable telemetry for the run and write a "
                              "RunReport JSON artifact (render it with "
                              "'repro report FILE')")
    p_solve.add_argument("--profile", metavar="FILE",
                         help="attach the causal span profiler and write "
                              "the span document as JSON (render it with "
                              "'repro flame FILE')")
    p_solve.add_argument("--checkpoint", metavar="FILE",
                         help="snapshot the partial factorization here "
                              "(on faults, and every N supernodes when the "
                              "recovery policy sets a cadence); resume with "
                              "'repro resume FILE'")
    p_solve.add_argument("--chaos", type=int, nargs="?", const=0,
                         default=None, metavar="SEED",
                         help="inject one transient fault at each recovery "
                              "site (factor kernel, panel NaN, compression) "
                              "to exercise the self-healing path; requires "
                              "--recovery")
    p_solve.set_defaults(func=cmd_solve)

    p_an = sub.add_parser("analyze", help="symbolic structure only")
    _add_common(p_an)
    p_an.add_argument("--svg", metavar="FILE",
                      help="render the block structure to an SVG file")
    p_an.add_argument("--ascii", type=int, metavar="WIDTH", default=0,
                      help="print an ASCII rendering of the structure")
    p_an.set_defaults(func=cmd_analyze)

    p_bench = sub.add_parser("bench", help="compare the three strategies")
    _add_common(p_bench)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.set_defaults(func=cmd_bench)

    p_bv = sub.add_parser("bench-variants",
                          help="ablate the BLR variant space (loop orders "
                               "x threshold modes + adaptive + dense)")
    _add_common(p_bv)
    p_bv.add_argument("--seed", type=int, default=0)
    p_bv.add_argument("--modes", default="local",
                      help="comma-separated threshold modes to sweep "
                           f"(from {list(THRESHOLD_MODES)}; default: local)")
    p_bv.add_argument("--json", metavar="FILE",
                      help="also write the ablation table as JSON")
    p_bv.set_defaults(func=cmd_bench_variants)

    p_res = sub.add_parser("resume",
                           help="finish a checkpointed factorization")
    p_res.add_argument("checkpoint_file",
                       help="checkpoint archive written by "
                            "'repro solve --checkpoint'")
    p_res.add_argument("matrix", nargs="?",
                       help="MatrixMarket file (.mtx[.gz]); must be the "
                            "matrix the checkpoint was taken from")
    p_res.add_argument("--generate", metavar="NAME:SIZE",
                       help=f"built-in workload: {sorted(GENERATORS)}")
    p_res.add_argument("--rhs", choices=("ones", "random"), default="ones")
    p_res.add_argument("--seed", type=int, default=0)
    p_res.add_argument("--refine", action="store_true",
                       help="run preconditioned GMRES/CG afterwards")
    p_res.set_defaults(func=cmd_resume)

    p_rep = sub.add_parser("report",
                           help="render a RunReport JSON to markdown")
    p_rep.add_argument("report_file", help="RunReport JSON "
                       "(from 'repro solve --report')")
    p_rep.add_argument("-o", "--output", metavar="FILE",
                       help="write markdown here (default: stdout)")
    p_rep.add_argument("--figures", metavar="DIR",
                       help="also render the telemetry series to SVG "
                            "charts in this directory")
    p_rep.set_defaults(func=cmd_report)

    p_fl = sub.add_parser("flame",
                          help="render a saved span profile to a "
                               "speedscope flamegraph")
    p_fl.add_argument("span_file", help="span JSON written by "
                      "'repro solve --profile'")
    p_fl.add_argument("-o", "--output", metavar="FILE",
                      help="speedscope output path (default: "
                           "<input>.speedscope.json)")
    p_fl.add_argument("--chrome", metavar="FILE",
                      help="also write a Chrome trace_event JSON "
                           "(chrome://tracing / Perfetto)")
    p_fl.set_defaults(func=cmd_flame)

    p_dr = sub.add_parser("diff-report",
                          help="attribute the regression between two "
                               "RunReport artifacts by phase")
    p_dr.add_argument("report_a", help="baseline RunReport JSON")
    p_dr.add_argument("report_b", help="candidate RunReport JSON")
    p_dr.add_argument("--json", metavar="FILE",
                      help="also write the attribution dict as JSON")
    p_dr.set_defaults(func=cmd_diff_report)

    p_sc = sub.add_parser("scenarios",
                          help="replay the matrix-zoo robustness scenarios "
                               "(zoo x strategy x factotype x recovery)")
    p_sc.add_argument("--cases", default=None, metavar="NAME,NAME",
                      help="comma-separated subset of zoo case names "
                           "(default: the full committed zoo)")
    p_sc.add_argument("--seed", type=int, default=0,
                      help="right-hand-side seed (part of the replay "
                           "contract; the committed baseline uses 0)")
    p_sc.add_argument("--json", metavar="FILE",
                      help="write the scenario records as JSON (the "
                           "format SCENARIOS.json commits)")
    p_sc.add_argument("--baseline", metavar="FILE",
                      help="compare against a committed baseline: "
                           "pass/fail flips exit 1, backward-error "
                           "drift >10x warns")
    p_sc.set_defaults(func=cmd_scenarios)

    p_be = sub.add_parser("backends",
                          help="list the registered kernel backends")
    p_be.set_defaults(func=cmd_backends)

    p_lint = sub.add_parser("lint",
                            help="run the solverlint static-analysis suite")
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: the src/repro tree)")
    p_lint.add_argument("--json", action="store_true",
                        help="emit findings as a JSON report")
    p_lint.add_argument("--rules", default=None, metavar="R1,R2",
                        help="comma-separated subset of rules to run")
    p_lint.add_argument("--no-scope", action="store_true", dest="no_scope",
                        help="ignore per-rule directory scoping")
    p_lint.add_argument("--suppressions", metavar="FILE",
                        help="write the suppression inventory report and "
                             "exit")
    p_lint.add_argument("--check-suppressions", metavar="FILE",
                        dest="check_suppressions",
                        help="enforce the suppression budget against FILE")
    p_lint.set_defaults(func=cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
