"""Symbolic factorization pipeline (the paper's steps 1 and 2).

Chains ordering → quotient symbolic → amalgamation → intra-supernode
reordering → splitting → block-structure construction, and returns both the
final permutation and the :class:`~repro.symbolic.structure.SymbolicFactor`
the numerical phase consumes.  Everything here is numerical-value-free: the
paper notes these steps "can be computed once to solve multiple problems
similar in structure but with different numerical values", and the
:class:`~repro.core.solver.Solver` facade indeed caches this result across
factorizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.spans import SpanProfiler

from repro.config import SolverConfig
from repro.sparse.csc import CSCMatrix
from repro.sparse.permute import permute_symmetric
from repro.ordering.graph import Graph
from repro.ordering.nested_dissection import nested_dissection
from repro.ordering.amd import minimum_degree
from repro.ordering.reordering import reorder_supernodes, apply_reordering
from repro.symbolic.structure import (
    SymbolicBlock,
    SymbolicColumnBlock,
    SymbolicFactor,
)
from repro.symbolic.supernodes import (
    Supernode,
    amalgamate,
    detect_fundamental_supernodes,
    split_supernodes,
    supernode_row_sets,
)


@dataclass(frozen=True)
class SymbolicOptions:
    """The subset of :class:`~repro.config.SolverConfig` the analysis uses."""

    ordering: str = "nested-dissection"
    cmin: int = 15
    frat: float = 0.08
    split_size: int = 256
    split_min: int = 128
    compress_min_width: int = 128
    compress_min_height: int = 20
    reorder_supernodes: bool = True

    @classmethod
    def from_config(cls, cfg: SolverConfig) -> "SymbolicOptions":
        return cls(
            ordering=cfg.ordering,
            cmin=cfg.cmin,
            frat=cfg.frat,
            split_size=cfg.split_size,
            split_min=cfg.split_min,
            compress_min_width=cfg.compress_min_width,
            compress_min_height=cfg.compress_min_height,
            reorder_supernodes=cfg.reorder_supernodes,
        )


def symbolic_factorization(a: CSCMatrix,
                           options: Optional[SymbolicOptions] = None,
                           coords: Optional[np.ndarray] = None,
                           profiler: Optional["SpanProfiler"] = None,
                           ) -> Tuple[SymbolicFactor, np.ndarray]:
    """Run the full analysis pipeline on (the pattern of) ``a``.

    Returns ``(symbolic, perm)`` where ``perm`` is new-to-old and
    ``symbolic`` describes the block structure of the factor of
    ``P A Pᵗ``.  ``coords`` (one row per unknown) is required by the
    ``geometric`` ordering and ignored otherwise.  ``profiler``
    (optional) records "ordering" and "symbolic" spans covering the
    paper's step 1 and step 2 respectively.
    """
    options = options or SymbolicOptions()
    pattern = a if a.is_pattern_symmetric() else a.symmetrize_pattern()

    _sid = (profiler.start("ordering", method=options.ordering)
            if profiler is not None else None)
    try:
        perm, intervals = _run_ordering(a, pattern, options, coords)
    finally:
        if profiler is not None:
            profiler.end(_sid)

    _sid = (profiler.start("symbolic") if profiler is not None else None)
    try:
        symb, perm = _run_symbolic(a, pattern, perm, intervals, options)
    except BaseException:
        if profiler is not None:
            profiler.end(_sid)
        raise
    if profiler is not None:
        profiler.end(_sid, ncblk=len(symb.cblks))
    return symb, perm


def _run_ordering(a: CSCMatrix, pattern: CSCMatrix,
                  options: SymbolicOptions,
                  coords: Optional[np.ndarray],
                  ) -> Tuple[np.ndarray,
                             Optional[List[Tuple[int, int]]]]:
    """Step 1: global ordering + supernodal partition."""
    if options.ordering == "nested-dissection":
        g = Graph.from_matrix(pattern)
        nd = nested_dissection(g, cmin=options.cmin)
        perm = nd.perm
        intervals = [(p.start, p.size) for p in nd.partitions]
    elif options.ordering == "geometric":
        if coords is None:
            raise ValueError(
                "ordering='geometric' requires node coordinates "
                "(pass coords= to the Solver or this function)")
        from repro.ordering.geometric import geometric_nested_dissection

        g = Graph.from_matrix(pattern)
        nd = geometric_nested_dissection(g, coords, cmin=options.cmin)
        perm = nd.perm
        intervals = [(p.start, p.size) for p in nd.partitions]
    elif options.ordering == "amd":
        g = Graph.from_matrix(pattern)
        perm = minimum_degree(g)
        intervals = None
    elif options.ordering == "natural":
        perm = np.arange(a.n, dtype=np.int64)
        intervals = None
    else:  # pragma: no cover - guarded by SolverConfig validation
        raise ValueError(f"unknown ordering {options.ordering!r}")
    return perm, intervals


def _run_symbolic(a: CSCMatrix, pattern: CSCMatrix, perm: np.ndarray,
                  intervals: Optional[List[Tuple[int, int]]],
                  options: SymbolicOptions,
                  ) -> Tuple[SymbolicFactor, np.ndarray]:
    """Step 2: quotient symbolic, amalgamation, reordering, splitting."""
    a_perm = permute_symmetric(pattern, perm)
    if intervals is None:
        intervals = detect_fundamental_supernodes(a_perm)

    snodes = supernode_row_sets(a_perm, intervals)
    snodes = amalgamate(snodes, frat=options.frat)

    # --- intra-supernode reordering (TSP of [21]) ------------------------
    if options.reorder_supernodes:
        newpos = reorder_supernodes(snodes)
        if not np.array_equal(newpos, np.arange(a.n)):
            apply_reordering(snodes, newpos)
            # compose: vertex now at position newpos[g] was original perm[g]
            new_perm = np.empty_like(perm)
            new_perm[newpos] = perm
            perm = new_perm

    # --- splitting into column blocks ------------------------------------
    tiles = split_supernodes(snodes, options.split_size, options.split_min)
    symb = build_block_structure(a.n, snodes, tiles, options)
    return symb, perm


def build_block_structure(n: int, snodes: List[Supernode],
                          tiles: List[Tuple[int, int, int]],
                          options: SymbolicOptions) -> SymbolicFactor:
    """Materialize the per-column-block block lists.

    ``tiles`` are ``(first_col, ncols, snode_index)`` triples from
    :func:`~repro.symbolic.supernodes.split_supernodes`.  Every column block
    receives: its dense diagonal block; one block per *later* tile of the
    same supernode (the intra-supernode sub-diagonal, dense within the
    supernodal model); and the supernode's below-diagonal rows chopped into
    maximal contiguous runs, each split at facing column-block boundaries.
    """
    tile_starts = np.array([t[0] for t in tiles], dtype=np.int64)
    tile_ends = np.array([t[0] + t[1] for t in tiles], dtype=np.int64)

    def cblk_of(row: int) -> int:
        return int(np.searchsorted(tile_starts, row, side="right")) - 1

    # group tiles by supernode for intra-supernode blocks
    tiles_of_snode: List[List[int]] = [[] for _ in snodes]
    for ti, (_, _, si) in enumerate(tiles):
        tiles_of_snode[si].append(ti)

    cblks: List[SymbolicColumnBlock] = []
    for ti, (fc, nc, si) in enumerate(tiles):
        cb = SymbolicColumnBlock(id=ti, first_col=fc, ncols=nc, snode=si)
        width_ok = nc >= options.compress_min_width
        # diagonal block
        cb.blocks.append(SymbolicBlock(fc, nc, facing=ti, lr_candidate=False))
        # intra-supernode sub-diagonal blocks (dense diagonal treatment of
        # the supernode => full blocks toward every later tile)
        for tj in tiles_of_snode[si]:
            if tj <= ti:
                continue
            fc2, nc2, _ = tiles[tj]
            cand = (width_ok and nc2 >= options.compress_min_height)
            cb.blocks.append(SymbolicBlock(fc2, nc2, facing=tj,
                                           lr_candidate=cand))
        # off-diagonal rows of the supernode, chopped into runs then at
        # facing-tile boundaries
        rows = snodes[si].rows
        for lo, hi in _contiguous_runs(rows):
            pos = lo
            while pos < hi:
                f = cblk_of(pos)
                cut = min(hi, int(tile_ends[f]))
                nrows = cut - pos
                cand = (width_ok and nrows >= options.compress_min_height)
                cb.blocks.append(SymbolicBlock(pos, nrows, facing=f,
                                               lr_candidate=cand))
                pos = cut
        cblks.append(cb)
    return SymbolicFactor(n, cblks)


def _contiguous_runs(sorted_idx: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal runs ``[lo, hi)`` of consecutive integers in a sorted array."""
    if sorted_idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(sorted_idx) > 1)
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [sorted_idx.size - 1]])
    return [(int(sorted_idx[s]), int(sorted_idx[e]) + 1)
            for s, e in zip(starts, ends)]
