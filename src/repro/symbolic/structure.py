"""Block structure of the factorized matrix.

Follows the paper's notation (§2.1 and Figure 2): the matrix is partitioned
into ``Ncblk`` column blocks; column block ``k`` owns a dense diagonal block
``A(0),k`` plus ``bk`` off-diagonal blocks ``A(j),k``, each spanning the full
width of the column block and a contiguous *row* interval ``(j)`` that lies
entirely inside one facing column block.  With a symmetric pattern the row
block ``Ak,(1:bk)`` of U has exactly the same shape, so the same structure
describes both L and (transposed) U storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class SymbolicBlock:
    """One block of a column block.

    ``first_row`` / ``nrows`` give the global (post-ordering) row interval;
    ``facing`` is the id of the column block whose columns cover those rows
    (for the diagonal block, the column block itself); ``lr_candidate``
    marks blocks eligible for low-rank storage.
    """

    first_row: int
    nrows: int
    facing: int
    lr_candidate: bool = False

    @property
    def end_row(self) -> int:
        return self.first_row + self.nrows

    def rows(self) -> np.ndarray:
        return np.arange(self.first_row, self.end_row, dtype=np.int64)


@dataclass
class SymbolicColumnBlock:
    """A column block: contiguous columns plus its list of blocks.

    ``blocks[0]`` is always the diagonal block.  Off-diagonal blocks are
    sorted by ``first_row`` and never overlap.  ``snode`` records which
    pre-splitting supernode this column block is a tile of (tiles of one
    supernode share ``snode``).
    """

    id: int
    first_col: int
    ncols: int
    snode: int
    blocks: List[SymbolicBlock] = field(default_factory=list)

    @property
    def end_col(self) -> int:
        return self.first_col + self.ncols

    @property
    def diag(self) -> SymbolicBlock:
        return self.blocks[0]

    @property
    def noff(self) -> int:
        """The paper's ``bk``: number of off-diagonal blocks."""
        return len(self.blocks) - 1

    def off_blocks(self) -> Sequence[SymbolicBlock]:
        return self.blocks[1:]

    def total_rows(self) -> int:
        return sum(b.nrows for b in self.blocks)

    def nnz(self) -> int:
        """Dense storage of this column block (one triangle's worth)."""
        return self.total_rows() * self.ncols


class SymbolicFactor:
    """Complete symbolic block structure of L (and Uᵗ).

    Provides the lookups the numerical factorization needs:

    * ``cblk_of_col(j)`` — column block owning global column ``j``;
    * ``find_blocks(t, lo, hi)`` — blocks of column block ``t`` overlapping
      the global row interval ``[lo, hi)`` (with overlap bounds);
    * ``contributors(t)`` — column blocks with a block facing ``t`` (the
      dependency set of the paper's right-looking algorithm).
    """

    def __init__(self, n: int, cblks: List[SymbolicColumnBlock]) -> None:
        self.n = int(n)
        self.cblks = cblks
        self._col_starts = np.array([c.first_col for c in cblks], dtype=np.int64)
        self._validate()
        # per-cblk sorted block starts for fast row-interval lookup
        self._block_starts: List[np.ndarray] = [
            np.array([b.first_row for b in c.blocks], dtype=np.int64)
            for c in cblks
        ]
        self._contributors: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        pos = 0
        for k, c in enumerate(self.cblks):
            if c.id != k:
                raise ValueError("column block ids must be 0..Ncblk-1 in order")
            if c.first_col != pos:
                raise ValueError("column blocks must tile the columns")
            pos = c.end_col
            if not c.blocks:
                raise ValueError(f"column block {k} has no blocks")
            d = c.blocks[0]
            if d.first_row != c.first_col or d.nrows != c.ncols:
                raise ValueError(f"column block {k} has a malformed diagonal block")
            prev_end = d.end_row
            for b in c.blocks[1:]:
                if b.first_row < prev_end:
                    raise ValueError(
                        f"blocks of column block {k} overlap or are unsorted")
                prev_end = b.end_row
        if pos != self.n:
            raise ValueError("column blocks do not cover all columns")

    # -- lookups --------------------------------------------------------
    @property
    def ncblk(self) -> int:
        return len(self.cblks)

    def cblk_of_col(self, j: int) -> int:
        """Column block owning global column ``j``."""
        k = int(np.searchsorted(self._col_starts, j, side="right")) - 1
        return k

    def find_blocks(self, t: int, lo: int, hi: int
                    ) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(block_index, olo, ohi)`` for blocks of column block ``t``
        overlapping rows ``[lo, hi)``; ``[olo, ohi)`` is the overlap."""
        starts = self._block_starts[t]
        blocks = self.cblks[t].blocks
        i = int(np.searchsorted(starts, lo, side="right")) - 1
        if i < 0:
            i = 0
        while i < len(blocks):
            b = blocks[i]
            if b.first_row >= hi:
                break
            olo = max(lo, b.first_row)
            ohi = min(hi, b.end_row)
            if olo < ohi:
                yield i, olo, ohi
            i += 1

    def contributors(self, t: int) -> List[int]:
        """Ids of column blocks with at least one block facing ``t``."""
        if self._contributors is None:
            contr: List[List[int]] = [[] for _ in self.cblks]
            for c in self.cblks:
                seen = set()
                for b in c.off_blocks():
                    if b.facing not in seen:
                        seen.add(b.facing)
                        contr[b.facing].append(c.id)
            self._contributors = contr
        return self._contributors[t]

    def block_etree(self) -> np.ndarray:
        """Parent of each column block: the facing column block of its first
        off-diagonal block (-1 for roots) — the block elimination tree."""
        parent = np.full(self.ncblk, -1, dtype=np.int64)
        for c in self.cblks:
            if c.noff:
                parent[c.id] = c.blocks[1].facing
        return parent

    # -- statistics (Figure 1 / DESIGN experiment fig1) -----------------
    def nnz(self) -> int:
        """Dense nnz of the L structure (diagonal blocks counted in full)."""
        return sum(c.nnz() for c in self.cblks)

    def total_off_blocks(self) -> int:
        return sum(c.noff for c in self.cblks)

    def n_lr_candidates(self) -> int:
        return sum(1 for c in self.cblks for b in c.off_blocks()
                   if b.lr_candidate)

    def summary(self) -> dict:
        widths = [c.ncols for c in self.cblks]
        return {
            "n": self.n,
            "ncblk": self.ncblk,
            "nnz_blocks": self.nnz(),
            "off_blocks": self.total_off_blocks(),
            "lr_candidates": self.n_lr_candidates(),
            "max_width": max(widths) if widths else 0,
            "mean_width": float(np.mean(widths)) if widths else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SymbolicFactor(n={self.n}, ncblk={self.ncblk}, "
                f"off_blocks={self.total_off_blocks()})")
