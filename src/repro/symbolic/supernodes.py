"""Supernode machinery: quotient symbolic elimination, amalgamation,
splitting, and fundamental-supernode detection.

The solver treats every supernode's diagonal block as dense (the PaStiX
convention the paper follows), which lets the symbolic factorization run on
the *quotient* graph of supernodes instead of individual vertices: each
supernode carries the sorted set of its below-diagonal row indices, and the
elimination recurrence

``rows(s) = A_rows(s) ∪ ( ∪_{c : parent(c) = s} rows(c) )  \\  cols(s)``

propagates structure up the supernodal elimination tree in
O(#supernodes · average row-set size) — no per-entry fill enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix
from repro.ordering.elimination_tree import elimination_tree


@dataclass
class Supernode:
    """A supernode: contiguous columns plus its below-diagonal row set.

    ``rows`` holds sorted global row indices strictly beyond ``end``
    (``first_col + ncols``); the diagonal block itself is implicit (dense).
    """

    first_col: int
    ncols: int
    rows: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    parent: int = -1

    @property
    def end(self) -> int:
        return self.first_col + self.ncols

    def nnz(self) -> int:
        """Dense storage of the column block: diagonal + off-diagonal rows."""
        return self.ncols * self.ncols + len(self.rows) * self.ncols


def supernode_row_sets(a: CSCMatrix,
                       intervals: Sequence[Tuple[int, int]]) -> List[Supernode]:
    """Quotient-graph symbolic elimination.

    Parameters
    ----------
    a:
        Pattern-symmetric matrix, *already permuted* into elimination order.
    intervals:
        ``(first_col, ncols)`` pairs tiling ``[0, n)`` in order — the
        supernodal partition (ND separators/leaves or fundamental
        supernodes).

    Returns supernodes with their below-diagonal row sets and parents
    (``parent(s)`` owns the first row of ``rows(s)``).
    """
    n = a.n
    snodes = [Supernode(fc, nc) for fc, nc in intervals]
    starts = np.array([s.first_col for s in snodes], dtype=np.int64)
    _check_partition(n, snodes)

    owner = np.empty(n, dtype=np.int64)
    for i, s in enumerate(snodes):
        owner[s.first_col:s.end] = i

    # initial structure from A: union of below-diagonal rows per supernode
    for i, s in enumerate(snodes):
        cols = range(s.first_col, s.end)
        pieces = []
        for j in cols:
            rows, _ = a.column(j)
            k = int(np.searchsorted(rows, s.end))
            if k < len(rows):
                pieces.append(rows[k:])
        s.rows = (np.unique(np.concatenate(pieces)) if pieces
                  else np.empty(0, dtype=np.int64))

    # eliminate in order, pushing each supernode's rows to its parent
    for i, s in enumerate(snodes):
        if s.rows.size == 0:
            s.parent = -1
            continue
        p = int(owner[s.rows[0]])
        s.parent = p
        parent = snodes[p]
        # rows beyond the parent's columns must appear in the parent too
        k = int(np.searchsorted(s.rows, parent.end))
        if k < s.rows.size:
            push = s.rows[k:]
            if parent.rows.size:
                parent.rows = np.union1d(parent.rows, push)
            else:
                parent.rows = push.copy()
    return snodes


def _check_partition(n: int, snodes: Sequence[Supernode]) -> None:
    pos = 0
    for s in snodes:
        if s.first_col != pos or s.ncols <= 0:
            raise ValueError("supernode intervals must tile [0, n) in order")
        pos = s.end
    if pos != n:
        raise ValueError("supernode intervals must cover [0, n)")


def amalgamate(snodes: List[Supernode], frat: float = 0.08,
               max_width: Optional[int] = None) -> List[Supernode]:
    """Merge small supernodes into adjacent parents (Scotch ``frat``).

    A supernode ``c`` merges into its parent ``p`` when the columns are
    adjacent (``c.end == p.first_col``) and the *extra fill* introduced by
    the merge stays below ``frat`` times the pair's current storage — the
    same column-aggregation rule the paper configures in Scotch ("columns
    aggregation is allowed as long as the fill-in introduced does not exceed
    8% of the original matrix").

    ``max_width`` optionally forbids growing supernodes beyond a bound
    (useful to keep tiles compressible rather than enormous).

    Runs sweeps until no merge applies; parents and row sets are maintained
    incrementally, so the result is again a valid output of
    :func:`supernode_row_sets`.
    """
    if frat <= 0.0:
        return snodes
    snodes = list(snodes)
    changed = True
    while changed:
        changed = False
        merged = _one_amalgamation_sweep(snodes, frat, max_width)
        if merged is not None:
            snodes = merged
            changed = True
    return snodes


def _one_amalgamation_sweep(snodes: List[Supernode], frat: float,
                            max_width: Optional[int]) -> Optional[List[Supernode]]:
    """Perform at most one pass of merges; None when nothing merged."""
    n_merged = 0
    alive = [True] * len(snodes)
    # map from position to current (possibly merged) supernode index
    for i, s in enumerate(snodes):
        if not alive[i]:
            continue
        p = s.parent
        if p < 0 or not alive[p]:
            continue
        parent = snodes[p]
        if s.end != parent.first_col:
            continue  # only adjacent (rightmost-child) merges keep intervals
        w = s.ncols + parent.ncols
        if max_width is not None and w > max_width:
            continue
        before = s.nnz() + parent.nnz()
        k = int(np.searchsorted(s.rows, parent.end))
        rows_beyond = s.rows[k:]
        merged_rows = (np.union1d(parent.rows, rows_beyond)
                       if rows_beyond.size else parent.rows)
        after = w * w + merged_rows.size * w
        if after - before > frat * before:
            continue
        # merge: parent absorbs child's columns
        parent.first_col = s.first_col
        parent.ncols = w
        parent.rows = merged_rows
        alive[i] = False
        n_merged += 1
    if n_merged == 0:
        return None
    kept = [s for i, s in enumerate(snodes) if alive[i]]
    _reindex_parents(kept)
    return kept


def _reindex_parents(snodes: List[Supernode]) -> None:
    """Recompute parents from row sets after a structural change."""
    n = snodes[-1].end if snodes else 0
    owner = np.empty(n, dtype=np.int64)
    for i, s in enumerate(snodes):
        owner[s.first_col:s.end] = i
    for s in snodes:
        s.parent = int(owner[s.rows[0]]) if s.rows.size else -1


def split_supernodes(snodes: Sequence[Supernode], split_size: int,
                     split_min: int) -> List[Tuple[int, int, int]]:
    """Tile wide supernodes for parallelism and BLR clustering.

    Paper §4: "blocks that are larger than 256 are split in blocks of size
    at least 128".  A supernode wider than ``split_size`` is cut into
    ``ceil(width / split_size)`` balanced chunks; balance guarantees each
    chunk is at least ``split_size / 2 >= split_min`` wide.

    Returns ``(first_col, ncols, snode_index)`` triples in column order.
    """
    if split_min > split_size:
        raise ValueError("split_min must be <= split_size")
    out: List[Tuple[int, int, int]] = []
    for si, s in enumerate(snodes):
        w = s.ncols
        if w <= split_size:
            out.append((s.first_col, w, si))
            continue
        nchunks = -(-w // split_size)  # ceil
        base = w // nchunks
        extra = w % nchunks
        pos = s.first_col
        for c in range(nchunks):
            size = base + (1 if c < extra else 0)
            out.append((pos, size, si))
            pos += size
    return out


def detect_fundamental_supernodes(a: CSCMatrix) -> List[Tuple[int, int]]:
    """Fundamental supernodes of an already-permuted matrix.

    Used for the ``amd`` / ``natural`` orderings where no ND partition
    exists.  Computes the vertex elimination tree and the exact column
    structures of L (up-looking, O(fill) — acceptable at the scales where
    these orderings are selected), then groups consecutive columns ``j``,
    ``j+1`` with ``parent(j) = j+1`` and ``|struct(j)| - 1 = |struct(j+1)|``.

    Returns ``(first_col, ncols)`` intervals tiling ``[0, n)``.
    """
    n = a.n
    parent = elimination_tree(a)
    # up-looking symbolic: struct[j] = below-diagonal rows of L column j
    struct: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    children: List[List[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            children[p].append(j)
    for j in range(n):
        rows, _ = a.column(j)
        k = int(np.searchsorted(rows, j + 1))
        pieces = [rows[k:]]
        for c in children[j]:
            sc = struct[c]
            kk = int(np.searchsorted(sc, j + 1))
            pieces.append(sc[kk:])
        struct[j] = np.unique(np.concatenate(pieces)) if pieces else \
            np.empty(0, dtype=np.int64)

    counts = np.array([len(s) for s in struct], dtype=np.int64)
    intervals: List[Tuple[int, int]] = []
    start = 0
    for j in range(1, n + 1):
        extend = (
            j < n
            and parent[j - 1] == j
            and counts[j - 1] - 1 == counts[j]
        )
        if not extend:
            intervals.append((start, j - start))
            start = j
    return intervals
