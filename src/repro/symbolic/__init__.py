"""Symbolic analysis: supernodes and the block structure of L.

Implements the paper's second preprocessing step (§1): from the supernodal
partition produced by nested dissection, predict the block structure of the
factorized matrix — one column block per (possibly split) supernode, a dense
diagonal block and a list of off-diagonal blocks each facing exactly one
column block.  Includes supernode amalgamation (Scotch's ``frat`` column
aggregation), splitting of wide supernodes into tiles (paper: blocks larger
than 256 split into chunks of at least 128), and the low-rank-candidate
flagging rules (minimal width 128 / minimal height 20).
"""

from repro.symbolic.structure import (
    SymbolicBlock,
    SymbolicColumnBlock,
    SymbolicFactor,
)
from repro.symbolic.supernodes import (
    supernode_row_sets,
    amalgamate,
    split_supernodes,
    detect_fundamental_supernodes,
    Supernode,
)
from repro.symbolic.factorization import symbolic_factorization, SymbolicOptions

__all__ = [
    "SymbolicBlock",
    "SymbolicColumnBlock",
    "SymbolicFactor",
    "supernode_row_sets",
    "amalgamate",
    "split_supernodes",
    "detect_fundamental_supernodes",
    "Supernode",
    "symbolic_factorization",
    "SymbolicOptions",
]
