"""Per-run ``RunReport`` artifacts: build, save, render.

A ``RunReport`` is one JSON document that captures *everything measured*
during a solve campaign: the configuration, the Table 2 kernel breakdown,
the compression/rank dissection of §4.1, the telemetry snapshot (memory
high-water timeline, rank-evolution samples, per-iteration refinement
residuals) and the task-trace summary.  It is the single artifact the
``repro report`` CLI renders to markdown, the benchmarks attach to their
history records, and ``tools/benchdiff`` compares across runs.

The document is plain JSON — no pickle, no custom types — so reports are
diffable, archivable and safe to load from CI artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

if TYPE_CHECKING:
    from repro.core.solver import Solver

#: schema tag written into every report (bump on breaking changes)
REPORT_SCHEMA = "repro.run_report/1"


def build_run_report(solver: "Solver", workload: Optional[str] = None,
                     backward_error: Optional[float] = None
                     ) -> Dict[str, Any]:
    """Aggregate one factorized :class:`~repro.core.solver.Solver` into a
    JSON-able ``RunReport`` dict.

    ``workload`` is a free-form label (e.g. ``"lap3d:16"``);
    ``backward_error`` lets the caller attach the residual of a solve it
    already performed.  The refinement section is filled from
    ``solver.last_refinement`` whether or not a telemetry bus was
    attached; the ``telemetry`` section requires
    ``config.telemetry`` to have been set *before* ``factorize()``.
    """
    from dataclasses import asdict, replace

    from repro.analysis.metrics import (
        compression_report,
        rank_histogram,
        rank_histogram_by_level,
    )

    if solver.factor is None:
        raise ValueError("build_run_report needs a factorized solver")
    fac = solver.factor
    stats = fac.stats

    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "workload": workload,
        "matrix": {"n": solver.a.n, "nnz": solver.a.nnz},
        # the telemetry bus and span profiler are live runtime objects;
        # the report stores their *snapshots* below and the config
        # fields as null
        "config": asdict(replace(solver.config, telemetry=None,
                                 profiler=None)),
        "timings": {
            "analyze_time": solver.analyze_time,
            "factor_time": stats.total_time,
            "solve_time": stats.solve_time,
        },
        "stats": stats.summary(),
        "kernels": stats.kernels.as_dict(),
        "nperturbed": fac.nperturbed,
        "pivoting": {
            "mode": solver.config.pivoting,
            "swaps": fac.pivot_swaps,
            "two_by_two": fac.pivots_2x2,
            "perturbations": fac.nperturbed,
            "growth": fac.pivot_growth,
        },
        "compression": compression_report(fac),
        "rank_histogram": {str(r): c
                           for r, c in sorted(rank_histogram(fac).items())},
        "rank_histogram_by_level": {
            str(lvl): {str(r): c for r, c in sorted(per.items())}
            for lvl, per in sorted(rank_histogram_by_level(fac).items())},
        "backward_error": backward_error,
    }

    res = solver.last_refinement
    report["refinement"] = None if res is None else {
        "residual_history": res.residual_history,
        "converged": bool(res.converged),
        "iterations": int(res.iterations),
        "stagnated": bool(res.stagnated),
        "diverged": bool(res.diverged),
        "backward_error": (float(res.backward_error)
                           if res.history else None),
    }

    # resolved BLR variant of the factorization (loop order, threshold
    # mode, effective compression threshold) plus the adaptive policy's
    # per-supernode decisions when strategy="adaptive"
    v = fac.variant
    decisions = fac.decisions
    decision_counts: Optional[Dict[str, int]] = None
    if decisions is not None:
        decision_counts = {}
        for d in decisions:
            decision_counts[d.order] = decision_counts.get(d.order, 0) + 1
    report["variants"] = {
        "strategy": solver.config.strategy,
        "order": None if v is None else v.order,
        "threshold_mode": None if v is None else v.threshold_mode,
        "recompress_updates": None if v is None else v.recompress,
        "comp_tol": fac.comp_tol,
        "comp_norm_ref": fac.comp_norm_ref,
        "global_norm": fac.global_norm,
        "adaptive": decisions is not None,
        "decision_counts": decision_counts,
        "decisions": (None if decisions is None
                      else [d.as_dict() for d in decisions]),
    }

    # self-healing digest of the last recovery-enabled run (already plain
    # JSON: action dicts + counts), or null when recovery never engaged
    report["recovery"] = solver.last_recovery

    tele = solver.config.telemetry
    report["telemetry"] = None if tele is None else tele.snapshot()

    tracer = solver.tracer
    report["trace"] = None if tracer is None else tracer.summary()

    prof = solver.config.profiler
    if prof is None:
        report["profile"] = None
    else:
        from repro.analysis.profile import phase_rollup

        report["profile"] = phase_rollup(prof.to_json())
    return report


def save_run_report(report: Dict[str, Any],
                    path: Union[str, Path]) -> Path:
    """Write a report as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_run_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report saved by :func:`save_run_report` (schema-checked)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "schema" not in data:
        raise ValueError(f"{path}: not a RunReport (no schema field)")
    if data["schema"] != REPORT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported RunReport schema {data['schema']!r}")
    return data


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------

def _fmt(v: Any) -> str:
    if v is None:
        return "—"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0.0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def _fmt_bytes(v: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(v) < 1024.0:
            return f"{v:.1f} {unit}"
        v /= 1024.0
    return f"{v:.1f} TB"


def _table(headers: List[str], rows: List[List[Any]]) -> List[str]:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return out


def render_markdown(report: Dict[str, Any],
                    figures: Optional[List[Path]] = None) -> str:
    """Render a ``RunReport`` dict to a human-readable markdown document.

    ``figures`` (paths from :func:`render_figures`) are embedded as image
    links relative to wherever the markdown is written.
    """
    cfg = report.get("config", {})
    matrix = report.get("matrix", {})
    lines: List[str] = []
    title = report.get("workload") or "solver run"
    lines.append(f"# Run report — {title}")
    lines.append("")
    lines.append(f"Strategy `{cfg.get('strategy')}` / kernel "
                 f"`{cfg.get('kernel')}`, τ = {_fmt(cfg.get('tolerance'))}, "
                 f"factotype `{cfg.get('factotype')}`, "
                 f"threads {cfg.get('threads')}.")
    lines.append("")

    lines.append("## Problem and timings")
    lines.append("")
    t = report.get("timings", {})
    lines += _table(
        ["metric", "value"],
        [["n", matrix.get("n")],
         ["nnz", matrix.get("nnz")],
         ["analyze time (s)", t.get("analyze_time")],
         ["factor time (s)", t.get("factor_time")],
         ["solve time (s)", t.get("solve_time")],
         ["backward error", report.get("backward_error")],
         ["pivot perturbations", report.get("nperturbed")]])
    lines.append("")

    pivoting = report.get("pivoting", {})
    if pivoting.get("mode") == "threshold":
        lines.append("## Pivoting (threshold/2x2)")
        lines.append("")
        lines += _table(
            ["metric", "value"],
            [["pivot swaps", pivoting.get("swaps")],
             ["2x2 pivots", pivoting.get("two_by_two")],
             ["perturbations", pivoting.get("perturbations")],
             ["growth factor", pivoting.get("growth")]])
        lines.append("")

    kernels = report.get("kernels", {})
    if kernels:
        lines.append("## Kernel breakdown (Table 2 rows)")
        lines.append("")
        rows = [[cat, d.get("time"), d.get("flops"), d.get("calls")]
                for cat, d in sorted(kernels.items())]
        lines += _table(["kernel", "time (s)", "flops", "calls"], rows)
        lines.append("")

    comp = report.get("compression")
    if comp:
        lines.append("## Compression")
        lines.append("")
        lines += _table(
            ["metric", "value"],
            [["low-rank blocks", comp.get("n_lowrank_blocks")],
             ["dense blocks", comp.get("n_dense_blocks")],
             ["factor size", _fmt_bytes(comp.get("total_nbytes", 0))],
             ["dense-equivalent size",
              _fmt_bytes(comp.get("dense_factor_nbytes", 0))],
             ["memory ratio", comp.get("memory_ratio")],
             ["mean rank", comp.get("mean_rank")],
             ["max rank", comp.get("max_rank")]])
        lines.append("")

    by_level = report.get("rank_histogram_by_level") or {}
    if by_level:
        lines.append("## Ranks by elimination level")
        lines.append("")
        rows = []
        for lvl, per in sorted(by_level.items(), key=lambda kv: int(kv[0])):
            ranks = sorted(int(r) for r in per)
            nblk = sum(per.values())
            mean = (sum(int(r) * c for r, c in per.items()) / nblk
                    if nblk else 0.0)
            rows.append([lvl, nblk, ranks[0] if ranks else 0,
                         ranks[-1] if ranks else 0, mean])
        lines += _table(["level", "blocks", "min rank", "max rank",
                         "mean rank"], rows)
        lines.append("")

    ref = report.get("refinement")
    if ref:
        lines.append("## Refinement")
        lines.append("")
        hist = ref.get("residual_history") or []
        lines += _table(
            ["metric", "value"],
            [["iterations", ref.get("iterations")],
             ["converged", ref.get("converged")],
             ["final backward error", ref.get("backward_error")]])
        if hist:
            lines.append("")
            lines.append("Residual history: "
                         + ", ".join(_fmt(h) for h in hist))
        lines.append("")

    var = report.get("variants")
    if var:
        lines.append("## BLR variant")
        lines.append("")
        lines += _table(
            ["metric", "value"],
            [["loop order", var.get("order") or "dense"],
             ["threshold mode", var.get("threshold_mode")],
             ["recompress updates", var.get("recompress_updates")],
             ["effective τ", var.get("comp_tol")],
             ["norm reference", var.get("comp_norm_ref")],
             ["‖A‖_F", var.get("global_norm")]])
        counts = var.get("decision_counts") or {}
        if counts:
            lines.append("")
            lines.append("Adaptive per-supernode decisions:")
            lines.append("")
            lines += _table(["order", "supernodes"],
                            [[k, v] for k, v in sorted(counts.items())])
        lines.append("")

    rec = report.get("recovery")
    if rec:
        lines.append("## Recovery")
        lines.append("")
        lines += _table(
            ["metric", "value"],
            [["attempts", rec.get("attempts")],
             ["final tolerance", rec.get("final_tolerance")],
             ["final strategy", rec.get("final_strategy")]])
        counts = rec.get("counts") or {}
        if counts:
            lines.append("")
            lines += _table(["action", "count"],
                            [[k, v] for k, v in sorted(counts.items())])
        lines.append("")

    tele = report.get("telemetry")
    if tele:
        lines.append("## Telemetry")
        lines.append("")
        rows = []
        for name, children in sorted(tele.get("counters", {}).items()):
            for child in children:
                labels = ",".join(f"{k}={v}" for k, v
                                  in sorted(child["labels"].items()))
                rows.append([name, labels or "—", child["value"]])
        if rows:
            lines += _table(["counter", "labels", "value"], rows)
            lines.append("")
        series = tele.get("series", {})
        if series:
            rows = [[name, len(pts)] for name, pts in sorted(series.items())]
            lines += _table(["series", "points"], rows)
            lines.append("")
        lines.append(f"Events emitted: {tele.get('events_emitted', 0)}")
        lines.append("")

    profile = report.get("profile")
    if profile:
        lines.append("## Profile")
        lines.append("")
        meta = profile.get("meta") or {}
        engine = meta.get("engine")
        total = profile.get("total_time")
        head = f"Span total {_fmt(total)} s"
        if engine:
            head += (f" — engine `{engine}`, "
                     f"{meta.get('threads', '?')} thread(s)")
        lines.append(head + ".")
        lines.append("")
        phases = profile.get("phases") or {}
        if phases:
            rows = [[name, d.get("time"), d.get("self_time"),
                     d.get("count")]
                    for name, d in sorted(
                        phases.items(),
                        key=lambda kv: -kv[1].get("time", 0.0))]
            lines += _table(["phase", "time (s)", "self (s)", "spans"],
                            rows)
            lines.append("")
        kern = profile.get("kernels") or {}
        if kern:
            rows = [[name, d.get("time"), d.get("count")]
                    for name, d in sorted(
                        kern.items(),
                        key=lambda kv: -kv[1].get("time", 0.0))]
            lines += _table(["kernel spans", "time (s)", "spans"], rows)
            lines.append("")
        by_level = profile.get("by_level") or {}
        if by_level:
            rows = [[lvl, d.get("time"), d.get("count")]
                    for lvl, d in sorted(by_level.items(),
                                         key=lambda kv: int(kv[0]))]
            lines += _table(["level", "task time (s)", "tasks"], rows)
            lines.append("")

    trace = report.get("trace")
    if trace:
        lines.append("## Task trace")
        lines.append("")
        lines += _table(
            ["metric", "value"],
            [[k, trace[k]] for k in sorted(trace)
             if isinstance(trace[k], (int, float, str, bool))])
        lines.append("")

    if figures:
        lines.append("## Figures")
        lines.append("")
        for fig in figures:
            lines.append(f"![{Path(fig).stem}]({fig})")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def render_figures(report: Dict[str, Any],
                   outdir: Union[str, Path]) -> List[Path]:
    """Render the report's telemetry series as SVG line charts.

    Produces (when the corresponding series has data) the memory
    high-water timeline (Figure 7's y-axis over time), the rank-evolution
    scatter of the Minimal Memory discussion, and the Figure 8-style
    refinement convergence curve.  Returns the written paths.
    """
    from repro.analysis.charts import Series, line_chart

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    tele = report.get("telemetry") or {}
    series = tele.get("series", {})
    written: List[Path] = []

    mem = series.get("memory_highwater") or []
    if len(mem) > 1:
        xs = [p["t"] for p in mem]
        written.append(line_chart(
            outdir / "memory_highwater.svg", xs,
            [Series("peak (MB)", [p["peak"] / 1e6 for p in mem]),
             Series("current (MB)", [p["current"] / 1e6 for p in mem])],
            title="Tracked memory high-water timeline",
            xlabel="seconds", ylabel="MB", markers=False))

    ranks = series.get("rank_evolution") or []
    if len(ranks) > 1:
        xs = [p["t"] for p in ranks]
        written.append(line_chart(
            outdir / "rank_evolution.svg", xs,
            [Series("rank after", [max(p["rank_after"], 0) for p in ranks])],
            title="Rank evolution (compress + recompress sites)",
            xlabel="seconds", ylabel="rank", markers=True))

    ref = (report.get("refinement") or {}).get("residual_history") or []
    if len(ref) > 1:
        written.append(line_chart(
            outdir / "refinement_residual.svg", list(range(len(ref))),
            [Series("backward error", list(ref))],
            title="Refinement convergence",
            xlabel="iteration", ylabel="backward error", log_y=True))
    return written
