"""Rendering of the symbolic block structure (the picture in Figure 1).

The paper's Figure 1 shows the block structure of a factorized 10³
Laplacian: a staircase of dense diagonal blocks with scattered off-diagonal
blocks.  This module regenerates that picture from a
:class:`~repro.symbolic.structure.SymbolicFactor`, either as a standalone
SVG file (no plotting dependency) or as coarse ASCII art for terminals,
optionally colouring low-rank candidate blocks differently — the
"Full Rank / Low Rank" legend of the paper's Figure 3.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.symbolic.structure import SymbolicFactor

#: fill colours: diagonal blocks, dense off-diagonal, low-rank candidates
_DIAG_COLOR = "#2c5f8a"
_DENSE_COLOR = "#c94f42"
_LR_COLOR = "#4fa36c"


def structure_to_svg(symb: SymbolicFactor, path: Union[str, Path],
                     size: int = 800, stroke: float = 0.25) -> Path:
    """Write the block structure as an SVG image; returns the path."""
    scale = size / symb.n
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]

    def rect(r0: int, nr: int, c0: int, nc: int, color: str) -> None:
        parts.append(
            f'<rect x="{c0 * scale:.2f}" y="{r0 * scale:.2f}" '
            f'width="{nc * scale:.2f}" height="{nr * scale:.2f}" '
            f'fill="{color}" stroke="black" stroke-width="{stroke}"/>')

    for cb in symb.cblks:
        d = cb.diag
        rect(d.first_row, d.nrows, cb.first_col, cb.ncols, _DIAG_COLOR)
        for b in cb.off_blocks():
            color = _LR_COLOR if b.lr_candidate else _DENSE_COLOR
            # L block below the diagonal ...
            rect(b.first_row, b.nrows, cb.first_col, cb.ncols, color)
            # ... and its Uᵗ mirror above (symmetric pattern)
            rect(cb.first_col, cb.ncols, b.first_row, b.nrows, color)
    parts.append("</svg>")
    path = Path(path)
    path.write_text("\n".join(parts))
    return path


def structure_to_ascii(symb: SymbolicFactor, width: int = 64) -> str:
    """Coarse terminal rendering: ``#`` diagonal, ``*`` dense off-diagonal
    block, ``o`` low-rank candidate, ``.`` structural zero."""
    n = symb.n
    cells = min(width, n)
    grid = np.full((cells, cells), ".", dtype="<U1")

    def paint(r0: int, nr: int, c0: int, nc: int, ch: str) -> None:
        r1 = max(int(np.ceil((r0 + nr) * cells / n)), int(r0 * cells / n) + 1)
        c1 = max(int(np.ceil((c0 + nc) * cells / n)), int(c0 * cells / n) + 1)
        rs = slice(int(r0 * cells / n), min(r1, cells))
        cs = slice(int(c0 * cells / n), min(c1, cells))
        # never overwrite the diagonal marker
        block = grid[rs, cs]
        block[block != "#"] = ch
        grid[rs, cs] = block

    for cb in symb.cblks:
        for b in cb.off_blocks():
            ch = "o" if b.lr_candidate else "*"
            paint(b.first_row, b.nrows, cb.first_col, cb.ncols, ch)
            paint(cb.first_col, cb.ncols, b.first_row, b.nrows, ch)
    for cb in symb.cblks:
        d = cb.diag
        paint(d.first_row, d.nrows, cb.first_col, cb.ncols, "#")
    return "\n".join("".join(row) for row in grid)


def structure_stats_table(symb: SymbolicFactor) -> str:
    """A small text table of the Figure-1 structural statistics."""
    s = symb.summary()
    lines = [
        f"{'unknowns':<22} {s['n']}",
        f"{'column blocks':<22} {s['ncblk']}",
        f"{'off-diagonal blocks':<22} {s['off_blocks']}",
        f"{'low-rank candidates':<22} {s['lr_candidates']}",
        f"{'block nnz':<22} {s['nnz_blocks']}",
        f"{'widest column block':<22} {s['max_width']}",
        f"{'mean width':<22} {s['mean_width']:.1f}",
    ]
    return "\n".join(lines)
