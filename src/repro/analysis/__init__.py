"""Analytic models and metrics for the evaluation.

:mod:`repro.analysis.complexity` encodes the Θ-expressions of the paper's
Table 1 so the complexity benchmark can compare measured flops against the
model; :mod:`repro.analysis.metrics` provides the evaluation metrics
(backward error, compression rates, rank histograms).
"""

from repro.analysis.complexity import (
    gemm_cost,
    lr2ge_cost,
    lr2lr_cost_rrqr,
    lr2lr_cost_svd,
    solver_flop_model,
)
from repro.analysis.metrics import (
    backward_error,
    compression_report,
    rank_histogram,
)
from repro.analysis.charts import gantt_chart
from repro.analysis.visualize import (
    structure_stats_table,
    structure_to_ascii,
    structure_to_svg,
)

__all__ = [
    "gemm_cost",
    "lr2ge_cost",
    "lr2lr_cost_rrqr",
    "lr2lr_cost_svd",
    "solver_flop_model",
    "backward_error",
    "compression_report",
    "rank_histogram",
    "structure_stats_table",
    "structure_to_ascii",
    "structure_to_svg",
    "gantt_chart",
]
