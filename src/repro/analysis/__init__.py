"""Analytic models and metrics for the evaluation.

:mod:`repro.analysis.complexity` encodes the Θ-expressions of the paper's
Table 1 so the complexity benchmark can compare measured flops against the
model; :mod:`repro.analysis.metrics` provides the evaluation metrics
(backward error, compression rates, rank histograms).
"""

from repro.analysis.complexity import (
    gemm_cost,
    lr2ge_cost,
    lr2lr_cost_rrqr,
    lr2lr_cost_svd,
    solver_flop_model,
)
from repro.analysis.metrics import (
    backward_error,
    cblk_levels,
    compression_report,
    rank_histogram,
    rank_histogram_by_level,
)
from repro.analysis.charts import gantt_chart
from repro.analysis.report import (
    build_run_report,
    load_run_report,
    render_figures,
    render_markdown,
    save_run_report,
)
from repro.analysis.visualize import (
    structure_stats_table,
    structure_to_ascii,
    structure_to_svg,
)

__all__ = [
    "gemm_cost",
    "lr2ge_cost",
    "lr2lr_cost_rrqr",
    "lr2lr_cost_svd",
    "solver_flop_model",
    "backward_error",
    "cblk_levels",
    "compression_report",
    "rank_histogram",
    "rank_histogram_by_level",
    "structure_stats_table",
    "structure_to_ascii",
    "structure_to_svg",
    "gantt_chart",
    "build_run_report",
    "load_run_report",
    "render_figures",
    "render_markdown",
    "save_run_report",
]
