"""The complexity models of Table 1 (paper §3.4).

Each function returns the *main factor* operation count for one update
``C = C − A Bᵗ`` under the given kernel family, using the paper's notation:
``A`` is ``mA x nA`` with rank ``rA``, ``B`` is ``mB x nA`` with rank
``rB``, the target ``C`` is ``mC x nC`` with rank ``rC`` before and ``rC'``
after the update, and ``rAB`` is the rank of the product.

The models are Θ-expressions: constants are chosen to match our kernels'
flop accounting so that ``benchmarks/bench_table1_complexity.py`` can
overlay measured flops on the model curves, but only the *scaling* is
asserted anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass


def gemm_cost(m_a: int, m_b: int, n_a: int) -> float:
    """Dense update (original solver): Θ(mA · mB · nA)."""
    return 2.0 * m_a * m_b * n_a


def lr_product_cost(m_a: int, m_b: int, n_a: int,
                    r_a: int, r_b: int, r_ab: int) -> float:
    """Low-rank product, eqs. (1)-(4): Θ(nA rA rB + mA rA rAB + mB rB rAB)."""
    return (2.0 * n_a * r_a * r_b
            + 2.0 * m_a * r_a * r_ab
            + 2.0 * m_b * r_b * r_ab)


def lr2ge_cost(m_a: int, m_b: int, n_a: int,
               r_a: int, r_b: int, r_ab: int) -> float:
    """Just-In-Time update: product + dense apply, main factor
    Θ(mA · mB · rAB)."""
    return lr_product_cost(m_a, m_b, n_a, r_a, r_b, r_ab) \
        + 2.0 * m_a * m_b * r_ab


def lr2lr_cost_svd(m_c: int, n_c: int, r_c: int, r_ab: int,
                   r_c_new: int) -> float:
    """Minimal Memory + SVD recompression, eqs. (7)-(8): main factor
    Θ(mC (rC + rAB)²)."""
    r = r_c + r_ab
    return (2.0 * (m_c + n_c) * r * r      # the two QRs
            + 22.0 * r ** 3                # SVD of the core
            + 2.0 * (m_c + n_c) * r * r_c_new)


def lr2lr_cost_rrqr(m_c: int, n_c: int, r_c: int, r_ab: int,
                    r_c_new: int) -> float:
    """Minimal Memory + RRQR recompression, eqs. (9)-(12): main factor
    Θ(mC (rC + rAB) rC')."""
    return (2.0 * m_c * r_c * r_ab          # eq. (9)
            + 2.0 * m_c * r_ab * r_ab       # QR of the new directions
            + 2.0 * n_c * r_ab * r_c        # eq. (11) core assembly
            + 4.0 * (r_c + r_ab) * n_c * r_c_new   # truncated RRQR
            + 2.0 * m_c * (r_c + r_ab) * r_c_new)  # eq. (12)


@dataclass
class SolverComplexity:
    """Asymptotic whole-solver costs for a 3D mesh problem (paper §5)."""

    n: int

    @property
    def dense_time(self) -> float:
        """Θ(n²) factorization time for a 3D mesh direct solver."""
        return float(self.n) ** 2

    @property
    def blr_time_target(self) -> float:
        """The Θ(n^{4/3}) target the paper expects from BLR."""
        return float(self.n) ** (4.0 / 3.0)

    @property
    def dense_memory(self) -> float:
        """Θ(n^{4/3}) factor storage of the dense solver."""
        return float(self.n) ** (4.0 / 3.0)

    @property
    def blr_memory_target(self) -> float:
        """The Θ(n log n) storage target."""
        import math

        return self.n * math.log(max(self.n, 2))


def solver_flop_model(n: int, kind: str = "dense") -> float:
    """Whole-factorization flop model for 3D mesh problems.

    ``kind``: ``"dense"`` → Θ(n²); ``"blr"`` → Θ(n^{4/3}) (the paper's §5
    target for a bounded-rank compressed solver).
    """
    c = SolverComplexity(n)
    if kind == "dense":
        return c.dense_time
    if kind == "blr":
        return c.blr_time_target
    raise ValueError(f"unknown kind {kind!r}")
