"""Evaluation metrics: backward error, compression statistics, ranks.

``backward_error`` is the paper's accuracy metric (printed above every bar
of Figures 5/6); ``compression_report``/``rank_histogram`` dissect a
factorization the way §4.1's discussion of ranks and factor sizes does.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.factor import NumericFactor
from repro.lowrank.block import LowRankBlock
from repro.sparse.csc import CSCMatrix


def backward_error(a: CSCMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """``||Ax - b||₂ / ||b||₂``."""
    return float(np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b))


def rank_histogram(fac: NumericFactor) -> Dict[int, int]:
    """Histogram {rank: count} over all low-rank blocks of the factor."""
    hist: Dict[int, int] = {}
    for nc in fac.cblks:
        for blocks in (nc.lblocks, nc.ublocks):
            if blocks is None:
                continue
            for b in blocks:
                if isinstance(b, LowRankBlock):
                    hist[b.rank] = hist.get(b.rank, 0) + 1
    return hist


def cblk_levels(fac: NumericFactor) -> List[int]:
    """Elimination-tree depth of every column block (roots at level 0).

    The block elimination tree is postordered (children precede parents),
    so depths resolve in one reverse sweep.
    """
    parent = fac.symb.block_etree()
    ncblk = fac.symb.ncblk
    levels = [0] * ncblk
    for k in range(ncblk - 1, -1, -1):
        p = int(parent[k])
        levels[k] = 0 if p < 0 else levels[p] + 1
    return levels


def rank_histogram_by_level(fac: NumericFactor) -> Dict[int, Dict[int, int]]:
    """Per-elimination-level rank histograms: {level: {rank: count}}.

    Level 0 is the root separator (the largest, most compressible
    supernodes); deeper levels sit closer to the leaves.  Splitting the
    rank distribution by depth attributes rank growth under LR2LR
    recompression to its place in the tree, as the paper's §4.1 discussion
    does when it blames the Minimal Memory rank inflation on the large
    blocks near the top of the tree.
    """
    levels = cblk_levels(fac)
    hist: Dict[int, Dict[int, int]] = {}
    for k, nc in enumerate(fac.cblks):
        lvl = levels[k]
        for blocks in (nc.lblocks, nc.ublocks):
            if blocks is None:
                continue
            for b in blocks:
                if isinstance(b, LowRankBlock):
                    per = hist.setdefault(lvl, {})
                    per[b.rank] = per.get(b.rank, 0) + 1
    return hist


def compression_report(fac: NumericFactor) -> Dict[str, float]:
    """Summary of where the factor's bytes live.

    Returns compressed/dense block counts, byte totals per class, the
    overall memory ratio, and rank statistics.
    """
    lr_bytes = dense_bytes = diag_bytes = 0
    n_lr = n_dense = 0
    ranks: List[int] = []
    for nc in fac.cblks:
        if nc.diag is not None:
            diag_bytes += nc.diag.nbytes
        if nc.lpanel is not None:
            dense_bytes += nc.lpanel.nbytes
            n_dense += nc.sym.noff
            if nc.upanel is not None:
                dense_bytes += nc.upanel.nbytes
            continue
        for blocks in (nc.lblocks, nc.ublocks):
            if blocks is None:
                continue
            for b in blocks:
                if isinstance(b, LowRankBlock):
                    lr_bytes += b.nbytes
                    n_lr += 1
                    ranks.append(b.rank)
                else:
                    dense_bytes += b.nbytes
                    n_dense += 1
    total = lr_bytes + dense_bytes + diag_bytes
    dense_total = fac.dense_factor_nbytes()
    return {
        "n_lowrank_blocks": n_lr,
        "n_dense_blocks": n_dense,
        "lowrank_nbytes": lr_bytes,
        "dense_nbytes": dense_bytes,
        "diag_nbytes": diag_bytes,
        "total_nbytes": total,
        "dense_factor_nbytes": dense_total,
        "memory_ratio": total / dense_total if dense_total else 1.0,
        "mean_rank": float(np.mean(ranks)) if ranks else 0.0,
        "max_rank": int(max(ranks)) if ranks else 0,
    }
