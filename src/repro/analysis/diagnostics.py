"""Factor-based diagnostics: determinant, inertia, condition estimate.

Classic byproducts a direct solver exposes for free:

* ``slogdet`` — the (sign, log|det|) of A from the diagonal of the factors
  (U's diagonal for LU, L's squared diagonal for Cholesky, D for LDLᵗ);
  with BLR compression the result is exact up to the τ-perturbation of the
  factorization.
* ``inertia`` — (#negative, #zero, #positive) eigenvalues of a symmetric
  matrix from the signs of D in an LDLᵗ factorization (Sylvester's law of
  inertia).
* ``condest`` — a lower bound on κ₁(A) = ‖A‖₁ ‖A⁻¹‖₁ via Hager–Higham
  1-norm power iteration on A⁻¹, using the factorization's solve (and its
  transpose solve) as the operator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.factor import NumericFactor
from repro.core.trisolve import solve_factored
from repro.sparse.csc import CSCMatrix


def factor_slogdet(fac: NumericFactor) -> Tuple[complex, float]:
    """(sign, log|det(A)|) from the factored diagonal blocks.

    For real factorizations ``sign`` is ±1.0 (a float); for complex ones it
    is the unit-modulus phase ``det/|det|`` (numpy's ``slogdet`` convention).
    """
    sign: complex = 1.0
    logdet = 0.0
    for nc in fac.cblks:
        d = np.diag(nc.diag)
        if fac.config.factotype == "cholesky":
            # det = prod(L_ii)^2 = prod(|L_ii|^2): always positive (the
            # Hermitian-Cholesky diagonal is real positive)
            logdet += 2.0 * float(np.sum(np.log(np.abs(d))))
        else:
            # LU (diag of U) and LDLᵗ (D) both live on the packed diagonal
            if d.dtype.kind == "c":
                nz = d[d != 0]
                sign *= complex(np.prod(nz / np.abs(nz)))
                if nz.size < d.size:
                    sign = 0.0
            else:
                sign *= float(np.prod(np.sign(d)))
            logdet += float(np.sum(np.log(np.abs(d))))
    return sign, logdet


def factor_inertia(fac: NumericFactor) -> Tuple[int, int, int]:
    """(n_negative, n_zero, n_positive) from an LDLᵗ factorization.

    By Sylvester's law of inertia the signs of D match the eigenvalue
    signs of the (symmetrically permuted) matrix.  Requires
    ``factotype='ldlt'``; Cholesky implies all-positive by construction.
    """
    if fac.config.factotype == "cholesky":
        n = fac.symb.n
        return (0, 0, n)
    if fac.config.factotype != "ldlt":
        raise ValueError("inertia requires an ldlt (or cholesky) "
                         "factorization")
    neg = zero = pos = 0
    for nc in fac.cblks:
        d = np.diag(nc.diag)
        if d.dtype.kind == "c":
            # Hermitian LDLᴴ forces D real; drop the zero imaginary part
            d = d.real
        neg += int(np.sum(d < 0))
        zero += int(np.sum(d == 0))
        pos += int(np.sum(d > 0))
    return neg, zero, pos


def condest_1norm(a: CSCMatrix, fac: NumericFactor, perm: np.ndarray,
                  maxiter: int = 10) -> float:
    """Hager–Higham estimate of ``κ₁(A)`` using the factorization.

    Runs the classical 1-norm power iteration on A⁻¹: repeatedly solve
    ``A x = e`` and ``Aᵗ z = sign(x)`` until the estimate stalls.  Returns
    ``‖A‖₁ · est(‖A⁻¹‖₁)`` — a lower bound, usually within a small factor
    of the true condition number.  Complex operators need ``A⁻ᴴ`` (the
    Hermitian adjoint); the factored solve exposes the pure transpose, so
    the adjoint is applied by conjugating around it.
    """
    n = a.n
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)

    def solve(v: np.ndarray, trans: bool = False) -> np.ndarray:
        y = solve_factored(fac, v[perm], trans=trans)
        out = np.empty_like(y)
        out[perm] = y
        return out

    complex_arith = fac.dtype.kind == "c"
    x = np.full(n, 1.0 / n,
                dtype=np.complex128 if complex_arith else np.float64)
    est = 0.0
    last_j = -1
    for _ in range(maxiter):
        y = solve(x)
        new_est = float(np.abs(y).sum())
        if complex_arith:
            ay = np.abs(y)
            xi = np.where(ay == 0, 1.0 + 0.0j, y / np.where(ay == 0, 1.0, ay))
            # Hager–Higham on a complex operator needs A⁻ᴴ; the trans solve
            # is the pure transpose, so conjugate around it:
            # A⁻ᴴ ξ = conj(A⁻ᵀ conj(ξ))
            z = np.conj(solve(np.conj(xi), trans=True))
        else:
            xi = np.sign(y)
            xi[xi == 0] = 1.0
            z = solve(xi, trans=True)
        j = int(np.argmax(np.abs(z)))
        if new_est <= est or j == last_j:
            est = max(est, new_est)
            break
        est = new_est
        last_j = j
        x = np.zeros(n, dtype=x.dtype)
        x[j] = 1.0
    return est * a.norm1()
