"""Factor-based diagnostics: determinant, inertia, condition estimate.

Classic byproducts a direct solver exposes for free:

* ``slogdet`` — the (sign, log|det|) of A from the diagonal of the factors
  (U's diagonal for LU, L's squared diagonal for Cholesky, D for LDLᵗ);
  with BLR compression the result is exact up to the τ-perturbation of the
  factorization.
* ``inertia`` — (#negative, #zero, #positive) eigenvalues of a symmetric
  matrix from the signs of D in an LDLᵗ factorization (Sylvester's law of
  inertia).
* ``condest`` — a lower bound on κ₁(A) = ‖A‖₁ ‖A⁻¹‖₁ via Hager–Higham
  1-norm power iteration on A⁻¹, using the factorization's solve (and its
  transpose solve) as the operator.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.factor import NumericFactor
from repro.core.trisolve import solve_factored
from repro.sparse.csc import CSCMatrix


def factor_slogdet(fac: NumericFactor) -> Tuple[complex, float]:
    """(sign, log|det(A)|) from the factored diagonal blocks.

    For real factorizations ``sign`` is ±1.0 (a float); for complex ones it
    is the unit-modulus phase ``det/|det|`` (numpy's ``slogdet`` convention).
    """
    sign: complex = 1.0
    logdet = 0.0
    for nc in fac.cblks:
        d = np.diag(nc.diag)
        if fac.config.factotype == "cholesky":
            # det = prod(L_ii)^2 = prod(|L_ii|^2): always positive (the
            # Hermitian-Cholesky diagonal is real positive)
            logdet += 2.0 * float(np.sum(np.log(np.abs(d))))
        elif fac.config.factotype == "ldlt" and nc.pivd21 is not None:
            # threshold-pivoted block: D is block diagonal, so the 2×2
            # pivots contribute their determinants, not their diagonal
            # entries (which individually can even be zero)
            if d.dtype.kind == "c":
                d = d.real  # Hermitian LDLᴴ: D is Hermitian, dets real
            idx = np.flatnonzero(nc.pivd21)
            pair = np.zeros(d.size, dtype=bool)
            pair[idx] = True
            pair[idx + 1] = True
            singles = d[~pair]
            sign *= float(np.prod(np.sign(singles)))
            logdet += float(np.sum(np.log(np.abs(singles))))
            for j in idx:
                det2 = float(d[j] * d[j + 1]
                             - np.abs(nc.pivd21[j]) ** 2)
                sign *= float(np.sign(det2))
                logdet += float(np.log(np.abs(det2)))
        else:
            # LU (diag of U) and LDLᵗ (D) both live on the packed diagonal
            if d.dtype.kind == "c":
                nz = d[d != 0]
                sign *= complex(np.prod(nz / np.abs(nz)))
                if nz.size < d.size:
                    sign = 0.0
            else:
                sign *= float(np.prod(np.sign(d)))
            logdet += float(np.sum(np.log(np.abs(d))))
    return sign, logdet


def factor_inertia(fac: NumericFactor) -> Tuple[int, int, int]:
    """(n_negative, n_zero, n_positive) from an LDLᵗ factorization.

    By Sylvester's law of inertia the signs of D match the eigenvalue
    signs of the (symmetrically permuted) matrix.  Requires
    ``factotype='ldlt'``; Cholesky implies all-positive by construction.

    Exact zeros in D are counted explicitly (a singular matrix reports a
    nonzero ``n_zero`` instead of misclassifying the eigenvalue by a sign
    test), and 2×2 pivot blocks from threshold pivoting are classified by
    determinant and trace: a negative determinant is one eigenvalue of
    each sign (the canonical Bunch–Kaufman 2×2), a positive one puts both
    on the side of the trace, and a singular block contributes one zero
    plus the sign of its trace.
    """
    if fac.config.factotype == "cholesky":
        n = fac.symb.n
        return (0, 0, n)
    if fac.config.factotype != "ldlt":
        raise ValueError("inertia requires an ldlt (or cholesky) "
                         "factorization")
    neg = zero = pos = 0
    for nc in fac.cblks:
        d = np.diag(nc.diag)
        if d.dtype.kind == "c":
            # Hermitian LDLᴴ forces D real; drop the zero imaginary part
            d = d.real
        if nc.pivd21 is not None:
            idx = np.flatnonzero(nc.pivd21)
            pair = np.zeros(d.size, dtype=bool)
            pair[idx] = True
            pair[idx + 1] = True
            for j in idx:
                det2 = float(d[j] * d[j + 1] - np.abs(nc.pivd21[j]) ** 2)
                trace = float(d[j] + d[j + 1])
                if det2 < 0:
                    neg += 1
                    pos += 1
                elif det2 > 0:
                    if trace > 0:
                        pos += 2
                    else:
                        neg += 2
                else:
                    zero += 1
                    if trace > 0:
                        pos += 1
                    elif trace < 0:
                        neg += 1
                    else:
                        zero += 1
            d = d[~pair]
        neg += int(np.sum(d < 0))
        zero += int(np.sum(d == 0))
        pos += int(np.sum(d > 0))
    return neg, zero, pos


def condest_1norm(a: CSCMatrix, fac: NumericFactor, perm: np.ndarray,
                  maxiter: int = 10) -> float:
    """Hager–Higham estimate of ``κ₁(A)`` using the factorization.

    Runs the classical 1-norm power iteration on A⁻¹: repeatedly solve
    ``A x = e`` and ``Aᵗ z = sign(x)`` until the estimate stalls.  Returns
    ``‖A‖₁ · est(‖A⁻¹‖₁)`` — a lower bound, usually within a small factor
    of the true condition number.  Complex operators need ``A⁻ᴴ`` (the
    Hermitian adjoint); the factored solve exposes the pure transpose, so
    the adjoint is applied by conjugating around it.
    """
    n = a.n
    iperm = np.empty(n, dtype=np.int64)
    iperm[perm] = np.arange(n)

    def solve(v: np.ndarray, trans: bool = False) -> np.ndarray:
        y = solve_factored(fac, v[perm], trans=trans)
        out = np.empty_like(y)
        out[perm] = y
        return out

    complex_arith = fac.dtype.kind == "c"
    x = np.full(n, 1.0 / n,
                dtype=np.complex128 if complex_arith else np.float64)
    est = 0.0
    last_j = -1
    for _ in range(maxiter):
        y = solve(x)
        new_est = float(np.abs(y).sum())
        if complex_arith:
            ay = np.abs(y)
            xi = np.where(ay == 0, 1.0 + 0.0j, y / np.where(ay == 0, 1.0, ay))
            # Hager–Higham on a complex operator needs A⁻ᴴ; the trans solve
            # is the pure transpose, so conjugate around it:
            # A⁻ᴴ ξ = conj(A⁻ᵀ conj(ξ))
            z = np.conj(solve(np.conj(xi), trans=True))
        else:
            xi = np.sign(y)
            xi[xi == 0] = 1.0
            z = solve(xi, trans=True)
        j = int(np.argmax(np.abs(z)))
        if new_est <= est or j == last_j:
            est = max(est, new_est)
            break
        est = new_est
        last_j = j
        x = np.zeros(n, dtype=x.dtype)
        x[j] = 1.0
    return est * a.norm1()
