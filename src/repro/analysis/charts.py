"""Dependency-free SVG charts for the evaluation figures.

The paper's evaluation is communicated through bar charts (Figures 5 and 6:
grouped bars with the backward error printed above each bar) and line
charts (Figure 7: memory vs problem size; Figure 8: convergence on a log
scale).  This module renders both chart families as standalone SVG files so
``benchmarks/make_figures.py`` can regenerate the *figures themselves* —
not just their numbers — without any plotting dependency.

Only the features those figures need are implemented: grouped bars,
optional per-bar labels, linear/log y axes, legends, reference lines —
plus :func:`gantt_chart`, which renders a
:class:`~repro.runtime.trace.TaskTracer` task trace as per-thread lanes
(the runtime-observability view of ``docs/observability.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

#: categorical palette (colour-blind friendly)
PALETTE = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
           "#aa3377", "#bbbbbb"]

_FONT = 'font-family="Helvetica, Arial, sans-serif"'


@dataclass
class Series:
    """One legend entry: a name plus one value per category/x-position."""

    name: str
    values: Sequence[float]
    labels: Optional[Sequence[str]] = None  # per-value annotations


def _esc(s: str) -> str:
    return (str(s).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class _Canvas:
    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]

    def rect(self, x: float, y: float, w: float, h: float, fill: str,
             opacity: float = 1.0) -> None:
        self.parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}" fill-opacity="{opacity}"/>')

    def line(self, x1: float, y1: float, x2: float, y2: float,
             stroke: str = "#444", width: float = 1.0,
             dash: Optional[str] = None) -> None:
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" '
            f'y2="{y2:.2f}" stroke="{stroke}" stroke-width="{width}"{d}/>')

    def polyline(self, points: Sequence[Tuple[float, float]], stroke: str,
                 width: float = 2.0) -> None:
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>')

    def circle(self, x: float, y: float, r: float, fill: str) -> None:
        self.parts.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" fill="{fill}"/>')

    def text(self, x: float, y: float, s: str, size: int = 12,
             anchor: str = "middle", rotate: Optional[float] = None,
             color: str = "#222") -> None:
        rot = (f' transform="rotate({rotate} {x:.2f} {y:.2f})"'
               if rotate else "")
        self.parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" {_FONT} font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}"{rot}>{_esc(s)}</text>')

    def save(self, path: Union[str, Path]) -> Path:
        self.parts.append("</svg>")
        path = Path(path)
        path.write_text("\n".join(self.parts))
        return path


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        if raw <= mult * mag:
            step = mult * mag
            break
    start = math.floor(lo / step) * step
    end = math.ceil(hi / step) * step
    ticks = []
    t = start
    while t <= end + 1e-12:
        if t >= lo - 1e-12:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def bar_chart(path: Union[str, Path], categories: Sequence[str],
              series: Sequence[Series], title: str = "",
              ylabel: str = "", width: int = 900, height: int = 480,
              reference_line: Optional[float] = None) -> Path:
    """Grouped bar chart with optional per-bar labels (Figures 5/6 style).

    ``reference_line`` draws a dashed horizontal line (the paper's ratio-1
    guide).  Per-bar ``Series.labels`` are printed vertically above the
    bars, like the backward errors of Figures 5 and 6.
    """
    margin_l, margin_r, margin_t, margin_b = 70, 20, 50, 60
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    cv = _Canvas(width, height)

    vmax = max((max(s.values) for s in series if len(s.values)), default=1.0)
    if reference_line is not None:
        vmax = max(vmax, reference_line)
    vmax *= 1.25  # headroom for labels
    ticks = _nice_ticks(0.0, vmax)
    vmax = ticks[-1]

    def ypix(v: float) -> float:
        return margin_t + plot_h * (1.0 - v / vmax)

    # axes + ticks
    cv.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    cv.line(margin_l, margin_t + plot_h, margin_l + plot_w,
            margin_t + plot_h)
    for t in ticks:
        y = ypix(t)
        cv.line(margin_l - 4, y, margin_l, y)
        cv.line(margin_l, y, margin_l + plot_w, y, stroke="#ddd", width=0.5)
        cv.text(margin_l - 8, y + 4, f"{t:g}", size=11, anchor="end")
    if title:
        cv.text(width / 2, 24, title, size=15)
    if ylabel:
        cv.text(18, margin_t + plot_h / 2, ylabel, size=12, rotate=-90)

    ncat = len(categories)
    nser = max(len(series), 1)
    group_w = plot_w / max(ncat, 1)
    bar_w = 0.8 * group_w / nser
    for ci, cat in enumerate(categories):
        gx = margin_l + ci * group_w
        for si, s in enumerate(series):
            if ci >= len(s.values):
                continue
            v = s.values[ci]
            x = gx + 0.1 * group_w + si * bar_w
            y = ypix(v)
            cv.rect(x, y, bar_w * 0.92, margin_t + plot_h - y,
                    PALETTE[si % len(PALETTE)], opacity=0.9)
            if s.labels is not None and ci < len(s.labels):
                cv.text(x + bar_w / 2, y - 6, s.labels[ci], size=9,
                        rotate=-60)
        cv.text(gx + group_w / 2, margin_t + plot_h + 18, cat, size=12)

    if reference_line is not None:
        y = ypix(reference_line)
        cv.line(margin_l, y, margin_l + plot_w, y, stroke="#999",
                width=1.0, dash="6,4")

    # legend
    lx = margin_l + 8
    for si, s in enumerate(series):
        cv.rect(lx, margin_t - 18, 12, 12, PALETTE[si % len(PALETTE)])
        cv.text(lx + 16, margin_t - 8, s.name, size=11, anchor="start")
        lx += 26 + 7 * len(s.name)
    return cv.save(path)


def line_chart(path: Union[str, Path], x_values: Sequence[float],
               series: Sequence[Series], title: str = "",
               xlabel: str = "", ylabel: str = "", log_y: bool = False,
               width: int = 900, height: int = 480,
               markers: bool = True) -> Path:
    """Multi-series line chart (Figures 7/8 style); ``log_y`` for Fig 8."""
    margin_l, margin_r, margin_t, margin_b = 80, 20, 50, 60
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    cv = _Canvas(width, height)

    all_vals = [v for s in series for v in s.values
                if v is not None and (not log_y or v > 0)]
    if not all_vals:
        all_vals = [1.0]
    vmin, vmax = min(all_vals), max(all_vals)
    if log_y:
        lo = math.floor(math.log10(max(vmin, 1e-300)))
        hi = math.ceil(math.log10(vmax))
        if hi == lo:
            hi = lo + 1
        ticks = [10.0 ** e for e in range(lo, hi + 1)]

        def ypix(v: float) -> float:
            f = (math.log10(v) - lo) / (hi - lo)
            return margin_t + plot_h * (1.0 - f)
    else:
        ticks = _nice_ticks(0.0 if vmin >= 0 else vmin, vmax)
        lo2, hi2 = ticks[0], ticks[-1]

        def ypix(v: float) -> float:
            return margin_t + plot_h * (1.0 - (v - lo2) / (hi2 - lo2))

    xmin, xmax = min(x_values), max(x_values)
    span = (xmax - xmin) or 1.0

    def xpix(x: float) -> float:
        return margin_l + plot_w * (x - xmin) / span

    cv.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    cv.line(margin_l, margin_t + plot_h, margin_l + plot_w,
            margin_t + plot_h)
    for t in ticks:
        y = ypix(t)
        cv.line(margin_l - 4, y, margin_l, y)
        cv.line(margin_l, y, margin_l + plot_w, y, stroke="#ddd", width=0.5)
        label = f"1e{int(math.log10(t))}" if log_y else f"{t:g}"
        cv.text(margin_l - 8, y + 4, label, size=11, anchor="end")
    for x in x_values:
        cv.text(xpix(x), margin_t + plot_h + 18, f"{x:g}", size=11)
    if title:
        cv.text(width / 2, 24, title, size=15)
    if xlabel:
        cv.text(margin_l + plot_w / 2, height - 14, xlabel, size=12)
    if ylabel:
        cv.text(20, margin_t + plot_h / 2, ylabel, size=12, rotate=-90)

    for si, s in enumerate(series):
        color = PALETTE[si % len(PALETTE)]
        pts = [(xpix(x), ypix(v)) for x, v in zip(x_values, s.values)
               if v is not None and (not log_y or v > 0)]
        if len(pts) > 1:
            cv.polyline(pts, color)
        if markers:
            for x, y in pts:
                cv.circle(x, y, 3.2, color)

    ly = margin_t + 6
    for si, s in enumerate(series):
        color = PALETTE[si % len(PALETTE)]
        cv.line(margin_l + plot_w - 150, ly, margin_l + plot_w - 126, ly,
                stroke=color, width=2.5)
        cv.text(margin_l + plot_w - 120, ly + 4, s.name, size=11,
                anchor="start")
        ly += 18
    return cv.save(path)


#: stable colour assignment for the trace event kinds: the classic
#: factor/update pair plus the PR-7 variant kinds — "compress" (the ufc
#: post-panel compression pass) and "finalize" (the fuc
#: compress-after-updates pass) — so the variant lab's Gantt lanes are
#: legible instead of falling through to the hashed generic bucket
_GANTT_KIND_COLORS = {"factor": PALETTE[0], "update": PALETTE[1],
                      "compress": PALETTE[2], "finalize": PALETTE[5]}


def gantt_chart(path: Union[str, Path], events: Sequence[Any],
                title: str = "",
                width: int = 1000, lane_height: int = 26) -> Path:
    """Render a task trace as a per-thread Gantt chart.

    ``events`` is a sequence of :class:`~repro.runtime.trace.TraceEvent`
    (or equivalent dicts, e.g. straight out of ``TaskTracer.to_json()``):
    one lane per thread, one rectangle per task, coloured by task kind
    (factor vs update).  Rectangles wide enough to be readable are labelled
    with their column block id.
    """
    evs = []
    for ev in events:
        if isinstance(ev, dict):
            evs.append((ev["thread"], ev["kind"], ev["cblk"],
                        ev["t0"], ev["t1"]))
        else:
            evs.append((ev.thread, ev.kind, ev.cblk, ev.t0, ev.t1))
    threads = sorted({thread for thread, *_ in evs})
    margin_l, margin_r, margin_t, margin_b = 70, 20, 50, 46
    plot_w = width - margin_l - margin_r
    height = margin_t + margin_b + max(len(threads), 1) * lane_height
    cv = _Canvas(width, height)

    t_lo = min((t0 for *_, t0, _ in evs), default=0.0)
    t_hi = max((t1 for *_, _, t1 in evs), default=1.0)
    span = (t_hi - t_lo) or 1.0

    def xpix(t: float) -> float:
        return margin_l + plot_w * (t - t_lo) / span

    lane_of = {tid: i for i, tid in enumerate(threads)}
    for tid in threads:
        y = margin_t + lane_of[tid] * lane_height
        cv.text(margin_l - 8, y + lane_height * 0.65, f"thread {tid}",
                size=11, anchor="end")
        cv.line(margin_l, y, margin_l + plot_w, y, stroke="#eee", width=0.5)
    cv.line(margin_l, margin_t + len(threads) * lane_height,
            margin_l + plot_w, margin_t + len(threads) * lane_height)

    kinds_seen = []
    for thread, kind, cblk, t0, t1 in evs:
        color = _GANTT_KIND_COLORS.get(
            kind, PALETTE[(2 + hash(kind)) % len(PALETTE)])
        if kind not in kinds_seen:
            kinds_seen.append(kind)
        y = margin_t + lane_of[thread] * lane_height + 3
        x0, x1 = xpix(t0), xpix(t1)
        w = max(x1 - x0, 0.6)
        cv.rect(x0, y, w, lane_height - 6, color, opacity=0.85)
        if w > 26:
            cv.text(x0 + w / 2, y + (lane_height - 6) * 0.72, str(cblk),
                    size=9, color="white")

    # time axis (seconds from trace origin)
    for t in _nice_ticks(t_lo, t_hi):
        x = xpix(t)
        if x > margin_l + plot_w + 1:
            continue
        y = margin_t + len(threads) * lane_height
        cv.line(x, y, x, y + 4)
        cv.text(x, y + 16, f"{t:g}", size=10)
    cv.text(margin_l + plot_w / 2, height - 6, "seconds", size=11)
    if title:
        cv.text(width / 2, 24, title, size=15)
    lx = margin_l + 8
    for kind in kinds_seen:
        color = _GANTT_KIND_COLORS.get(
            kind, PALETTE[(2 + hash(kind)) % len(PALETTE)])
        cv.rect(lx, margin_t - 18, 12, 12, color)
        cv.text(lx + 16, margin_t - 8, kind, size=11, anchor="start")
        lx += 30 + 7 * len(kind)
    return cv.save(path)
