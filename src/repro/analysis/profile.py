"""Span-profile analysis: rollups, exporters, regression attribution.

Consumes the version-1 span documents written by
:meth:`repro.runtime.spans.SpanProfiler.to_json` and turns them into

* :func:`phase_rollup` — the per-phase / per-level / per-order time
  attribution folded into ``RunReport`` (the "profile" section);
* :func:`export_chrome_trace` — Chrome ``trace_event`` JSON
  (load via ``chrome://tracing`` or https://ui.perfetto.dev);
* :func:`export_speedscope` — a speedscope-format flamegraph
  (https://www.speedscope.app, evented profiles, one per thread);
* :func:`report_attribution` / :func:`render_attribution` — the ranked
  A-vs-B regression table behind ``repro diff-report`` and the
  guilty-phase notes in ``tools/benchdiff``.

This module is deliberately **stdlib-only and self-contained** (no
``repro`` imports, mirroring the SVG backend of ``analysis/charts.py``):
``tools/benchdiff`` loads it standalone via ``importlib`` so CI can
attribute a bench-gate failure without importing the numpy-backed
solver package.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

#: pipeline phases, in execution order (direct children of the root span)
PHASES = ("analyze", "ordering", "symbolic", "assemble", "factorize",
          "solve", "trisolve", "refinement")

#: per-cblk kernel span names recorded inside the factorize phase
KERNELS = ("task", "factor", "compress", "update", "finalize")

_SpanSource = Union[str, Path, Mapping[str, Any],
                    Sequence[Mapping[str, Any]]]


def _spans_of(source: _SpanSource) -> List[Dict[str, Any]]:
    """Normalize a span source to a list of span dicts.

    Accepts a path to a ``to_json`` file, the document dict itself, or a
    bare list of span dicts (each shaped like ``Span.to_dict()``).
    """
    if isinstance(source, (str, Path)):
        source = json.loads(Path(source).read_text(encoding="utf-8"))
    if isinstance(source, Mapping):
        version = source.get("version")
        if version != 1:
            raise ValueError(f"unsupported span document version "
                             f"{version!r}")
        spans = source.get("spans", [])
    else:
        spans = list(source)
    out = []
    for raw in spans:
        s = dict(raw)
        s.setdefault("attrs", {})
        s.setdefault("link", "child")
        out.append(s)
    return out


def _meta_of(source: _SpanSource) -> Dict[str, Any]:
    if isinstance(source, (str, Path)):
        source = json.loads(Path(source).read_text(encoding="utf-8"))
    if isinstance(source, Mapping):
        return dict(source.get("meta", {}))
    return {}


def _duration(s: Mapping[str, Any]) -> float:
    return max(float(s["t1"]) - float(s["t0"]), 0.0)


def _bucket(table: Dict[str, Dict[str, float]], key: str,
            dur: float) -> None:
    slot = table.setdefault(key, {"time": 0.0, "count": 0})
    slot["time"] += dur
    slot["count"] += 1


def phase_rollup(source: _SpanSource) -> Dict[str, Any]:
    """Aggregate a span document into the RunReport "profile" section.

    Returns a plain-JSON dict::

        {"total_time":  <root span duration>,
         "meta":        {engine, threads, ...},
         "phases":      {name: {"time", "self_time", "count"}},
         "kernels":     {name: {"time", "count"}},
         "by_level":    {"<level>": {"time", "count"}},   # task spans
         "by_order":    {"<order>": {"time", "count"}}}   # task spans

    ``self_time`` is the phase's duration minus the time of its direct
    children (a phase that only dispatches kernels has near-zero self
    time).  ``by_level`` / ``by_order`` sum *task* spans — the per-cblk
    fan-in units — keyed by their elimination-tree depth and resolved
    loop order.
    """
    spans = _spans_of(source)
    by_id = {int(s["span_id"]): s for s in spans}
    child_time: Dict[int, float] = {}
    for s in spans:
        pid = s.get("parent_id")
        if pid is not None and s.get("link", "child") == "child":
            child_time[int(pid)] = child_time.get(int(pid), 0.0) \
                + _duration(s)

    roots = [s for s in spans if s.get("parent_id") is None]
    total = sum(_duration(s) for s in roots)

    phases: Dict[str, Dict[str, float]] = {}
    kernels: Dict[str, Dict[str, float]] = {}
    by_level: Dict[str, Dict[str, float]] = {}
    by_order: Dict[str, Dict[str, float]] = {}
    for s in spans:
        name = str(s["name"])
        dur = _duration(s)
        pid = s.get("parent_id")
        parent = by_id.get(int(pid)) if pid is not None else None
        if parent is not None and parent.get("parent_id") is None:
            # direct child of the root = pipeline phase
            _bucket(phases, name, dur)
            sid = int(s["span_id"])
            slot = phases[name]
            slot["self_time"] = slot.get("self_time", 0.0) \
                + max(dur - child_time.get(sid, 0.0), 0.0)
        if name in KERNELS:
            _bucket(kernels, name, dur)
        if name == "task":
            attrs = s.get("attrs", {})
            if "level" in attrs:
                _bucket(by_level, str(attrs["level"]), dur)
            if "order" in attrs:
                _bucket(by_order, str(attrs["order"]), dur)
    return {
        "total_time": total,
        "meta": _meta_of(source),
        "phases": phases,
        "kernels": kernels,
        "by_level": by_level,
        "by_order": by_order,
    }


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------

def export_chrome_trace(source: _SpanSource,
                        path: Union[str, Path]) -> Path:
    """Write a Chrome ``trace_event`` JSON file (complete "X" events).

    Timestamps are microseconds since the profiler origin; each recorded
    thread becomes a ``tid`` row, the span link kind lands in ``cat``
    and the attributes in ``args`` — so the causal hand-off edges stay
    inspectable in the viewer.
    """
    spans = _spans_of(source)
    events: List[Dict[str, Any]] = []
    for s in spans:
        events.append({
            "name": str(s["name"]),
            "ph": "X",
            "ts": float(s["t0"]) * 1e6,
            "dur": _duration(s) * 1e6,
            "pid": 1,
            "tid": int(s.get("thread", 0)),
            "cat": str(s.get("link", "child")),
            "args": dict(s.get("attrs", {})),
        })
    doc = {"traceEvents": events, "displayTimeUnit": "ms",
           "otherData": _meta_of(source)}
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _frame_name(s: Mapping[str, Any]) -> str:
    name = str(s["name"])
    order = s.get("attrs", {}).get("order")
    if name == "task" and order is not None:
        return f"task[{order}]"
    return name


def export_speedscope(source: _SpanSource,
                      path: Union[str, Path],
                      name: str = "repro span profile") -> Path:
    """Write a speedscope flamegraph (one evented profile per thread).

    Within one thread spans nest strictly (they are pushed and popped on
    that thread's context stack), so the open/close event stream is
    reconstructed with a timeline sweep.  Frames aggregate by span name
    (task frames carry their loop order), which is what makes the
    left-heavy flamegraph view answer "where does the time go".
    """
    spans = _spans_of(source)
    frames: List[Dict[str, str]] = []
    frame_ids: Dict[str, int] = {}

    def frame_of(s: Mapping[str, Any]) -> int:
        key = _frame_name(s)
        fid = frame_ids.get(key)
        if fid is None:
            fid = frame_ids[key] = len(frames)
            frames.append({"name": key})
        return fid

    threads: Dict[int, List[Dict[str, Any]]] = {}
    for s in spans:
        if float(s["t1"]) < 0.0:
            continue  # never-closed span: not renderable
        threads.setdefault(int(s.get("thread", 0)), []).append(s)

    profiles = []
    for tid in sorted(threads):
        rows = sorted(threads[tid],
                      key=lambda s: (float(s["t0"]), -float(s["t1"])))
        events: List[Dict[str, Any]] = []
        stack: List[Mapping[str, Any]] = []
        for s in rows:
            while stack and float(s["t0"]) >= float(stack[-1]["t1"]):
                top = stack.pop()
                events.append({"type": "C", "frame": frame_of(top),
                               "at": float(top["t1"])})
            stack.append(s)
            events.append({"type": "O", "frame": frame_of(s),
                           "at": float(s["t0"])})
        while stack:
            top = stack.pop()
            events.append({"type": "C", "frame": frame_of(top),
                           "at": float(top["t1"])})
        if not events:
            continue
        start = min(e["at"] for e in events)
        end = max(e["at"] for e in events)
        profiles.append({
            "type": "evented",
            "name": f"thread {tid}",
            "unit": "seconds",
            "startValue": start,
            "endValue": end,
            "events": events,
        })
    doc = {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.analysis.profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": profiles,
    }
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# regression attribution (repro diff-report / tools/benchdiff)
# ----------------------------------------------------------------------

def _num(v: Any) -> Optional[float]:
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return None
    f = float(v)
    return f if math.isfinite(f) else None


def _phase_times(report: Mapping[str, Any]) -> Dict[str, float]:
    """Per-phase seconds of a RunReport — profile section preferred,
    top-level timings as the fallback for pre-profile reports."""
    profile = report.get("profile") or {}
    phases = profile.get("phases") or {}
    out: Dict[str, float] = {}
    for name, slot in phases.items():
        t = _num(slot.get("time"))
        if t is not None:
            out[str(name)] = t
    if out:
        return out
    timings = report.get("timings") or {}
    for key, name in (("analyze_time", "analyze"),
                      ("factor_time", "factorize"),
                      ("solve_time", "solve")):
        t = _num(timings.get(key))
        if t is not None:
            out[name] = t
    return out


def _rank_stats(report: Mapping[str, Any]) -> Optional[Dict[str, float]]:
    hist = report.get("rank_histogram") or {}
    counts = {int(r): int(c) for r, c in hist.items()}
    n = sum(counts.values())
    if n == 0:
        return None
    mean = sum(r * c for r, c in counts.items()) / n
    return {"blocks": float(n), "mean_rank": mean,
            "max_rank": float(max(counts))}


def _rank_drift(a: Mapping[str, Any],
                b: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    sa, sb = _rank_stats(a), _rank_stats(b)
    if sa is None or sb is None:
        return None
    ha = {int(r): int(c) for r, c in (a.get("rank_histogram") or {}).items()}
    hb = {int(r): int(c) for r, c in (b.get("rank_histogram") or {}).items()}
    na, nb = sum(ha.values()), sum(hb.values())
    l1 = sum(abs(ha.get(r, 0) / na - hb.get(r, 0) / nb)
             for r in set(ha) | set(hb))
    return {"mean_rank_a": sa["mean_rank"], "mean_rank_b": sb["mean_rank"],
            "mean_rank_delta": sb["mean_rank"] - sa["mean_rank"],
            "l1_distance": l1}


def _recovery_counts(report: Mapping[str, Any]) -> Dict[str, int]:
    rec = report.get("recovery") or {}
    counts = {str(k): int(v) for k, v in (rec.get("counts") or {}).items()}
    attempts = rec.get("attempts")
    if attempts is not None:
        counts["attempts"] = int(attempts)
    return counts


def report_attribution(a: Mapping[str, Any],
                       b: Mapping[str, Any]) -> Dict[str, Any]:
    """Align two RunReports and attribute their differences.

    ``a`` is the baseline, ``b`` the candidate.  Returns a plain-JSON
    dict with phase rows ranked by absolute time delta (the table
    ``repro diff-report`` prints), byte/rank/recovery deltas, and
    ``top_regression`` — the phase that lost the most time, which
    ``tools/benchdiff`` names when a gate fails.
    """
    ta, tb = _phase_times(a), _phase_times(b)
    rows: List[Dict[str, Any]] = []
    order = {name: i for i, name in enumerate(PHASES)}
    for name in sorted(set(ta) | set(tb),
                       key=lambda n: order.get(n, len(PHASES))):
        va, vb = ta.get(name), tb.get(name)
        delta = (vb - va) if (va is not None and vb is not None) else None
        ratio = (vb / va if va else None) \
            if (va is not None and vb is not None) else None
        rows.append({"phase": name, "a": va, "b": vb,
                     "delta": delta, "ratio": ratio})
    rows.sort(key=lambda r: -(abs(r["delta"]) if r["delta"] is not None
                              else -1.0))

    regressions = [r for r in rows
                   if r["delta"] is not None and r["delta"] > 0.0]
    top = regressions[0]["phase"] if regressions else None

    comp_a = (a.get("compression") or {})
    comp_b = (b.get("compression") or {})
    nb_a, nb_b = (_num(comp_a.get("total_nbytes")),
                  _num(comp_b.get("total_nbytes")))
    bytes_row = None
    if nb_a is not None and nb_b is not None:
        bytes_row = {"a": nb_a, "b": nb_b, "delta": nb_b - nb_a}

    rec_a, rec_b = _recovery_counts(a), _recovery_counts(b)
    recovery = [{"action": k, "a": rec_a.get(k, 0), "b": rec_b.get(k, 0),
                 "delta": rec_b.get(k, 0) - rec_a.get(k, 0)}
                for k in sorted(set(rec_a) | set(rec_b))]

    # per-level task-time drift, when both sides carry a profile section
    levels = []
    la = ((a.get("profile") or {}).get("by_level") or {})
    lb = ((b.get("profile") or {}).get("by_level") or {})
    for lvl in sorted(set(la) | set(lb), key=lambda v: int(v)):
        va = _num((la.get(lvl) or {}).get("time"))
        vb = _num((lb.get(lvl) or {}).get("time"))
        levels.append({"level": int(lvl), "a": va, "b": vb,
                       "delta": (vb - va)
                       if (va is not None and vb is not None) else None})

    return {
        "workload_a": a.get("workload"),
        "workload_b": b.get("workload"),
        "phases": rows,
        "by_level": levels,
        "factor_bytes": bytes_row,
        "rank_drift": _rank_drift(a, b),
        "recovery": recovery,
        "top_regression": top,
    }


def _fmt_s(v: Optional[float]) -> str:
    if v is None:
        return "—"
    return f"{v:.4g}"


def _fmt_delta(v: Optional[float], unit: str = "s") -> str:
    if v is None:
        return "—"
    return f"{v:+.4g} {unit}"


def _fmt_pct(ratio: Optional[float]) -> str:
    if ratio is None:
        return "—"
    return f"{(ratio - 1.0) * 100.0:+.1f}%"


def render_attribution(attribution: Mapping[str, Any]) -> str:
    """Render :func:`report_attribution` output as a markdown table."""
    lines: List[str] = []
    wa = attribution.get("workload_a") or "A"
    wb = attribution.get("workload_b") or "B"
    lines.append(f"# Regression attribution — {wa} → {wb}")
    lines.append("")
    top = attribution.get("top_regression")
    if top is not None:
        lines.append(f"Largest regression: **{top}**.")
    else:
        lines.append("No phase regressed.")
    lines.append("")
    lines.append("| phase | A (s) | B (s) | Δ | Δ% |")
    lines.append("| --- | --- | --- | --- | --- |")
    for row in attribution.get("phases", []):
        lines.append(
            f"| {row['phase']} | {_fmt_s(row['a'])} | {_fmt_s(row['b'])} "
            f"| {_fmt_delta(row['delta'])} | {_fmt_pct(row['ratio'])} |")
    lines.append("")

    levels = [r for r in attribution.get("by_level", [])
              if r.get("delta") is not None]
    if levels:
        lines.append("| level | A (s) | B (s) | Δ |")
        lines.append("| --- | --- | --- | --- |")
        for row in sorted(levels, key=lambda r: -abs(r["delta"])):
            lines.append(f"| {row['level']} | {_fmt_s(row['a'])} "
                         f"| {_fmt_s(row['b'])} "
                         f"| {_fmt_delta(row['delta'])} |")
        lines.append("")

    nbytes = attribution.get("factor_bytes")
    if nbytes is not None:
        lines.append(f"Factor bytes: {nbytes['a']:.0f} → {nbytes['b']:.0f} "
                     f"({_fmt_delta(nbytes['delta'], 'B')})")
    drift = attribution.get("rank_drift")
    if drift is not None:
        lines.append(
            f"Rank drift: mean {drift['mean_rank_a']:.2f} → "
            f"{drift['mean_rank_b']:.2f} "
            f"({drift['mean_rank_delta']:+.2f}), histogram L1 distance "
            f"{drift['l1_distance']:.3f}")
    moved = [r for r in attribution.get("recovery", []) if r["delta"]]
    if moved:
        lines.append("")
        lines.append("| recovery action | A | B | Δ |")
        lines.append("| --- | --- | --- | --- |")
        for row in moved:
            lines.append(f"| {row['action']} | {row['a']} | {row['b']} "
                         f"| {row['delta']:+d} |")
    return "\n".join(lines).rstrip() + "\n"


def summarize_attribution(attribution: Mapping[str, Any]) -> Optional[str]:
    """One-line guilty-phase note for ``tools/benchdiff`` gate output."""
    top = attribution.get("top_regression")
    if top is None:
        return None
    for row in attribution.get("phases", []):
        if row["phase"] == top and row.get("delta") is not None:
            pct = _fmt_pct(row.get("ratio"))
            return (f"slowest-moving phase: {top} "
                    f"({_fmt_delta(row['delta'])}, {pct})")
    return f"slowest-moving phase: {top}"
