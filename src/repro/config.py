"""Solver configuration.

All tunables of the paper's evaluation (§4) appear here with the paper's
values as defaults where they make sense at paper scale, and with explicit
small-problem presets for laptop-scale runs:

* ``tolerance`` — the prescribed relative tolerance τ such that every
  compressed block satisfies ``||A - Â|| <= τ ||A||``.
* ``strategy`` — ``"dense"`` (original PaStiX behaviour), ``"minimal-memory"``
  or ``"just-in-time"``.
* ``kernel`` — ``"rrqr"`` or ``"svd"`` compression family.
* ``cmin`` — minimal size of non-separated subgraphs in nested dissection
  (paper: 15).
* ``frat`` — column-aggregation fill ratio for supernode amalgamation
  (paper: 0.08, i.e. merging is allowed while added fill stays below 8%).
* ``split_size`` / ``split_min`` — column blocks wider than ``split_size``
  are split into chunks of at least ``split_min`` (paper: 256 / 128).
* ``compress_min_width`` / ``compress_min_height`` — a block is a compression
  candidate only if its supernode width is at least ``compress_min_width``
  (paper: 128) and its height at least ``compress_min_height`` (paper: 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # numpy is imported lazily at runtime (keep import light)
    import numpy as np

    from repro.core.variants import AdaptivePolicy, BlrVariant
    from repro.runtime.recovery import RecoveryPolicy
    from repro.runtime.spans import SpanProfiler
    from repro.runtime.telemetry import Telemetry

#: valid factorization strategies.  ``minimal-memory`` and
#: ``just-in-time`` are aliases into the variant space of
#: :mod:`repro.core.variants` (``cuf`` / ``ucf``); ``adaptive`` picks a
#: loop order per supernode via :class:`~repro.core.variants.AdaptivePolicy`
STRATEGIES = ("dense", "minimal-memory", "just-in-time", "adaptive")
#: valid compression kernel families.  ``rsvd`` (randomized sampling) is
#: the extension foreshadowed by the paper's conclusion; ``aca`` (adaptive
#: cross approximation) is the kernel of the dense BEM BLR solvers of §5.
KERNELS = ("rrqr", "svd", "rsvd", "aca")
#: valid numerical factorizations
FACTOTYPES = ("lu", "cholesky", "ldlt")
#: valid ordering algorithms (``geometric`` needs node coordinates passed
#: to the Solver)
ORDERINGS = ("nested-dissection", "geometric", "amd", "natural")
#: valid arithmetic precisions (PaStiX's s/d/c/z)
DTYPES = ("float32", "float64", "complex64", "complex128")
#: valid diagonal-block pivoting modes for the ``ldlt`` factotype
PIVOTINGS = ("static", "threshold")


@dataclass(frozen=True)
class SolverConfig:
    """Immutable configuration for :class:`repro.core.solver.Solver`.

    Use :meth:`paper_scale` or :meth:`laptop_scale` for presets, and
    :meth:`with_options` (a thin ``dataclasses.replace`` wrapper) to derive
    variants.
    """

    # --- compression --------------------------------------------------
    strategy: str = "just-in-time"
    kernel: str = "rrqr"
    tolerance: float = 1e-8
    #: explicit BLR loop order (``"cuf"``/``"ucf"``/``"ufc"``/``"fuc"``,
    #: see :mod:`repro.core.variants`); ``None`` derives the order from
    #: :attr:`strategy` (minimal-memory → cuf, just-in-time → ucf).  An
    #: explicit order is meaningless under the ``dense`` strategy (no
    #: compression) and under ``adaptive`` (the order is per supernode).
    variant: Optional[str] = None
    #: truncation-threshold mode (the ``betatype`` axis): ``"local"``
    #: (the paper's per-block rule, default), ``"local-scaled"`` (τ/p),
    #: ``"global"`` (tail measured against ``||A||_F``), or
    #: ``"global-scaled"`` (both)
    threshold_mode: str = "local"
    #: recompress the T core of every LR·LR product (eqs. 1–4); with
    #: ``False`` the product keeps rank ``min(rA, rB)`` — intermediate
    #: recompression off, structural LR2LR recompression still on
    recompress_updates: bool = True
    #: per-supernode strategy policy
    #: (:class:`~repro.core.variants.AdaptivePolicy` or a dict of its
    #: fields); only meaningful with ``strategy="adaptive"`` — ``None``
    #: there uses the default policy
    adaptive: Optional["AdaptivePolicy"] = None
    #: maximum admissible rank as a fraction of min(m, n); blocks whose
    #: revealed rank exceeds it are stored dense (paper §3.4 uses 1/4).
    rank_ratio: float = 0.25
    #: group several low-rank updates and recompress once (LUAR-like ablation)
    accumulate_updates: bool = False
    #: left-looking elimination (paper §4.3's proposal): allocate and update
    #: each column block's dense panels only when it is reached, so the
    #: Just-In-Time memory peak shrinks toward Minimal Memory's.
    #: Sequential only; incompatible with minimal-memory (which has no dense
    #: panels to delay).
    left_looking: bool = False

    # --- ordering / symbolic ------------------------------------------
    ordering: str = "nested-dissection"
    cmin: int = 15
    frat: float = 0.08
    split_size: int = 256
    split_min: int = 128
    compress_min_width: int = 128
    compress_min_height: int = 20
    #: apply the intra-supernode reordering of [21] to merge off-diag blocks
    reorder_supernodes: bool = True

    # --- numerics ------------------------------------------------------
    factotype: str = "lu"
    #: kernel backend every numeric hot path (gemm/trsm/getrf/potrf/panel
    #: solves) runs through — a name registered with
    #: :func:`repro.core.backend.register_backend`.  ``"numpy"`` is always
    #: available; ``"numba"`` is registered when the package is installed.
    #: ``None`` defers to ``$REPRO_BACKEND``, then ``"numpy"``.
    backend: Optional[str] = None
    #: static-pivoting threshold: diagonal entries smaller than
    #: ``pivot_threshold * max|diag|`` are perturbed (PaStiX-style)
    pivot_threshold: float = 1e-14
    #: diagonal-block pivoting mode for ``factotype='ldlt'``:
    #: ``"static"`` (the paper's PaStiX behaviour — perturb tiny
    #: diagonals, never permute) or ``"threshold"`` (dynamic
    #: Bunch–Kaufman-style threshold partial pivoting with 1×1/2×2
    #: pivots and per-supernode within-panel permutations; see
    #: docs/robustness.md).  Ignored by ``lu``/``cholesky``.
    pivoting: str = "static"
    #: threshold-pivoting parameter ``u`` in (0, 0.5]: a candidate 1×1
    #: pivot ``d`` is admissible when ``|d| >= u * max|column|``.  Larger
    #: values bound element growth more tightly (more 2×2 pivots and
    #: swaps); smaller values pivot less.  0.1 is the sparse-solver
    #: folklore default (HSL MA57 lineage).
    pivot_u: float = 0.1
    #: declare breakdown (cause ``pivot-growth``) when the factorization's
    #: element growth factor exceeds this bound
    pivot_growth_limit: float = 1e8
    #: delayed-pivot fallback: when no admissible pivot exists under
    #: ``pivot_u``, perturb the offending diagonal entry (static-pivoting
    #: style) instead of raising ``pivot-failure``.  Off by default; the
    #: recovery ladder switches it on as its second pivoting rung.
    pivot_fallback: bool = False
    #: arithmetic precision of the factorization — one of
    #: ``float32``/``float64``/``complex64``/``complex128`` (PaStiX's
    #: s/d/c/z); ``None`` inherits the matrix's dtype (real non-float
    #: inputs default to float64)
    dtype: Optional[str] = None
    #: storage precision of the off-diagonal factor blocks
    #: (mixed-precision BLR): a *narrower* dtype of the same kind as
    #: :attr:`dtype` — ``float32`` under float64, ``complex64`` under
    #: complex128.  Compressed low-rank ``u``/``v`` pairs *and* dense
    #: off-diagonal blocks are stored narrow; diagonal blocks (the
    #: stability-critical pivots) stay at full precision, and every
    #: update/solve promotes narrow operands back to :attr:`dtype` before
    #: computing.  Sound whenever τ is at or above the narrow dtype's
    #: epsilon (e.g. τ ≥ 1e-6 for float32 storage).  Only BLR strategies
    #: compress storage this way; the ``dense`` strategy ignores it.
    #: ``None`` stores everything at :attr:`dtype`.
    storage_dtype: Optional[str] = None

    # --- parallelism ---------------------------------------------------
    threads: int = 1
    #: multi-threaded engine: "dynamic" (shared ready queue) or "static"
    #: (PaStiX-style proportional subtree mapping [23])
    scheduler: str = "dynamic"
    #: raise :class:`~repro.core.scheduler.DeadlockError` (with a
    #: pending-counter dump) when a threaded run makes no progress for this
    #: many seconds; ``None`` disables the watchdog
    watchdog_timeout: Optional[float] = None
    seed: Optional[int] = 0

    # --- robustness -----------------------------------------------------
    #: self-healing policy (:class:`~repro.runtime.recovery.RecoveryPolicy`
    #: or a dict of its fields, e.g. from a deserialized config): enables
    #: breakdown sentinels, per-block dense fallback on compression
    #: failure, local task retries and the whole-solve escalation ladder.
    #: ``None`` (the default) disables the recovery layer entirely — every
    #: detection site then costs one ``is not None`` test and the solver's
    #: failure behaviour is exactly the pre-recovery one.
    recovery: Optional["RecoveryPolicy"] = None

    # --- observability -------------------------------------------------
    #: record a :class:`~repro.runtime.trace.TaskTracer` during
    #: factorization (exposed as ``Solver.tracer``); off by default — the
    #: disabled hooks cost one attribute load per task
    trace: bool = False
    #: attach a :class:`~repro.runtime.telemetry.Telemetry` bus: every
    #: layer (compression kernels, LR2LR recompression, memory tracker,
    #: threaded schedulers, refinement) then publishes metrics, series and
    #: events through it, and ``Solver.run_report()`` aggregates the lot
    #: into one RunReport artifact.  ``None`` (the default) disables all
    #: instrumentation at the cost of one ``is not None`` test per site.
    #: Excluded from equality/repr — it is a runtime channel, not a
    #: numerical tunable (serialized factor archives store it as null).
    telemetry: Optional["Telemetry"] = field(
        default=None, repr=False, compare=False)
    #: attach a :class:`~repro.runtime.spans.SpanProfiler`: the whole
    #: pipeline (ordering → symbolic → assembly → per-cblk tasks →
    #: trisolve → refinement) then records hierarchical, causally-linked
    #: spans with phase/cblk/level/variant-order attributes, exportable as
    #: Chrome traces and speedscope flamegraphs
    #: (:mod:`repro.analysis.profile`).  ``None`` (the default) disables
    #: profiling at the cost of one ``is not None`` test per site.  Like
    #: ``telemetry``, excluded from equality/repr and serialized as null.
    profiler: Optional["SpanProfiler"] = field(
        default=None, repr=False, compare=False)
    #: run the threaded schedulers under the Eraser-style lockset tracker
    #: (:mod:`repro.runtime.sanitizer`): shared scheduler/factor structures
    #: record (thread, access, lockset) events and candidate races raise a
    #: structured :class:`~repro.runtime.sanitizer.RaceReport` after the
    #: join.  ``$REPRO_TSAN=1`` enables it without touching the config
    #: (see :meth:`sanitize_enabled`).  Sequential runs ignore it.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, got {self.strategy!r}")
        if self.kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {self.kernel!r}")
        if self.factotype not in FACTOTYPES:
            raise ValueError(f"factotype must be one of {FACTOTYPES}, got {self.factotype!r}")
        if self.ordering not in ORDERINGS:
            raise ValueError(f"ordering must be one of {ORDERINGS}, got {self.ordering!r}")
        if not (0.0 < self.tolerance < 1.0):
            raise ValueError("tolerance must be in (0, 1)")
        if self.cmin < 1:
            raise ValueError("cmin must be >= 1")
        if self.frat < 0.0:
            raise ValueError("frat must be >= 0")
        if self.split_min > self.split_size:
            raise ValueError("split_min must be <= split_size")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if not (0.0 < self.rank_ratio <= 1.0):
            raise ValueError("rank_ratio must be in (0, 1]")
        from repro.core.variants import (
            ORDERS,
            THRESHOLD_MODES,
            resolve_variant,
        )

        if self.variant is not None:
            if self.variant not in ORDERS:
                raise ValueError(
                    f"variant must be one of {ORDERS} (or None), got "
                    f"{self.variant!r}")
            if self.strategy == "dense":
                raise ValueError(
                    "variant selects a BLR loop order, but the 'dense' "
                    "strategy never compresses; unset one of them")
            if self.strategy == "adaptive":
                raise ValueError(
                    "the 'adaptive' strategy chooses the loop order per "
                    "supernode; an explicit variant contradicts it")
        if self.threshold_mode not in THRESHOLD_MODES:
            raise ValueError(
                f"threshold_mode must be one of {THRESHOLD_MODES}, got "
                f"{self.threshold_mode!r}")
        if self.adaptive is not None:
            from repro.core.variants import AdaptivePolicy

            if isinstance(self.adaptive, dict):
                # round-trip support: serialized configs store the policy
                # as a plain field dict (dataclasses.asdict recurses)
                object.__setattr__(self, "adaptive",
                                   AdaptivePolicy(**self.adaptive))
            elif not isinstance(self.adaptive, AdaptivePolicy):
                raise TypeError(
                    "adaptive must be an AdaptivePolicy, a dict of its "
                    f"fields, or None; got {type(self.adaptive).__name__}")
            if self.strategy != "adaptive":
                raise ValueError(
                    "an adaptive policy requires strategy='adaptive'; got "
                    f"strategy={self.strategy!r}")
        if self.left_looking:
            # the incompatible axis is the loop order, not the strategy
            # name: any order that compresses before the trailing update
            # (cuf — compress at assembly) never allocates the dense
            # panels left-looking exists to defer
            if self.strategy == "adaptive":
                raise ValueError(
                    "left_looking delays dense panel allocation; the "
                    "'adaptive' strategy may pick the 'cuf' loop order "
                    "(compress before the trailing update) per supernode, "
                    "which never allocates dense panels")
            v = resolve_variant(self)
            if v is not None and v.compress_at_assembly:
                raise ValueError(
                    "left_looking delays dense panel allocation, but loop "
                    f"order 'cuf' (strategy {self.strategy!r}) compresses "
                    "before the trailing update and never allocates dense "
                    "panels; pick a ucf/ufc/fuc order")
        if self.left_looking and self.threads > 1:
            raise ValueError("left_looking is implemented sequentially")
        if self.scheduler not in ("dynamic", "static"):
            raise ValueError(
                f"scheduler must be 'dynamic' or 'static', got "
                f"{self.scheduler!r}")
        if self.watchdog_timeout is not None and self.watchdog_timeout <= 0:
            raise ValueError("watchdog_timeout must be positive (or None)")
        if self.pivoting not in PIVOTINGS:
            raise ValueError(
                f"pivoting must be one of {PIVOTINGS}, got {self.pivoting!r}")
        if not (0.0 < self.pivot_u <= 0.5):
            raise ValueError("pivot_u must be in (0, 0.5]")
        if self.pivot_growth_limit <= 1.0:
            raise ValueError("pivot_growth_limit must be > 1")
        if self.recovery is not None:
            from repro.runtime.recovery import RecoveryPolicy

            if isinstance(self.recovery, dict):
                # round-trip support: serialized configs store the policy
                # as a plain field dict (dataclasses.asdict recurses)
                object.__setattr__(self, "recovery",
                                   RecoveryPolicy(**self.recovery))
            elif not isinstance(self.recovery, RecoveryPolicy):
                raise TypeError(
                    "recovery must be a RecoveryPolicy, a dict of its "
                    f"fields, or None; got {type(self.recovery).__name__}")
        if self.backend is not None:
            # resolve eagerly so a typo fails at config time, not mid-solve
            from repro.core.backend import available_backends

            if self.backend not in available_backends():
                raise ValueError(
                    f"backend must be one of {available_backends()} (or "
                    f"None), got {self.backend!r}")
        if self.dtype is not None and self.dtype not in DTYPES:
            raise ValueError(
                f"dtype must be one of {DTYPES} (or None), got {self.dtype!r}")
        if self.storage_dtype is not None:
            if self.storage_dtype not in DTYPES:
                raise ValueError(
                    f"storage_dtype must be one of {DTYPES} (or None), got "
                    f"{self.storage_dtype!r}")
            if self.dtype is not None:
                import numpy as _np

                full = _np.dtype(self.dtype)
                narrow = _np.dtype(self.storage_dtype)
                if (full.kind != narrow.kind
                        or narrow.itemsize > full.itemsize):
                    raise ValueError(
                        "storage_dtype must be a same-kind dtype no wider "
                        f"than dtype ({self.dtype!r}); got "
                        f"{self.storage_dtype!r}")

    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, **overrides: Any) -> "SolverConfig":
        """The paper's experimental setup (§4, first paragraph)."""
        base = dict(
            cmin=15, frat=0.08, split_size=256, split_min=128,
            compress_min_width=128, compress_min_height=20,
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def laptop_scale(cls, **overrides: Any) -> "SolverConfig":
        """Thresholds scaled down ~4x so compression kicks in on 10k-100k
        unknown problems (the paper's run at 1M+ unknowns)."""
        base = dict(
            cmin=15, frat=0.08, split_size=64, split_min=32,
            compress_min_width=32, compress_min_height=8,
        )
        base.update(overrides)
        return cls(**base)

    def with_options(self, **overrides: Any) -> "SolverConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def sanitize_enabled(self) -> bool:
        """Is the runtime race sanitizer on for this run?

        True when :attr:`sanitize` is set or ``$REPRO_TSAN`` is a non-empty
        value other than ``0`` (the CI tsan job exports ``REPRO_TSAN=1`` to
        rerun the threaded suites instrumented without editing configs).
        """
        import os

        return self.sanitize or os.environ.get(
            "REPRO_TSAN", "") not in ("", "0")

    @property
    def is_blr(self) -> bool:
        return self.strategy != "dense"

    def resolved_variant(self) -> Optional["BlrVariant"]:
        """The :class:`~repro.core.variants.BlrVariant` this configuration
        runs under (``None`` for the dense strategy)."""
        from repro.core.variants import resolve_variant

        return resolve_variant(self)

    @property
    def is_symmetric_facto(self) -> bool:
        return self.factotype in ("cholesky", "ldlt")

    def resolve_dtype(self, matrix_dtype: Union[str, np.dtype, None] = None
                      ) -> np.dtype:
        """The numpy dtype the factorization runs in.

        ``config.dtype`` wins when set; otherwise the matrix's own dtype is
        kept (non-inexact inputs having already been coerced to float64 by
        :class:`~repro.sparse.csc.CSCMatrix`).  Asking for a *real*
        factorization of a complex matrix is an error — it would silently
        discard imaginary parts.
        """
        import numpy as np

        if self.dtype is not None:
            want = np.dtype(self.dtype)
            if (matrix_dtype is not None
                    and np.dtype(matrix_dtype).kind == "c"
                    and want.kind != "c"):
                raise ValueError(
                    f"config.dtype={self.dtype!r} is real but the matrix is "
                    "complex; a real factorization would discard imaginary "
                    "parts")
            return want
        if matrix_dtype is not None:
            return np.dtype(matrix_dtype)
        return np.dtype(np.float64)

    def resolve_storage_dtype(self, compute_dtype: Union[str, np.dtype]
                              ) -> Optional[np.dtype]:
        """The numpy dtype compressed ``u``/``v`` panels are stored in.

        Returns ``None`` when storage precision equals compute precision
        (the common case — callers can skip the downcast entirely).
        """
        import numpy as np

        if self.storage_dtype is None:
            return None
        compute = np.dtype(compute_dtype)
        narrow = np.dtype(self.storage_dtype)
        if narrow.kind != compute.kind or narrow.itemsize > compute.itemsize:
            raise ValueError(
                f"storage_dtype={self.storage_dtype!r} is not a same-kind "
                f"dtype no wider than the compute dtype {compute.name!r}")
        if narrow == compute:
            return None
        return narrow
