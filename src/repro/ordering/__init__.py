"""Fill-reducing orderings and graph infrastructure.

The paper relies on Scotch for nested dissection (cmin = 15, frat = 0.08).
This package is our from-scratch replacement: an adjacency-graph substrate,
level-set vertex separators, recursive nested dissection that returns both the
permutation and the separator/leaf partition (the supernodal partition of the
paper's §1), a minimum-degree ordering as an alternative, elimination-tree
utilities, and the intra-supernode reordering of Pichon et al. [21] that packs
off-diagonal blocks together.
"""

from repro.ordering.graph import Graph
from repro.ordering.separator import find_vertex_separator
from repro.ordering.nested_dissection import nested_dissection, NDResult, NDPartition
from repro.ordering.amd import minimum_degree
from repro.ordering.geometric import geometric_nested_dissection, grid_coords
from repro.ordering.rcm import reverse_cuthill_mckee
from repro.ordering.elimination_tree import (
    elimination_tree,
    postorder,
    tree_depths,
)

__all__ = [
    "Graph",
    "find_vertex_separator",
    "nested_dissection",
    "NDResult",
    "NDPartition",
    "minimum_degree",
    "geometric_nested_dissection",
    "grid_coords",
    "reverse_cuthill_mckee",
    "elimination_tree",
    "postorder",
    "tree_depths",
]
