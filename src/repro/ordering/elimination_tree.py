"""Elimination-tree utilities (Liu's algorithm and friends).

For a pattern-symmetric matrix A, the elimination tree has
``parent(j) = min{ i > j : L[i, j] != 0 }``.  The tree drives the symbolic
step: supernode parents, postorderings, and subtree sizes all derive from it.
The supernodal analysis in :mod:`repro.symbolic` runs on the *quotient*
(supernode) graph for efficiency, but the vertex-level elimination tree is
used by tests as ground truth and exposed as public API.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix


def elimination_tree(a: CSCMatrix) -> np.ndarray:
    """Compute the elimination tree of a pattern-symmetric matrix.

    Returns ``parent`` with ``parent[j] = -1`` for roots.  Uses Liu's
    path-compression algorithm, O(nnz · α(n)).
    """
    n = a.n
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        rows, _ = a.column(j)
        for i in rows:
            i = int(i)
            if i >= j:
                continue
            # walk from i to the root of its current subtree, compressing
            while True:
                anc = ancestor[i]
                ancestor[i] = j
                if anc == -1:
                    if parent[i] == -1 and i != j:
                        parent[i] = j
                    break
                if anc == j:
                    break
                i = int(anc)
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postorder the forest given by ``parent`` (children before parents).

    Returns ``order`` such that ``order[k]`` is the node visited k-th.
    Children are visited in increasing index order, making the result
    deterministic.
    """
    n = len(parent)
    children: List[List[int]] = [[] for _ in range(n)]
    roots: List[int] = []
    for v in range(n):
        p = int(parent[v])
        if p == -1:
            roots.append(v)
        else:
            children[p].append(v)
    order = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        # iterative DFS with explicit child cursor
        stack: List[Tuple[int, int]] = [(root, 0)]
        while stack:
            v, ci = stack[-1]
            if ci < len(children[v]):
                stack[-1] = (v, ci + 1)
                stack.append((children[v][ci], 0))
            else:
                stack.pop()
                order[k] = v
                k += 1
    if k != n:  # pragma: no cover - defensive
        raise AssertionError("parent array is not a forest")
    return order


def tree_depths(parent: np.ndarray) -> np.ndarray:
    """Depth of every node (roots have depth 0)."""
    n = len(parent)
    depth = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        # walk up collecting the path, then assign
        path = []
        u = v
        while u != -1 and depth[u] < 0:
            path.append(u)
            u = int(parent[u])
        base = 0 if u == -1 else int(depth[u]) + 1
        for node in reversed(path):
            depth[node] = base
            base += 1
    return depth


def subtree_sizes(parent: np.ndarray) -> np.ndarray:
    """Number of nodes in the subtree rooted at each node (inclusive)."""
    n = len(parent)
    size = np.ones(n, dtype=np.int64)
    for v in postorder(parent):
        p = int(parent[v])
        if p != -1:
            size[p] += size[v]
    return size


def is_postordered(parent: np.ndarray) -> bool:
    """True iff every node's index exceeds all indices in its subtree."""
    n = len(parent)
    for v in range(n):
        p = int(parent[v])
        if p != -1 and p <= v:
            return False
    # parent > child is necessary; sufficiency needs contiguous subtrees
    size = subtree_sizes(parent)
    first = np.arange(n, dtype=np.int64)
    for v in postorder(parent):
        p = int(parent[v])
        if p != -1:
            first[p] = min(first[p], first[v])
    for v in range(n):
        if v - first[v] + 1 != size[v]:
            return False
    return True
