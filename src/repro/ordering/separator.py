"""Vertex separators via level-set bisection.

Nested dissection needs, at every recursion step, a *vertex separator*: a set
``S`` whose removal splits the graph into parts ``A`` and ``B`` with no edge
between them.  We use the classic level-structure heuristic (the approach of
George's original nested dissection, also the fallback strategy inside
Scotch):

1. find a pseudo-peripheral root and its BFS level structure;
2. scan candidate levels, scoring ``|S| * (1 + imbalance)``, where the
   separator candidate at level ``l`` is the set of level-``l`` vertices
   adjacent to level ``l+1``;
3. minimalize the winner: a separator vertex with no neighbour in ``A`` is
   moved into ``B`` and vice-versa.

This is a from-scratch replacement for Scotch's separator engine; on the
mesh-like graphs of the paper's evaluation it produces separators within the
``O(n^{2/3})`` bound of the separator theorem the paper leans on (§5).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ordering.graph import Graph


def find_vertex_separator(g: Graph, vertices: np.ndarray,
                          balance_weight: float = 1.0,
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split the connected vertex set ``vertices`` of ``g``.

    Parameters
    ----------
    g:
        The *global* graph.
    vertices:
        Global indices of a connected subset to split.
    balance_weight:
        Weight of the imbalance penalty in the level score.

    Returns
    -------
    (part_a, part_b, sep):
        Disjoint global vertex arrays covering ``vertices``; no edge joins
        ``part_a`` and ``part_b``.  ``sep`` may be empty when the set is
        small or degenerate (callers must handle that).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    nv = vertices.size
    if nv <= 1:
        return vertices, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    mask = np.zeros(g.n, dtype=bool)
    mask[vertices] = True

    _, levels = g.pseudo_peripheral(int(vertices[0]), mask)
    depth = int(levels[vertices].max())
    if depth < 1:
        # complete-graph-like: no useful level structure; split arbitrarily
        half = nv // 2
        return (vertices[:half], np.empty(0, dtype=np.int64), vertices[half:])

    lvl = levels[vertices]
    counts = np.bincount(lvl, minlength=depth + 1)
    below = np.cumsum(counts) - counts  # vertices strictly below each level

    # Candidate level l separates A = levels < l from B = levels > l.
    # Among *balanced* candidates (smaller side holds at least a quarter of
    # the non-separator vertices) pick the thinnest level; if no level is
    # balanced (elongated or degenerate graphs) fall back to the level
    # maximizing the smaller side.
    best_score = np.inf
    best_level = -1
    fallback_level, fallback_minside = depth // 2, -1
    for lvl_cand in range(depth + 1):
        na = int(below[lvl_cand])
        nb = nv - na - int(counts[lvl_cand])
        if na == 0 or nb == 0:
            continue
        minside = min(na, nb)
        if minside > fallback_minside:
            fallback_minside = minside
            fallback_level = lvl_cand
        if minside < 0.25 * (na + nb):
            continue
        score = counts[lvl_cand] * (1.0 + balance_weight * abs(na - nb) / nv)
        if score < best_score:
            best_score = score
            best_level = lvl_cand
    if best_level < 0:
        best_level = fallback_level

    sep_cand = vertices[lvl == best_level]
    in_a = lvl < best_level
    in_b = lvl > best_level

    # keep in the separator only the level vertices adjacent to the B side
    sep_mask = np.zeros(g.n, dtype=bool)
    sep_mask[sep_cand] = True
    b_mask = np.zeros(g.n, dtype=bool)
    b_mask[vertices[in_b]] = True

    keep = []
    for v in sep_cand:
        if np.any(b_mask[g.neighbors(int(v))]):
            keep.append(int(v))
        else:
            sep_mask[v] = False
    sep = np.asarray(keep, dtype=np.int64)

    a_mask = np.zeros(g.n, dtype=bool)
    a_mask[vertices[in_a]] = True
    # level-best vertices not kept in the separator belong to the A side
    demoted = sep_cand[~sep_mask[sep_cand]]
    a_mask[demoted] = True

    # minimalization: a separator vertex with no neighbour in A moves to B
    sep = _minimalize(g, sep, a_mask, b_mask)

    part_a = vertices[a_mask[vertices]]
    part_b = vertices[b_mask[vertices]]
    return part_a, part_b, sep


def _minimalize(g: Graph, sep: np.ndarray, a_mask: np.ndarray,
                b_mask: np.ndarray) -> np.ndarray:
    """Drop separator vertices touching only one side (moving them into that
    side), repeating until stable."""
    changed = True
    sep_set = set(int(v) for v in sep)
    while changed:
        changed = False
        for v in list(sep_set):
            nbrs = g.neighbors(v)
            touches_a = bool(np.any(a_mask[nbrs]))
            touches_b = bool(np.any(b_mask[nbrs]))
            if touches_a and touches_b:
                continue
            sep_set.discard(v)
            changed = True
            if touches_a:
                a_mask[v] = True
            else:  # touches only B, or is isolated
                b_mask[v] = True
    return np.asarray(sorted(sep_set), dtype=np.int64)


def check_separator(g: Graph, part_a: np.ndarray, part_b: np.ndarray,
                    sep: np.ndarray) -> bool:
    """Validation helper (used by tests): no edge between the two parts."""
    a_mask = np.zeros(g.n, dtype=bool)
    a_mask[np.asarray(part_a, dtype=np.int64)] = True
    for v in np.asarray(part_b, dtype=np.int64):
        if np.any(a_mask[g.neighbors(int(v))]):
            return False
    return True
