"""Minimum-degree ordering.

A classic quotient-graph minimum-degree implementation, used as the
alternative global ordering (``config.ordering = "amd"``) and exercised by
tests.  Nested dissection remains the default — the paper's BLR clustering
needs the ND separators — but minimum degree is what Scotch applies inside
small non-separated subgraphs, and downstream users expect it from a direct
solver.

The implementation keeps, for every uneliminated vertex, its set of adjacent
*uneliminated* vertices plus the set of adjacent *elements* (eliminated
supervariables).  External degree is recomputed lazily; indistinguishable
vertices are not merged (this is plain MD rather than AMD proper, which is
fine at the problem sizes where this ordering is selected).
"""

from __future__ import annotations

import heapq
from typing import List, Set

import numpy as np

from repro.ordering.graph import Graph


def minimum_degree(g: Graph) -> np.ndarray:
    """Return a new-to-old minimum-degree permutation of ``g``.

    Ties are broken by vertex index so the ordering is deterministic.
    """
    n = g.n
    # adjacency as python sets: vertex -> neighbouring vertices (uneliminated)
    adj: List[Set[int]] = [set(int(w) for w in g.neighbors(v)) for v in range(n)]
    # vertex -> set of adjacent elements (eliminated pivots)
    elems: List[Set[int]] = [set() for _ in range(n)]
    # element -> its boundary (uneliminated vertices it reaches)
    boundary: List[Set[int]] = [set() for _ in range(n)]
    eliminated = np.zeros(n, dtype=bool)

    def degree(v: int) -> int:
        reach = set(adj[v])
        for e in elems[v]:
            reach |= boundary[e]
        reach.discard(v)
        return len(reach)

    heap = [(len(adj[v]), v) for v in range(n)]
    heapq.heapify(heap)
    stamp = np.zeros(n, dtype=np.int64)  # lazy-deletion version counter

    perm = np.empty(n, dtype=np.int64)
    for k in range(n):
        # pop until we find a live entry whose key is current
        while True:
            d, v = heapq.heappop(heap)
            if eliminated[v]:
                continue
            cur = degree(v)
            if cur > d:
                heapq.heappush(heap, (cur, v))
                continue
            break
        perm[k] = v
        eliminated[v] = True

        # reach set of v = its future element's boundary
        reach = set(adj[v])
        for e in elems[v]:
            reach |= boundary[e]
        reach.discard(v)
        reach = {w for w in reach if not eliminated[w]}
        boundary[v] = reach

        absorbed = set(elems[v])
        for w in reach:
            adj[w].discard(v)
            # absorb v's elements into the new element v
            elems[w] -= absorbed
            elems[w].add(v)
            # prune direct adjacency covered by the new element
            adj[w] -= reach
            heapq.heappush(heap, (degree(w), w))
        # free absorbed element boundaries
        for e in absorbed:
            boundary[e] = set()
        adj[v] = set()
        elems[v] = set()
        stamp[v] += 1
    return perm
