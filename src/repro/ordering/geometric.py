"""Geometric nested dissection (coordinate-plane separators).

The paper's introduction contrasts solvers that "require knowledge of the
underlying geometry" with the purely algebraic approach it follows.  When
node coordinates *are* available — every generator in
:mod:`repro.sparse.generators` comes from a regular grid — geometric
dissection finds the canonical plane separators directly: split the region
at the median coordinate along its widest axis, and take as separator the
boundary layer of one side (the set of vertices adjacent to the other
side).  On grids this is exactly the optimal axis-aligned plane, typically
thinner and flatter than the level-set separator, which lowers both fill
and the low-rank blocks' ranks.

Select with ``SolverConfig(ordering="geometric")`` and pass node
coordinates to the solver (``Solver(a, cfg, coords=...)``), or call
:func:`geometric_nested_dissection` directly.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

SplitResult = Tuple["np.ndarray", "np.ndarray", "np.ndarray"]
Splitter = Callable[["Graph", "np.ndarray"], SplitResult]

import numpy as np

from repro.ordering.graph import Graph
from repro.ordering.nested_dissection import NDResult, nested_dissection


def grid_coords(nx: int, ny: Optional[int] = None, nz: Optional[int] = None,
                dofs_per_node: int = 1) -> np.ndarray:
    """Node coordinates matching the generators' lexicographic ordering.

    Returns an ``(n, 3)`` float array; with ``dofs_per_node > 1`` (e.g. the
    elasticity generator's 3 displacement components) each node's
    coordinate is repeated for its dofs, keeping them together under
    geometric splits.
    """
    ny = nx if ny is None else ny
    nz = 1 if nz is None else nz
    k, j, i = np.meshgrid(np.arange(nz), np.arange(ny), np.arange(nx),
                          indexing="ij")
    coords = np.column_stack([i.ravel(), j.ravel(), k.ravel()]).astype(float)
    if dofs_per_node > 1:
        coords = np.repeat(coords, dofs_per_node, axis=0)
    return coords


def make_plane_splitter(coords: np.ndarray) -> Splitter:
    """Build a ``splitter(g, vertices)`` closure over node coordinates."""
    coords = np.asarray(coords, dtype=np.float64)

    def splitter(g: Graph, vertices: np.ndarray) -> SplitResult:
        vertices = np.asarray(vertices, dtype=np.int64)
        pts = coords[vertices]
        extents = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(extents))
        if extents[axis] == 0.0:
            # all vertices co-located: no geometric split possible
            return vertices, np.empty(0, dtype=np.int64), \
                np.empty(0, dtype=np.int64)
        cut = float(np.median(pts[:, axis]))
        below = pts[:, axis] < cut
        # guard against degenerate splits when many points share the median
        if not below.any() or below.all():
            below = pts[:, axis] <= cut
            if below.all():
                order = np.argsort(pts[:, axis], kind="stable")
                half = vertices.size // 2
                below = np.zeros(vertices.size, dtype=bool)
                below[order[:half]] = True
        side_a = vertices[below]
        side_b = vertices[~below]

        # separator: vertices of side_b adjacent to side_a (one grid plane)
        a_mask = np.zeros(g.n, dtype=bool)
        a_mask[side_a] = True
        sep_mask = np.zeros(g.n, dtype=bool)
        for v in side_b:
            if np.any(a_mask[g.neighbors(int(v))]):
                sep_mask[v] = True
        sep = side_b[sep_mask[side_b]]
        part_b = side_b[~sep_mask[side_b]]
        return side_a, part_b, sep

    return splitter


def geometric_nested_dissection(g: Graph, coords: np.ndarray,
                                cmin: int = 15,
                                max_levels: Optional[int] = None) -> NDResult:
    """Nested dissection driven by coordinate-plane separators.

    ``coords`` has one row per graph vertex (2 or 3 columns).  Everything
    downstream (partition layout, separator-last numbering, disconnected
    regions) reuses the algebraic machinery — only the split rule changes.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape[0] != g.n:
        raise ValueError(
            f"coords has {coords.shape[0]} rows for a graph of {g.n} "
            "vertices")
    return nested_dissection(g, cmin=cmin, max_levels=max_levels,
                             splitter=make_plane_splitter(coords))
