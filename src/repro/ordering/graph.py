"""Undirected adjacency graphs backed by CSR index arrays.

The ordering algorithms (nested dissection, minimum degree) operate on the
adjacency graph of the matrix: vertices are unknowns, edges connect the
symmetric nonzero pattern, self-loops (diagonal entries) are dropped.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix


class Graph:
    """Compressed adjacency structure of an undirected graph.

    ``adjptr``/``adjind`` follow the CSR convention: the neighbours of vertex
    ``v`` are ``adjind[adjptr[v]:adjptr[v+1]]`` (sorted, no self-loops, every
    edge stored in both directions).
    """

    __slots__ = ("n", "adjptr", "adjind")

    def __init__(self, n: int, adjptr: np.ndarray, adjind: np.ndarray) -> None:
        self.n = int(n)
        self.adjptr = np.ascontiguousarray(adjptr, dtype=np.int64)
        self.adjind = np.ascontiguousarray(adjind, dtype=np.int64)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_matrix(cls, a: CSCMatrix) -> "Graph":
        """Adjacency graph of ``A + Aᵗ`` with the diagonal removed."""
        sym = a if a.is_pattern_symmetric() else a.symmetrize_pattern()
        cols = np.repeat(np.arange(sym.n, dtype=np.int64), np.diff(sym.colptr))
        keep = sym.rowind != cols
        rows, cs = sym.rowind[keep], cols[keep]
        order = np.lexsort((rows, cs))
        rows, cs = rows[order], cs[order]
        adjptr = np.zeros(sym.n + 1, dtype=np.int64)
        np.add.at(adjptr, cs + 1, 1)
        np.cumsum(adjptr, out=adjptr)
        return cls(sym.n, adjptr, rows)

    @classmethod
    def from_edges(cls, n: int,
                   edges: Iterable[Tuple[int, int]]) -> "Graph":
        """Build from an iterable of (u, v) pairs (each edge given once)."""
        edges = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        u = np.concatenate([edges[:, 0], edges[:, 1]])
        v = np.concatenate([edges[:, 1], edges[:, 0]])
        keep = u != v
        u, v = u[keep], v[keep]
        order = np.lexsort((v, u))
        u, v = u[order], v[order]
        if u.size:
            dedup = np.ones(u.size, dtype=bool)
            dedup[1:] = (u[1:] != u[:-1]) | (v[1:] != v[:-1])
            u, v = u[dedup], v[dedup]
        adjptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(adjptr, u + 1, 1)
        np.cumsum(adjptr, out=adjptr)
        return cls(n, adjptr, v)

    # -- queries ----------------------------------------------------------
    @property
    def nedges(self) -> int:
        return int(len(self.adjind)) // 2

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjind[self.adjptr[v]:self.adjptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.adjptr[v + 1] - self.adjptr[v])

    def degrees(self) -> np.ndarray:
        return np.diff(self.adjptr)

    # -- traversals ---------------------------------------------------------
    def bfs_levels(self, start: int,
                   mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Breadth-first levels from ``start``; ``-1`` for unreachable (or
        masked-out) vertices.  ``mask`` restricts the traversal to vertices
        where it is True."""
        level = np.full(self.n, -1, dtype=np.int64)
        if mask is not None and not mask[start]:
            return level
        level[start] = 0
        frontier = np.array([start], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            nxt: List[int] = []
            for v in frontier:
                for w in self.neighbors(v):
                    if level[w] < 0 and (mask is None or mask[w]):
                        level[w] = depth
                        nxt.append(int(w))
            frontier = np.asarray(nxt, dtype=np.int64)
        return level

    def pseudo_peripheral(self, start: int,
                          mask: Optional[np.ndarray] = None,
                          max_iters: int = 10) -> Tuple[int, np.ndarray]:
        """George–Liu pseudo-peripheral vertex heuristic.

        Repeatedly BFS and restart from a minimum-degree vertex of the last
        level until the eccentricity stops growing.  Returns the final root
        and its level structure.
        """
        root = start
        levels = self.bfs_levels(root, mask)
        ecc = int(levels.max())
        for _ in range(max_iters):
            last = np.flatnonzero(levels == ecc)
            if last.size == 0:
                break
            # minimum-degree vertex of the deepest level
            cand = last[np.argmin(self.degrees()[last])]
            new_levels = self.bfs_levels(int(cand), mask)
            new_ecc = int(new_levels.max())
            if new_ecc <= ecc:
                break
            root, levels, ecc = int(cand), new_levels, new_ecc
        return root, levels

    def connected_components(self,
                             mask: Optional[np.ndarray] = None) -> List[np.ndarray]:
        """Vertex sets of connected components (restricted to ``mask``)."""
        if mask is None:
            mask = np.ones(self.n, dtype=bool)
        seen = ~mask.copy()
        comps: List[np.ndarray] = []
        for s in range(self.n):
            if seen[s]:
                continue
            levels = self.bfs_levels(s, ~seen)
            comp = np.flatnonzero(levels >= 0)
            seen[comp] = True
            comps.append(comp)
        return comps

    def subgraph(self, vertices: np.ndarray) -> Tuple["Graph", np.ndarray]:
        """Induced subgraph.

        Returns ``(g, vertices)`` where local vertex ``i`` of ``g`` is global
        vertex ``vertices[i]`` (the echo makes call sites self-documenting).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        local = np.full(self.n, -1, dtype=np.int64)
        local[vertices] = np.arange(vertices.size, dtype=np.int64)
        srcs, dsts = [], []
        for i, v in enumerate(vertices):
            nbrs = self.neighbors(int(v))
            loc = local[nbrs]
            keep = loc >= 0
            dst = loc[keep]
            srcs.append(np.full(dst.size, i, dtype=np.int64))
            dsts.append(dst)
        src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
        dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
        adjptr = np.zeros(vertices.size + 1, dtype=np.int64)
        np.add.at(adjptr, src + 1, 1)
        np.cumsum(adjptr, out=adjptr)
        # src is already sorted because we iterated vertices in order
        return Graph(vertices.size, adjptr, dst), vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, nedges={self.nedges})"
