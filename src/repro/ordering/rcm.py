"""Reverse Cuthill–McKee ordering.

A bandwidth-reducing ordering: BFS from a pseudo-peripheral vertex with
neighbours visited in increasing-degree order, then reversed.  Not a
fill-reducing ordering for the supernodal solver (nested dissection is),
but the standard preprocessing for banded/skyline methods and a useful
baseline — e.g. to quantify how much nested dissection gains — so it ships
as part of the ordering toolbox.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ordering.graph import Graph


def reverse_cuthill_mckee(g: Graph) -> np.ndarray:
    """Return a new-to-old RCM permutation of ``g``.

    Handles disconnected graphs (each component is ordered from its own
    pseudo-peripheral root).  Deterministic: ties break by vertex index.
    """
    n = g.n
    degrees = g.degrees()
    visited = np.zeros(n, dtype=bool)
    order: List[int] = []

    for start in range(n):
        if visited[start]:
            continue
        mask = ~visited
        root, _ = g.pseudo_peripheral(start, mask)
        # BFS with degree-sorted neighbour expansion
        queue = [int(root)]
        visited[root] = True
        while queue:
            v = queue.pop(0)
            order.append(v)
            nbrs = [int(w) for w in g.neighbors(v) if not visited[w]]
            nbrs.sort(key=lambda w: (degrees[w], w))
            for w in nbrs:
                visited[w] = True
                queue.append(w)
    return np.asarray(order[::-1], dtype=np.int64)


def bandwidth(g: Graph, perm: np.ndarray) -> int:
    """Matrix bandwidth under the (new-to-old) permutation ``perm``."""
    pos = np.empty(g.n, dtype=np.int64)
    pos[perm] = np.arange(g.n)
    worst = 0
    for v in range(g.n):
        for w in g.neighbors(v):
            worst = max(worst, abs(int(pos[v]) - int(pos[int(w)])))
    return worst
