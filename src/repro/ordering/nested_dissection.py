"""Nested dissection ordering with explicit supernodal partition.

Implements the George [18] / Scotch-style recursion the paper's analysis step
relies on:

* recursively split each connected region with a vertex separator
  (:func:`repro.ordering.separator.find_vertex_separator`);
* stop when a region has at most ``cmin`` vertices (paper: ``cmin = 15``);
* number each region's sub-parts first and its separator *last*, so every
  separator dominates its subtree in the elimination order.

The result carries, besides the permutation, the partition into *supernodes*:
"each set of vertices corresponding to a separator constructed during the
nested dissection is called a supernode" (paper §1) — leaves of the recursion
are supernodes too.  A parent pointer per partition encodes the assembly-tree
skeleton (a leaf/separator's parent is the separator of the enclosing
region).

Separator vertices are ordered internally by a BFS of the separator-induced
subgraph.  This groups vertices that are close in the separator's own graph,
the same effect as the k-way separator ordering of [10, 16], and reduces both
off-diagonal block counts and block ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.ordering.graph import Graph
from repro.ordering.separator import find_vertex_separator


@dataclass
class NDPartition:
    """One supernode of the nested-dissection partition.

    Attributes
    ----------
    start, size:
        Column interval ``[start, start + size)`` in the *new* ordering.
    is_separator:
        True for separators, False for leaf regions.
    level:
        Dissection depth (0 = root separator).
    parent:
        Index into the partition list of the enclosing separator, or ``-1``.
    """

    start: int
    size: int
    is_separator: bool
    level: int
    parent: int = -1

    @property
    def end(self) -> int:
        return self.start + self.size


@dataclass
class NDResult:
    """Outcome of :func:`nested_dissection`.

    ``perm`` is new-to-old: the unknown at position ``k`` of the reordered
    matrix is original unknown ``perm[k]``.  ``partitions`` are sorted by
    ``start`` and tile ``[0, n)`` exactly.
    """

    perm: np.ndarray
    partitions: List[NDPartition]

    @property
    def n(self) -> int:
        return int(len(self.perm))

    def supernode_of(self) -> np.ndarray:
        """Map each new index to its partition id."""
        out = np.empty(self.n, dtype=np.int64)
        for i, p in enumerate(self.partitions):
            out[p.start:p.end] = i
        return out


def _order_within(g: Graph, vertices: np.ndarray) -> np.ndarray:
    """BFS ordering of a vertex set on its induced subgraph (deterministic)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size <= 2:
        return np.sort(vertices)
    mask = np.zeros(g.n, dtype=bool)
    mask[vertices] = True
    remaining = set(int(v) for v in vertices)
    out: List[int] = []
    while remaining:
        start = min(remaining)
        levels = g.bfs_levels(start, mask)
        comp = np.flatnonzero(levels >= 0)
        # sort by (level, index): BFS order, ties broken deterministically
        comp = comp[np.lexsort((comp, levels[comp]))]
        for v in comp:
            out.append(int(v))
            remaining.discard(int(v))
            mask[v] = False
    return np.asarray(out, dtype=np.int64)


def nested_dissection(
        g: Graph, cmin: int = 15,
        max_levels: Optional[int] = None,
        splitter: Optional[Callable[
            [Graph, "np.ndarray"],
            Tuple["np.ndarray", "np.ndarray", "np.ndarray"]]] = None,
) -> NDResult:
    """Compute a nested-dissection permutation and supernodal partition.

    Parameters
    ----------
    g:
        Adjacency graph of the (pattern-symmetric) matrix.
    cmin:
        Regions with at most ``cmin`` vertices are not dissected further
        (paper setting: 15).
    max_levels:
        Optional cap on the recursion depth (mainly for tests).
    splitter:
        ``splitter(g, vertices) -> (part_a, part_b, sep)`` strategy; the
        default is the algebraic level-set separator.  The geometric
        dissection of :mod:`repro.ordering.geometric` passes a
        coordinate-plane splitter here.
    """
    if cmin < 1:
        raise ValueError("cmin must be >= 1")
    if splitter is None:
        splitter = find_vertex_separator

    n = g.n
    perm = np.empty(n, dtype=np.int64)
    partitions: List[NDPartition] = []

    # Work items: (vertices, level, parent_partition_index).  We process a
    # region by splitting it, pushing children, and *reserving* the tail of
    # its index range for the separator, so positions are assigned
    # deterministically without recursion.
    def place(vertices: np.ndarray, start: int, level: int, parent: int) -> None:
        """Assign positions [start, start+len) to this region recursively."""
        stack = [(vertices, start, level, parent)]
        while stack:
            verts, base, lvl, par = stack.pop()
            nv = verts.size
            if nv == 0:
                continue
            if nv <= cmin or (max_levels is not None and lvl >= max_levels):
                ordered = _order_within(g, verts)
                perm[base:base + nv] = ordered
                partitions.append(NDPartition(base, nv, False, lvl, par))
                continue

            # regions may be disconnected (after separator removal)
            mask = np.zeros(g.n, dtype=bool)
            mask[verts] = True
            comps = _components(g, verts, mask)
            if len(comps) > 1:
                off = base
                for comp in comps:
                    stack.append((comp, off, lvl, par))
                    off += comp.size
                continue

            part_a, part_b, sep = splitter(g, verts)
            if sep.size == 0 or part_a.size == 0 or part_b.size == 0:
                # dissection failed (dense-ish or tiny graph): make a leaf
                ordered = _order_within(g, verts)
                perm[base:base + nv] = ordered
                partitions.append(NDPartition(base, nv, False, lvl, par))
                continue

            sep_start = base + part_a.size + part_b.size
            sep_ordered = _order_within(g, sep)
            perm[sep_start:sep_start + sep.size] = sep_ordered
            partitions.append(
                NDPartition(sep_start, sep.size, True, lvl, par))
            sep_part_index = len(partitions) - 1
            stack.append((part_a, base, lvl + 1, sep_part_index))
            stack.append((part_b, base + part_a.size, lvl + 1, sep_part_index))

    place(np.arange(n, dtype=np.int64), 0, 0, -1)
    partitions.sort(key=lambda p: p.start)
    result = NDResult(perm=perm, partitions=partitions)
    _fix_parents(result)
    _validate(result, n)
    return result


def _components(g: Graph, verts: np.ndarray, mask: np.ndarray) -> List[np.ndarray]:
    seen = np.zeros(g.n, dtype=bool)
    comps: List[np.ndarray] = []
    for s in verts:
        if seen[s]:
            continue
        levels = g.bfs_levels(int(s), mask & ~seen)
        comp = np.flatnonzero(levels >= 0)
        seen[comp] = True
        comps.append(comp)
    return comps


def _fix_parents(result: NDResult) -> None:
    """Translate parent pointers (recorded pre-sort) into post-sort indices.

    Parent pointers were stored as indices into the append-order list; after
    sorting by ``start`` they must be remapped.  We re-derive them
    geometrically instead: the parent of a partition is the *innermost*
    separator whose dissection produced it — equivalently the separator with
    the smallest enclosing span that starts at or after the partition's end.
    Because every separator sits at the *end* of the index range of its
    region, partition ``p``'s parent is the nearest separator ``s`` with
    ``s.start >= p.end`` and ``s.level == p.level - 1`` scanning outward.
    """
    parts = result.partitions
    index_of = {id(p): i for i, p in enumerate(parts)}
    latest_sep_at_level: dict = {}
    for p in reversed(parts):
        if p.level > 0:
            parent = latest_sep_at_level.get(p.level - 1)
            p.parent = parent if parent is not None else -1
        else:
            p.parent = -1
        if p.is_separator:
            latest_sep_at_level[p.level] = index_of[id(p)]


def _validate(result: NDResult, n: int) -> None:
    seen = np.zeros(n, dtype=bool)
    if seen[result.perm].any():  # pragma: no cover - defensive
        raise AssertionError("duplicate index in permutation")
    seen[result.perm] = True
    if not seen.all():
        raise AssertionError("nested dissection produced an invalid permutation")
    pos = 0
    for p in result.partitions:
        if p.start != pos:
            raise AssertionError("partitions do not tile [0, n)")
        pos = p.end
    if pos != n:
        raise AssertionError("partitions do not cover [0, n)")
