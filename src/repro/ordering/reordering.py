"""Intra-supernode reordering (the TSP strategy of Pichon et al. [21]).

After the supernodal partition is fixed, the *internal* order of a
supernode's vertices is still free: permuting them permutes rows inside the
supernode's column range without changing fill.  The symbolic structure of
contributing supernodes, however, depends on that order — a contributor whose
row subset is scattered produces many small off-diagonal blocks, while a
contiguous subset produces one.  The paper reports that the TSP reordering
implemented in PaStiX "divides by more than two the number of off-diagonal
blocks" (§1) and also lowers the ranks of low-rank blocks.

We reproduce the heuristic: each vertex of a supernode is labelled with the
set of contributors that reach it; vertices with identical labels are grouped;
groups are chained greedily by minimal symmetric difference (the
travelling-salesman tour over Hamming distances, nearest-neighbour
approximation).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.symbolic.supernodes import Supernode

#: supernodes wider than this skip the O(groups²) chaining and use a
#: lexicographic group order instead
TSP_WIDTH_CAP = 4096


def reorder_supernodes(snodes: Sequence[Supernode]) -> np.ndarray:
    """Compute the intra-supernode reordering remap.

    Returns ``newpos`` with ``newpos[g]`` = new global index of the vertex
    currently at global index ``g``; the permutation only moves vertices
    within their own supernode.  Callers must then remap every supernode's
    ``rows`` array (``sort(newpos[rows])``) and compose ``newpos`` into the
    global permutation.
    """
    n = snodes[-1].end if snodes else 0
    newpos = np.arange(n, dtype=np.int64)

    # vertex labels: which contributors reach each vertex of each supernode
    labels: List[List[int]] = [[] for _ in range(n)]
    starts = np.array([s.first_col for s in snodes], dtype=np.int64)
    for ci, c in enumerate(snodes):
        rows = c.rows
        if rows.size == 0:
            continue
        # split rows by owning supernode and label them with the contributor
        owners = np.searchsorted(starts, rows, side="right") - 1
        for r in rows[owners >= 0]:
            labels[int(r)].append(ci)

    for s in snodes:
        if s.ncols <= 2:
            continue
        verts = range(s.first_col, s.end)
        key_of: Dict[FrozenSet[int], List[int]] = {}
        for v in verts:
            key = frozenset(labels[v])
            key_of.setdefault(key, []).append(v)
        if len(key_of) <= 1:
            continue
        groups = list(key_of.items())
        if s.ncols > TSP_WIDTH_CAP or len(groups) > 512:
            order = _lexicographic_order(groups)
        else:
            order = _greedy_tour(groups)
        pos = s.first_col
        for gi in order:
            for v in groups[gi][1]:
                newpos[v] = pos
                pos += 1
    return newpos


def _greedy_tour(groups: List[Tuple[FrozenSet[int], List[int]]]) -> List[int]:
    """Nearest-neighbour tour over group labels (Hamming distance)."""
    ngroups = len(groups)
    unvisited = set(range(ngroups))
    # start from the group with the smallest label (few contributors = the
    # "top" rows of the supernode in typical elimination structures)
    cur = min(unvisited, key=lambda g: (len(groups[g][0]), g))
    order = [cur]
    unvisited.discard(cur)
    while unvisited:
        cur_key = groups[cur][0]
        best, best_d = -1, None
        for g in unvisited:
            d = len(cur_key.symmetric_difference(groups[g][0]))
            if best_d is None or d < best_d or (d == best_d and g < best):
                best, best_d = g, d
        order.append(best)
        unvisited.discard(best)
        cur = best
    return order


def _lexicographic_order(groups: List[Tuple[FrozenSet[int], List[int]]]
                         ) -> List[int]:
    """Fallback for very wide supernodes: sort groups lexicographically by
    their sorted label tuples, which still clusters similar patterns."""
    keyed = sorted(range(len(groups)),
                   key=lambda g: tuple(sorted(groups[g][0])))
    return keyed


def apply_reordering(snodes: Sequence[Supernode], newpos: np.ndarray) -> None:
    """Remap every supernode's row set in place after a reordering."""
    for s in snodes:
        if s.rows.size:
            s.rows = np.sort(newpos[s.rows])
