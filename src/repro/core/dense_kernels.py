"""Dense block kernels with static pivoting and flop accounting.

These wrap LAPACK (via scipy) exactly the way PaStiX wraps MKL: the diagonal
block factorization (`getrf` without pivoting / `potrf`), the triangular
panel solves, and GEMM — each returning its flop count so Table 2's
machine-independent cost columns can be reproduced.

Pivoting: PaStiX performs *static* pivoting — the elimination order is fixed
by the analysis step, and a too-small pivot is replaced by a perturbation of
magnitude ``threshold * max |diag|`` (the factorization then acts on a
slightly perturbed matrix; iterative refinement absorbs the perturbation).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg as sla


def block_all_finite(a: Optional[np.ndarray]) -> bool:
    """NaN/Inf sentinel used by the recovery layer's breakdown detection.

    ``None`` and empty arrays count as finite; ``np.isfinite`` checks both
    components of complex arrays, so this is complex-safe.
    """
    return a is None or a.size == 0 or bool(np.isfinite(a).all())


def flop_scale(dtype: "np.dtype | str") -> float:
    """Flop multiplier for complex arithmetic (1 complex mul+add = 4 real
    flops under the usual LAPACK-style counting); 1.0 for real dtypes."""
    return 4.0 if np.dtype(dtype).kind == "c" else 1.0


def gemm_flops(m: int, n: int, k: int) -> float:
    return 2.0 * m * n * k


def getrf_flops(n: int) -> float:
    return (2.0 / 3.0) * n ** 3


def potrf_flops(n: int) -> float:
    return (1.0 / 3.0) * n ** 3


def trsm_flops(m: int, n: int) -> float:
    """Triangular solve with an ``m x m`` triangle and ``n`` right-hand sides."""
    return float(m) * m * n


def lu_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
               ) -> Tuple[np.ndarray, int]:
    """In-place-style LU without row pivoting (static pivoting).

    Returns ``(lu, nperturbed)`` where ``lu`` packs the unit-lower L below
    the diagonal and U on/above it (LAPACK layout), and ``nperturbed``
    counts pivots replaced by ``±pivot_threshold * max|diag(A)|``.
    """
    lu = np.array(a, copy=True)
    if lu.dtype.kind not in "fc":
        lu = lu.astype(np.float64)
    n = lu.shape[0]
    if lu.shape[1] != n:
        raise ValueError("diagonal block must be square")
    max_diag = float(np.abs(np.diag(lu)).max())
    floor = pivot_threshold * (max_diag if max_diag > 0 else 1.0)
    nperturbed = 0
    # blocked right-looking elimination; block size tuned for BLAS3 payoff
    bs = 64
    for k0 in range(0, n, bs):
        k1 = min(k0 + bs, n)
        # factor the diagonal sub-block with scalar loop + static pivoting
        for k in range(k0, k1):
            piv = lu[k, k]
            if abs(piv) < floor:
                if lu.dtype.kind == "c":
                    # keep the complex phase (floor for an exact zero)
                    piv = floor if piv == 0 else piv / abs(piv) * floor
                else:
                    piv = floor if piv >= 0 else -floor
                lu[k, k] = piv
                nperturbed += 1
            if k + 1 < k1:
                lu[k + 1:k1, k] /= piv
                lu[k + 1:k1, k + 1:k1] -= np.outer(lu[k + 1:k1, k],
                                                   lu[k, k + 1:k1])
        if k1 < n:
            diag = lu[k0:k1, k0:k1]
            # panel solves against the factored sub-block
            lu[k0:k1, k1:] = sla.solve_triangular(
                diag, lu[k0:k1, k1:], lower=True, unit_diagonal=True, check_finite=False)
            lu[k1:, k0:k1] = sla.solve_triangular(
                diag, lu[k1:, k0:k1].T, trans="T", lower=False, check_finite=False).T
            # trailing update (the BLAS3 payload)
            lu[k1:, k1:] -= lu[k1:, k0:k1] @ lu[k0:k1, k1:]
        else:
            # also finish columns within the last block for k rows below k1
            pass
    return lu, nperturbed


def cholesky_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
                     ) -> Tuple[np.ndarray, int]:
    """Lower Cholesky with static regularization of non-positive pivots.

    Complex blocks are factored as Hermitian ``L Lᴴ`` (real diagonal), so
    the rank-1 trailing update conjugates the eliminated column.
    """
    n = a.shape[0]
    try:
        return np.linalg.cholesky(a), 0
    except np.linalg.LinAlgError:
        pass
    # fall back to a scalar loop with pivot boosting (complex blocks are
    # treated as Hermitian: L L^H with a real diagonal)
    l_mat = np.array(a, copy=True)
    if l_mat.dtype.kind not in "fc":
        l_mat = l_mat.astype(np.float64)
    max_diag = float(np.abs(np.diag(a)).max())
    floor = pivot_threshold * (max_diag if max_diag > 0 else 1.0)
    nperturbed = 0
    for k in range(n):
        d = l_mat[k, k].real
        if d <= floor:
            d = floor
            nperturbed += 1
        d = np.sqrt(d)
        l_mat[k, k] = d
        if k + 1 < n:
            l_mat[k + 1:, k] /= d
            l_mat[k + 1:, k + 1:] -= np.outer(l_mat[k + 1:, k],
                                              l_mat[k + 1:, k].conj())
    return np.tril(l_mat), nperturbed


def ldlt_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
                 ) -> Tuple[np.ndarray, int]:
    """LDLᵗ factorization without pivoting (symmetric indefinite blocks).

    Complex blocks factor as Hermitian ``L D Lᴴ`` (real D): the rank-1
    trailing update conjugates the eliminated column.

    Returns ``(packed, nperturbed)``: ``packed`` holds the unit-lower L
    strictly below the diagonal and D on the diagonal.  Pivots smaller in
    magnitude than ``pivot_threshold * max|diag(A)|`` are boosted (static
    pivoting), keeping their sign.
    """
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError("diagonal block must be square")
    packed = np.array(a, copy=True)
    if packed.dtype.kind not in "fc":
        packed = packed.astype(np.float64)
    hermitian = packed.dtype.kind == "c"
    max_diag = float(np.abs(np.diag(a)).max())
    floor = pivot_threshold * (max_diag if max_diag > 0 else 1.0)
    nperturbed = 0
    for k in range(n):
        # complex blocks are factored as Hermitian L D L^H: D is
        # mathematically real, so roundoff imaginary parts are dropped
        d = packed[k, k].real if hermitian else packed[k, k]
        if abs(d) < floor:
            d = floor if d >= 0 else -floor
            nperturbed += 1
        packed[k, k] = d
        if k + 1 < n:
            col = packed[k + 1:, k] / d
            if hermitian:
                packed[k + 1:, k + 1:] -= np.outer(col,
                                                   packed[k + 1:, k].conj())
            else:
                packed[k + 1:, k + 1:] -= np.outer(col, packed[k + 1:, k])
            packed[k + 1:, k] = col
    return packed, nperturbed


def ldlt_flops(n: int) -> float:
    return (1.0 / 3.0) * n ** 3


def solve_upper_right(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X U = B``  →  ``X = B U⁻¹`` for upper-triangular ``U``."""
    return sla.solve_triangular(u, b.T, trans="T", lower=False, check_finite=False).T


def solve_unit_lower_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᵗ = B``  →  ``X = B L⁻ᵗ`` for unit-lower ``L``.

    Transposing: ``L Xᵗ = Bᵗ``, a plain forward substitution.
    """
    return sla.solve_triangular(l_mat, b.T, lower=True,
                                unit_diagonal=True, check_finite=False).T


def solve_lower_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᵗ = B``  →  ``X = B L⁻ᵗ`` for (non-unit) lower ``L``."""
    return sla.solve_triangular(l_mat, b.T, lower=True, check_finite=False).T


def solve_lower_ct_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᴴ = B`` for (non-unit) lower ``L`` — the Hermitian-Cholesky
    panel solve.  Coincides bit-for-bit with :func:`solve_lower_right` for
    real blocks (``conj`` is a no-copy pass-through)."""
    return sla.solve_triangular(l_mat, b.conj().T, lower=True,
                                check_finite=False).conj().T


def solve_unit_lower_ct_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᴴ = B`` for unit-lower ``L`` (Hermitian LDLᴴ panel solve)."""
    return sla.solve_triangular(l_mat, b.conj().T, lower=True,
                                unit_diagonal=True,
                                check_finite=False).conj().T
