"""Dense block kernels with static pivoting and flop accounting.

These wrap LAPACK (via scipy) exactly the way PaStiX wraps MKL: the diagonal
block factorization (`getrf` without pivoting / `potrf`), the triangular
panel solves, and GEMM — each returning its flop count so Table 2's
machine-independent cost columns can be reproduced.

Pivoting: PaStiX performs *static* pivoting — the elimination order is fixed
by the analysis step, and a too-small pivot is replaced by a perturbation of
magnitude ``threshold * max |diag|`` (the factorization then acts on a
slightly perturbed matrix; iterative refinement absorbs the perturbation).

Since the backend protocol landed (:mod:`repro.core.backend`), this module
is the *stable public face* of those kernels: the implementations live in
the registered :class:`~repro.core.backend.KernelBackend` (selected via
``SolverConfig.backend`` / ``$REPRO_BACKEND``), and the functions here
delegate to it.  Call them when you have no resolved backend at hand
(tests, scripts); code inside the factorization keeps a resolved backend
on the :class:`~repro.core.factor.NumericFactor` and calls it directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.backend import get_backend


def block_all_finite(a: Optional[np.ndarray]) -> bool:
    """NaN/Inf sentinel used by the recovery layer's breakdown detection.

    ``None`` and empty arrays count as finite; ``np.isfinite`` checks both
    components of complex arrays, so this is complex-safe.
    """
    return a is None or a.size == 0 or bool(np.isfinite(a).all())


def flop_scale(dtype: "np.dtype | str") -> float:
    """Flop multiplier for complex arithmetic (1 complex mul+add = 4 real
    flops under the usual LAPACK-style counting); 1.0 for real dtypes."""
    return 4.0 if np.dtype(dtype).kind == "c" else 1.0


def gemm_flops(m: int, n: int, k: int) -> float:
    return 2.0 * m * n * k


def getrf_flops(n: int) -> float:
    return (2.0 / 3.0) * n ** 3


def potrf_flops(n: int) -> float:
    return (1.0 / 3.0) * n ** 3


def trsm_flops(m: int, n: int) -> float:
    """Triangular solve with an ``m x m`` triangle and ``n`` right-hand sides."""
    return float(m) * m * n


def ldlt_flops(n: int) -> float:
    return (1.0 / 3.0) * n ** 3


def lu_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
               ) -> Tuple[np.ndarray, int]:
    """In-place-style LU without row pivoting (static pivoting).

    Returns ``(lu, nperturbed)`` where ``lu`` packs the unit-lower L below
    the diagonal and U on/above it (LAPACK layout), and ``nperturbed``
    counts pivots replaced by ``±pivot_threshold * max|diag(A)|``.
    """
    return get_backend().getrf(a, pivot_threshold)


def cholesky_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
                     ) -> Tuple[np.ndarray, int]:
    """Lower Cholesky with static regularization of non-positive pivots.

    Complex blocks are factored as Hermitian ``L Lᴴ`` (real diagonal), so
    the rank-1 trailing update conjugates the eliminated column.
    """
    return get_backend().potrf(a, pivot_threshold)


def ldlt_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
                 ) -> Tuple[np.ndarray, int]:
    """LDLᵗ factorization without pivoting (symmetric indefinite blocks).

    Complex blocks factor as Hermitian ``L D Lᴴ`` (real D): the rank-1
    trailing update conjugates the eliminated column.

    Returns ``(packed, nperturbed)``: ``packed`` holds the unit-lower L
    strictly below the diagonal and D on the diagonal.  Pivots smaller in
    magnitude than ``pivot_threshold * max|diag(A)|`` are boosted (static
    pivoting), keeping their sign.
    """
    return get_backend().ldlt(a, pivot_threshold)


def solve_upper_right(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X U = B``  →  ``X = B U⁻¹`` for upper-triangular ``U``."""
    return get_backend().trsm(u, b, side="right", lower=False, trans="N")


def solve_unit_lower_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᵗ = B``  →  ``X = B L⁻ᵗ`` for unit-lower ``L``.

    Transposing: ``L Xᵗ = Bᵗ``, a plain forward substitution.
    """
    return get_backend().trsm(l_mat, b, side="right", lower=True,
                              trans="T", unit_diagonal=True)


def solve_lower_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᵗ = B``  →  ``X = B L⁻ᵗ`` for (non-unit) lower ``L``."""
    return get_backend().trsm(l_mat, b, side="right", lower=True, trans="T")


def solve_lower_ct_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᴴ = B`` for (non-unit) lower ``L`` — the Hermitian-Cholesky
    panel solve.  Coincides bit-for-bit with :func:`solve_lower_right` for
    real blocks (``conj`` is a no-copy pass-through)."""
    return get_backend().trsm(l_mat, b, side="right", lower=True, trans="C")


def solve_unit_lower_ct_right(l_mat: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``X Lᴴ = B`` for unit-lower ``L`` (Hermitian LDLᴴ panel solve)."""
    return get_backend().trsm(l_mat, b, side="right", lower=True,
                              trans="C", unit_diagonal=True)
