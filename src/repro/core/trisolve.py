"""Triangular solves on the block factorization (paper step 4).

Works on the mixed dense/low-rank storage produced by any strategy.  Low-rank
blocks apply as ``u (vᵗ x)`` — the solve step is what the paper's Table 2
"Solve time" row measures, and it is *faster* than the dense solve because
the work is proportional to the stored ranks.

Conventions (matching :mod:`repro.core.factorization`):

* LU: ``P A Pᵗ = L U`` with unit-lower L; the diagonal blocks pack L and U
  LAPACK-style; off-diagonal U is stored transposed (Uᵗ blocks shaped like
  L blocks).
* Cholesky: ``P A Pᵗ = L Lᵗ`` with the lower factor in the diagonal blocks.

Right-hand sides may be a vector ``(n,)`` or a panel ``(n, k)`` — including
``k = 0``.  The whole solve runs on the *column-stable* panel kernels of the
factor's :class:`~repro.core.backend.KernelBackend` (``panel_trsm`` /
``panel_gemm`` / ``lr_apply``): column ``j`` of the result depends only on
column ``j`` of ``b``, bit-for-bit, so a blocked ``(n, k)`` solve equals
``k`` single-RHS solves exactly (for identical dtypes).  BLAS gemm/trsm do
not have that property — their internal blocking changes the summation
order with the panel width — which is why the solve phase deliberately
avoids them.  The diagonal blocks are passed packed: the panel kernels read
only the requested triangle, so no ``np.triu`` copies are taken.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import KernelBackend
from repro.core.factor import Block, NumericFactor
from repro.core.factorization import ldlt_d_solve_rows
from repro.lowrank.block import LowRankBlock


def _apply_block(be: KernelBackend, block: Block,
                 x_cols: np.ndarray) -> np.ndarray:
    """``block @ x_cols`` for dense or low-rank block (column-stable)."""
    if isinstance(block, LowRankBlock):
        return be.lr_apply(block.u, block.v, x_cols, mode="n")
    return be.panel_gemm(block, x_cols)


def _apply_block_t(be: KernelBackend, block: Block,
                   x_rows: np.ndarray) -> np.ndarray:
    """``block.T @ x_rows`` (pure transpose — the LU paths)."""
    if isinstance(block, LowRankBlock):
        return be.lr_apply(block.u, block.v, x_rows, mode="t")
    return be.panel_gemm(np.ascontiguousarray(block.T), x_rows)


def _apply_block_h(be: KernelBackend, block: Block,
                   x_rows: np.ndarray) -> np.ndarray:
    """``blockᴴ @ x_rows`` (adjoint — the symmetric backward passes; for
    real blocks ``conj`` is a no-copy pass-through, so this coincides
    bit-for-bit with :func:`_apply_block_t`)."""
    if isinstance(block, LowRankBlock):
        return be.lr_apply(block.u, block.v, x_rows, mode="h")
    return be.panel_gemm(np.ascontiguousarray(block.conj().T), x_rows)


def solve_factored(fac: NumericFactor, b: np.ndarray,
                   trans: bool = False) -> np.ndarray:
    """Solve ``(P A Pᵗ) x = b`` — or its transpose with ``trans=True`` —
    using the computed factors.

    ``b`` may be ``(n,)`` or an ``(n, k)`` panel; the result has the same
    shape.  Inputs are normalized to a fresh C-contiguous working copy, so
    Fortran-ordered or strided right-hand sides give bit-identical results
    to contiguous ones.

    The transposed solve of an LU factorization runs ``Uᵗ z = b`` then
    ``Lᵗ x = z``: the stored ``Uᵗ`` blocks apply *forward* and the ``L``
    blocks apply transposed, mirroring the plain solve.  For complex LU
    factors ``trans=True`` solves against ``Aᵗ`` (the pure transpose, not
    the adjoint), matching the real-case semantics.  Hermitian
    factorizations (cholesky/ldlt of complex matrices) are their own
    adjoint, and their backward passes apply ``Lᴴ``.
    """
    if fac.faults is not None:
        fac.faults.on_trisolve(fac)
    x = np.array(b, dtype=np.result_type(fac.dtype, np.asarray(b).dtype),
                 copy=True, order="C")
    if x.dtype.kind not in "fc":
        x = x.astype(np.float64)
    single = x.ndim == 1
    if single:
        x = x[:, None]
    prof = fac.profiler
    _sid = (prof.start("trisolve", factotype=fac.config.factotype,
                       nrhs=x.shape[1], trans=trans)
            if prof is not None else None)
    try:
        if fac.config.factotype == "lu":
            if trans:
                _forward_ut(fac, x)
                _backward_lt(fac, x)
            else:
                _forward_lu(fac, x)
                _backward_lu(fac, x)
        elif fac.config.factotype == "cholesky":
            _forward_cholesky(fac, x)
            _backward_cholesky(fac, x)
        else:  # ldlt: L z = b ; y = D⁻¹ z ; Lᵗ x = y
            _forward_ldlt(fac, x)
            _diag_scale_ldlt(fac, x)
            _backward_ldlt(fac, x)
    finally:
        if prof is not None:
            prof.end(_sid)
    return x[:, 0] if single else x


def _forward_lu(fac: NumericFactor, x: np.ndarray) -> None:
    """``L y = b`` (unit-lower), overwriting ``x``."""
    be = fac.backend
    for nc in fac.cblks:
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        x[lo:hi] = be.panel_trsm(nc.diag, x[lo:hi], lower=True,
                                 unit_diagonal=True)
        for i, b in enumerate(sym.off_blocks()):
            x[b.first_row:b.end_row] -= _apply_block(be, nc.lblock(i),
                                                     x[lo:hi])


def _backward_lu(fac: NumericFactor, x: np.ndarray) -> None:
    """``U x = y``; off-diagonal U applied via the stored Uᵗ blocks."""
    be = fac.backend
    for nc in reversed(fac.cblks):
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        acc = x[lo:hi]
        for i, b in enumerate(sym.off_blocks()):
            # U[k, (i)] = (Uᵗ(i),k)ᵗ
            acc -= _apply_block_t(be, nc.ublock(i), x[b.first_row:b.end_row])
        x[lo:hi] = be.panel_trsm(nc.diag, acc, lower=False)


def _forward_cholesky(fac: NumericFactor, x: np.ndarray) -> None:
    be = fac.backend
    for nc in fac.cblks:
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        x[lo:hi] = be.panel_trsm(nc.diag, x[lo:hi], lower=True)
        for i, b in enumerate(sym.off_blocks()):
            x[b.first_row:b.end_row] -= _apply_block(be, nc.lblock(i),
                                                     x[lo:hi])


def _backward_cholesky(fac: NumericFactor, x: np.ndarray) -> None:
    """``Lᴴ x = y`` using the same L blocks adjoint-applied (``Lᵗ`` for
    real factors)."""
    be = fac.backend
    trans = "C" if fac.dtype.kind == "c" else "T"
    for nc in reversed(fac.cblks):
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        acc = x[lo:hi]
        for i, b in enumerate(sym.off_blocks()):
            acc -= _apply_block_h(be, nc.lblock(i), x[b.first_row:b.end_row])
        x[lo:hi] = be.panel_trsm(nc.diag, acc, lower=True, trans=trans)


def _forward_ldlt(fac: NumericFactor, x: np.ndarray) -> None:
    """``L z = b`` with unit-lower L (D shares the diag storage).

    Threshold-pivoted supernodes store the within-block permutation P on
    ``nc.pivperm``: their global diagonal L block is ``Pᵀ L00``, so the
    forward step solves ``L00 z = P b`` — permute the local right-hand
    side rows, then run the usual unit-lower solve."""
    be = fac.backend
    for nc in fac.cblks:
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        rhs = x[lo:hi] if nc.pivperm is None else x[lo:hi][nc.pivperm]
        x[lo:hi] = be.panel_trsm(nc.diag, rhs, lower=True,
                                 unit_diagonal=True)
        for i, b in enumerate(sym.off_blocks()):
            x[b.first_row:b.end_row] -= _apply_block(be, nc.lblock(i),
                                                     x[lo:hi])


def _diag_scale_ldlt(fac: NumericFactor, x: np.ndarray) -> None:
    """``y = D⁻¹ z`` using the (block-)diagonal of every diagonal block.

    With threshold pivoting D may carry 2×2 pivot blocks whose
    subdiagonal lives on ``nc.pivd21``; those are solved via the explicit
    2×2 inverse (:func:`~repro.core.factorization.ldlt_d_solve_rows`)."""
    for nc in fac.cblks:
        lo, hi = nc.sym.first_col, nc.sym.end_col
        d = np.diag(nc.diag)
        hermitian = d.dtype.kind == "c"
        if hermitian:
            d = d.real  # Hermitian LDLᴴ: D is real by construction
        if nc.pivd21 is None:
            x[lo:hi] /= d[:, None]
        else:
            x[lo:hi] = ldlt_d_solve_rows(x[lo:hi], d, nc.pivd21, hermitian)


def _backward_ldlt(fac: NumericFactor, x: np.ndarray) -> None:
    """``Lᴴ x = y`` with the same unit-lower L blocks adjoint-applied.

    Pivoted supernodes solve ``(Pᵀ L00)ᴴ x = y`` as ``L00ᴴ w = y`` with
    ``w = P x`` — run the adjoint solve, then scatter the rows back
    through the permutation (``x[p] = w``)."""
    be = fac.backend
    trans = "C" if fac.dtype.kind == "c" else "T"
    for nc in reversed(fac.cblks):
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        acc = x[lo:hi]
        for i, b in enumerate(sym.off_blocks()):
            acc -= _apply_block_h(be, nc.lblock(i), x[b.first_row:b.end_row])
        sol = be.panel_trsm(nc.diag, acc, lower=True, trans=trans,
                            unit_diagonal=True)
        if nc.pivperm is None:
            x[lo:hi] = sol
        else:
            x[lo:hi][nc.pivperm] = sol


def _forward_ut(fac: NumericFactor, x: np.ndarray) -> None:
    """``Uᵗ z = b`` — Uᵗ is lower triangular and its off-diagonal blocks
    are exactly the stored ``Uᵗ(i),k`` blocks, applied untransposed."""
    be = fac.backend
    for nc in fac.cblks:
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        x[lo:hi] = be.panel_trsm(nc.diag, x[lo:hi], lower=False, trans="T")
        for i, b in enumerate(sym.off_blocks()):
            x[b.first_row:b.end_row] -= _apply_block(be, nc.ublock(i),
                                                     x[lo:hi])


def _backward_lt(fac: NumericFactor, x: np.ndarray) -> None:
    """``Lᵗ x = z`` with the unit-lower L blocks applied transposed."""
    be = fac.backend
    for nc in reversed(fac.cblks):
        sym = nc.sym
        lo, hi = sym.first_col, sym.end_col
        acc = x[lo:hi]
        for i, b in enumerate(sym.off_blocks()):
            acc -= _apply_block_t(be, nc.lblock(i), x[b.first_row:b.end_row])
        x[lo:hi] = be.panel_trsm(nc.diag, acc, lower=True, trans="T",
                                 unit_diagonal=True)
