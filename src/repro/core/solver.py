"""Public solver facade.

Mirrors the classic four-step direct-solver API (paper §1): ``analyze()``
(ordering + symbolic, value-free and reusable), ``factorize()`` (numerical
block factorization under the configured strategy), ``solve()`` (triangular
solves, optionally followed by refinement), and ``refine()`` (preconditioned
GMRES / CG / iterative refinement, §4.4).

>>> from repro import Solver, SolverConfig
>>> from repro.sparse.generators import laplacian_3d
>>> import numpy as np
>>> a = laplacian_3d(6)
>>> cfg = SolverConfig.laptop_scale(strategy="minimal-memory", tolerance=1e-8)
>>> s = Solver(a, cfg)
>>> stats = s.factorize()
>>> b = np.ones(a.n)
>>> x = s.solve(b)
>>> float(np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)) < 1e-6
True
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:
    from repro.runtime.faults import FaultInjector

import numpy as np

from repro.config import SolverConfig
from repro.core.factor import NumericFactor, assemble
from repro.core.refinement import (
    RefinementResult,
    conjugate_gradient,
    gmres,
    iterative_refinement,
)
from repro.core.scheduler import (
    run_sequential,
    run_threaded,
    run_threaded_static,
)
from repro.core.trisolve import solve_factored
from repro.runtime.stats import FactorizationStats
from repro.sparse.csc import CSCMatrix
from repro.sparse.permute import permute_symmetric
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization
from repro.symbolic.structure import SymbolicFactor


class Solver:
    """Sparse direct solver with optional Block Low-Rank compression.

    Parameters
    ----------
    a:
        The system matrix (our CSC container; ``CSCMatrix.from_scipy``
        converts scipy matrices).  General matrices use ``factotype='lu'``
        (the pattern is symmetrized internally); SPD matrices may use
        ``factotype='cholesky'``.
    config:
        See :class:`~repro.config.SolverConfig`; defaults to a dense-like
        Just-In-Time/RRQR configuration at paper-scale thresholds.
    """

    def __init__(self, a: CSCMatrix, config: Optional[SolverConfig] = None,
                 coords: Optional[np.ndarray] = None) -> None:
        if not isinstance(a, CSCMatrix):
            raise TypeError("a must be a repro CSCMatrix "
                            "(use CSCMatrix.from_scipy for scipy input)")
        if a.nnz and not np.isfinite(a.values).all():
            raise ValueError("matrix contains NaN or Inf entries")
        self.a = a
        self.config = config or SolverConfig()
        #: arithmetic dtype of the factorization (config.dtype wins; a
        #: complex matrix with a real config.dtype raises here)
        self.dtype = self.config.resolve_dtype(a.values.dtype)
        if self.config.is_symmetric_facto:
            hermitian = a.values.dtype.kind == "c"
            if not a.is_symmetric(tol=0.0, hermitian=hermitian):
                raise ValueError(
                    "cholesky/ldlt factorization requires a "
                    + ("Hermitian" if hermitian else "symmetric")
                    + " matrix")
        self._a_sym = a if a.is_pattern_symmetric() else a.symmetrize_pattern()
        if self._a_sym.values.dtype != self.dtype:
            # cast only the working copy; self.a keeps the caller's values
            # so residuals and refinement stay honest
            self._a_sym = CSCMatrix(
                self._a_sym.n, self._a_sym.colptr, self._a_sym.rowind,
                self._a_sym.values.astype(self.dtype), check=False)
        #: node coordinates (required by ordering='geometric')
        self.coords = coords
        self.symbolic: Optional[SymbolicFactor] = None
        self.perm: Optional[np.ndarray] = None
        self.factor: Optional[NumericFactor] = None
        self.analyze_time: float = 0.0
        #: task trace of the last :meth:`factorize` (``config.trace=True``)
        self.tracer = None
        #: result of the last :meth:`refine` call (residual history feeds
        #: :meth:`run_report` even when no telemetry bus is attached)
        self.last_refinement: Optional[RefinementResult] = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.a.n

    @property
    def stats(self) -> Optional[FactorizationStats]:
        return None if self.factor is None else self.factor.stats

    # -- step 1+2: analysis ------------------------------------------------
    def analyze(self) -> SymbolicFactor:
        """Ordering + symbolic block factorization (cached, value-free)."""
        if self.symbolic is None:
            t0 = time.perf_counter()
            opts = SymbolicOptions.from_config(self.config)
            self.symbolic, self.perm = symbolic_factorization(
                self._a_sym, opts, coords=self.coords)
            self.analyze_time = time.perf_counter() - t0
        return self.symbolic

    # -- step 3: numerical factorization ------------------------------------
    def factorize(self, faults: Optional["FaultInjector"] = None
                  ) -> FactorizationStats:
        """Assemble and factor under the configured strategy; returns the
        per-kernel statistics (the rows of Table 2).

        With ``config.trace=True`` a task trace is recorded and left on
        :attr:`tracer` (see ``docs/observability.md``).  ``faults`` attaches
        a :class:`~repro.runtime.faults.FaultInjector` for the run — a
        testing hook, never set in production paths.
        """
        self.analyze()
        a_perm = permute_symmetric(self._a_sym, self.perm)
        t0 = time.perf_counter()
        fac = assemble(a_perm, self.symbolic, self.config)
        if self.config.trace:
            from repro.runtime.trace import TaskTracer

            self.tracer = fac.tracer = TaskTracer()
        else:
            self.tracer = None
        fac.faults = faults
        if self.config.threads > 1:
            if self.config.scheduler == "static":
                run_threaded_static(fac, self.config.threads)
            else:
                run_threaded(fac, self.config.threads)
        else:
            run_sequential(fac)
        fac.stats.total_time = time.perf_counter() - t0
        fac.stats.factor_nbytes = fac.factor_nbytes()
        fac.stats.dense_factor_nbytes = fac.dense_factor_nbytes()
        fac.stats.peak_nbytes = fac.tracker.peak
        ncomp = ndense = 0
        from repro.lowrank.block import LowRankBlock

        for nc in fac.cblks:
            if nc.lblocks is None:
                ndense += nc.sym.noff
                continue
            for blk in nc.lblocks:
                if isinstance(blk, LowRankBlock):
                    ncomp += 1
                else:
                    ndense += 1
        fac.stats.nblocks_compressed = ncomp
        fac.stats.nblocks_dense = ndense
        self.factor = fac
        return fac.stats

    # -- step 4: solves -----------------------------------------------------
    def solve(self, b: np.ndarray, refine: bool = False,
              refine_tol: float = 1e-12, refine_maxiter: int = 20,
              trans: bool = False) -> np.ndarray:
        """Solve ``A x = b`` (single vector or multiple right-hand sides).

        ``trans=True`` solves ``Aᵗ x = b`` instead (same factors, mirrored
        triangular sweeps — symmetric factorizations are unaffected).
        With ``refine=True`` one runs the paper's default post-processing:
        preconditioned GMRES (CG for Cholesky factorizations) until
        ``refine_tol`` or ``refine_maxiter``.  Refinement supports only a
        single right-hand side of the untransposed system; asking for it
        with ``b.ndim > 1`` or ``trans=True`` raises ``ValueError`` (it
        used to be silently skipped).
        """
        if self.factor is None:
            self.factorize()
        b = np.asarray(b)
        if b.dtype.kind not in "fc":
            b = b.astype(np.float64)
        if b.dtype.kind == "c" and self.factor.dtype.kind != "c":
            raise ValueError(
                "complex right-hand side against a real factorization "
                "would discard imaginary parts; factor with "
                "config.dtype='complex128' (or solve real/imag parts "
                "separately)")
        if refine and b.ndim > 1:
            raise ValueError(
                "refine=True supports a single right-hand side; solve each "
                "column separately or call refine() per column")
        if refine and trans:
            raise ValueError(
                "refine=True is not implemented for the transposed system "
                "(the preconditioner applies A^-1, not A^-T)")
        if b.shape[0] != self.n:
            raise ValueError(
                f"right-hand side has {b.shape[0]} rows, expected {self.n}")
        if b.size and not np.isfinite(b).all():
            raise ValueError("right-hand side contains NaN or Inf entries")
        t0 = time.perf_counter()
        pb = b[self.perm]
        y = solve_factored(self.factor, pb, trans=trans)
        x = np.empty_like(y)
        x[self.perm] = y
        self.factor.stats.solve_time += time.perf_counter() - t0
        if refine:
            res = self.refine(b, x0=x, tol=refine_tol, maxiter=refine_maxiter)
            return res.x
        return x

    def _precond(self, r: np.ndarray) -> np.ndarray:
        """One application of the factorization as a preconditioner."""
        pr = r[self.perm]
        y = solve_factored(self.factor, pr)
        z = np.empty_like(y)
        z[self.perm] = y
        return z

    def refine(self, b: np.ndarray, x0: Optional[np.ndarray] = None,
               method: Optional[str] = None, tol: float = 1e-12,
               maxiter: int = 20) -> RefinementResult:
        """Refine a solution with the BLR-preconditioned iterative solver.

        ``method`` defaults to CG for Cholesky factorizations and GMRES
        otherwise (paper §4.4); ``"ir"`` selects plain iterative refinement.
        """
        if self.factor is None:
            self.factorize()
        if method is None:
            method = "cg" if self.config.is_symmetric_facto else "gmres"
        if method == "gmres":
            res = gmres(self.a, b, precond=self._precond, tol=tol,
                        maxiter=maxiter, x0=x0)
        elif method == "cg":
            res = conjugate_gradient(self.a, b, precond=self._precond,
                                     tol=tol, maxiter=maxiter, x0=x0)
        elif method == "ir":
            res = iterative_refinement(self.a, b, precond=self._precond,
                                       tol=tol, maxiter=maxiter, x0=x0)
        else:
            raise ValueError(f"unknown refinement method {method!r}")
        self.last_refinement = res
        tele = self.config.telemetry
        if tele is not None:
            tele.record_refinement(method, res.residual_history,
                                   res.converged)
        return res

    # -- same-pattern refactorization ----------------------------------------
    def update_values(self, a: CSCMatrix) -> None:
        """Swap in a new matrix with the *same sparsity pattern*.

        The analysis (ordering + symbolic structure) is value-free and is
        kept; the next :meth:`factorize`/:meth:`solve` call refactors the
        new values.  This is the paper's §1 use case: "these steps can be
        computed once to solve multiple problems similar in structure but
        with different numerical values".
        """
        if not isinstance(a, CSCMatrix):
            raise TypeError("a must be a repro CSCMatrix")
        if a.n != self.a.n:
            raise ValueError("new matrix must have the same dimension")
        if not (np.array_equal(a.colptr, self.a.colptr)
                and np.array_equal(a.rowind, self.a.rowind)):
            raise ValueError("new matrix must share the sparsity pattern")
        if self.config.is_symmetric_facto:
            hermitian = a.values.dtype.kind == "c"
            if not a.is_symmetric(tol=0.0, hermitian=hermitian):
                raise ValueError(
                    "cholesky/ldlt factorization requires a "
                    + ("Hermitian" if hermitian else "symmetric")
                    + " matrix")
        self.dtype = self.config.resolve_dtype(a.values.dtype)
        self.a = a
        self._a_sym = a if a.is_pattern_symmetric() else a.symmetrize_pattern()
        if self._a_sym.values.dtype != self.dtype:
            self._a_sym = CSCMatrix(
                self._a_sym.n, self._a_sym.colptr, self._a_sym.rowind,
                self._a_sym.values.astype(self.dtype), check=False)
        self.factor = None  # numerical state is stale; analysis is kept

    # -- persistence -----------------------------------------------------
    def save_factor(self, path: Union[str, Path]) -> "Path":
        """Save the factorization (blocks + analysis + config) to a file.

        The archive is self-contained: :meth:`load_factor` restores a
        solver able to run :meth:`solve`/:meth:`refine` without
        re-factorizing — a compressed (BLR) factorization saves
        proportionally smaller archives.
        """
        from repro.core.serialize import save_factor as _save

        if self.factor is None:
            self.factorize()
        return _save(self.factor, self.perm, path)

    @classmethod
    def load_factor(cls, a: CSCMatrix, path: Union[str, Path]) -> "Solver":
        """Rebuild a solver from :meth:`save_factor` output.

        ``a`` must be the matrix the factorization was computed from (it is
        needed for residuals/refinement; the archive stores only factors).
        """
        from repro.core.serialize import load_factor as _load

        fac, perm = _load(path)
        solver = cls(a, fac.config)
        if a.n != fac.symb.n:
            raise ValueError("matrix dimension does not match the archive")
        solver.symbolic = fac.symb
        solver.perm = perm
        solver.factor = fac
        return solver

    # -- diagnostics ---------------------------------------------------------
    def slogdet(self) -> tuple:
        """(sign, log|det(A)|) from the factored diagonal blocks.

        Exact for the dense strategy; BLR strategies return the determinant
        of the τ-perturbed factorization.
        """
        from repro.analysis.diagnostics import factor_slogdet

        if self.factor is None:
            self.factorize()
        return factor_slogdet(self.factor)

    def inertia(self) -> tuple:
        """(n_negative, n_zero, n_positive) eigenvalue counts; requires a
        symmetric (``ldlt``/``cholesky``) factorization."""
        from repro.analysis.diagnostics import factor_inertia

        if self.factor is None:
            self.factorize()
        return factor_inertia(self.factor)

    def condest(self, maxiter: int = 10) -> float:
        """Hager–Higham 1-norm condition-number estimate ``κ₁(A)``."""
        from repro.analysis.diagnostics import condest_1norm

        if self.factor is None:
            self.factorize()
        return condest_1norm(self.a, self.factor, self.perm,
                             maxiter=maxiter)

    def backward_error(self, x: np.ndarray, b: np.ndarray) -> float:
        """``||A x - b||₂ / ||b||₂`` — the metric printed above every bar of
        Figures 5 and 6."""
        return float(np.linalg.norm(self.a.matvec(x) - b)
                     / np.linalg.norm(b))

    # -- telemetry / reporting -----------------------------------------------
    def run_report(self, workload: Optional[str] = None,
                   backward_error: Optional[float] = None
                   ) -> Dict[str, Any]:
        """One JSON-able ``RunReport`` artifact for the current run.

        Aggregates the factorization statistics, compression/rank
        breakdown, telemetry snapshot (metrics, memory high-water
        timeline, rank-evolution series — when ``config.telemetry`` is
        attached), refinement residual history and tracer summary.  Render
        it with ``repro report`` or
        :func:`repro.analysis.report.render_markdown`.
        """
        from repro.analysis.report import build_run_report

        if self.factor is None:
            self.factorize()
        return build_run_report(self, workload=workload,
                                backward_error=backward_error)
