"""Public solver facade.

Mirrors the classic four-step direct-solver API (paper §1): ``analyze()``
(ordering + symbolic, value-free and reusable), ``factorize()`` (numerical
block factorization under the configured strategy), ``solve()`` (triangular
solves, optionally followed by refinement), and ``refine()`` (preconditioned
GMRES / CG / iterative refinement, §4.4).

>>> from repro import Solver, SolverConfig
>>> from repro.sparse.generators import laplacian_3d
>>> import numpy as np
>>> a = laplacian_3d(6)
>>> cfg = SolverConfig.laptop_scale(strategy="minimal-memory", tolerance=1e-8)
>>> s = Solver(a, cfg)
>>> stats = s.factorize()
>>> b = np.ones(a.n)
>>> x = s.solve(b)
>>> float(np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)) < 1e-6
True
"""

from __future__ import annotations

import time
from dataclasses import asdict, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Union

if TYPE_CHECKING:
    from repro.runtime.faults import FaultInjector

import numpy as np

from repro.config import SolverConfig
from repro.core.factor import NumericFactor, assemble
from repro.core.refinement import (
    RefinementResult,
    classify_history,
    conjugate_gradient,
    gmres,
    iterative_refinement,
)
from repro.core.scheduler import (
    run_sequential,
    run_sequential_pull,
    run_threaded,
    run_threaded_static,
)
from repro.core.trisolve import solve_factored
from repro.runtime.recovery import (
    RecoveryPolicy,
    RecoveryState,
    escalate_config,
    find_breakdown,
)
from repro.runtime.stats import FactorizationStats
from repro.sparse.csc import CSCMatrix
from repro.sparse.permute import permute_symmetric
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization
from repro.symbolic.structure import SymbolicFactor


class Solver:
    """Sparse direct solver with optional Block Low-Rank compression.

    Parameters
    ----------
    a:
        The system matrix (our CSC container; ``CSCMatrix.from_scipy``
        converts scipy matrices).  General matrices use ``factotype='lu'``
        (the pattern is symmetrized internally); SPD matrices may use
        ``factotype='cholesky'``.
    config:
        See :class:`~repro.config.SolverConfig`; defaults to a dense-like
        Just-In-Time/RRQR configuration at paper-scale thresholds.
    """

    def __init__(self, a: CSCMatrix, config: Optional[SolverConfig] = None,
                 coords: Optional[np.ndarray] = None) -> None:
        if not isinstance(a, CSCMatrix):
            raise TypeError("a must be a repro CSCMatrix "
                            "(use CSCMatrix.from_scipy for scipy input)")
        if a.nnz and not np.isfinite(a.values).all():
            raise ValueError("matrix contains NaN or Inf entries")
        self.a = a
        self.config = config or SolverConfig()
        #: arithmetic dtype of the factorization (config.dtype wins; a
        #: complex matrix with a real config.dtype raises here)
        self.dtype = self.config.resolve_dtype(a.values.dtype)
        if self.config.is_symmetric_facto:
            hermitian = a.values.dtype.kind == "c"
            if not a.is_symmetric(tol=0.0, hermitian=hermitian):
                raise ValueError(
                    "cholesky/ldlt factorization requires a "
                    + ("Hermitian" if hermitian else "symmetric")
                    + " matrix")
        self._a_sym = a if a.is_pattern_symmetric() else a.symmetrize_pattern()
        if self._a_sym.values.dtype != self.dtype:
            # cast only the working copy; self.a keeps the caller's values
            # so residuals and refinement stay honest
            self._a_sym = CSCMatrix(
                self._a_sym.n, self._a_sym.colptr, self._a_sym.rowind,
                self._a_sym.values.astype(self.dtype), check=False)
        #: node coordinates (required by ordering='geometric')
        self.coords = coords
        self.symbolic: Optional[SymbolicFactor] = None
        self.perm: Optional[np.ndarray] = None
        self.factor: Optional[NumericFactor] = None
        self.analyze_time: float = 0.0
        #: task trace of the last :meth:`factorize` (``config.trace=True``)
        self.tracer = None
        #: race sanitizer of the last threaded factorization
        #: (``config.sanitize`` / ``$REPRO_TSAN``), or ``None``
        self.sanitizer: Optional[Any] = None
        #: result of the last :meth:`refine` call (residual history feeds
        #: :meth:`run_report` even when no telemetry bus is attached)
        self.last_refinement: Optional[RefinementResult] = None
        #: JSON-able digest of the last recovery-enabled run (escalation
        #: actions + counts), or ``None`` (feeds :meth:`run_report`)
        self.last_recovery: Optional[Dict[str, Any]] = None
        #: the escalated config the current factor was actually built
        #: under, when it differs from :attr:`config` (``None`` otherwise)
        self._effective_config: Optional[SolverConfig] = None
        #: per-level compression history of the last adaptive
        #: factorization (feeds the AdaptivePolicy history path on a
        #: refactorization of the same structure, e.g. after
        #: :meth:`update_values`)
        self._adaptive_history: Optional[Dict[int, Dict[str, float]]] = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.a.n

    @property
    def stats(self) -> Optional[FactorizationStats]:
        return None if self.factor is None else self.factor.stats

    # -- step 1+2: analysis ------------------------------------------------
    def analyze(self) -> SymbolicFactor:
        """Ordering + symbolic block factorization (cached, value-free)."""
        if self.symbolic is None:
            t0 = time.perf_counter()
            opts = SymbolicOptions.from_config(self.config)
            prof = self.config.profiler
            _sid = (prof.start("analyze", n=self.n)
                    if prof is not None else None)
            try:
                self.symbolic, self.perm = symbolic_factorization(
                    self._a_sym, opts, coords=self.coords, profiler=prof)
            finally:
                if prof is not None:
                    prof.end(_sid)
            self.analyze_time = time.perf_counter() - t0
        return self.symbolic

    # -- step 3: numerical factorization ------------------------------------
    def _finalize_stats(self, fac: NumericFactor, t0: float) -> None:
        """Fill the run-level statistics of a completed factorization."""
        fac.stats.total_time = time.perf_counter() - t0
        fac.stats.factor_nbytes = fac.factor_nbytes()
        fac.stats.dense_factor_nbytes = fac.dense_factor_nbytes()
        fac.stats.peak_nbytes = fac.tracker.peak
        ncomp = ndense = 0
        from repro.lowrank.block import LowRankBlock

        for nc in fac.cblks:
            if nc.lblocks is None:
                ndense += nc.sym.noff
                continue
            for blk in nc.lblocks:
                if isinstance(blk, LowRankBlock):
                    ncomp += 1
                else:
                    ndense += 1
        fac.stats.nblocks_compressed = ncomp
        fac.stats.nblocks_dense = ndense

    def _factorize_once(self, cfg: SolverConfig,
                        faults: Optional["FaultInjector"],
                        checkpoint: Optional[Union[str, Path]],
                        state: Optional[RecoveryState]
                        ) -> FactorizationStats:
        """One assemble-and-factor attempt under ``cfg`` (one ladder rung)."""
        self.analyze()
        # engine facts (threads, scheduler) live in profiler.meta — span
        # attrs hold only config-derived facts so threaded and sequential
        # runs produce identical causal trees
        prof = cfg.profiler
        _sid = (prof.start("factorize", strategy=cfg.strategy,
                           variant=cfg.variant)
                if prof is not None else None)
        try:
            return self._factorize_body(cfg, faults, checkpoint, state)
        finally:
            if prof is not None:
                prof.end(_sid)

    def _factorize_body(self, cfg: SolverConfig,
                        faults: Optional["FaultInjector"],
                        checkpoint: Optional[Union[str, Path]],
                        state: Optional[RecoveryState]
                        ) -> FactorizationStats:
        """Body of one factorization attempt (under the "factorize" span)."""
        a_perm = permute_symmetric(self._a_sym, self.perm)
        t0 = time.perf_counter()
        history = (self._adaptive_history
                   if cfg.strategy == "adaptive" else None)
        prof = cfg.profiler
        _sid = prof.start("assemble") if prof is not None else None
        try:
            fac = assemble(a_perm, self.symbolic, cfg, history=history)
        finally:
            if prof is not None:
                prof.end(_sid)
        kernel_calls_before = fac.backend.counts_snapshot()
        if cfg.trace:
            from repro.runtime.trace import TaskTracer

            self.tracer = fac.tracer = TaskTracer()
        else:
            self.tracer = None
        fac.faults = faults
        fac.recovery = state
        if cfg.threads > 1 and cfg.sanitize_enabled():
            from repro.runtime.sanitizer import RaceSanitizer

            san = RaceSanitizer()
            fac.attach_sanitizer(san)
            if state is not None:
                state.attach_sanitizer(san)
            if cfg.telemetry is not None:
                cfg.telemetry.attach_sanitizer(san)
            self.sanitizer = san
        writer = None
        if checkpoint is not None:
            from repro.core.serialize import (
                CheckpointWriter,
                matrix_fingerprint,
            )

            every = state.policy.checkpoint_every if state is not None else 0
            on_fault = (state.policy.checkpoint_on_fault
                        if state is not None else True)
            writer = CheckpointWriter(checkpoint, self.perm,
                                      matrix_fingerprint(self._a_sym),
                                      every=every, write_on_fault=on_fault)
        if cfg.threads > 1:
            try:
                if cfg.scheduler == "static":
                    run_threaded_static(fac, cfg.threads)
                else:
                    run_threaded(fac, cfg.threads)
            finally:
                if fac.sanitizer is not None:
                    import os

                    log = os.environ.get("REPRO_TSAN_LOG", "")
                    if log:
                        fac.sanitizer.dump(log)
        else:
            run_sequential(fac, checkpoint=writer)
        self._finalize_stats(fac, t0)
        delta = fac.backend.counts_delta(kernel_calls_before)
        fac.stats.backend = fac.backend.name
        fac.stats.add_backend_calls(delta)
        if cfg.telemetry is not None:
            cfg.telemetry.record_backend_kernels(fac.backend.name, delta,
                                                 phase="factorize")
        if cfg.strategy == "adaptive":
            from repro.core.variants import history_from_factor

            self._adaptive_history = history_from_factor(fac)
        self.factor = fac
        return fac.stats

    @staticmethod
    def _recovery_summary(state: RecoveryState, policy: RecoveryPolicy,
                          cfg: SolverConfig, attempts: int
                          ) -> Dict[str, Any]:
        return {"policy": asdict(policy), "attempts": attempts,
                "final_tolerance": cfg.tolerance,
                "final_strategy": cfg.strategy,
                "final_variant": cfg.variant,
                **state.summary()}

    def factorize(self, faults: Optional["FaultInjector"] = None,
                  checkpoint: Optional[Union[str, Path]] = None
                  ) -> FactorizationStats:
        """Assemble and factor under the configured strategy; returns the
        per-kernel statistics (the rows of Table 2).

        With ``config.trace=True`` a task trace is recorded and left on
        :attr:`tracer` (see ``docs/observability.md``).  ``faults`` attaches
        a :class:`~repro.runtime.faults.FaultInjector` for the run — a
        testing hook, never set in production paths.  ``checkpoint`` names
        a file partial-factorization snapshots are written to (sequential
        engine only; see docs/robustness.md), resumable via
        :meth:`resume_from`.

        With ``config.recovery`` set, a structured
        :class:`~repro.runtime.recovery.NumericalBreakdown` triggers the
        escalation ladder: the whole factorization is retried at a
        tightened tolerance (then a downgraded strategy), at most
        ``recovery.max_retries`` times; every action lands in
        :attr:`last_recovery` and on the telemetry bus.
        """
        policy = self.config.recovery
        self.last_recovery = None
        self._effective_config = None
        if checkpoint is not None:
            if self.config.threads > 1:
                raise ValueError(
                    "checkpointing requires threads=1 (deterministic "
                    "sequential engine)")
            if self.config.left_looking:
                raise ValueError("checkpointing does not support the "
                                 "left-looking engine")
        if policy is None:
            return self._factorize_once(self.config, faults, checkpoint,
                                        None)
        state = RecoveryState(policy, telemetry=self.config.telemetry)
        cfg = self.config
        rung = 0
        while True:
            try:
                stats = self._factorize_once(cfg, faults, checkpoint, state)
                break
            except Exception as exc:
                breakdown = find_breakdown(exc)
                nxt = (escalate_config(cfg, policy, cause=breakdown.cause)
                       if breakdown is not None and rung < policy.max_retries
                       else None)
                if nxt is None:
                    self.last_recovery = self._recovery_summary(
                        state, policy, cfg, rung + 1)
                    raise
                rung += 1
                state.record("refactorize", site="solver",
                             cause=breakdown.cause, cblk=breakdown.cblk,
                             tolerance=nxt.tolerance, strategy=nxt.strategy,
                             pivot_u=nxt.pivot_u,
                             pivot_fallback=nxt.pivot_fallback,
                             rung=rung)
                cfg = nxt
        self._effective_config = cfg if cfg is not self.config else None
        self.last_recovery = self._recovery_summary(state, policy, cfg,
                                                    rung + 1)
        return stats

    def resume_from(self, path: Union[str, Path],
                    faults: Optional["FaultInjector"] = None
                    ) -> FactorizationStats:
        """Resume a checkpointed factorization written by
        :meth:`factorize(checkpoint=...)`.

        The checkpoint's config and matrix fingerprint must match this
        solver's; completed column blocks are restored as-is and the
        remaining ones run through the pull-mode sequential sweep, so a
        resumed float64 run is bit-identical to an uninterrupted one.
        No escalation ladder runs on a resume — a breakdown propagates
        (re-run :meth:`factorize` for a fresh escalated attempt).
        """
        from repro.core.serialize import (
            load_checkpoint,
            matrix_fingerprint,
            restore_checkpoint,
        )

        if self.config.threads > 1:
            raise ValueError("resume requires threads=1 (deterministic "
                             "sequential engine)")
        header, arrays = load_checkpoint(path)
        stored = SolverConfig(**header["config"])
        if stored != replace(self.config, telemetry=None, profiler=None):
            raise ValueError(
                "checkpoint was written under a different configuration; "
                "resume with the same SolverConfig it was created with")
        if np.dtype(header["dtype"]) != self.dtype:
            raise ValueError(
                f"checkpoint dtype {header['dtype']} does not match this "
                f"solver's dtype {self.dtype.name}")
        if header["matrix_fingerprint"] != matrix_fingerprint(self._a_sym):
            raise ValueError(
                "checkpoint matrix fingerprint does not match this matrix "
                "(different values, pattern, or dtype)")
        from repro.core.serialize import _symbolic_from_json

        self.symbolic = _symbolic_from_json(header["symbolic"])
        self.perm = np.asarray(arrays["perm"], dtype=np.int64)
        policy = self.config.recovery
        state = (RecoveryState(policy, telemetry=self.config.telemetry)
                 if policy is not None else None)
        a_perm = permute_symmetric(self._a_sym, self.perm)
        t0 = time.perf_counter()
        fac = assemble(a_perm, self.symbolic, self.config)
        self.tracer = None
        fac.faults = faults
        fac.recovery = state
        restored = restore_checkpoint(fac, header, arrays)
        fac.nperturbed = int(header["nperturbed"])
        if state is not None:
            state.record("resume", site="serialize", completed=restored,
                         path=str(path))
        run_sequential_pull(fac)
        self._finalize_stats(fac, t0)
        self.factor = fac
        if state is not None and policy is not None:
            self.last_recovery = self._recovery_summary(
                state, policy, self.config, 1)
        return fac.stats

    # -- step 4: solves -----------------------------------------------------
    def solve(self, b: np.ndarray, refine: bool = False,
              refine_tol: float = 1e-12, refine_maxiter: int = 20,
              trans: bool = False) -> np.ndarray:
        """Solve ``A x = b`` (single vector or multiple right-hand sides).

        ``b`` may be a vector ``(n,)`` or a panel ``(n, k)`` of right-hand
        sides; the result has the same shape.  Panels solve blocked
        through the column-stable kernels of the configured backend, so a
        float64 panel solve equals its ``k`` single-RHS solves
        bit-for-bit.  ``trans=True`` solves ``Aᵗ x = b`` instead (same
        factors, mirrored triangular sweeps — symmetric factorizations
        are unaffected).  With ``refine=True`` one runs the paper's
        default post-processing: preconditioned GMRES (CG for Cholesky
        factorizations) until ``refine_tol`` or ``refine_maxiter`` —
        panels refine with per-column convergence tracking.  Refinement
        of the transposed system is not supported (``trans=True`` with
        ``refine=True`` raises ``ValueError``).
        """
        if self.factor is None:
            self.factorize()
        b = np.asarray(b)
        if b.dtype.kind not in "fc":
            b = b.astype(np.float64)
        if b.dtype.kind == "c" and self.factor.dtype.kind != "c":
            raise ValueError(
                "complex right-hand side against a real factorization "
                "would discard imaginary parts; factor with "
                "config.dtype='complex128' (or solve real/imag parts "
                "separately)")
        if refine and trans:
            raise ValueError(
                "refine=True is not implemented for the transposed system "
                "(the preconditioner applies A^-1, not A^-T)")
        if b.shape[0] != self.n:
            raise ValueError(
                f"right-hand side has {b.shape[0]} rows, expected {self.n}")
        if b.size and not np.isfinite(b).all():
            raise ValueError("right-hand side contains NaN or Inf entries")
        t0 = time.perf_counter()
        be = self.factor.backend
        kernel_calls_before = be.counts_snapshot()
        prof = self.config.profiler
        _sid = (prof.start("solve", nrhs=(1 if b.ndim == 1 else b.shape[1]),
                           trans=trans)
                if prof is not None else None)
        try:
            pb = b[self.perm]
            y = self._solve_factored_retry(pb, trans=trans)
            x = np.empty_like(y)
            x[self.perm] = y
        finally:
            if prof is not None:
                prof.end(_sid)
        self.factor.stats.solve_time += time.perf_counter() - t0
        delta = be.counts_delta(kernel_calls_before)
        self.factor.stats.add_backend_calls(delta)
        tele = self.config.telemetry
        if tele is not None:
            tele.record_backend_kernels(be.name, delta, phase="solve")
        if refine:
            res = self.refine(b, x0=x, tol=refine_tol, maxiter=refine_maxiter)
            return res.x
        return x

    def _solve_factored_retry(self, pb: np.ndarray,
                              trans: bool = False) -> np.ndarray:
        """Triangular solve with one recovery-policy retry.

        The solve is read-only on the factors, so a transient failure
        (injected or environmental) is safe to simply re-run; the retry is
        recorded on the telemetry bus."""
        policy = self.config.recovery
        try:
            return solve_factored(self.factor, pb, trans=trans)
        except Exception as exc:
            if policy is None or policy.task_retries <= 0:
                raise
            tele = self.config.telemetry
            if tele is not None:
                tele.record_recovery("task_retry", site="trisolve",
                                     error=type(exc).__name__)
            return solve_factored(self.factor, pb, trans=trans)

    def _precond(self, r: np.ndarray) -> np.ndarray:
        """One application of the factorization as a preconditioner."""
        pr = r[self.perm]
        y = self._solve_factored_retry(pr)
        z = np.empty_like(y)
        z[self.perm] = y
        return z

    def _run_refinement(self, method: str, b: np.ndarray,
                        x0: Optional[np.ndarray], tol: float,
                        maxiter: int) -> RefinementResult:
        """Dispatch one refinement run and publish it on the bus."""
        prof = self.config.profiler
        _sid = (prof.start("refinement", method=method)
                if prof is not None else None)
        try:
            if method == "gmres":
                res = gmres(self.a, b, precond=self._precond, tol=tol,
                            maxiter=maxiter, x0=x0)
            elif method == "cg":
                res = conjugate_gradient(self.a, b, precond=self._precond,
                                         tol=tol, maxiter=maxiter, x0=x0)
            elif method == "ir":
                res = iterative_refinement(self.a, b, precond=self._precond,
                                           tol=tol, maxiter=maxiter, x0=x0)
            else:
                raise ValueError(f"unknown refinement method {method!r}")
        except BaseException:
            if prof is not None:
                prof.end(_sid)
            raise
        if prof is not None:
            prof.end(_sid, converged=res.converged,
                     iterations=len(res.residual_history))
        self.last_refinement = res
        tele = self.config.telemetry
        if tele is not None:
            tele.record_refinement(method, res.residual_history,
                                   res.converged)
        return res

    def refine(self, b: np.ndarray, x0: Optional[np.ndarray] = None,
               method: Optional[str] = None, tol: float = 1e-12,
               maxiter: int = 20) -> RefinementResult:
        """Refine a solution with the BLR-preconditioned iterative solver.

        ``method`` defaults to CG for Cholesky factorizations and GMRES
        otherwise (paper §4.4); ``"ir"`` selects plain iterative refinement.

        With ``config.recovery`` set, a run that stagnates (no
        ``refine_drop``× residual reduction over ``refine_window``
        iterations) or diverges triggers the escalation ladder: the matrix
        is re-factored at a tightened tolerance (then a downgraded
        strategy) and refinement re-runs from the best iterate, at most
        ``recovery.max_retries`` times.
        """
        if self.factor is None:
            self.factorize()
        if method is None:
            method = "cg" if self.config.is_symmetric_facto else "gmres"
        res = self._run_refinement(method, b, x0, tol, maxiter)
        policy = self.config.recovery
        if policy is not None and not res.converged:
            res = self._refine_escalate(method, b, res, tol, maxiter,
                                        policy)
        return res

    def _refine_escalate(self, method: str, b: np.ndarray,
                         res: RefinementResult, tol: float, maxiter: int,
                         policy: RecoveryPolicy) -> RefinementResult:
        """Tighten the preconditioner until refinement stops stalling."""
        stagnated, diverged = classify_history(
            res.history, window=policy.refine_window,
            drop=policy.refine_drop)
        if not (stagnated or diverged):
            return res
        state = RecoveryState(policy, telemetry=self.config.telemetry)
        cfg = self._effective_config or self.config
        rungs = 0
        for _ in range(policy.max_retries):
            nxt = escalate_config(cfg, policy)
            if nxt is None:
                break
            rungs += 1
            state.record("refine_escalation", site="refinement",
                         cause="diverged" if diverged else "stagnated",
                         tolerance=nxt.tolerance, strategy=nxt.strategy,
                         backward_error=res.backward_error)
            self._factorize_once(nxt, None, None, state)
            cfg = nxt
            # a diverged iterate is a poor starting guess: restart clean
            x0 = None if diverged else res.x
            res = self._run_refinement(method, b, x0, tol, maxiter)
            if res.converged:
                break
            stagnated, diverged = classify_history(
                res.history, window=policy.refine_window,
                drop=policy.refine_drop)
            if not (stagnated or diverged):
                break
        self._effective_config = cfg if cfg is not self.config else None
        self.last_recovery = self._recovery_summary(state, policy, cfg,
                                                    rungs + 1)
        return res

    # -- same-pattern refactorization ----------------------------------------
    def update_values(self, a: CSCMatrix) -> None:
        """Swap in a new matrix with the *same sparsity pattern*.

        The analysis (ordering + symbolic structure) is value-free and is
        kept; the next :meth:`factorize`/:meth:`solve` call refactors the
        new values.  This is the paper's §1 use case: "these steps can be
        computed once to solve multiple problems similar in structure but
        with different numerical values".
        """
        if not isinstance(a, CSCMatrix):
            raise TypeError("a must be a repro CSCMatrix")
        if a.n != self.a.n:
            raise ValueError("new matrix must have the same dimension")
        if not (np.array_equal(a.colptr, self.a.colptr)
                and np.array_equal(a.rowind, self.a.rowind)):
            raise ValueError("new matrix must share the sparsity pattern")
        if self.config.is_symmetric_facto:
            hermitian = a.values.dtype.kind == "c"
            if not a.is_symmetric(tol=0.0, hermitian=hermitian):
                raise ValueError(
                    "cholesky/ldlt factorization requires a "
                    + ("Hermitian" if hermitian else "symmetric")
                    + " matrix")
        self.dtype = self.config.resolve_dtype(a.values.dtype)
        self.a = a
        self._a_sym = a if a.is_pattern_symmetric() else a.symmetrize_pattern()
        if self._a_sym.values.dtype != self.dtype:
            self._a_sym = CSCMatrix(
                self._a_sym.n, self._a_sym.colptr, self._a_sym.rowind,
                self._a_sym.values.astype(self.dtype), check=False)
        self.factor = None  # numerical state is stale; analysis is kept

    # -- persistence -----------------------------------------------------
    def save_factor(self, path: Union[str, Path]) -> "Path":
        """Save the factorization (blocks + analysis + config) to a file.

        The archive is self-contained: :meth:`load_factor` restores a
        solver able to run :meth:`solve`/:meth:`refine` without
        re-factorizing — a compressed (BLR) factorization saves
        proportionally smaller archives.
        """
        from repro.core.serialize import save_factor as _save

        if self.factor is None:
            self.factorize()
        return _save(self.factor, self.perm, path)

    @classmethod
    def load_factor(cls, a: CSCMatrix, path: Union[str, Path]) -> "Solver":
        """Rebuild a solver from :meth:`save_factor` output.

        ``a`` must be the matrix the factorization was computed from (it is
        needed for residuals/refinement; the archive stores only factors).
        """
        from repro.core.serialize import load_factor as _load

        fac, perm = _load(path)
        solver = cls(a, fac.config)
        if a.n != fac.symb.n:
            raise ValueError("matrix dimension does not match the archive")
        solver.symbolic = fac.symb
        solver.perm = perm
        solver.factor = fac
        return solver

    # -- diagnostics ---------------------------------------------------------
    def slogdet(self) -> tuple:
        """(sign, log|det(A)|) from the factored diagonal blocks.

        Exact for the dense strategy; BLR strategies return the determinant
        of the τ-perturbed factorization.
        """
        from repro.analysis.diagnostics import factor_slogdet

        if self.factor is None:
            self.factorize()
        return factor_slogdet(self.factor)

    def inertia(self) -> tuple:
        """(n_negative, n_zero, n_positive) eigenvalue counts; requires a
        symmetric (``ldlt``/``cholesky``) factorization."""
        from repro.analysis.diagnostics import factor_inertia

        if self.factor is None:
            self.factorize()
        return factor_inertia(self.factor)

    def condest(self, maxiter: int = 10) -> float:
        """Hager–Higham 1-norm condition-number estimate ``κ₁(A)``."""
        from repro.analysis.diagnostics import condest_1norm

        if self.factor is None:
            self.factorize()
        return condest_1norm(self.a, self.factor, self.perm,
                             maxiter=maxiter)

    def backward_error(self, x: np.ndarray, b: np.ndarray) -> float:
        """``||A x - b||₂ / ||b||₂`` — the metric printed above every bar of
        Figures 5 and 6.  Diagnostic cold path: two full-length vector
        norms per call, outside the blocked-kernel protocol."""
        return float(np.linalg.norm(self.a.matvec(x) - b)
                     / np.linalg.norm(b))

    # -- telemetry / reporting -----------------------------------------------
    def run_report(self, workload: Optional[str] = None,
                   backward_error: Optional[float] = None
                   ) -> Dict[str, Any]:
        """One JSON-able ``RunReport`` artifact for the current run.

        Aggregates the factorization statistics, compression/rank
        breakdown, telemetry snapshot (metrics, memory high-water
        timeline, rank-evolution series — when ``config.telemetry`` is
        attached), refinement residual history and tracer summary.  Render
        it with ``repro report`` or
        :func:`repro.analysis.report.render_markdown`.
        """
        from repro.analysis.report import build_run_report

        if self.factor is None:
            self.factorize()
        return build_run_report(self, workload=workload,
                                backward_error=backward_error)
