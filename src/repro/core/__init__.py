"""Core solver: supernodal BLR factorization, solve, refinement, facade.

The package mirrors the paper's pipeline.  :class:`~repro.core.solver.Solver`
is the public entry point:

>>> from repro import Solver, SolverConfig, laplacian_3d
>>> a = laplacian_3d(8)
>>> solver = Solver(a, SolverConfig.laptop_scale(strategy="just-in-time"))
>>> stats = solver.factorize()
>>> x = solver.solve(b)                                     # doctest: +SKIP

Internals: :mod:`~repro.core.dense_kernels` wraps the BLAS/LAPACK building
blocks with flop accounting; :mod:`~repro.core.factor` holds the numerical
block storage and its assembly from the CSC matrix;
:mod:`~repro.core.factorization` implements the right-looking drivers for the
Dense / Just-In-Time / Minimal Memory strategies (Algorithms 1 and 2);
:mod:`~repro.core.trisolve` the mixed dense/low-rank triangular solves;
:mod:`~repro.core.scheduler` the sequential and threaded execution engines;
:mod:`~repro.core.refinement` the preconditioned GMRES/CG/iterative
refinement of §4.4.
"""

from repro.core.solver import Solver
from repro.core.refinement import gmres, conjugate_gradient, iterative_refinement

__all__ = ["Solver", "gmres", "conjugate_gradient", "iterative_refinement"]
