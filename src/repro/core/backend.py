"""Pluggable kernel backends (gemm / trsm / factorizations / panel solves).

Every numeric hot path of the solver funnels through a
:class:`KernelBackend`: the diagonal-block factorizations (``getrf`` /
``potrf`` / ``ldlt`` with static pivoting), the BLAS-3 panel solves
(``trsm``), the update products (``gemm`` / ``syrk``), and the *panel*
kernels the triangular solve phase applies to ``(n, k)`` right-hand-side
blocks (``panel_gemm`` / ``panel_trsm`` / ``lr_apply``).  Backends are
registered in a process-wide registry and selected by name through
``SolverConfig.backend`` or the ``REPRO_BACKEND`` environment variable;
the ``numpy`` backend is always present, and a ``numba`` JIT backend is
auto-registered when the package is importable.

Two distinct numerical contracts coexist here, and the split is the whole
design:

* **Factorization kernels** (``gemm``/``trsm``/``getrf``/``potrf``/
  ``ldlt``/``syrk``) wrap BLAS/LAPACK exactly the way the seed code did —
  same call patterns, same transpose tricks — so a float64 factorization
  through the ``numpy`` backend is *bit-identical* to the pre-backend
  solver (the conformance suite pins sha256 digests on this).

* **Panel kernels** (``panel_gemm``/``panel_trsm``/``lr_apply``) are
  **column-stable**: column ``j`` of the result depends only on column
  ``j`` of the input, bit-for-bit, regardless of how many other columns
  ride in the panel.  BLAS gemm/trsm do *not* have this property (their
  blocking changes the summation pattern with the panel width), so the
  solve phase would give different bits for ``solve(B)`` versus
  ``solve(B[:, j])``.  The numpy backend gets stability from per-column
  BLAS gemv calls (each column reduced independently, whatever the
  width) plus row-sweep triangular substitution; the numba backend from
  naive JIT loops.  This is what makes blocked multi-RHS solves equal
  column-by-column solves bit-for-bit for float64.

Registering a custom backend::

    from repro.core.backend import NumpyBackend, register_backend

    class MyBackend(NumpyBackend):
        name = "mine"
        def gemm(self, a, b, trans_a="N", trans_b="N"):
            ...

    register_backend(MyBackend())
    solver = Solver(a, SolverConfig(backend="mine"))

See ``docs/performance.md`` for the full protocol contract.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np
import scipy.linalg as sla

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "PivotError",
    "available_backends",
    "get_backend",
    "register_backend",
]

#: environment variable naming the default backend (overridden by an
#: explicit ``SolverConfig.backend``)
BACKEND_ENV = "REPRO_BACKEND"


# ----------------------------------------------------------------------
# reference implementations of the diagonal-block factorizations
# (static pivoting; previously lived in repro.core.dense_kernels, which
# now delegates here through the protocol)
# ----------------------------------------------------------------------

def _lu_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
                ) -> Tuple[np.ndarray, int]:
    """LU without row pivoting (static pivoting), LAPACK packed layout."""
    lu = np.array(a, copy=True)
    if lu.dtype.kind not in "fc":
        lu = lu.astype(np.float64)
    n = lu.shape[0]
    if lu.shape[1] != n:
        raise ValueError("diagonal block must be square")
    max_diag = float(np.abs(np.diag(lu)).max())
    floor = pivot_threshold * (max_diag if max_diag > 0 else 1.0)
    nperturbed = 0
    # blocked right-looking elimination; block size tuned for BLAS3 payoff
    bs = 64
    for k0 in range(0, n, bs):
        k1 = min(k0 + bs, n)
        # factor the diagonal sub-block with scalar loop + static pivoting
        for k in range(k0, k1):
            piv = lu[k, k]
            if abs(piv) < floor:
                if lu.dtype.kind == "c":
                    # keep the complex phase (floor for an exact zero)
                    piv = floor if piv == 0 else piv / abs(piv) * floor
                else:
                    piv = floor if piv >= 0 else -floor
                lu[k, k] = piv
                nperturbed += 1
            if k + 1 < k1:
                lu[k + 1:k1, k] /= piv
                lu[k + 1:k1, k + 1:k1] -= np.outer(lu[k + 1:k1, k],
                                                   lu[k, k + 1:k1])
        if k1 < n:
            diag = lu[k0:k1, k0:k1]
            # panel solves against the factored sub-block
            lu[k0:k1, k1:] = sla.solve_triangular(
                diag, lu[k0:k1, k1:], lower=True, unit_diagonal=True,
                check_finite=False)
            lu[k1:, k0:k1] = sla.solve_triangular(
                diag, lu[k1:, k0:k1].T, trans="T", lower=False,
                check_finite=False).T
            # trailing update (the BLAS3 payload)
            lu[k1:, k1:] -= lu[k1:, k0:k1] @ lu[k0:k1, k1:]
    return lu, nperturbed


def _cholesky_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
                      ) -> Tuple[np.ndarray, int]:
    """Lower Cholesky with static regularization of non-positive pivots.

    Complex blocks are treated as Hermitian (``L Lᴴ`` with a real
    diagonal), so the rank-1 update conjugates the eliminated column.
    """
    n = a.shape[0]
    try:
        return np.linalg.cholesky(a), 0
    except np.linalg.LinAlgError:
        pass
    # fall back to a scalar loop with pivot boosting (complex blocks are
    # treated as Hermitian: L L^H with a real diagonal)
    l_mat = np.array(a, copy=True)
    if l_mat.dtype.kind not in "fc":
        l_mat = l_mat.astype(np.float64)
    max_diag = float(np.abs(np.diag(a)).max())
    floor = pivot_threshold * (max_diag if max_diag > 0 else 1.0)
    nperturbed = 0
    for k in range(n):
        d = l_mat[k, k].real
        if d <= floor:
            d = floor
            nperturbed += 1
        d = np.sqrt(d)
        l_mat[k, k] = d
        if k + 1 < n:
            l_mat[k + 1:, k] /= d
            l_mat[k + 1:, k + 1:] -= np.outer(l_mat[k + 1:, k],
                                              l_mat[k + 1:, k].conj())
    return np.tril(l_mat), nperturbed


def _ldlt_nopivot(a: np.ndarray, pivot_threshold: float = 1e-14
                  ) -> Tuple[np.ndarray, int]:
    """LDLᵗ (LDLᴴ for complex) without pivoting; unit-lower L packed with
    D on the diagonal.

    Complex blocks are factored as Hermitian ``L D Lᴴ`` (real ``D``), so
    the trailing update conjugates the eliminated column.
    """
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError("diagonal block must be square")
    packed = np.array(a, copy=True)
    if packed.dtype.kind not in "fc":
        packed = packed.astype(np.float64)
    hermitian = packed.dtype.kind == "c"
    max_diag = float(np.abs(np.diag(a)).max())
    floor = pivot_threshold * (max_diag if max_diag > 0 else 1.0)
    nperturbed = 0
    for k in range(n):
        # complex blocks are factored as Hermitian L D L^H: D is
        # mathematically real, so roundoff imaginary parts are dropped
        d = packed[k, k].real if hermitian else packed[k, k]
        if abs(d) < floor:
            d = floor if d >= 0 else -floor
            nperturbed += 1
        packed[k, k] = d
        if k + 1 < n:
            col = packed[k + 1:, k] / d
            if hermitian:
                packed[k + 1:, k + 1:] -= np.outer(col,
                                                   packed[k + 1:, k].conj())
            else:
                packed[k + 1:, k + 1:] -= np.outer(col, packed[k + 1:, k])
            packed[k + 1:, k] = col
    return packed, nperturbed


class PivotError(RuntimeError):
    """A pivoting diagonal-block kernel could not complete.

    ``kind`` is ``"pivot-failure"`` (no admissible pivot under the
    threshold ``u`` — the remaining column is numerically zero) or
    ``"pivot-growth"`` (the element growth factor exceeded the configured
    bound).  The factorization layer translates this into a structured
    :class:`~repro.runtime.recovery.NumericalBreakdown` so the recovery
    ladder can relax the threshold or fall back to perturbation.
    """

    def __init__(self, kind: str, col: int, detail: str = "") -> None:
        super().__init__(detail or kind)
        self.kind = kind
        self.col = col


def _ldlt_pivot(a: np.ndarray, u: float = 0.1,
                growth_limit: float = 1e8, fallback: bool = False,
                pivot_threshold: float = 1e-14
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                           Dict[str, Any]]:
    """Threshold-pivoted LDLᵗ (LDLᴴ for complex) with 1×1/2×2 pivots.

    Bunch–Kaufman partial pivoting with the fixed α replaced by the
    caller's threshold ``u`` ∈ (0, 0.5]: a 1×1 pivot ``d`` is admissible
    when ``|d| ≥ u·λ`` (λ the largest off-diagonal magnitude in its
    column), otherwise the standard row test promotes either an
    interchanged 1×1 pivot or a 2×2 pivot built from rows ``(k, r)``.
    Smaller ``u`` accepts more pivots in place (fewer interchanges,
    weaker growth bound); the recovery ladder relaxes it on breakdown.

    Returns ``(packed, perm, d21, stats)``:

    * ``packed`` — unit-lower ``L`` strictly below the diagonal, the 1×1
      pivots / 2×2 pivot *diagonals* on the diagonal (LAPACK ``sytrf``
      layout, upper triangle unspecified).  The ``L`` entry under a 2×2
      pivot's first column is exactly zero, so unit-lower triangular
      solves read the packed array unchanged.
    * ``perm`` — within-block permutation: row ``i`` of the factored
      matrix is row ``perm[i]`` of ``a`` (``a[np.ix_(perm, perm)] ≈
      L D Lᵗ``).
    * ``d21`` — subdiagonals of the 2×2 pivots: ``d21[k]`` is ``D[k+1,k]``
      when a 2×2 pivot starts at ``k``, zero elsewhere.
    * ``stats`` — ``{"swaps", "n2x2", "perturbed", "growth"}``.

    Raises :class:`PivotError` on a numerically-zero column (unless
    ``fallback=True``, which perturbs it static-pivoting style) and on
    growth past ``growth_limit``.

    Complex blocks are factored as Hermitian ``L D Lᴴ`` with real 1×1
    pivots and real 2×2 diagonals, matching :func:`_ldlt_nopivot`.
    """
    n = a.shape[0]
    if a.shape[1] != n:
        raise ValueError("diagonal block must be square")
    w = np.array(a, copy=True)
    if w.dtype.kind not in "fc":
        w = w.astype(np.float64)
    hermitian = w.dtype.kind == "c"
    # Assembled diagonal blocks are only guaranteed in their *lower*
    # triangle (symmetric updates skip the mirrored upper regions, and
    # the unpivoted kernel never reads them) — rebuild the upper triangle
    # from the lower one before any symmetric interchange can mix a stale
    # upper entry into the active submatrix.
    lower = np.tril(w, -1)
    w = lower + (lower.conj().T if hermitian else lower.T)
    didx = np.arange(n)
    w[didx, didx] = (np.diag(a).real if hermitian else np.diag(a))
    perm = np.arange(n, dtype=np.int64)
    d21 = np.zeros(n, dtype=w.dtype)
    a0max = float(np.abs(w).max()) if n else 0.0
    scale = a0max if a0max > 0 else 1.0
    floor = pivot_threshold * scale
    swaps = n2x2 = perturbed = 0
    wmax = a0max

    def _interchange(i: int, j: int) -> None:
        # full symmetric row+column swap keeps the trailing block
        # symmetric/Hermitian, so later pivot searches stay valid
        w[[i, j], :] = w[[j, i], :]
        w[:, [i, j]] = w[:, [j, i]]
        perm[[i, j]] = perm[[j, i]]

    k = 0
    while k < n:
        absakk = abs(w[k, k])
        if k + 1 < n:
            tailcol = np.abs(w[k + 1:, k])
            imax = k + 1 + int(np.argmax(tailcol))
            colmax = float(tailcol[imax - k - 1])
        else:
            imax, colmax = k, 0.0
        use2 = False
        if max(absakk, colmax) <= floor:
            # numerically-zero column: no admissible pivot at any u
            if not fallback:
                raise PivotError(
                    "pivot-failure", k,
                    f"column {k}: |diag| {absakk:.3e} and off-diagonal "
                    f"max {colmax:.3e} both below the pivot floor "
                    f"{floor:.3e}")
            w[k, k] = floor if w[k, k].real >= 0 else -floor
            perturbed += 1
        elif absakk >= u * colmax:
            pass  # 1x1 pivot in place
        else:
            # row test on the candidate row r = imax (the trailing block
            # is symmetric, so its row is read from w[imax, k:])
            rowabs = np.abs(w[imax, k:]).copy()
            rowabs[imax - k] = 0.0
            rowmax = float(rowabs.max())
            if absakk * rowmax >= u * colmax * colmax:
                pass  # growth of the in-place 1x1 pivot is bounded
            elif abs(w[imax, imax]) >= u * rowmax:
                _interchange(k, imax)  # the larger diagonal leads
                swaps += 1
            else:
                if imax != k + 1:
                    _interchange(k + 1, imax)
                    swaps += 1
                use2 = True
        if use2:
            d11 = w[k, k].real if hermitian else w[k, k]
            d22 = w[k + 1, k + 1].real if hermitian else w[k + 1, k + 1]
            dlo = w[k + 1, k]
            dup = np.conj(dlo) if hermitian else dlo
            det = d11 * d22 - dup * dlo
            if det == 0:
                # BK guarantees |det| >= (1-u^2) colmax^2 > 0 here; an
                # exact zero means pathological cancellation
                if not fallback:
                    raise PivotError(
                        "pivot-failure", k,
                        f"singular 2x2 pivot at column {k}")
                d11 = d11 + (floor if d11 >= 0 else -floor)
                det = d11 * d22 - dup * dlo
                perturbed += 1
            if k + 2 < n:
                c = w[k + 2:, k:k + 2].copy()
                # explicit 2x2 inverse (no LAPACK: keeps the kernel
                # self-contained and bit-reproducible)
                l2 = np.empty_like(c)
                l2[:, 0] = (c[:, 0] * d22 - c[:, 1] * dlo) / det
                l2[:, 1] = (c[:, 1] * d11 - c[:, 0] * dup) / det
                ch = c.conj().T if hermitian else c.T
                w[k + 2:, k + 2:] -= l2 @ ch
                w[k + 2:, k:k + 2] = l2
            w[k, k] = d11
            w[k + 1, k + 1] = d22
            d21[k] = dlo
            w[k + 1, k] = 0.0  # L is unit-lower across the 2x2 pivot
            n2x2 += 1
            knext = k + 2
        else:
            d = w[k, k].real if hermitian else w[k, k]
            w[k, k] = d
            if k + 1 < n:
                col = w[k + 1:, k] / d
                if hermitian:
                    w[k + 1:, k + 1:] -= np.outer(col,
                                                  w[k + 1:, k].conj())
                else:
                    w[k + 1:, k + 1:] -= np.outer(col, w[k + 1:, k])
                w[k + 1:, k] = col
            knext = k + 1
        if knext < n:
            wmax = max(wmax, float(np.abs(w[knext:, knext:]).max()))
            if wmax / scale > growth_limit:
                raise PivotError(
                    "pivot-growth", k,
                    f"element growth {wmax / scale:.3e} exceeds the "
                    f"limit {growth_limit:.3e} after column {k}")
        k = knext
    stats: Dict[str, Any] = {
        "swaps": swaps, "n2x2": n2x2, "perturbed": perturbed,
        "growth": wmax / scale,
    }
    return w, perm, d21, stats


# ----------------------------------------------------------------------
# column-stable panel kernels (numpy reference)
# ----------------------------------------------------------------------

def _stable_gemm(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """``a @ x`` with a per-column-deterministic reduction.

    Each output column is an independent BLAS gemv against the same
    C-contiguous ``a`` and a contiguous copy of the input column, so its
    bits cannot depend on the panel width.  A single BLAS gemm (or even
    ``np.einsum``) does *not* have this property: their blocking / SIMD
    inner-loop selection changes with the output shape, which changes
    the summation tree per column.
    """
    a = np.ascontiguousarray(a)
    xt = np.ascontiguousarray(x.T)  # one copy; each row is a contiguous col
    out = np.empty((a.shape[0], x.shape[1]), dtype=np.result_type(a, x))
    for j in range(xt.shape[0]):
        # solverlint: ignore[python-hot-loop] -- one BLAS gemv per column: the per-column independence is the stability contract, and each iteration is a full vectorized matvec, not scalar work
        out[:, j] = a @ xt[j]
    return out


def _sweep_lower(m: np.ndarray, x: np.ndarray, unit: bool) -> None:
    """Forward substitution ``m x = b`` (lower triangle of ``m``), in
    place on the ``(n, k)`` panel ``x``.

    Row ``j`` is finished, then broadcast-eliminated from the remaining
    rows: every operation is an element-wise broadcast over the ``k``
    columns, so column ``j`` of the result is bit-identical whether it is
    solved alone or inside a wider panel.
    """
    n = m.shape[0]
    for j in range(n):
        if not unit:
            # solverlint: ignore[python-hot-loop] -- row-sweep substitution: each step is a vectorized broadcast over all k RHS columns; the row order is a data dependence, and the sweep (unlike BLAS trsm) keeps columns bit-independent of the panel width
            x[j] = x[j] / m[j, j]
        if j + 1 < n:
            x[j + 1:] -= m[j + 1:, j][:, None] * x[j][None, :]


def _sweep_upper(m: np.ndarray, x: np.ndarray, unit: bool) -> None:
    """Backward substitution ``m x = b`` (upper triangle of ``m``)."""
    n = m.shape[0]
    for j in range(n - 1, -1, -1):
        if not unit:
            # solverlint: ignore[python-hot-loop] -- row-sweep substitution (see _sweep_lower): vectorized over RHS columns, sequential over rows by data dependence
            x[j] = x[j] / m[j, j]
        if j:
            x[:j] -= m[:j, j][:, None] * x[j][None, :]


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------

class KernelBackend:
    """Abstract kernel backend; subclass and :func:`register_backend`.

    Subclasses implement the nine protocol methods.  Call counts are
    tallied per operation in :attr:`counts` (best-effort under threads:
    increments are not locked) and surface as per-backend telemetry
    counters and ``FactorizationStats.backend_kernel_calls``.
    """

    #: registry key; subclasses must override
    name = "abstract"

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    # -- call accounting ----------------------------------------------
    def _tick(self, op: str, n: int = 1) -> None:
        self.counts[op] = self.counts.get(op, 0) + n

    def counts_snapshot(self) -> Dict[str, int]:
        """Copy of the cumulative per-op call counts."""
        return dict(self.counts)

    def counts_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Per-op calls since a :meth:`counts_snapshot`."""
        return {op: n - before.get(op, 0)
                for op, n in self.counts.items()
                if n - before.get(op, 0)}

    # -- factorization kernels (BLAS-compatible, bit-stable vs seed) ---
    def gemm(self, a: np.ndarray, b: np.ndarray,
             trans_a: str = "N", trans_b: str = "N") -> np.ndarray:
        """``op(a) @ op(b)`` with ``op`` ∈ {identity, ᵗ, ᴴ} per flag."""
        raise NotImplementedError

    def syrk(self, a: np.ndarray, herk: bool = False) -> np.ndarray:
        """``a @ aᵗ`` (``a @ aᴴ`` with ``herk=True``)."""
        raise NotImplementedError

    def trsm(self, a: np.ndarray, b: np.ndarray, *, side: str = "left",
             lower: bool = True, trans: str = "N",
             unit_diagonal: bool = False) -> np.ndarray:
        """Triangular solve ``op(a) X = b`` (``side='left'``) or
        ``X op(a) = b`` (``side='right'``); returns ``X``."""
        raise NotImplementedError

    def getrf(self, a: np.ndarray, pivot_threshold: float = 1e-14
              ) -> Tuple[np.ndarray, int]:
        """Statically-pivoted LU of a diagonal block; ``(lu, nperturbed)``."""
        raise NotImplementedError

    def potrf(self, a: np.ndarray, pivot_threshold: float = 1e-14
              ) -> Tuple[np.ndarray, int]:
        """Regularized lower Cholesky; ``(l, nperturbed)``."""
        raise NotImplementedError

    def ldlt(self, a: np.ndarray, pivot_threshold: float = 1e-14
             ) -> Tuple[np.ndarray, int]:
        """Statically-pivoted LDLᵗ/LDLᴴ; ``(packed, nperturbed)``."""
        raise NotImplementedError

    def ldlt_pivot(self, a: np.ndarray, u: float = 0.1,
                   growth_limit: float = 1e8, fallback: bool = False,
                   pivot_threshold: float = 1e-14
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                              Dict[str, Any]]:
        """Threshold-pivoted LDLᵗ/LDLᴴ with 1×1/2×2 pivots;
        ``(packed, perm, d21, stats)`` — see :func:`_ldlt_pivot` for the
        layout and :class:`PivotError` semantics."""
        raise NotImplementedError

    # -- column-stable panel kernels (the multi-RHS solve path) --------
    def panel_gemm(self, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        """``a @ x`` on an ``(m, w) x (w, k)`` panel, column-stable."""
        raise NotImplementedError

    def panel_trsm(self, a: np.ndarray, b: np.ndarray, *,
                   lower: bool = True, trans: str = "N",
                   unit_diagonal: bool = False) -> np.ndarray:
        """Column-stable triangular panel solve ``op(a) X = b``.

        Only the requested triangle of ``a`` is read, so LAPACK-packed
        diagonal blocks (L and U sharing storage) can be passed directly.
        Returns a fresh array; ``b`` is never modified.
        """
        raise NotImplementedError

    def lr_apply(self, u: np.ndarray, v: np.ndarray, x: np.ndarray,
                 mode: str = "n") -> np.ndarray:
        """Apply a low-rank block ``Â = u vᵗ`` to an ``(·, k)`` panel.

        ``mode='n'``: ``Â x``; ``'t'``: ``Âᵗ x``; ``'h'``: ``Âᴴ x``.
        Column-stable, rank-0 safe.
        """
        raise NotImplementedError


class NumpyBackend(KernelBackend):
    """Default backend: BLAS/LAPACK (via numpy/scipy) for factorization
    kernels, per-column gemv + row sweeps for the column-stable panel
    kernels."""

    name = "numpy"

    # -- factorization kernels -----------------------------------------
    def gemm(self, a: np.ndarray, b: np.ndarray,
             trans_a: str = "N", trans_b: str = "N") -> np.ndarray:
        """``op(a) @ op(b)``; flag ``'C'`` takes the Hermitian adjoint."""
        self._tick("gemm")
        lhs = a if trans_a == "N" else (a.T if trans_a == "T"
                                        else a.conj().T)
        rhs = b if trans_b == "N" else (b.T if trans_b == "T"
                                        else b.conj().T)
        return lhs @ rhs

    def syrk(self, a: np.ndarray, herk: bool = False) -> np.ndarray:
        """``a @ aᵗ``, or the Hermitian ``a @ aᴴ`` when ``herk=True``."""
        self._tick("herk" if herk else "syrk")
        return a @ (a.conj().T if herk else a.T)

    def trsm(self, a: np.ndarray, b: np.ndarray, *, side: str = "left",
             lower: bool = True, trans: str = "N",
             unit_diagonal: bool = False) -> np.ndarray:
        """Triangular solve; ``trans='C'`` solves against the Hermitian
        adjoint ``aᴴ`` via conjugate / transpose-solve / conjugate."""
        self._tick("trsm")
        if side == "left":
            if trans == "C":
                # op(a) = aᴴ: solve the conjugated system and conjugate
                # back (a no-copy pass-through for real operands)
                return sla.solve_triangular(
                    a, b.conj(), trans="T", lower=lower,
                    unit_diagonal=unit_diagonal,
                    check_finite=False).conj()
            return sla.solve_triangular(
                a, b, trans=trans, lower=lower,
                unit_diagonal=unit_diagonal, check_finite=False)
        if side != "right":
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        # X op(a) = b  <=>  op(a)ᵗ Xᵗ = bᵗ — exactly the transpose tricks
        # the pre-backend right-solve helpers used, kept call-for-call so
        # float64 factorizations stay bit-identical to the seed
        if trans == "N":
            flip = "T"
            out = sla.solve_triangular(
                a, b.T, trans=flip, lower=lower,
                unit_diagonal=unit_diagonal, check_finite=False)
            return out.T
        if trans == "T":
            out = sla.solve_triangular(
                a, b.T, lower=lower, unit_diagonal=unit_diagonal,
                check_finite=False)
            return out.T
        # trans == "C": X aᴴ = b  <=>  a (Xᴴ)ᵗ... — conjugate/solve/conjugate
        out = sla.solve_triangular(
            a, b.conj().T, lower=lower, unit_diagonal=unit_diagonal,
            check_finite=False)
        return out.conj().T

    def getrf(self, a: np.ndarray, pivot_threshold: float = 1e-14
              ) -> Tuple[np.ndarray, int]:
        self._tick("getrf")
        return _lu_nopivot(a, pivot_threshold)

    def potrf(self, a: np.ndarray, pivot_threshold: float = 1e-14
              ) -> Tuple[np.ndarray, int]:
        self._tick("potrf")
        return _cholesky_nopivot(a, pivot_threshold)

    def ldlt(self, a: np.ndarray, pivot_threshold: float = 1e-14
             ) -> Tuple[np.ndarray, int]:
        self._tick("ldlt")
        return _ldlt_nopivot(a, pivot_threshold)

    def ldlt_pivot(self, a: np.ndarray, u: float = 0.1,
                   growth_limit: float = 1e8, fallback: bool = False,
                   pivot_threshold: float = 1e-14
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                              Dict[str, Any]]:
        self._tick("ldlt_pivot")
        return _ldlt_pivot(a, u, growth_limit, fallback, pivot_threshold)

    # -- column-stable panel kernels -----------------------------------
    def panel_gemm(self, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._tick("panel_gemm")
        return _stable_gemm(a, x)

    def panel_trsm(self, a: np.ndarray, b: np.ndarray, *,
                   lower: bool = True, trans: str = "N",
                   unit_diagonal: bool = False) -> np.ndarray:
        """Column-stable panel solve; ``trans='C'`` sweeps against the
        Hermitian adjoint ``aᴴ``."""
        self._tick("panel_trsm")
        if trans == "T":
            m, eff_lower = a.T, not lower
        elif trans == "C":
            m, eff_lower = a.conj().T, not lower
        else:
            m, eff_lower = a, lower
        x = np.array(b, dtype=np.result_type(a, b), copy=True, order="C")
        if x.shape[1]:
            if eff_lower:
                _sweep_lower(m, x, unit_diagonal)
            else:
                _sweep_upper(m, x, unit_diagonal)
        return x

    def lr_apply(self, u: np.ndarray, v: np.ndarray, x: np.ndarray,
                 mode: str = "n") -> np.ndarray:
        """Apply ``u vᵗ`` to a panel; ``mode='h'`` applies the Hermitian
        adjoint ``conj(v) uᴴ``."""
        self._tick("lr_apply")
        rank = u.shape[1]
        if rank == 0:
            rows = u.shape[0] if mode == "n" else v.shape[0]
            dt = np.result_type(u, v, x)
            return np.zeros((rows, x.shape[1]), dtype=dt)
        if mode == "n":       # u (vᵗ x)
            t = _stable_gemm(np.ascontiguousarray(v.T), x)
            return _stable_gemm(u, t)
        if mode == "t":       # v (uᵗ x)
            t = _stable_gemm(np.ascontiguousarray(u.T), x)
            return _stable_gemm(v, t)
        # mode == "h": conj(v) (uᴴ x)
        t = _stable_gemm(np.ascontiguousarray(u.conj().T), x)
        return _stable_gemm(np.ascontiguousarray(v.conj()), t)


class NumbaBackend(NumpyBackend):
    """JIT backend: the panel kernels run as compiled naive loops.

    Registered only when ``numba`` is importable.  The factorization
    kernels are inherited from :class:`NumpyBackend` unchanged (they are
    already BLAS-bound; re-JITting them buys nothing and would break the
    bit-compatibility contract), so only the Python-orchestrated solve
    path changes engine.  The naive loops are column-stable by
    construction — each output column is produced by an independent loop
    nest — which keeps the protocol's multi-RHS contract.
    """

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        self._jit: Optional[Tuple[Callable[..., Any], ...]] = None

    def _kernels(self) -> Tuple[Callable[..., Any], ...]:
        """Compile (once) and return the JIT panel kernels."""
        if self._jit is None:
            import numba  # noqa: PLC0415  (gated: see register below)

            @numba.njit(cache=True)  # type: ignore[misc]
            def pgemm(a: Any, x: Any, out: Any) -> None:
                m, w = a.shape
                k = x.shape[1]
                for kk in range(k):
                    for i in range(m):
                        acc = out.dtype.type(0)
                        for j in range(w):
                            acc += a[i, j] * x[j, kk]
                        out[i, kk] = acc

            @numba.njit(cache=True)  # type: ignore[misc]
            def sweep_lower(m: Any, x: Any, unit: Any) -> None:
                n = m.shape[0]
                k = x.shape[1]
                for kk in range(k):
                    for j in range(n):
                        if not unit:
                            # solverlint: ignore[python-hot-loop] -- njit body: numba compiles this scalar nest to machine code; the per-column loop IS the column-stability contract
                            x[j, kk] = x[j, kk] / m[j, j]
                        for i in range(j + 1, n):
                            # solverlint: ignore[python-hot-loop] -- njit body (see above)
                            x[i, kk] -= m[i, j] * x[j, kk]

            @numba.njit(cache=True)  # type: ignore[misc]
            def sweep_upper(m: Any, x: Any, unit: Any) -> None:
                n = m.shape[0]
                k = x.shape[1]
                for kk in range(k):
                    for j in range(n - 1, -1, -1):
                        if not unit:
                            # solverlint: ignore[python-hot-loop] -- njit body (see sweep_lower)
                            x[j, kk] = x[j, kk] / m[j, j]
                        for i in range(j):
                            # solverlint: ignore[python-hot-loop] -- njit body (see sweep_lower)
                            x[i, kk] -= m[i, j] * x[j, kk]

            self._jit = (pgemm, sweep_lower, sweep_upper)
        return self._jit

    def panel_gemm(self, a: np.ndarray, x: np.ndarray) -> np.ndarray:
        self._tick("panel_gemm")
        pgemm = self._kernels()[0]
        dt = np.result_type(a, x)
        a = np.ascontiguousarray(a, dtype=dt)
        x = np.ascontiguousarray(x, dtype=dt)
        out = np.empty((a.shape[0], x.shape[1]), dtype=dt)
        if out.size:
            pgemm(a, x, out)
        else:
            out[...] = 0
        return out

    def panel_trsm(self, a: np.ndarray, b: np.ndarray, *,
                   lower: bool = True, trans: str = "N",
                   unit_diagonal: bool = False) -> np.ndarray:
        """JIT panel solve; ``trans='C'`` sweeps against the Hermitian
        adjoint ``aᴴ``."""
        self._tick("panel_trsm")
        _, sweep_lo, sweep_up = self._kernels()
        dt = np.result_type(a, b)
        if trans == "T":
            m, eff_lower = a.T, not lower
        elif trans == "C":
            m, eff_lower = a.conj().T, not lower
        else:
            m, eff_lower = a, lower
        m = np.ascontiguousarray(m, dtype=dt)
        x = np.array(b, dtype=dt, copy=True, order="C")
        if x.shape[1]:
            if eff_lower:
                sweep_lo(m, x, unit_diagonal)
            else:
                sweep_up(m, x, unit_diagonal)
        return x

    def lr_apply(self, u: np.ndarray, v: np.ndarray, x: np.ndarray,
                 mode: str = "n") -> np.ndarray:
        """JIT low-rank apply; ``mode='h'`` applies the Hermitian adjoint
        ``conj(v) uᴴ``."""
        self._tick("lr_apply")
        rank = u.shape[1]
        if rank == 0:
            rows = u.shape[0] if mode == "n" else v.shape[0]
            return np.zeros((rows, x.shape[1]),
                            dtype=np.result_type(u, v, x))
        if mode == "n":
            return self.panel_gemm(u, self.panel_gemm(
                np.ascontiguousarray(v.T), x))
        if mode == "t":
            return self.panel_gemm(v, self.panel_gemm(
                np.ascontiguousarray(u.T), x))
        return self.panel_gemm(
            np.ascontiguousarray(v.conj()),
            self.panel_gemm(np.ascontiguousarray(u.conj().T), x))


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, replace: bool = False) -> None:
    """Register a backend instance under ``backend.name``.

    Backends are process-wide singletons (their call counters accumulate
    across solves); re-registering an existing name requires
    ``replace=True``.
    """
    if not isinstance(backend, KernelBackend):
        raise TypeError("backend must be a KernelBackend instance")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered "
                         "(pass replace=True to override)")
    _REGISTRY[backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """Names of all registered backends (sorted)."""
    return tuple(sorted(_REGISTRY))


def numba_available() -> bool:
    """Whether the optional numba JIT backend could be registered."""
    return importlib.util.find_spec("numba") is not None


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend: explicit ``name`` > ``$REPRO_BACKEND`` > numpy.

    Raises ``ValueError`` (listing the registered names) for an unknown
    backend — including ``'numba'`` on interpreters where numba is not
    installed, since the backend is only registered when importable.
    """
    resolved = name or os.environ.get(BACKEND_ENV) or "numpy"
    try:
        return _REGISTRY[resolved]
    except KeyError:
        hint = ""
        if resolved == "numba" and not numba_available():
            hint = " (numba is not installed in this environment)"
        raise ValueError(
            f"unknown kernel backend {resolved!r}{hint}; registered "
            f"backends: {', '.join(available_backends())}") from None


register_backend(NumpyBackend())
if numba_available():  # pragma: no cover - depends on the environment
    register_backend(NumbaBackend())
