"""Iterative refinement preconditioned by the BLR factorization (§4.4).

The paper uses the low-rank factorization either as a low-accuracy direct
solver or as a preconditioner: "GMRES for general matrices and Conjugate
Gradient for SPD matrices", stopped after 20 iterations or a backward error
below 1e-12 (Figure 8).  All three schemes here take an abstract
``precond(r) -> z`` callable (the solver's :meth:`~repro.core.solver.Solver.
solve` bound with ``refine=False``) and record the backward-error history
``||A x_k - b||₂ / ||b||₂`` that Figure 8 plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix


def _work_dtype(a: CSCMatrix, b: np.ndarray) -> np.dtype:
    """Workspace dtype of a refinement run (complex matrix or rhs promotes
    everything; non-inexact input falls back to float64)."""
    dt = np.result_type(a.values.dtype, np.asarray(b).dtype)
    return dt if dt.kind in "fc" else np.dtype(np.float64)


@dataclass
class RefinementResult:
    """Solution plus convergence trace.

    ``history`` holds the *full* per-iteration residual record the three
    schemes append to (``history[0]`` is the residual of the starting
    guess, ``history[i]`` the residual after iteration ``i``) — the series
    Figure 8 plots.  :attr:`residual_history` exposes it under its
    telemetry name; :meth:`~repro.core.solver.Solver.refine` publishes it
    on the telemetry bus (``refinement_residual`` series + one
    ``refinement`` event) when a bus is attached.
    """

    x: np.ndarray
    history: List[float] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    #: no ``drop``× residual reduction over the last ``window`` iterations
    #: (set by :func:`classify_history` when the scheme does not converge)
    stagnated: bool = False
    #: the residual grew well past its best value, or went non-finite
    diverged: bool = False

    @property
    def backward_error(self) -> float:
        return self.history[-1] if self.history else np.inf

    @property
    def residual_history(self) -> List[float]:
        """Per-iteration residuals (GMRES/CG/IR), starting guess first."""
        return list(self.history)


def classify_history(history: List[float], window: int = 4,
                     drop: float = 10.0, growth: float = 10.0
                     ) -> Tuple[bool, bool]:
    """``(stagnated, diverged)`` verdict on a residual history.

    *Diverged*: the last residual is non-finite, or grew more than
    ``growth``× past the best residual seen.  *Stagnated*: more than
    ``window`` recorded iterations and the last residual did not drop
    ``drop``× below the residual ``window`` iterations ago (the "no 10×
    drop in k iterations" rule).  The recovery layer treats both as a
    breakdown of the preconditioner quality and escalates.
    """
    if not history:
        return False, False
    last = history[-1]
    if not math.isfinite(last):
        return False, True
    if len(history) > 1:
        best = min(history[:-1])
        if math.isfinite(best) and last > growth * best:
            return False, True
    if len(history) > window:
        ref = history[-1 - window]
        if ref != 0.0 and last > ref / drop:
            return True, False
    return False, False


def _backward_error(a: CSCMatrix, x: np.ndarray, b: np.ndarray,
                    norm_b: float) -> float:
    return float(np.linalg.norm(a.matvec(x) - b) / norm_b)


def iterative_refinement(a: CSCMatrix, b: np.ndarray,
                         precond: Callable[[np.ndarray], np.ndarray],
                         tol: float = 1e-12, maxiter: int = 20,
                         x0: Optional[np.ndarray] = None) -> RefinementResult:
    """Classical residual correction: ``x += M⁻¹ (b - A x)``."""
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(x=np.zeros_like(b), converged=True)
    x = (precond(b) if x0 is None
         else np.array(x0, dtype=_work_dtype(a, b)))
    res = RefinementResult(x=x)
    res.history.append(_backward_error(a, x, b, norm_b))
    for it in range(maxiter):
        if res.history[-1] <= tol:
            res.converged = True
            break
        r = b - a.matvec(x)
        x += precond(r)
        res.history.append(_backward_error(a, x, b, norm_b))
        res.iterations = it + 1
    res.x = x
    res.converged = res.history[-1] <= tol
    if not res.converged:
        res.stagnated, res.diverged = classify_history(res.history)
    return res


def gmres(a: CSCMatrix, b: np.ndarray,
          precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
          tol: float = 1e-12, maxiter: int = 20, restart: int = 30,
          x0: Optional[np.ndarray] = None) -> RefinementResult:
    """Right-preconditioned restarted GMRES (Arnoldi + Givens rotations).

    Right preconditioning keeps the monitored residual equal to the true
    residual of ``A x = b``, so the recorded history is directly the
    backward error of Figure 8.  Complex systems use the Hermitian inner
    product in the Gram-Schmidt sweep and apply each Givens rotation's
    adjoint (LAPACK ``zrotg`` convention: real cosines, conjugated sines).
    """
    n = a.n
    dt = _work_dtype(a, b)
    complex_arith = dt.kind == "c"
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(x=np.zeros(n, dtype=dt), converged=True)
    m_op = precond if precond is not None else (lambda r: r)
    x = np.zeros(n, dtype=dt) if x0 is None else np.array(x0, dtype=dt)
    res = RefinementResult(x=x)
    res.history.append(_backward_error(a, x, b, norm_b))
    total_it = 0

    while total_it < maxiter and res.history[-1] > tol:
        r = b - a.matvec(x)
        beta = float(np.linalg.norm(r))
        if beta == 0.0:
            break
        m = min(restart, maxiter - total_it)
        v = np.zeros((m + 1, n), dtype=dt)
        h = np.zeros((m + 1, m), dtype=dt)
        cs = np.zeros(m, dtype=np.finfo(dt).dtype)  # zrotg: cosines are real
        sn = np.zeros(m, dtype=dt)
        g = np.zeros(m + 1, dtype=dt)
        g[0] = beta
        v[0] = r / beta
        j_used = 0
        for j in range(m):
            z = m_op(v[j])
            w = a.matvec(z)
            # modified Gram-Schmidt (Hermitian inner product when complex)
            for i in range(j + 1):
                # solverlint: ignore[python-hot-loop] -- MGS recurrence: each h[i,j] depends on the w updated by the previous i
                h[i, j] = (np.vdot(v[i], w) if complex_arith
                           else float(w @ v[i]))
                w -= h[i, j] * v[i]
            wnorm = float(np.linalg.norm(w))
            h[j + 1, j] = wnorm
            if wnorm > 0.0:
                v[j + 1] = w / wnorm
            # apply previous Givens rotations to the new column
            # (np.conj is a no-op pass-through for the real sines)
            for i in range(j):
                tmp = cs[i] * h[i, j] + sn[i] * h[i + 1, j]
                # solverlint: ignore[python-hot-loop] -- sequential rotation chain: rotation i feeds h entries read by rotation i+1
                h[i + 1, j] = (-np.conj(sn[i]) * h[i, j]
                               + cs[i] * h[i + 1, j])
                h[i, j] = tmp
            # new rotation annihilating h[j+1, j]
            if complex_arith:
                # LAPACK zrotg: c real, s = (f/|f|) conj(g) / r
                f, gv = complex(h[j, j]), complex(h[j + 1, j])
                if gv == 0.0:
                    cs[j], sn[j], r_val = 1.0, 0.0, f
                elif f == 0.0:
                    cs[j] = 0.0
                    sn[j] = np.conj(gv) / abs(gv)
                    r_val = abs(gv)
                else:
                    d = float(np.hypot(abs(f), abs(gv)))
                    cs[j] = abs(f) / d
                    phase = f / abs(f)
                    sn[j] = phase * np.conj(gv) / d
                    r_val = phase * d
                h[j, j] = r_val
            else:
                denom = float(np.hypot(h[j, j], h[j + 1, j]))
                if denom == 0.0:
                    cs[j], sn[j] = 1.0, 0.0
                else:
                    cs[j], sn[j] = h[j, j] / denom, h[j + 1, j] / denom
                # solverlint: ignore[python-hot-loop] -- O(1) scalar update on the Hessenberg diagonal, once per Arnoldi step
                h[j, j] = cs[j] * h[j, j] + sn[j] * h[j + 1, j]
            h[j + 1, j] = 0.0
            g[j + 1] = -np.conj(sn[j]) * g[j]
            # solverlint: ignore[python-hot-loop] -- O(1) scalar update of the rotated rhs, once per Arnoldi step
            g[j] = cs[j] * g[j]
            j_used = j + 1
            total_it += 1
            res.history.append(float(abs(g[j + 1])) / norm_b)
            if res.history[-1] <= tol or total_it >= maxiter:
                break
        # solve the small triangular system and update x
        if j_used:
            y = np.linalg.solve(h[:j_used, :j_used], g[:j_used])
            z = m_op(v[:j_used].T @ y)
            x = x + z
        # replace the Arnoldi residual estimate with the true backward error
        res.history[-1] = _backward_error(a, x, b, norm_b)
        if beta / norm_b <= res.history[-1] * (1.0 + 1e-12):
            break  # stagnation: the cycle made no progress

    res.x = x
    res.iterations = total_it
    res.converged = res.history[-1] <= tol
    if not res.converged:
        res.stagnated, res.diverged = classify_history(res.history)
    return res


def conjugate_gradient(a: CSCMatrix, b: np.ndarray,
                       precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                       tol: float = 1e-12, maxiter: int = 20,
                       x0: Optional[np.ndarray] = None) -> RefinementResult:
    """Preconditioned conjugate gradient (for SPD matrices)."""
    n = a.n
    dt = _work_dtype(a, b)
    complex_arith = dt.kind == "c"
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(x=np.zeros(n, dtype=dt), converged=True)
    m_op = precond if precond is not None else (lambda r: r)
    x = np.zeros(n, dtype=dt) if x0 is None else np.array(x0, dtype=dt)
    r = b - a.matvec(x)
    z = m_op(r)
    p = z.copy()
    # Hermitian inner products for complex (HPD) systems
    rz = complex(np.vdot(r, z)) if complex_arith else float(r @ z)
    res = RefinementResult(x=x)
    res.history.append(float(np.linalg.norm(r)) / norm_b)
    for it in range(maxiter):
        if res.history[-1] <= tol:
            break
        ap = a.matvec(p)
        pap = complex(np.vdot(p, ap)) if complex_arith else float(p @ ap)
        if pap == 0.0:
            break
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        res.history.append(float(np.linalg.norm(r)) / norm_b)
        res.iterations = it + 1
        if res.history[-1] <= tol:
            break
        z = m_op(r)
        rz_new = complex(np.vdot(r, z)) if complex_arith else float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    res.x = x
    res.converged = res.history[-1] <= tol
    if not res.converged:
        res.stagnated, res.diverged = classify_history(res.history)
    return res
