"""Iterative refinement preconditioned by the BLR factorization (§4.4).

The paper uses the low-rank factorization either as a low-accuracy direct
solver or as a preconditioner: "GMRES for general matrices and Conjugate
Gradient for SPD matrices", stopped after 20 iterations or a backward error
below 1e-12 (Figure 8).  All three schemes here take an abstract
``precond(r) -> z`` callable (the solver's :meth:`~repro.core.solver.Solver.
solve` bound with ``refine=False``) and record the backward-error history
``||A x_k - b||₂ / ||b||₂`` that Figure 8 plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.sparse.csc import CSCMatrix


def _work_dtype(a: CSCMatrix, b: np.ndarray) -> np.dtype:
    """Workspace dtype of a refinement run (complex matrix or rhs promotes
    everything; non-inexact input falls back to float64)."""
    dt = np.result_type(a.values.dtype, np.asarray(b).dtype)
    return dt if dt.kind in "fc" else np.dtype(np.float64)


@dataclass
class RefinementResult:
    """Solution plus convergence trace.

    ``history`` holds the *full* per-iteration residual record the three
    schemes append to (``history[0]`` is the residual of the starting
    guess, ``history[i]`` the residual after iteration ``i``) — the series
    Figure 8 plots.  :attr:`residual_history` exposes it under its
    telemetry name; :meth:`~repro.core.solver.Solver.refine` publishes it
    on the telemetry bus (``refinement_residual`` series + one
    ``refinement`` event) when a bus is attached.

    For a multi-RHS panel ``b`` of shape ``(n, k)``, ``x`` is the ``(n,
    k)`` solution panel, :attr:`col_history` carries the per-column
    residual records, and ``history`` is their per-iteration *maximum*
    (shorter columns — frozen once converged — padded with their final
    residual), so every consumer of the single-RHS history (telemetry,
    reports, the escalation classifier) keeps working unchanged: the max
    reaching ``tol`` means every column did.
    """

    x: np.ndarray
    history: List[float] = field(default_factory=list)
    converged: bool = False
    iterations: int = 0
    #: no ``drop``× residual reduction over the last ``window`` iterations
    #: (set by :func:`classify_history` when the scheme does not converge)
    stagnated: bool = False
    #: the residual grew well past its best value, or went non-finite
    diverged: bool = False
    #: per-column residual histories for panel right-hand sides
    #: (``None`` for single-RHS runs; zero-norm columns get ``[]``)
    col_history: Optional[List[List[float]]] = None

    @property
    def backward_error(self) -> float:
        return self.history[-1] if self.history else np.inf

    @property
    def residual_history(self) -> List[float]:
        """Per-iteration residuals (GMRES/CG/IR), starting guess first;
        the per-column maximum for panel right-hand sides."""
        return list(self.history)


def classify_history(history: List[float], window: int = 4,
                     drop: float = 10.0, growth: float = 10.0
                     ) -> Tuple[bool, bool]:
    """``(stagnated, diverged)`` verdict on a residual history.

    *Diverged*: the last residual is non-finite, or grew more than
    ``growth``× past the best residual seen.  *Stagnated*: more than
    ``window`` recorded iterations and the last residual did not drop
    ``drop``× below the residual ``window`` iterations ago (the "no 10×
    drop in k iterations" rule).  The recovery layer treats both as a
    breakdown of the preconditioner quality and escalates.
    """
    if not history:
        return False, False
    last = history[-1]
    if not math.isfinite(last):
        return False, True
    if len(history) > 1:
        best = min(history[:-1])
        if math.isfinite(best) and last > growth * best:
            return False, True
    if len(history) > window:
        ref = history[-1 - window]
        if ref != 0.0 and last > ref / drop:
            return True, False
    return False, False


def _backward_error(a: CSCMatrix, x: np.ndarray, b: np.ndarray,
                    norm_b: float) -> float:
    return float(np.linalg.norm(a.matvec(x) - b) / norm_b)


# ----------------------------------------------------------------------
# multi-RHS panel support
# ----------------------------------------------------------------------

def _merge_histories(col_history: List[List[float]]) -> List[float]:
    """Per-iteration maximum over the column histories.

    Columns freeze once converged, so their histories may be shorter;
    frozen columns contribute their final residual to later iterations
    (last-value padding).  Zero-norm columns (empty histories, converged
    by construction) are skipped entirely.
    """
    live = [h for h in col_history if h]
    if not live:
        return []
    merged = []
    for i in range(max(len(h) for h in live)):
        merged.append(max(h[min(i, len(h) - 1)] for h in live))
    return merged


def _merged_result(a: CSCMatrix, b: np.ndarray,
                   cols: List[RefinementResult]) -> RefinementResult:
    """Stack per-column results into one panel :class:`RefinementResult`."""
    n, k = b.shape
    if cols:
        x = np.stack([c.x for c in cols], axis=1)
    else:
        x = np.zeros((n, 0), dtype=_work_dtype(a, b))
    res = RefinementResult(
        x=x,
        history=_merge_histories([c.history for c in cols]),
        converged=all(c.converged for c in cols),
        iterations=max((c.iterations for c in cols), default=0),
        stagnated=any(c.stagnated for c in cols),
        diverged=any(c.diverged for c in cols),
        col_history=[list(c.history) for c in cols],
    )
    return res


def _columnwise(single: Callable[..., RefinementResult], a: CSCMatrix,
                b: np.ndarray, x0: Optional[np.ndarray],
                **kwargs: object) -> RefinementResult:
    """Run a single-RHS scheme per panel column and merge the results.

    Each column is passed as a fresh contiguous vector, so the per-column
    runs are bit-identical to solving that column alone.
    """
    cols = []
    for j in range(b.shape[1]):
        xj = None if x0 is None else np.ascontiguousarray(x0[:, j])
        cols.append(single(a, np.ascontiguousarray(b[:, j]), x0=xj,
                           **kwargs))
    return _merged_result(a, b, cols)


def _refine_panel(a: CSCMatrix, b: np.ndarray,
                  precond: Callable[[np.ndarray], np.ndarray],
                  tol: float, maxiter: int,
                  x0: Optional[np.ndarray]) -> RefinementResult:
    """Blocked iterative refinement on an ``(n, k)`` panel.

    The residual and correction solves run on the whole panel (one
    BLAS-3-shaped pass per iteration — the multi-RHS payoff), restricted
    to the still-active columns; converged columns are frozen exactly
    where the single-RHS loop would have stopped.  Because the matvec and
    the preconditioner are column-stable, every column's iterates — and
    its residual history — are bit-identical to a single-RHS run on that
    column (for identical dtypes).
    """
    n, k = b.shape
    dt = _work_dtype(a, b)
    col_hist: List[List[float]] = [[] for _ in range(k)]
    if k == 0:
        return RefinementResult(x=np.zeros((n, 0), dtype=dt),
                                converged=True, col_history=col_hist)
    # per-column norms of contiguous copies: the same reduction the
    # single-RHS path performs on its own 1-D right-hand side
    norm_b = np.array([
        float(np.linalg.norm(np.ascontiguousarray(b[:, j])))
        for j in range(k)])
    nz = [j for j in range(k) if norm_b[j] > 0.0]
    x = np.zeros((n, k), dtype=dt)
    if nz:
        if x0 is None:
            x[:, nz] = precond(np.ascontiguousarray(b[:, nz]))
        else:
            x[:, nz] = np.asarray(x0, dtype=dt)[:, nz]
    iters = [0] * k
    for j in nz:
        col_hist[j].append(_backward_error(
            a, np.ascontiguousarray(x[:, j]),
            np.ascontiguousarray(b[:, j]), norm_b[j]))
    active = [j for j in nz if col_hist[j][-1] > tol]
    for it in range(maxiter):
        if not active:
            break
        r = b - a.matvec(x)
        x[:, active] += precond(np.ascontiguousarray(r[:, active]))
        for j in active:
            col_hist[j].append(_backward_error(
                a, np.ascontiguousarray(x[:, j]),
                np.ascontiguousarray(b[:, j]), norm_b[j]))
            iters[j] = it + 1
        active = [j for j in active if col_hist[j][-1] > tol]
    res = RefinementResult(
        x=x,
        history=_merge_histories(col_hist),
        converged=all(not h or h[-1] <= tol for h in col_hist),
        iterations=max(iters, default=0),
        col_history=col_hist,
    )
    if not res.converged:
        flags = [classify_history(h) for h in col_hist
                 if h and h[-1] > tol]
        res.stagnated = any(s for s, _ in flags)
        res.diverged = any(d for _, d in flags)
    return res


def iterative_refinement(a: CSCMatrix, b: np.ndarray,
                         precond: Callable[[np.ndarray], np.ndarray],
                         tol: float = 1e-12, maxiter: int = 20,
                         x0: Optional[np.ndarray] = None) -> RefinementResult:
    """Classical residual correction: ``x += M⁻¹ (b - A x)``.

    ``b`` may be a vector or an ``(n, k)`` panel; panels refine blocked
    (one residual pass + one preconditioner application per iteration for
    all still-active columns) with per-column convergence tracking.
    """
    if np.asarray(b).ndim == 2:
        return _refine_panel(a, b, precond, tol, maxiter, x0)
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(x=np.zeros_like(b), converged=True)
    x = (precond(b) if x0 is None
         else np.array(x0, dtype=_work_dtype(a, b)))
    res = RefinementResult(x=x)
    res.history.append(_backward_error(a, x, b, norm_b))
    for it in range(maxiter):
        if res.history[-1] <= tol:
            res.converged = True
            break
        r = b - a.matvec(x)
        x += precond(r)
        res.history.append(_backward_error(a, x, b, norm_b))
        res.iterations = it + 1
    res.x = x
    res.converged = res.history[-1] <= tol
    if not res.converged:
        res.stagnated, res.diverged = classify_history(res.history)
    return res


def gmres(a: CSCMatrix, b: np.ndarray,
          precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
          tol: float = 1e-12, maxiter: int = 20, restart: int = 30,
          x0: Optional[np.ndarray] = None) -> RefinementResult:
    """Right-preconditioned restarted GMRES (Arnoldi + Givens rotations).

    Right preconditioning keeps the monitored residual equal to the true
    residual of ``A x = b``, so the recorded history is directly the
    backward error of Figure 8.  Complex systems use the Hermitian inner
    product in the Gram-Schmidt sweep and apply each Givens rotation's
    adjoint (LAPACK ``zrotg`` convention: real cosines, conjugated sines).

    Panel right-hand sides run column by column (the Krylov space is
    per-column by nature) and merge into one panel result.
    """
    if np.asarray(b).ndim == 2:
        return _columnwise(gmres, a, b, x0, precond=precond, tol=tol,
                           maxiter=maxiter, restart=restart)
    n = a.n
    dt = _work_dtype(a, b)
    complex_arith = dt.kind == "c"
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(x=np.zeros(n, dtype=dt), converged=True)
    m_op = precond if precond is not None else (lambda r: r)
    x = np.zeros(n, dtype=dt) if x0 is None else np.array(x0, dtype=dt)
    res = RefinementResult(x=x)
    res.history.append(_backward_error(a, x, b, norm_b))
    total_it = 0

    while total_it < maxiter and res.history[-1] > tol:
        r = b - a.matvec(x)
        beta = float(np.linalg.norm(r))
        if beta == 0.0:
            break
        m = min(restart, maxiter - total_it)
        v = np.zeros((m + 1, n), dtype=dt)
        h = np.zeros((m + 1, m), dtype=dt)
        cs = np.zeros(m, dtype=np.finfo(dt).dtype)  # zrotg: cosines are real
        sn = np.zeros(m, dtype=dt)
        g = np.zeros(m + 1, dtype=dt)
        g[0] = beta
        v[0] = r / beta
        j_used = 0
        for j in range(m):
            z = m_op(v[j])
            w = a.matvec(z)
            # modified Gram-Schmidt (Hermitian inner product when complex)
            for i in range(j + 1):
                # solverlint: ignore[python-hot-loop] -- MGS recurrence: each h[i,j] depends on the w updated by the previous i
                h[i, j] = (np.vdot(v[i], w) if complex_arith
                           else float(w @ v[i]))
                w -= h[i, j] * v[i]
            wnorm = float(np.linalg.norm(w))
            h[j + 1, j] = wnorm
            if wnorm > 0.0:
                v[j + 1] = w / wnorm
            # apply previous Givens rotations to the new column
            # (np.conj is a no-op pass-through for the real sines)
            for i in range(j):
                tmp = cs[i] * h[i, j] + sn[i] * h[i + 1, j]
                # solverlint: ignore[python-hot-loop] -- sequential rotation chain: rotation i feeds h entries read by rotation i+1
                h[i + 1, j] = (-np.conj(sn[i]) * h[i, j]
                               + cs[i] * h[i + 1, j])
                h[i, j] = tmp
            # new rotation annihilating h[j+1, j]
            if complex_arith:
                # LAPACK zrotg: c real, s = (f/|f|) conj(g) / r
                f, gv = complex(h[j, j]), complex(h[j + 1, j])
                if gv == 0.0:
                    cs[j], sn[j], r_val = 1.0, 0.0, f
                elif f == 0.0:
                    cs[j] = 0.0
                    sn[j] = np.conj(gv) / abs(gv)
                    r_val = abs(gv)
                else:
                    d = float(np.hypot(abs(f), abs(gv)))
                    cs[j] = abs(f) / d
                    phase = f / abs(f)
                    sn[j] = phase * np.conj(gv) / d
                    r_val = phase * d
                h[j, j] = r_val
            else:
                denom = float(np.hypot(h[j, j], h[j + 1, j]))
                if denom == 0.0:
                    cs[j], sn[j] = 1.0, 0.0
                else:
                    cs[j], sn[j] = h[j, j] / denom, h[j + 1, j] / denom
                # solverlint: ignore[python-hot-loop] -- O(1) scalar update on the Hessenberg diagonal, once per Arnoldi step
                h[j, j] = cs[j] * h[j, j] + sn[j] * h[j + 1, j]
            h[j + 1, j] = 0.0
            g[j + 1] = -np.conj(sn[j]) * g[j]
            # solverlint: ignore[python-hot-loop] -- O(1) scalar update of the rotated rhs, once per Arnoldi step
            g[j] = cs[j] * g[j]
            j_used = j + 1
            total_it += 1
            res.history.append(float(abs(g[j + 1])) / norm_b)
            if res.history[-1] <= tol or total_it >= maxiter:
                break
        # solve the small triangular system and update x
        if j_used:
            y = np.linalg.solve(h[:j_used, :j_used], g[:j_used])
            z = m_op(v[:j_used].T @ y)
            x = x + z
        # replace the Arnoldi residual estimate with the true backward error
        res.history[-1] = _backward_error(a, x, b, norm_b)
        if beta / norm_b <= res.history[-1] * (1.0 + 1e-12):
            break  # stagnation: the cycle made no progress

    res.x = x
    res.iterations = total_it
    res.converged = res.history[-1] <= tol
    if not res.converged:
        res.stagnated, res.diverged = classify_history(res.history)
    return res


def conjugate_gradient(a: CSCMatrix, b: np.ndarray,
                       precond: Optional[Callable[[np.ndarray], np.ndarray]] = None,
                       tol: float = 1e-12, maxiter: int = 20,
                       x0: Optional[np.ndarray] = None) -> RefinementResult:
    """Preconditioned conjugate gradient (for SPD matrices).

    Panel right-hand sides run column by column and merge into one panel
    result."""
    if np.asarray(b).ndim == 2:
        return _columnwise(conjugate_gradient, a, b, x0, precond=precond,
                           tol=tol, maxiter=maxiter)
    n = a.n
    dt = _work_dtype(a, b)
    complex_arith = dt.kind == "c"
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        return RefinementResult(x=np.zeros(n, dtype=dt), converged=True)
    m_op = precond if precond is not None else (lambda r: r)
    x = np.zeros(n, dtype=dt) if x0 is None else np.array(x0, dtype=dt)
    r = b - a.matvec(x)
    z = m_op(r)
    p = z.copy()
    # Hermitian inner products for complex (HPD) systems
    rz = complex(np.vdot(r, z)) if complex_arith else float(r @ z)
    res = RefinementResult(x=x)
    res.history.append(float(np.linalg.norm(r)) / norm_b)
    for it in range(maxiter):
        if res.history[-1] <= tol:
            break
        ap = a.matvec(p)
        pap = complex(np.vdot(p, ap)) if complex_arith else float(p @ ap)
        if pap == 0.0:
            break
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        res.history.append(float(np.linalg.norm(r)) / norm_b)
        res.iterations = it + 1
        if res.history[-1] <= tol:
            break
        z = m_op(r)
        rz_new = complex(np.vdot(r, z)) if complex_arith else float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    res.x = x
    res.converged = res.history[-1] <= tol
    if not res.converged:
        res.stagnated, res.diverged = classify_history(res.history)
    return res
