"""Execution engines for the factorization.

* :func:`run_sequential` — the textbook right-looking loop of Algorithms 1
  and 2 (used by Table 2, which reports sequential timings).
* :func:`run_threaded` — a multi-threaded engine in the spirit of the PaStiX
  static scheduler [23]: one task per column block, dependency counting on
  the block elimination DAG, per-target locks around the update scatters.
  numpy's BLAS releases the GIL inside the dense kernels, so worker threads
  genuinely overlap the heavy GEMM/QR/SVD work.

  Deviation from the paper noted in DESIGN.md: PaStiX maps tasks to threads
  *statically* by proportional subtree mapping; we use a work-stealing-free
  shared ready queue, which has the same correctness and (at Python scale)
  comparable balance.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, List

from repro.core.factor import NumericFactor
from repro.core.factorization import apply_updates_from, factor_column_block


def run_sequential(fac: NumericFactor) -> None:
    """Right-looking elimination, one column block at a time."""
    if fac.deferred is not None:
        run_left_looking(fac)
        return
    for k in range(fac.symb.ncblk):
        factor_column_block(fac, k)
        apply_updates_from(fac, k)


def run_left_looking(fac: NumericFactor) -> None:
    """Left-looking elimination (the paper's §4.3 proposal for JIT).

    Column block ``k``'s dense panels are allocated only when ``k`` is
    reached; all contributions from the (already factored, already
    compressed) descendants are pulled in, then ``k`` is factored and
    immediately compressed.  At any instant the working set holds the
    compressed factored prefix plus a single dense column block — the
    memory peak drops from "full dense structure" toward the compressed
    factor size, which is exactly the gap Figure 7 attributes to the
    scheduling strategy.
    """
    symb = fac.symb
    for k in range(symb.ncblk):
        fac.fill_column_block(k)
        for c in symb.contributors(k):
            apply_updates_from(fac, c, target=k)
        factor_column_block(fac, k)


def run_threaded(fac: NumericFactor, nthreads: int) -> None:
    """Dependency-driven parallel elimination.

    A column block becomes *ready* once every contributor has applied its
    updates to it.  Workers pop ready blocks, factor them, push their
    updates (serialized per target by a lock), and decrement the targets'
    dependency counters.
    """
    symb = fac.symb
    ncblk = symb.ncblk
    if nthreads <= 1 or ncblk <= 1:
        run_sequential(fac)
        return

    pending = [len(symb.contributors(t)) for t in range(ncblk)]
    counter_lock = threading.Lock()
    target_locks: Dict[int, threading.Lock] = {}
    locks_guard = threading.Lock()

    def lock_for(t: int) -> threading.Lock:
        with locks_guard:
            lk = target_locks.get(t)
            if lk is None:
                lk = target_locks[t] = threading.Lock()
            return lk

    ready: "queue.Queue[int]" = queue.Queue()
    for t in range(ncblk):
        if pending[t] == 0:
            ready.put(t)

    done = threading.Event()
    processed = [0]
    errors: List[BaseException] = []

    def worker() -> None:
        while not done.is_set():
            try:
                k = ready.get(timeout=0.05)
            except queue.Empty:
                continue
            try:
                factor_column_block(fac, k)
                # distinct targets of k, in ascending order
                targets = sorted({b.facing for b in fac.cblks[k].sym.off_blocks()})
                for t in targets:
                    apply_updates_from(fac, k, target=t, lock=lock_for)
                    with counter_lock:
                        pending[t] -= 1
                        if pending[t] == 0:
                            ready.put(t)
                with counter_lock:
                    processed[0] += 1
                    if processed[0] == ncblk:
                        done.set()
            except BaseException as exc:  # pragma: no cover - worker crash
                errors.append(exc)
                done.set()

    threads = [threading.Thread(target=worker, daemon=True)
               for _ in range(nthreads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
    if processed[0] != ncblk:  # pragma: no cover - deadlock guard
        raise RuntimeError(
            f"scheduler stalled: {processed[0]}/{ncblk} column blocks done")


# ----------------------------------------------------------------------
# static scheduling (proportional subtree mapping, PaStiX [23])
# ----------------------------------------------------------------------

def proportional_mapping(symb, nthreads: int) -> List[int]:
    """Map each column block to a thread by proportional subtree splitting.

    The classic static-mapping heuristic of the PaStiX scheduler: walk the
    block elimination tree top-down, splitting the available thread set
    over each node's children proportionally to their subtree costs; once
    a subtree holds a single thread, everything in it belongs to that
    thread.  Nodes visited while several threads are still available (the
    top of the tree) are assigned to the first thread of their set — at
    the top the tree is thin, so the imbalance is small.

    Returns ``owner[k]`` in ``[0, nthreads)`` for every column block.
    """
    parent = symb.block_etree()
    ncblk = symb.ncblk
    children: List[List[int]] = [[] for _ in range(ncblk)]
    roots: List[int] = []
    for k in range(ncblk):
        p = int(parent[k])
        if p < 0:
            roots.append(k)
        else:
            children[p].append(k)

    # subtree cost: dense-equivalent nnz of the column block as work proxy
    cost = [0.0] * ncblk
    for k in range(ncblk):  # cblks are postordered: children before parents
        c = symb.cblks[k]
        local = float(c.ncols) ** 3 / 3.0 + c.nnz() * c.ncols
        cost[k] = local + sum(cost[ch] for ch in children[k])

    owner = [0] * ncblk

    def assign(nodes: List[int], threads: List[int]) -> None:
        """Distribute the thread list over a forest of subtrees."""
        stack = [(nodes, threads)]
        while stack:
            forest, ths = stack.pop()
            if not forest:
                continue
            if len(ths) == 1:
                t = ths[0]
                todo = list(forest)
                while todo:
                    k = todo.pop()
                    owner[k] = t
                    todo.extend(children[k])
                continue
            # split the thread set over the forest proportionally to cost
            total = sum(cost[k] for k in forest) or 1.0
            remaining = list(ths)
            shares = []
            for k in sorted(forest, key=lambda k: -cost[k]):
                want = max(1, round(len(ths) * cost[k] / total))
                take = min(want, max(1, len(remaining) -
                                     (len(forest) - len(shares) - 1)))
                got = remaining[:take] if len(remaining) >= take else \
                    [ths[0]]
                remaining = remaining[take:]
                shares.append((k, got))
            # leftover threads join the largest subtree
            if remaining and shares:
                shares[0] = (shares[0][0], shares[0][1] + remaining)
            for k, got in shares:
                owner[k] = got[0]  # the node itself runs on its first thread
                stack.append((children[k], got))

    assign(roots, list(range(nthreads)))
    return owner


def run_threaded_static(fac: NumericFactor, nthreads: int) -> None:
    """Static-mapping parallel elimination (PaStiX's scheduler [23]).

    Each thread owns a fixed, index-ordered list of column blocks from the
    proportional mapping.  Before factoring a block the thread waits until
    every contributor has pushed its updates (per-block counters guarded by
    a condition variable); after factoring it applies its own updates under
    per-target locks and signals the targets.
    """
    symb = fac.symb
    ncblk = symb.ncblk
    if nthreads <= 1 or ncblk <= 1:
        run_sequential(fac)
        return

    owner = proportional_mapping(symb, nthreads)
    tasks: List[List[int]] = [[] for _ in range(nthreads)]
    for k in range(ncblk):
        tasks[owner[k]].append(k)  # ascending: respects the elimination order

    pending = [len(symb.contributors(t)) for t in range(ncblk)]
    cond = threading.Condition()
    target_locks: Dict[int, threading.Lock] = {}
    locks_guard = threading.Lock()

    def lock_for(t: int) -> threading.Lock:
        with locks_guard:
            lk = target_locks.get(t)
            if lk is None:
                lk = target_locks[t] = threading.Lock()
            return lk

    errors: List[BaseException] = []

    def worker(tid: int) -> None:
        try:
            for k in tasks[tid]:
                with cond:
                    while pending[k] > 0 and not errors:
                        cond.wait(timeout=0.5)
                    if errors:
                        return
                factor_column_block(fac, k)
                targets = sorted({b.facing
                                  for b in fac.cblks[k].sym.off_blocks()})
                for t in targets:
                    apply_updates_from(fac, k, target=t, lock=lock_for)
                    with cond:
                        pending[t] -= 1
                        cond.notify_all()
        except BaseException as exc:  # pragma: no cover - worker crash
            with cond:
                errors.append(exc)
                cond.notify_all()

    threads = [threading.Thread(target=worker, args=(tid,), daemon=True)
               for tid in range(nthreads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if errors:
        raise errors[0]
