"""Execution engines for the factorization.

* :func:`run_sequential` — the textbook right-looking loop of Algorithms 1
  and 2 (used by Table 2, which reports sequential timings).
* :func:`run_threaded` — a multi-threaded engine in the spirit of the PaStiX
  static scheduler [23]: one task per column block, dependency counting on
  the block elimination DAG.  numpy's BLAS releases the GIL inside the
  dense kernels, so worker threads genuinely overlap the heavy GEMM/QR/SVD
  work.
* :func:`run_threaded_static` — PaStiX's proportional subtree mapping: each
  thread owns a fixed, index-ordered list of column blocks.

**Deterministic pull-mode reduction.**  Both threaded engines execute each
column block ``k`` as one *fan-in* task: pull the updates of every factored
contributor ``c`` (in ascending ``c``, the same per-target order the
sequential right-looking sweep produces), then factor ``k``.  A column
block becomes ready once all its contributors are factored.  Because a
single thread applies all updates into ``k``, in canonical order, the
floating-point reduction order is fixed — threaded factors are
**bit-identical** to the sequential run — and no per-target locks are
needed: a contributor's storage is immutable once factored, and only task
``k`` ever mutates ``k``'s storage.  (The previous push-mode engines
serialized scatters with per-target locks, which left the reduction order
to the thread schedule; see docs/observability.md.)

**Hardening.**  Workers shut down through queue sentinels (no polling
loops); every worker exception is collected under a lock and all of them
are surfaced (a single failure re-raises as itself, several raise a
:class:`SchedulerError` aggregating the lot); an optional watchdog monitors
a progress counter and raises :class:`DeadlockError` with a dump of the
pending-counter state when the run stalls.  Tracing (``fac.tracer``) and
fault injection (``fac.faults``) plumb through every engine.

  Deviation from the paper noted in DESIGN.md: PaStiX maps tasks to threads
  *statically* by proportional subtree mapping; ``run_threaded`` uses a
  work-stealing-free shared ready queue, which has the same correctness and
  (at Python scale) comparable balance.  ``run_threaded_static`` implements
  the paper's mapping.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.core.serialize import CheckpointWriter
    from repro.symbolic.structure import SymbolicFactor

from repro.core.factor import (
    NumericFactor,
    restore_column_block,
    snapshot_column_block,
)
from repro.core.factorization import (
    apply_updates_from,
    factor_column_block,
    finalize_updates_from,
)
from repro.runtime.recovery import NumericalBreakdown

#: how often (seconds) the joining main thread samples the progress counter
_WATCHDOG_POLL = 0.05


class SchedulerError(RuntimeError):
    """One or more scheduler workers failed.

    :attr:`errors` holds every collected worker exception, in the order the
    workers reported them.
    """

    def __init__(self, message: str,
                 errors: Sequence[BaseException] = ()) -> None:
        super().__init__(message)
        self.errors: List[BaseException] = list(errors)


class DeadlockError(SchedulerError):
    """The watchdog saw no progress for the configured timeout.

    The message carries the pending-counter dump (column blocks still
    waiting on unfactored contributors) captured at detection time.
    """


def run_sequential(fac: NumericFactor,
                   checkpoint: Optional["CheckpointWriter"] = None) -> None:
    """Right-looking elimination, one column block at a time.

    With a recovery state, a checkpoint writer, or a span profiler armed
    the engine switches to the pull-mode fan-in loop
    (:func:`run_sequential_pull`): pull-mode tasks only mutate their own
    column block, which is what makes pre-task snapshots, local retries,
    and resumable checkpoints sound — and what gives profiled sequential
    runs the same causal task structure as the threaded engines, so their
    span trees compare equal.  The two orders are bit-identical (PR 1's
    determinism guarantee)."""
    if fac.deferred is not None:
        if checkpoint is not None:
            raise ValueError("checkpointing does not support the "
                             "left-looking engine")
        run_left_looking(fac)
        return
    if fac.recovery is not None or checkpoint is not None \
            or fac.profiler is not None:
        run_sequential_pull(fac, checkpoint)
        return
    tr = fac.tracer
    if tr is not None:
        tr.meta.update(engine="sequential", threads=1)
    for k in range(fac.symb.ncblk):
        factor_column_block(fac, k)
        apply_updates_from(fac, k)
        # FUC compression point: k's outgoing updates are all pushed
        finalize_updates_from(fac, k)


def run_sequential_pull(fac: NumericFactor,
                        checkpoint: Optional["CheckpointWriter"] = None
                        ) -> None:
    """Pull-mode sequential sweep: per column block, apply contributors'
    updates (ascending) then factor — bit-identical to the push sweep.

    Skips already-factored column blocks, which is how a checkpoint resume
    continues a partial factorization: a restored block's updates are
    *pulled by its dependents* when they run, never re-pushed.  On any
    failure (including ``KeyboardInterrupt``) the checkpoint writer's
    fault hook fires before the exception propagates."""
    tr = fac.tracer
    if tr is not None:
        tr.meta.update(engine="sequential-pull", threads=1)
    _begin_profile(fac, engine="sequential-pull", threads=1)
    try:
        for k in range(fac.symb.ncblk):
            if fac.cblks[k].factored:
                continue
            _run_task(fac, k)
            if checkpoint is not None:
                checkpoint.task_done(fac, k)
    except BaseException:
        # deliberately BaseException: a Ctrl-C mid-factorization should
        # still leave a resumable checkpoint behind
        if checkpoint is not None:
            checkpoint.on_fault(fac)
        raise


def run_left_looking(fac: NumericFactor) -> None:
    """Left-looking elimination (the paper's §4.3 proposal for JIT).

    Column block ``k``'s dense panels are allocated only when ``k`` is
    reached; all contributions from the (already factored, already
    compressed) descendants are pulled in, then ``k`` is factored and
    immediately compressed.  At any instant the working set holds the
    compressed factored prefix plus a single dense column block — the
    memory peak drops from "full dense structure" toward the compressed
    factor size, which is exactly the gap Figure 7 attributes to the
    scheduling strategy.
    """
    symb = fac.symb
    tr = fac.tracer
    if tr is not None:
        tr.meta.update(engine="left-looking", threads=1)
    prof = fac.profiler
    _begin_profile(fac, engine="left-looking", threads=1)
    fuc = fac.variant is not None and fac.variant.compress_after_updates
    for k in range(symb.ncblk):
        sid = (prof.task_start(k, symb.contributors(k), order=_order_of(fac, k))
               if prof is not None else None)
        try:
            fac.fill_column_block(k)
            for c in symb.contributors(k):
                apply_updates_from(fac, c, target=k)
                if fuc and fac.note_updates_pulled(c, k):
                    finalize_updates_from(fac, c)
            factor_column_block(fac, k)
            if fuc and fac.n_targets(k) == 0:
                finalize_updates_from(fac, k)
        finally:
            if prof is not None:
                prof.end(sid)


# ----------------------------------------------------------------------
# shared machinery of the threaded engines
# ----------------------------------------------------------------------

def _targets_of(fac: NumericFactor, k: int) -> List[int]:
    """Distinct facing column blocks of ``k``'s off-diagonal blocks."""
    return sorted({b.facing for b in fac.cblks[k].sym.off_blocks()})


def _order_of(fac: NumericFactor, k: int) -> str:
    """Loop-order label of ``k``'s task span (``"dense"`` when untreated)."""
    v = fac.variant_for(k)
    return v.order if v is not None else "dense"


def _begin_profile(fac: NumericFactor, engine: str, threads: int) -> None:
    """Arm the span profiler's task registry for one engine run.

    Called from the driving thread while the ``factorize`` phase span is
    current, so contributor-less tasks attach there; the per-cblk
    elimination-tree depth feeds each task span's ``level`` attribute.
    """
    prof = fac.profiler
    if prof is not None:
        from repro.analysis.metrics import cblk_levels

        prof.meta.update(engine=engine, threads=threads)
        prof.begin_tasks(levels=cblk_levels(fac))


def _pull_and_factor(fac: NumericFactor, k: int) -> None:
    """One fan-in task: apply all contributors' updates into ``k`` (in
    ascending contributor order — the sequential reduction order), then
    factor ``k``.

    Under the ``fuc`` loop order a contributor is compressed as soon as
    its *last* facing target has pulled its updates
    (:meth:`NumericFactor.note_updates_pulled` — all pulls read the
    still-dense panels, so threaded runs stay bit-identical to the
    sequential sweep); a column block with no targets compresses right
    after its own factorization."""
    fuc = fac.variant is not None and fac.variant.compress_after_updates
    san = fac.sanitizer
    for c in fac.symb.contributors(k):
        if san is not None:
            san.note(f"cblk[{c}]", "read", site="scheduler.py:_pull_and_factor")
        apply_updates_from(fac, c, target=k)
        if fuc and fac.note_updates_pulled(c, k):
            if san is not None:
                # dependency-ordered ownership transfer: the last pulling
                # task compresses the drained source block
                san.handoff(f"cblk[{c}]")
                san.note(f"cblk[{c}]", "write",
                         site="scheduler.py:_pull_and_factor(finalize)")
            finalize_updates_from(fac, c)
    if san is not None:
        san.note(f"cblk[{k}]", "write", site="scheduler.py:_pull_and_factor")
    factor_column_block(fac, k)
    if fuc and fac.n_targets(k) == 0:
        finalize_updates_from(fac, k)


def _run_task(fac: NumericFactor, k: int,
              released_by: Optional[int] = None) -> None:
    """Execute the fan-in task for ``k`` under its causal span.

    ``released_by`` is the span id that travelled with the work item on
    the dynamic scheduler's ready queue (the *temporal* enqueuer); the
    recorded parent edge is the deterministic one — the span of the
    greatest contributor — so threaded and sequential trees agree (see
    :meth:`~repro.runtime.spans.SpanProfiler.task_start`)."""
    prof = fac.profiler
    if prof is None:
        _attempt_task(fac, k)
        return
    sid = prof.task_start(k, fac.symb.contributors(k), enqueuer=released_by,
                          order=_order_of(fac, k))
    try:
        _attempt_task(fac, k)
    finally:
        prof.end(sid)


def _attempt_task(fac: NumericFactor, k: int) -> None:
    """Run ``k``'s fan-in task, with bounded local retries.

    With a recovery state armed (``policy.task_retries > 0``) the task's
    column block is snapshotted first; a transient failure restores the
    snapshot, sleeps the seeded backoff, and retries.  Contributors are
    immutable once factored and only task ``k`` mutates ``k``'s storage
    (pull-mode invariant), so the snapshot/restore is exact.
    :class:`NumericalBreakdown` never retries locally — its causes are
    deterministic, so it goes straight to the solver-level ladder."""
    rec = fac.recovery
    if rec is None or rec.policy.task_retries <= 0:
        _pull_and_factor(fac, k)
        return
    retries = rec.policy.task_retries
    snap = snapshot_column_block(fac.cblks[k])
    for attempt in range(retries + 1):
        try:
            _pull_and_factor(fac, k)
            return
        except NumericalBreakdown:
            raise
        except Exception as exc:
            if attempt >= retries:
                raise
            rec.record("task_retry", site="scheduler", cblk=k,
                       attempt=attempt + 1, error=type(exc).__name__)
            restore_column_block(fac, k, snap)
            delay = rec.backoff(attempt)
            if delay > 0.0:
                time.sleep(delay)


def _pending_dump(fac: NumericFactor, pending: List[int], processed: int,
                  limit: int = 16) -> str:
    """Human-readable snapshot of the dependency state for stall reports."""
    ncblk = fac.symb.ncblk
    waiting = [(k, p) for k, p in enumerate(pending) if p > 0]
    lines = [f"pending counters: {processed}/{ncblk} column blocks "
             f"factored, {len(waiting)} still waiting on contributors"]
    for k, p in waiting[:limit]:
        missing = [c for c in fac.symb.contributors(k)
                   if not fac.cblks[c].factored][:8]
        lines.append(f"  cblk {k}: {p} unfactored contributor(s), "
                     f"e.g. {missing}")
    if len(waiting) > limit:
        lines.append(f"  ... and {len(waiting) - limit} more")
    return "\n".join(lines)


def _raise_collected(errors: List[BaseException]) -> None:
    if not errors:
        return
    if len(errors) == 1:
        raise errors[0]
    raise SchedulerError(
        f"{len(errors)} scheduler workers failed: "
        + "; ".join(f"{type(e).__name__}: {e}" for e in errors),
        errors) from errors[0]


def _join_with_watchdog(threads: List[threading.Thread],
                        watchdog_s: Optional[float],
                        tick: Callable[[], int],
                        on_stall: Callable[[], None]) -> None:
    """Join workers; with a watchdog, monitor ``tick()`` (a progress
    counter) and call ``on_stall()`` — which must raise — after
    ``watchdog_s`` seconds without progress."""
    if watchdog_s is None:
        for th in threads:
            th.join()
        return
    last_tick = tick()
    last_change = time.monotonic()
    while True:
        alive = False
        for th in threads:
            th.join(timeout=_WATCHDOG_POLL)
            if th.is_alive():
                alive = True
        if not alive:
            return
        now = time.monotonic()
        t = tick()
        if t != last_tick:
            last_tick, last_change = t, now
        elif now - last_change >= watchdog_s:
            on_stall()


# ----------------------------------------------------------------------
# dynamic scheduling (shared ready queue)
# ----------------------------------------------------------------------

def run_threaded(fac: NumericFactor, nthreads: int,
                 watchdog_s: Optional[float] = None) -> None:
    """Dependency-driven parallel elimination (shared ready queue).

    A column block becomes *ready* once every contributor is factored.
    Workers pop ready blocks, pull their contributors' updates (ascending,
    so the reduction order — hence the factors — matches the sequential
    run bit-for-bit), factor them, and decrement the dependency counters
    of the blocks they face.

    ``watchdog_s`` (defaulting to ``fac.config.watchdog_timeout``) arms a
    stall detector: if no task completes for that many seconds while
    workers are still alive, :class:`DeadlockError` is raised with a
    pending-counter dump.
    """
    symb = fac.symb
    ncblk = symb.ncblk
    if nthreads <= 1 or ncblk <= 1:
        run_sequential(fac)
        return
    if watchdog_s is None:
        watchdog_s = fac.config.watchdog_timeout
    tr = fac.tracer
    if tr is not None:
        tr.meta.update(engine="threaded-dynamic", threads=nthreads)
    tele = fac.config.telemetry
    if tele is not None:
        tele.gauge("scheduler_threads", engine="dynamic").set_value(nthreads)
    san = fac.sanitizer
    prof = fac.profiler
    _begin_profile(fac, engine="threaded-dynamic", threads=nthreads)

    pending = [len(symb.contributors(t)) for t in range(ncblk)]
    # work items carry (cblk, releasing span id): when a completed task
    # unlocks a dependent, its span id travels with the enqueued item —
    # the cross-thread context propagation of the span profiler
    ready: "queue.Queue[Optional[Tuple[int, Optional[int]]]]" = queue.Queue()
    for t in range(ncblk):
        if pending[t] == 0:
            ready.put((t, None))

    # guards pending/processed/errors/stopped/ticks; tracked when the race
    # sanitizer rides along (ready is a queue.Queue: internally synchronized)
    state: Any = threading.Lock()
    if san is not None:
        state = san.wrap_lock(state, "scheduler.state")
        san.epoch()
    processed = [0]
    ticks = [0]  # watchdog progress counter (bumped on completion & error)
    errors: List[BaseException] = []
    stopped = [False]

    def _shutdown_locked() -> None:
        """Wake every worker with a sentinel exactly once (state held)."""
        if not stopped[0]:
            stopped[0] = True
            for _ in range(nthreads):
                ready.put(None)

    def worker(wid: int) -> None:
        while True:
            item = ready.get()
            if item is None:  # sentinel: shut down
                return
            k, released_by = item
            with state:
                if stopped[0]:  # failure elsewhere: drain, await sentinel
                    continue
            try:
                t_task = time.perf_counter()
                _run_task(fac, k, released_by)
                if tele is not None:
                    # queue depth sampled at completion: the instantaneous
                    # backlog this worker left behind (qsize is advisory
                    # but race-tolerant — it feeds a trend series, not a
                    # correctness decision)
                    tele.counter("scheduler_tasks",
                                 engine="dynamic").inc()
                    tele.counter("scheduler_busy_seconds", engine="dynamic",
                                 worker=str(wid)).inc(
                        time.perf_counter() - t_task)
                    tele.series("scheduler_queue_depth").append(
                        tele.clock(), depth=ready.qsize(), worker=wid)
                newly_ready: List[int] = []
                with state:
                    if san is not None:
                        san.note("scheduler.progress", "write",
                                 site="scheduler.py:worker(dynamic)")
                    processed[0] += 1
                    ticks[0] += 1
                    for t in _targets_of(fac, k):
                        pending[t] -= 1
                        if pending[t] == 0:
                            newly_ready.append(t)
                    if processed[0] == ncblk:
                        _shutdown_locked()
                handoff = (prof.task_span_of(k)
                           if prof is not None else None)
                for t in newly_ready:
                    ready.put((t, handoff))
            except BaseException as exc:
                with state:
                    if san is not None:
                        san.note("scheduler.errors", "write",
                                 site="scheduler.py:worker(dynamic)")
                    errors.append(exc)
                    ticks[0] += 1
                    _shutdown_locked()

    threads = [threading.Thread(target=worker, args=(i,), daemon=True,
                                name=f"repro-dyn-{i}")
               for i in range(nthreads)]
    for th in threads:
        th.start()

    def on_stall() -> None:
        with state:
            _shutdown_locked()
            dump = _pending_dump(fac, pending, processed[0])
        raise DeadlockError(
            f"dynamic scheduler stalled for {watchdog_s:.3g}s:\n{dump}",
            errors)

    _join_with_watchdog(threads, watchdog_s, lambda: ticks[0], on_stall)
    if san is not None:
        san.epoch()  # join is a sync point: teardown reads are not races
        san.check()
    _raise_collected(errors)
    if processed[0] != ncblk:  # pragma: no cover - defensive
        raise DeadlockError(
            "dynamic scheduler exited early:\n"
            + _pending_dump(fac, pending, processed[0]))


# ----------------------------------------------------------------------
# static scheduling (proportional subtree mapping, PaStiX [23])
# ----------------------------------------------------------------------

def proportional_mapping(symb: "SymbolicFactor",
                         nthreads: int) -> List[int]:
    """Map each column block to a thread by proportional subtree splitting.

    The classic static-mapping heuristic of the PaStiX scheduler: walk the
    block elimination tree top-down, splitting the available thread set
    over each node's children proportionally to their subtree costs; once
    a subtree holds a single thread, everything in it belongs to that
    thread.  Nodes visited while several threads are still available (the
    top of the tree) are assigned to the first thread of their set — at
    the top the tree is thin, so the imbalance is small.

    Returns ``owner[k]`` in ``[0, nthreads)`` for every column block.
    """
    parent = symb.block_etree()
    ncblk = symb.ncblk
    children: List[List[int]] = [[] for _ in range(ncblk)]
    roots: List[int] = []
    for k in range(ncblk):
        p = int(parent[k])
        if p < 0:
            roots.append(k)
        else:
            children[p].append(k)

    # subtree cost: dense-equivalent nnz of the column block as work proxy
    cost = [0.0] * ncblk
    for k in range(ncblk):  # cblks are postordered: children before parents
        c = symb.cblks[k]
        local = float(c.ncols) ** 3 / 3.0 + c.nnz() * c.ncols
        cost[k] = local + sum(cost[ch] for ch in children[k])

    owner = [0] * ncblk

    def assign(nodes: List[int], threads: List[int]) -> None:
        """Distribute the thread list over a forest of subtrees."""
        stack = [(nodes, threads)]
        while stack:
            forest, ths = stack.pop()
            if not forest:
                continue
            if len(ths) == 1:
                t = ths[0]
                todo = list(forest)
                while todo:
                    k = todo.pop()
                    owner[k] = t
                    todo.extend(children[k])
                continue
            # split the thread set over the forest proportionally to cost
            total = sum(cost[k] for k in forest) or 1.0
            remaining = list(ths)
            shares = []
            for k in sorted(forest, key=lambda k: -cost[k]):
                want = max(1, round(len(ths) * cost[k] / total))
                take = min(want, max(1, len(remaining) -
                                     (len(forest) - len(shares) - 1)))
                got = remaining[:take] if len(remaining) >= take else \
                    [ths[0]]
                remaining = remaining[take:]
                shares.append((k, got))
            # leftover threads join the largest subtree
            if remaining and shares:
                shares[0] = (shares[0][0], shares[0][1] + remaining)
            for k, got in shares:
                owner[k] = got[0]  # the node itself runs on its first thread
                stack.append((children[k], got))

    assign(roots, list(range(nthreads)))
    return owner


def run_threaded_static(fac: NumericFactor, nthreads: int,
                        watchdog_s: Optional[float] = None) -> None:
    """Static-mapping parallel elimination (PaStiX's scheduler [23]).

    Each thread owns a fixed, index-ordered list of column blocks from the
    proportional mapping.  Before touching a block the thread waits (on a
    condition variable — no timeout polling) until every contributor is
    factored, then pulls their updates in ascending order and factors the
    block, so the reduction order matches the sequential run bit-for-bit.

    Worker failures set a stop flag under the condition and wake every
    waiter; all collected exceptions are surfaced.  ``watchdog_s``
    (defaulting to ``fac.config.watchdog_timeout``) arms the same stall
    detector as :func:`run_threaded`.
    """
    symb = fac.symb
    ncblk = symb.ncblk
    if nthreads <= 1 or ncblk <= 1:
        run_sequential(fac)
        return
    if watchdog_s is None:
        watchdog_s = fac.config.watchdog_timeout
    tr = fac.tracer
    if tr is not None:
        tr.meta.update(engine="threaded-static", threads=nthreads)
    tele = fac.config.telemetry
    if tele is not None:
        tele.gauge("scheduler_threads", engine="static").set_value(nthreads)

    owner = proportional_mapping(symb, nthreads)
    tasks: List[List[int]] = [[] for _ in range(nthreads)]
    for k in range(ncblk):
        tasks[owner[k]].append(k)  # ascending: respects the elimination order

    san = fac.sanitizer
    _begin_profile(fac, engine="threaded-static", threads=nthreads)
    pending = [len(symb.contributors(t)) for t in range(ncblk)]
    cond: Any = threading.Condition()
    if san is not None:
        cond = san.wrap_condition(cond, "scheduler.cond")
        san.epoch()
    processed = [0]
    ticks = [0]
    errors: List[BaseException] = []
    stopped = [False]

    def worker(tid: int) -> None:
        try:
            for k in tasks[tid]:
                with cond:
                    while pending[k] > 0 and not stopped[0]:
                        cond.wait()
                    if stopped[0]:
                        return
                t_task = time.perf_counter()
                _run_task(fac, k)
                if tele is not None:
                    tele.counter("scheduler_tasks",
                                 engine="static").inc()
                    tele.counter("scheduler_busy_seconds", engine="static",
                                 worker=str(tid)).inc(
                        time.perf_counter() - t_task)
                with cond:
                    if san is not None:
                        san.note("scheduler.progress", "write",
                                 site="scheduler.py:worker(static)")
                    processed[0] += 1
                    ticks[0] += 1
                    for t in _targets_of(fac, k):
                        pending[t] -= 1
                    cond.notify_all()
        except BaseException as exc:
            with cond:
                if san is not None:
                    san.note("scheduler.errors", "write",
                             site="scheduler.py:worker(static)")
                errors.append(exc)
                ticks[0] += 1
                stopped[0] = True
                cond.notify_all()

    threads = [threading.Thread(target=worker, args=(tid,), daemon=True,
                                name=f"repro-static-{tid}")
               for tid in range(nthreads)]
    for th in threads:
        th.start()

    def on_stall() -> None:
        with cond:
            stopped[0] = True
            cond.notify_all()
            dump = _pending_dump(fac, pending, processed[0])
        raise DeadlockError(
            f"static scheduler stalled for {watchdog_s:.3g}s:\n{dump}",
            errors)

    _join_with_watchdog(threads, watchdog_s, lambda: ticks[0], on_stall)
    if san is not None:
        san.epoch()  # join is a sync point: teardown reads are not races
        san.check()
    _raise_collected(errors)
    if processed[0] != ncblk:  # pragma: no cover - defensive
        raise DeadlockError(
            "static scheduler exited early:\n"
            + _pending_dump(fac, pending, processed[0]))
