"""Composable BLR variant policies (the Higham–Mary variant space).

The paper exposes two compression strategies — Minimal Memory and
Just-In-Time — but they are only two points in the larger space the BLR
stability literature enumerates: a *loop order* (when each block is
compressed relative to the update / factor steps), a *threshold mode*
(what norm the truncation tolerance is measured against, the
``betatype`` axis), and an *intermediate recompression* toggle.  This
module makes the three axes explicit and orthogonal:

**Loop orders** (right-looking, per column block ``k``):

``cuf``  Compress-Update-Factor: candidates are compressed directly from
         their assembled sparse entries, before any update touches them;
         trailing updates run in low-rank arithmetic (LR2LR).  This is
         exactly the paper's *Minimal Memory* strategy — the dense factor
         structure never exists.
``ucf``  Update-Compress-Factor: panels accumulate every incoming update
         dense, are compressed once fully updated, and the panel solve
         then runs on the compressed ``v`` factors.  This is the paper's
         *Just-In-Time* strategy (Algorithm 2: the diagonal factorization
         and the compression commute — both read disjoint storage).
``ufc``  Update-Factor-Compress: the panel solve runs dense and the
         *solved* panels are compressed, so outgoing updates still run in
         low-rank form but the triangular solves keep full accuracy.
``fuc``  Factor-Update-Compress: compression is deferred until every
         outgoing update of the column block has been applied (dense,
         full-accuracy GEMM updates); compression is entirely off the
         critical path and only reduces the *stored* factor.

**Threshold modes** (``betatype``): the truncation rule of every kernel
is ``||A - Â||_F <= tol_eff * max(||A||_F, norm_ref)``.  The four modes
select ``(tol_eff, norm_ref)``:

=================  ===========================  =========================
mode               tol_eff                      norm_ref
=================  ===========================  =========================
``local``          τ                            — (block norm only)
``local-scaled``   τ / p                        —
``global``         τ                            ``||A||_F`` (global)
``global-scaled``  τ / p                        ``||A||_F``
=================  ===========================  =========================

with ``p`` the number of column blocks.  ``local`` is the paper's rule
(and the bit-identical default); the scaled modes divide τ by ``p`` so
the *global* backward error stays at τ-level when per-block errors
accumulate, per the BLR error analysis; the global modes measure the
tail against the whole matrix instead of the block, which lets blocks
that are small relative to ``||A||`` truncate harder.

**Recompression toggle**: with ``recompress=False`` the T core of a
LR·LR product (eqs. 1–4) is not recompressed — the product keeps rank
``min(rA, rB)``.  Structural extend-add recompression (LR2LR) is always
on; the toggle only affects the intermediate product.

The legacy strategy names remain first-class aliases —
``minimal-memory`` ≡ ``cuf``, ``just-in-time`` ≡ ``ucf`` — and resolve
through :func:`resolve_variant`; their float64 factorizations are pinned
bit-identical to the pre-variant engine.  (The issue text glosses the
mapping as MM≈UCF / JIT≈UFC; operationally Minimal Memory compresses
*before* any update reaches the block and Just-In-Time compresses *after
the updates, before the solve*, which by the letter ordering is CUF and
UCF — the mapping implemented and documented in ``docs/variants.md``.)

:class:`AdaptivePolicy` picks compress-early (``cuf``) vs compress-late
(``ucf``) vs ``dense`` *per supernode*, from a probe compression of the
assembled candidate blocks and, when available, per-level rank history
of a previous factorization of the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.config import SolverConfig
    from repro.core.factor import NumericFactor

__all__ = [
    "ORDERS",
    "ORDER_LADDER",
    "THRESHOLD_MODES",
    "AdaptivePolicy",
    "BlrVariant",
    "VariantDecision",
    "history_from_factor",
    "resolve_variant",
]

#: the four update/factor/compress loop orders
ORDERS = ("cuf", "ucf", "ufc", "fuc")

#: the four truncation-threshold modes (the ``betatype`` axis)
THRESHOLD_MODES = ("local", "local-scaled", "global", "global-scaled")

#: legacy strategy aliases → loop order (``adaptive`` compresses late by
#: default; its per-supernode decisions override the order)
ALIAS_ORDERS: Dict[str, str] = {
    "minimal-memory": "cuf",
    "just-in-time": "ucf",
    "adaptive": "ucf",
}

#: escalation ladder through the variant space: each rung compresses
#: *later* (hence denser intermediates, better stability) than the one
#: before; after ``fuc`` the only rung left is the dense strategy
ORDER_LADDER: Dict[str, Optional[str]] = {
    "cuf": "ucf",
    "ucf": "ufc",
    "ufc": "fuc",
    "fuc": None,
}


@dataclass(frozen=True)
class BlrVariant:
    """One point of the variant space: the three orthogonal axes."""

    order: str = "ucf"
    threshold_mode: str = "local"
    recompress: bool = True

    def __post_init__(self) -> None:
        if self.order not in ORDERS:
            raise ValueError(
                f"loop order must be one of {ORDERS}, got {self.order!r}")
        if self.threshold_mode not in THRESHOLD_MODES:
            raise ValueError(
                f"threshold_mode must be one of {THRESHOLD_MODES}, got "
                f"{self.threshold_mode!r}")

    # -- loop-order predicates (one compression point per order) ---------
    @property
    def compress_at_assembly(self) -> bool:
        """``cuf``: compress candidates from their assembled entries."""
        return self.order == "cuf"

    @property
    def compress_before_solve(self) -> bool:
        """``ucf``: compress the updated panels before the panel solve."""
        return self.order == "ucf"

    @property
    def compress_after_solve(self) -> bool:
        """``ufc``: compress the solved panels before outgoing updates."""
        return self.order == "ufc"

    @property
    def compress_after_updates(self) -> bool:
        """``fuc``: compress once every outgoing update has been applied."""
        return self.order == "fuc"

    def with_order(self, order: str) -> "BlrVariant":
        """The same thresholds/recompression with a different loop order."""
        return replace(self, order=order)

    # -- threshold computation -------------------------------------------
    def compress_scale(self, tolerance: float, ncblk: int,
                       global_norm: float
                       ) -> Tuple[float, Optional[float]]:
        """The ``(tol_eff, norm_ref)`` pair of this threshold mode.

        Every compression kernel truncates at
        ``tol_eff * max(||block||_F, norm_ref)``; ``norm_ref=None`` keeps
        the purely block-local rule (bit-identical to the pre-variant
        engine for ``local``).
        """
        tol_eff = tolerance
        if self.threshold_mode in ("local-scaled", "global-scaled"):
            tol_eff = tolerance / max(ncblk, 1)
        norm_ref: Optional[float] = None
        if self.threshold_mode in ("global", "global-scaled"):
            norm_ref = float(global_norm)
        return tol_eff, norm_ref


def resolve_variant(config: "SolverConfig") -> Optional[BlrVariant]:
    """The :class:`BlrVariant` a configuration runs under.

    ``None`` for the ``dense`` strategy (no compression axis at all).
    An explicit ``config.variant`` wins over the alias order of
    ``config.strategy``; ``adaptive`` resolves to its compress-late base
    order (per-supernode decisions then override it block by block).
    """
    if config.strategy == "dense":
        return None
    order = config.variant or ALIAS_ORDERS[config.strategy]
    return BlrVariant(order=order,
                      threshold_mode=config.threshold_mode,
                      recompress=config.recompress_updates)


# ----------------------------------------------------------------------
# adaptive per-supernode strategy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VariantDecision:
    """One per-supernode adaptive decision (surfaced in the RunReport)."""

    cblk: int
    order: str  # "cuf" | "ucf" | "dense"
    reason: str
    ratio: Optional[float] = None

    @property
    def compress_early(self) -> bool:
        """Compress this supernode at assembly (compress-early orders)."""
        return self.order == "cuf"

    def as_dict(self) -> Dict[str, Any]:
        return {"cblk": self.cblk, "order": self.order,
                "reason": self.reason, "ratio": self.ratio}


@dataclass(frozen=True)
class AdaptivePolicy:
    """Per-supernode strategy selection (``strategy="adaptive"``).

    At assembly each supernode's largest candidate blocks are *probe
    compressed*; the mean achieved storage ratio ``(m + n) r / (m n)``
    decides the supernode's loop order:

    * ratio ≤ :attr:`compress_early_ratio` — compress-early (``cuf``):
      the block is so compressible that low-rank extend-adds stay cheap
      and the dense panel never needs to exist;
    * ratio ≤ :attr:`dense_ratio` — compress-late (``ucf``), the
      Just-In-Time behaviour;
    * above — ``dense``: compression does not pay, skip the attempts.

    When :attr:`use_history` is set and the solver has per-level rank
    statistics from a previous factorization of the same structure
    (:func:`history_from_factor` — e.g. after ``update_values``), the
    level's history replaces the probe: a level whose candidate blocks
    mostly stayed dense goes ``dense``, a level with tiny achieved
    ratios goes ``cuf``, anything else ``ucf``.
    """

    #: probe/history storage ratio at or below which the supernode
    #: compresses at assembly (``cuf``)
    compress_early_ratio: float = 0.15
    #: probe/history storage ratio above which the supernode stays dense
    dense_ratio: float = 0.85
    #: history dense fraction above which the level's supernodes stay dense
    dense_fraction: float = 0.5
    #: number of (largest) candidate blocks probed per supernode
    probe_blocks: int = 2
    #: consult per-level history of a previous run when available
    use_history: bool = True

    def __post_init__(self) -> None:
        if not (0.0 <= self.compress_early_ratio <= 1.0):
            raise ValueError("compress_early_ratio must be in [0, 1]")
        if not (0.0 < self.dense_ratio <= 1.0):
            raise ValueError("dense_ratio must be in (0, 1]")
        if self.compress_early_ratio > self.dense_ratio:
            raise ValueError(
                "compress_early_ratio must not exceed dense_ratio")
        if not (0.0 <= self.dense_fraction <= 1.0):
            raise ValueError("dense_fraction must be in [0, 1]")
        if self.probe_blocks < 1:
            raise ValueError("probe_blocks must be >= 1")

    def decide(self, cblk: int, probe_ratio: Optional[float],
               history: Optional[Dict[str, float]] = None
               ) -> VariantDecision:
        """Classify one supernode from its probe ratio / level history."""
        if self.use_history and history is not None:
            if history.get("dense_fraction", 0.0) > self.dense_fraction:
                return VariantDecision(cblk, "dense", "history-dense",
                                       history.get("ratio"))
            ratio = history.get("ratio")
            if ratio is not None and ratio <= self.compress_early_ratio:
                return VariantDecision(cblk, "cuf", "history-early", ratio)
            return VariantDecision(cblk, "ucf", "history-late", ratio)
        if probe_ratio is None:
            return VariantDecision(cblk, "dense", "no-candidates")
        if probe_ratio <= self.compress_early_ratio:
            return VariantDecision(cblk, "cuf", "probe-early", probe_ratio)
        if probe_ratio <= self.dense_ratio:
            return VariantDecision(cblk, "ucf", "probe-late", probe_ratio)
        return VariantDecision(cblk, "dense", "probe-dense", probe_ratio)


def history_from_factor(fac: "NumericFactor") -> Dict[int, Dict[str, float]]:
    """Per-level compression statistics of a completed factorization.

    Returns ``{level: {"ratio": mean storage ratio of the level's
    low-rank candidate blocks, "dense_fraction": fraction of candidates
    that ended up dense}}`` — the history :class:`AdaptivePolicy`
    consults on a refactorization of the same structure.
    """
    from repro.analysis.metrics import cblk_levels
    from repro.lowrank.block import LowRankBlock

    levels = cblk_levels(fac)
    ratios: Dict[int, List[float]] = {}
    dense: Dict[int, List[int]] = {}
    for k, nc in enumerate(fac.cblks):
        lvl = int(levels[k])
        for i, b in enumerate(nc.sym.off_blocks()):
            if not b.lr_candidate:
                continue
            m, n = b.nrows, nc.width
            blk = None if nc.lblocks is None else nc.lblocks[i]
            if isinstance(blk, LowRankBlock):
                ratio = ((m + n) * max(blk.rank, 1) / (m * n)
                         if m and n else 1.0)
                ratios.setdefault(lvl, []).append(ratio)
                dense.setdefault(lvl, []).append(0)
            else:  # dense block, or a column still in panel mode
                ratios.setdefault(lvl, []).append(1.0)
                dense.setdefault(lvl, []).append(1)
    out: Dict[int, Dict[str, float]] = {}
    for lvl, rr in ratios.items():
        dd = dense[lvl]
        out[lvl] = {"ratio": float(sum(rr) / len(rr)),
                    "dense_fraction": float(sum(dd) / len(dd))}
    return out
