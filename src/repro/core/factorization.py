"""Right-looking supernodal factorization drivers (Algorithms 1 and 2).

Per column block ``k`` the elimination performs the paper's three steps:

1. factorize the dense diagonal block (``getrf`` without pivoting /
   ``potrf``);
2. solve the off-diagonal panels against it — in Just-In-Time mode the
   panels are compressed *first* (Algorithm 2 lines 3–4), so the solves run
   on the ``v`` factors;
3. apply the update ``A(i),(j) -= L(i),k · U k,(j)`` for every pair of
   off-diagonal blocks — dense GEMM, ``LR2GE`` or ``LR2LR`` depending on
   strategy and block storage.

The Dense strategy keeps column blocks in panel mode, which lets step 3 run
one batched GEMM per facing block ``(j)`` covering all ``(i)`` at once
(PaStiX's stacked-panel trick); the BLR strategies dispatch per block pair
through :mod:`repro.lowrank.kernels`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:
    from repro.runtime.trace import TaskTracer

import numpy as np

from repro.core.dense_kernels import (
    block_all_finite,
    flop_scale,
    gemm_flops,
    getrf_flops,
    ldlt_flops,
    potrf_flops,
    trsm_flops,
)
from repro.core.backend import PivotError
from repro.core.factor import Block, NumericColumnBlock, NumericFactor
from repro.runtime.recovery import NumericalBreakdown
from repro.lowrank.block import LowRankBlock
from repro.lowrank.kernels import (
    compress_block,
    lr2ge_update,
    lr2lr_update,
    lr2lr_update_multi,
    lr_product,
    rank_cap,
)
from repro.runtime.memory import array_nbytes
from repro.runtime.spans import LINK_FOLLOWS


# ----------------------------------------------------------------------
# per-column-block elimination (steps 1 + 2)
# ----------------------------------------------------------------------

def factor_column_block(fac: NumericFactor, k: int) -> None:
    """Factor the diagonal block of column block ``k`` and solve its panels.

    When the factor carries a tracer (``fac.tracer``) one ``"factor"``
    event is recorded per call; when it carries a fault injector
    (``fac.faults``) the injector's factor-site hooks fire first (and may
    raise, stall, or poison the panels — that is their job).
    """
    if fac.faults is not None:
        fac.faults.on_factor(fac, k)
    if fac.recovery is not None:
        _breakdown_check_input(fac, k)
    tracer = fac.tracer
    _trace_t0 = tracer.clock() if tracer is not None else 0.0
    prof = fac.profiler
    _sid = (prof.start("factor", cblk=k, factotype=fac.config.factotype)
            if prof is not None else None)
    try:
        _factor_column_block_body(fac, k, tracer, _trace_t0)
    finally:
        if prof is not None:
            prof.end(_sid)


def _factor_column_block_body(fac: NumericFactor, k: int,
                              tracer: Optional["TaskTracer"],
                              _trace_t0: float) -> None:
    cfg = fac.config
    nc = fac.cblks[k]
    stats = fac.stats.kernels
    w = nc.width

    # --- step 1: diagonal block factorization ---------------------------
    be = fac.backend
    t0 = time.perf_counter()
    if cfg.factotype == "lu":
        lu, nperturbed = be.getrf(nc.diag, cfg.pivot_threshold)
        nc.diag[...] = lu
        fl = getrf_flops(w)
    elif cfg.factotype == "cholesky":
        l_mat, nperturbed = be.potrf(nc.diag, cfg.pivot_threshold)
        nc.diag[...] = 0.0
        nc.diag[np.tril_indices(w)] = l_mat[np.tril_indices(w)]
        fl = potrf_flops(w)
    elif cfg.factotype == "ldlt":
        if cfg.pivoting == "threshold":
            nperturbed = _ldlt_pivot_diag(fac, nc, k)
        else:
            packed, nperturbed = be.ldlt(nc.diag, cfg.pivot_threshold)
            # unit-lower L below, D on diagonal
            nc.diag[...] = np.tril(packed)
        fl = ldlt_flops(w)
    else:  # pragma: no cover - guarded by SolverConfig validation
        raise NotImplementedError(
            f"factotype {cfg.factotype!r} is not implemented yet")
    fac.add_perturbed(nperturbed)
    stats.add("block_facto", seconds=time.perf_counter() - t0,
              flops=fl * flop_scale(fac.dtype))
    rec = fac.recovery
    if rec is not None:
        if not block_all_finite(nc.diag):
            rec.record("breakdown", site="factor", cblk=k,
                       cause="nan-factor")
            raise NumericalBreakdown(
                "nan-factor", cblk=k, site="factor",
                detail="diagonal factorization produced non-finite entries")
        budget = rec.policy.pivot_budget
        # the budget polices *unsanctioned* perturbations; once the
        # escalation ladder (or the user) explicitly enables the
        # delayed-pivot fallback, its perturbations are the last resort
        # and charging them would make that rung unreachable
        sanctioned = cfg.pivoting == "threshold" and cfg.pivot_fallback
        if budget is not None and not sanctioned and nperturbed > budget * w:
            rec.record("breakdown", site="factor", cblk=k,
                       cause="pivot-budget", nperturbed=nperturbed)
            raise NumericalBreakdown(
                "pivot-budget", cblk=k, site="factor",
                detail=f"{nperturbed}/{w} pivots perturbed exceeds "
                       f"budget {budget}")

    # --- variant dispatch: compression points around the panel solve -----
    # ``ucf`` (the Just-In-Time alias) compresses the fully-updated panels
    # before the solve (Algorithm 2 lines 3-4); ``ufc`` solves dense and
    # compresses the solved panels, so outgoing updates still run low-rank
    # but the triangular solves keep full accuracy.  ``cuf`` compressed at
    # assembly and ``fuc`` defers to finalize_updates_from.
    v = fac.variant_for(k)
    if v is not None and v.compress_before_solve:
        _compress_panels(fac, nc)

    # --- step 2: panel solves --------------------------------------------
    _panel_solve(fac, nc)
    if v is not None and v.compress_after_solve:
        if tracer is not None:
            # close the factor event before the ufc post-panel compression:
            # events on one thread must not overlap, so the compression is
            # traced as its own "compress" event (own Gantt color/legend)
            tracer.record("factor", k, _trace_t0, tag=cfg.factotype)
            _trace_t0 = tracer.clock()
        _compress_panels(fac, nc)
        nc.factored = True
        if tracer is not None:
            tracer.record("compress", k, _trace_t0, tag="ufc")
    else:
        nc.factored = True
        if tracer is not None:
            tracer.record("factor", k, _trace_t0, tag=cfg.factotype)


def _first_nonfinite(nc: NumericColumnBlock) -> Optional[str]:
    """Name of the first storage piece of ``nc`` holding NaN/Inf, or None."""
    if not block_all_finite(nc.diag):
        return "diag"
    if nc.panel_mode:
        if not block_all_finite(nc.lpanel):
            return "lpanel"
        if nc.upanel is not None and not block_all_finite(nc.upanel):
            return "upanel"
        return None
    for side, blocks in (("l", nc.lblocks), ("u", nc.ublocks)):
        if blocks is None:
            continue
        for i, b in enumerate(blocks):
            if isinstance(b, LowRankBlock):
                if not (block_all_finite(b.u) and block_all_finite(b.v)):
                    return f"{side}blocks[{i}]"
            elif not block_all_finite(b):
                return f"{side}blocks[{i}]"
    return None


def _breakdown_check_input(fac: NumericFactor, k: int) -> None:
    """Pre-factor NaN/Inf sentinel: raise a structured breakdown instead of
    letting a poisoned panel silently contaminate the whole trailing
    matrix.  Only called when a recovery state is armed."""
    bad = _first_nonfinite(fac.cblks[k])
    if bad is not None:
        rec = fac.recovery
        if rec is not None:
            rec.record("breakdown", site="factor", cblk=k,
                       cause="nan-input", where=bad)
        raise NumericalBreakdown(
            "nan-input", cblk=k, site="factor",
            detail=f"non-finite entries in {bad} before factorization")


def _ldlt_pivot_diag(fac: NumericFactor, nc: NumericColumnBlock,
                     k: int) -> int:
    """Threshold (Bunch–Kaufman style) pivoted LDLᵀ of the diagonal block.

    Stores the packed factor on ``nc.diag``, the within-block permutation
    on ``nc.pivperm`` (``None`` when it collapses to identity) and the
    2×2 subdiagonal of D on ``nc.pivd21`` (``None`` when every pivot is
    1×1).  Returns the static-perturbation count — nonzero only in
    delayed-pivot fallback mode — so the caller's existing pivot-budget
    check keeps working.  Kernel pivot failures surface as structured
    :class:`NumericalBreakdown` events carrying the kernel's cause
    (``pivot-failure`` / ``pivot-growth``) for the recovery ladder.
    """
    cfg = fac.config
    be = fac.backend
    try:
        packed, perm, d21, pstats = be.ldlt_pivot(
            nc.diag, cfg.pivot_u, cfg.pivot_growth_limit,
            cfg.pivot_fallback, cfg.pivot_threshold)
    except PivotError as exc:
        rec = fac.recovery
        if rec is not None:
            rec.record("breakdown", site="factor", cblk=k,
                       cause=exc.kind, column=exc.col)
        raise NumericalBreakdown(
            exc.kind, cblk=k, site="factor", detail=str(exc)) from exc
    nc.diag[...] = np.tril(packed)
    nc.pivperm = (None if np.array_equal(perm, np.arange(nc.width))
                  else perm)
    nc.pivd21 = d21 if int(pstats["n2x2"]) else None
    fac.add_pivot_stats(pstats)
    tele = cfg.telemetry
    if tele is not None:
        tele.record_pivoting(k, swaps=int(pstats["swaps"]),
                             two_by_two=int(pstats["n2x2"]),
                             perturbations=int(pstats["perturbed"]),
                             growth=float(pstats["growth"]))
    return int(pstats["perturbed"])


def ldlt_d_solve_cols(x: np.ndarray, d: np.ndarray,
                      d21: Optional[np.ndarray],
                      hermitian: bool = False) -> np.ndarray:
    """``x @ D⁻¹`` for the block-diagonal D of a pivoted LDLᵀ.

    ``d`` holds the diagonal of D, ``d21`` the subdiagonal entries of the
    2×2 pivot blocks (``d21[j] = D[j+1, j]``, zero elsewhere, ``None``
    when every pivot is 1×1 — then this is exactly the legacy ``x / d``).
    Each 2×2 block is inverted explicitly via its determinant; Hermitian
    factorizations use ``D[j, j+1] = conj(D[j+1, j])``.
    """
    if d21 is None:
        return x / d
    idx = np.flatnonzero(d21)
    de = d.copy()
    de[idx] = 1.0
    de[idx + 1] = 1.0
    out = x / de
    for j in idx:
        dl = d21[j]
        du = np.conj(dl) if hermitian else dl
        d1, d2 = d[j], d[j + 1]
        det = d1 * d2 - du * dl
        x1 = x[:, j]
        x2 = x[:, j + 1]
        out[:, j] = (x1 * d2 - x2 * dl) / det
        out[:, j + 1] = (x2 * d1 - x1 * du) / det
    return out


def ldlt_d_solve_rows(x: np.ndarray, d: np.ndarray,
                      d21: Optional[np.ndarray],
                      hermitian: bool = False) -> np.ndarray:
    """``D⁻¹ @ x`` for the block-diagonal D of a pivoted LDLᵀ.

    Row-wise sibling of :func:`ldlt_d_solve_cols` (used on low-rank ``v``
    factors and the trisolve diagonal stage, where D applies to rows).
    Hermitian factorizations conjugate the 2×2 superdiagonal
    (``D[j, j+1] = conj(D[j+1, j])`` — D is its own adjoint).
    """
    if d21 is None:
        return x / d[:, None]
    idx = np.flatnonzero(d21)
    de = d.copy()
    de[idx] = 1.0
    de[idx + 1] = 1.0
    out = x / de[:, None]
    for j in idx:
        dl = d21[j]
        du = np.conj(dl) if hermitian else dl
        d1, d2 = d[j], d[j + 1]
        det = d1 * d2 - du * dl
        x1 = x[j]
        x2 = x[j + 1]
        out[j] = (x1 * d2 - x2 * du) / det
        out[j + 1] = (x2 * d1 - x1 * dl) / det
    return out


def ldlt_d_mul_cols(x: np.ndarray, d: np.ndarray,
                    d21: Optional[np.ndarray],
                    hermitian: bool = False) -> np.ndarray:
    """``x @ D`` for the block-diagonal D of a pivoted LDLᵀ (the ``L D``
    operand of the trailing updates).  ``d21 is None`` reduces to the
    legacy ``x * d`` column scaling; Hermitian factorizations conjugate
    the 2×2 superdiagonal (``D[j, j+1] = conj(D[j+1, j])``)."""
    if d21 is None:
        return x * d
    out = x * d
    for j in np.flatnonzero(d21):
        dl = d21[j]
        du = np.conj(dl) if hermitian else dl
        out[:, j] = out[:, j] + x[:, j + 1] * dl
        out[:, j + 1] = out[:, j + 1] + x[:, j] * du
    return out


def finalize_updates_from(fac: NumericFactor, k: int) -> None:
    """FUC compression point: compress column block ``k`` once every one
    of its outgoing updates has been consumed (pushed by the sequential
    sweep or pulled by the last facing target).

    No-op for every other loop order — the engines call this
    unconditionally and the variant decides.

    One ``"finalize"`` trace event is recorded when it fires.  The span
    profiler parents the finalize span on the task of the **greatest
    facing target** — the last puller in the canonical ascending fan-in
    order, i.e. the task that physically runs it in the sequential sweep —
    so threaded runs (where the *temporal* last puller is whichever thread
    got there last) record the same causal edge."""
    v = fac.variant_for(k)
    if v is None or not v.compress_after_updates:
        return
    tracer = fac.tracer
    _trace_t0 = tracer.clock() if tracer is not None else 0.0
    prof = fac.profiler
    _sid = None
    if prof is not None:
        targets = {b.facing for b in fac.cblks[k].sym.off_blocks()}
        parent = prof.task_span_of(max(targets)) if targets else None
        if parent is not None:
            _sid = prof.start("finalize", parent=parent,
                              link=LINK_FOLLOWS, cblk=k)
        else:
            _sid = prof.start("finalize", cblk=k)
    try:
        _compress_panels(fac, fac.cblks[k])
    finally:
        if prof is not None:
            prof.end(_sid)
        if tracer is not None:
            tracer.record("finalize", k, _trace_t0, tag="fuc")


def _compress_panels(fac: NumericFactor, nc: NumericColumnBlock) -> None:
    """Compress fully-updated dense panels into per-block storage
    (Algorithm 2 lines 3-4 for ``ucf``; also the ``ufc``/``fuc``
    compression point, where the panels are additionally solved).

    A compression-site fault (or policy-forbidden kernel failure) keeps the
    whole panel dense via :meth:`NumericFactor.convert_to_blocks` when the
    recovery policy allows the per-block dense fallback."""
    if not nc.panel_mode:
        return
    if fac.faults is not None:
        try:
            fac.faults.on_compress(fac, nc.sym.id)
        except Exception as exc:
            rec = fac.recovery
            if rec is None or not rec.policy.dense_fallback:
                raise
            rec.record("dense_fallback", site="compress", cblk=nc.sym.id,
                       error=type(exc).__name__)
            fac.convert_to_blocks(nc)
            return
    prof = fac.profiler
    _sid = (prof.start("compress", cblk=nc.sym.id, kernel=fac.config.kernel)
            if prof is not None else None)
    try:
        _compress_panels_body(fac, nc)
    finally:
        if prof is not None:
            prof.end(_sid)


def _compress_panels_body(fac: NumericFactor,
                          nc: NumericColumnBlock) -> None:
    cfg = fac.config
    stats = fac.stats.kernels
    lblocks: list = []
    ublocks: Optional[list] = [] if nc.upanel is not None else None
    new_bytes = 0
    for i, b in enumerate(nc.sym.off_blocks()):
        lo, hi = nc.row_offsets[i], nc.row_offsets[i + 1]
        cap = rank_cap(b.nrows, nc.width, cfg.rank_ratio)
        for side, panel, out in (("l", nc.lpanel, lblocks),
                                 ("u", nc.upanel, ublocks)):
            if out is None:
                continue
            chunk = panel[lo:hi]
            lr = None
            if b.lr_candidate:
                lr = compress_block(chunk, fac.comp_tol, cfg.kernel,
                                    max_rank=cap, stats=stats,
                                    norm_ref=fac.comp_norm_ref)
            if lr is not None:
                if fac.storage_dtype is not None:
                    lr = lr.astype(fac.storage_dtype)
                out.append(lr)
                new_bytes += lr.nbytes
            else:
                owned = np.ascontiguousarray(chunk)
                if fac.storage_dtype is not None:
                    owned = owned.astype(fac.storage_dtype)
                out.append(owned)
                new_bytes += array_nbytes(owned)
    old_bytes = array_nbytes(nc.lpanel)
    if nc.upanel is not None:
        old_bytes += array_nbytes(nc.upanel)
    fac.tracker.resize(old_bytes, new_bytes)
    nc.lpanel = None
    nc.upanel = None
    nc.lblocks = lblocks
    nc.ublocks = ublocks


def _panel_solve(fac: NumericFactor, nc: NumericColumnBlock) -> None:
    """Solve every off-diagonal block against the factored diagonal.

    Complex Cholesky/LDLᴴ diagonals are Hermitian: the low-rank ``v``
    factors solve against ``conj(L00)``, done as conjugate / solve /
    conjugate back (a no-copy pass-through for real factors).
    """
    cfg = fac.config
    be = fac.backend
    stats = fac.stats.kernels
    w = nc.width
    t0 = time.perf_counter()
    fl = 0.0
    if fac.storage_dtype is not None:
        def store(arr: np.ndarray) -> np.ndarray:
            # solve results promote to the compute dtype; narrow them back
            return arr.astype(fac.storage_dtype)
    else:
        def store(arr: np.ndarray) -> np.ndarray:
            return arr
    if cfg.factotype == "lu":
        u00 = np.triu(nc.diag)
        l00 = nc.diag  # unit-lower part read in place by the solvers
        if nc.panel_mode:
            if nc.offrows:
                nc.lpanel[...] = be.trsm(u00, nc.lpanel, side="right",
                                         lower=False)
                nc.upanel[...] = be.trsm(l00, nc.upanel, side="right",
                                         lower=True, trans="T",
                                         unit_diagonal=True)
                fl += 2 * trsm_flops(w, nc.offrows)
        else:
            for i in range(nc.sym.noff):
                lb = nc.lblocks[i]
                if isinstance(lb, LowRankBlock):
                    if lb.rank:
                        lb.v[...] = be.trsm(u00, lb.v, lower=False,
                                            trans="T")
                    fl += trsm_flops(w, lb.rank)
                else:
                    nc.lblocks[i] = store(be.trsm(u00, lb, side="right",
                                                  lower=False))
                    fl += trsm_flops(w, lb.shape[0])
                ub = nc.ublocks[i]
                if isinstance(ub, LowRankBlock):
                    if ub.rank:
                        # Uᵗ(i),k = u (L00⁻¹ v)ᵗ: forward substitution on v
                        ub.v[...] = be.trsm(l00, ub.v, lower=True,
                                            unit_diagonal=True)
                    fl += trsm_flops(w, ub.rank)
                else:
                    nc.ublocks[i] = store(be.trsm(l00, ub, side="right",
                                                  lower=True, trans="T",
                                                  unit_diagonal=True))
                    fl += trsm_flops(w, ub.shape[0])
    elif cfg.factotype == "cholesky":
        l00 = nc.diag
        hermitian = np.asarray(nc.diag).dtype.kind == "c"
        trans_right = "C" if hermitian else "T"
        if nc.panel_mode:
            if nc.offrows:
                nc.lpanel[...] = be.trsm(l00, nc.lpanel, side="right",
                                         lower=True, trans=trans_right)
                fl += trsm_flops(w, nc.offrows)
        else:
            for i in range(nc.sym.noff):
                lb = nc.lblocks[i]
                if isinstance(lb, LowRankBlock):
                    if lb.rank:
                        # L(i) Lᴴ00 = Â: with Â = u vᵀ the v factor solves
                        # conj(L00) vᵀ... — equivalently v ← (L00⁻ᴴ vᴴ)ᴴ,
                        # which for real factors is the plain "T" solve
                        if hermitian:
                            lb.v[...] = be.trsm(l00, lb.v.conj(),
                                                lower=True).conj()
                        else:
                            lb.v[...] = be.trsm(l00, lb.v, lower=True)
                    fl += trsm_flops(w, lb.rank)
                else:
                    nc.lblocks[i] = store(be.trsm(l00, lb, side="right",
                                                  lower=True,
                                                  trans=trans_right))
                    fl += trsm_flops(w, lb.shape[0])
    else:  # ldlt: L(i) = A(i) Pᵀ L00⁻ᴴ D⁻¹ (⁻ᵗ for real factors; P = I
        # without threshold pivoting, so the legacy path is untouched)
        l00 = nc.diag
        hermitian = np.asarray(nc.diag).dtype.kind == "c"
        d = np.diag(nc.diag)
        if hermitian:
            d = d.real  # D is real for Hermitian LDLᴴ
        trans_right = "C" if hermitian else "T"
        perm = nc.pivperm
        d21 = nc.pivd21
        if nc.panel_mode:
            if nc.offrows:
                panel = nc.lpanel if perm is None else nc.lpanel[:, perm]
                nc.lpanel[...] = ldlt_d_solve_cols(
                    be.trsm(l00, panel, side="right", lower=True,
                            trans=trans_right, unit_diagonal=True),
                    d, d21, hermitian)
                fl += trsm_flops(w, nc.offrows)
        else:
            for i in range(nc.sym.noff):
                lb = nc.lblocks[i]
                if isinstance(lb, LowRankBlock):
                    if lb.rank:
                        # A(i) Pᵀ = u (P v)ᵀ: the permutation lands on the
                        # rows of the v factor before the solve
                        vv = lb.v if perm is None else lb.v[perm]
                        if hermitian:
                            lb.v[...] = ldlt_d_solve_rows(
                                be.trsm(l00, vv.conj(), lower=True,
                                        unit_diagonal=True),
                                d, d21, hermitian).conj()
                        else:
                            lb.v[...] = ldlt_d_solve_rows(
                                be.trsm(l00, vv, lower=True,
                                        unit_diagonal=True),
                                d, d21, hermitian)
                    fl += trsm_flops(w, lb.rank)
                else:
                    blk = lb if perm is None else lb[:, perm]
                    nc.lblocks[i] = store(ldlt_d_solve_cols(
                        be.trsm(l00, blk, side="right", lower=True,
                                trans=trans_right, unit_diagonal=True),
                        d, d21, hermitian))
                    fl += trsm_flops(w, lb.shape[0])
    stats.add("panel_solve", seconds=time.perf_counter() - t0,
              flops=fl * flop_scale(fac.dtype))


# ----------------------------------------------------------------------
# step 3: right-looking updates
# ----------------------------------------------------------------------

def apply_updates_from(fac: NumericFactor, k: int,
                       target: Optional[int] = None,
                       lock: Optional[Callable[[int], Any]] = None) -> None:
    """Apply all updates of source column block ``k`` (optionally only those
    aimed at column block ``target``).  ``lock`` guards the target mutation
    sections when given (the pull-mode threaded engines don't need one —
    each target is mutated by a single task; the parameter remains for
    push-style callers).

    One ``"update"`` trace event is recorded per call (``target=-1`` for a
    full right-looking push); fault-injector update hooks fire first.
    """
    if fac.faults is not None:
        fac.faults.on_update(fac, k, target)
    nc = fac.cblks[k]
    sym = nc.sym
    if sym.noff == 0:
        return
    tracer = fac.tracer
    _trace_t0 = tracer.clock() if tracer is not None else 0.0
    prof = fac.profiler
    _sid = (prof.start("update", cblk=k,
                       target=-1 if target is None else target,
                       mode="panel" if nc.panel_mode else "blocks")
            if prof is not None else None)
    try:
        if nc.panel_mode:
            _updates_from_panel(fac, nc, target, lock)
        else:
            _updates_from_blocks(fac, nc, target, lock)
    finally:
        if prof is not None:
            prof.end(_sid)
    if tracer is not None:
        tracer.record("update", k, _trace_t0,
                      target=-1 if target is None else target,
                      tag="panel" if nc.panel_mode else "blocks")


def _updates_from_panel(fac: NumericFactor, nc: NumericColumnBlock,
                        target: Optional[int],
                        lock: Optional[Callable[[int], Any]]) -> None:
    """Batched dense updates: one GEMM per facing block ``(j)``.

    Hermitian factorizations (complex Cholesky/LDLᴴ) conjugate the
    transposed operand: the trailing update is ``A(i,j) -= L(i) L(j)ᴴ``.
    """
    stats = fac.stats.kernels
    sym = nc.sym
    offs = nc.row_offsets
    is_lu = nc.upanel is not None
    d_scale = (np.diag(nc.diag)
               if fac.config.factotype == "ldlt" else None)
    # Hermitian facto (complex cholesky/ldlt): the trailing update is
    # A(i,j) -= L(i) L(j)ᴴ, so the transposed operand is conjugated
    # (.conj() is a no-copy pass-through for real panels)
    hermitian = (not is_lu) and np.asarray(nc.diag).dtype.kind == "c"
    for j, bj in enumerate(sym.off_blocks()):
        t = bj.facing
        if target is not None and t != target:
            continue
        jlo, jhi = offs[j], offs[j + 1]
        tail = slice(jlo, nc.offrows)
        t0 = time.perf_counter()
        if is_lu:
            ub_j = nc.upanel[jlo:jhi]
        elif d_scale is not None:
            # L(j) D for LDLᵗ updates; the within-block pivot permutation
            # contracts away here (both operands live in the permuted
            # basis), only the block-diagonal D structure matters
            ub_j = ldlt_d_mul_cols(nc.lpanel[jlo:jhi], d_scale,
                                   nc.pivd21, hermitian)
        else:
            ub_j = nc.lpanel[jlo:jhi]
        if hermitian:
            ub_j = ub_j.conj()
        be = fac.backend
        # all (i) >= (j) at once
        w_l = be.gemm(nc.lpanel[tail], ub_j, trans_b="T")
        fl = gemm_flops(nc.offrows - jlo, bj.nrows, nc.width)
        w_u = None
        if is_lu:
            w_u = be.gemm(nc.upanel[tail], nc.lpanel[jlo:jhi], trans_b="T")
            fl += gemm_flops(nc.offrows - jlo, bj.nrows, nc.width)
        stats.add("dense_update", seconds=time.perf_counter() - t0,
                  flops=fl * flop_scale(fac.dtype))

        if lock is not None:
            lock(t).acquire()
        try:
            for i in range(j, sym.noff):
                bi = sym.blocks[1 + i]
                ilo = offs[i] - jlo
                ihi = offs[i + 1] - jlo
                contrib = w_l[ilo:ihi]
                _scatter(fac, t, bi.first_row, bi.end_row,
                         bj.first_row, bj.end_row, contrib, side="l")
                if is_lu and i > j:
                    _scatter(fac, t, bi.first_row, bi.end_row,
                             bj.first_row, bj.end_row, w_u[ilo:ihi], side="u")
        finally:
            if lock is not None:
                lock(t).release()


def _updates_from_blocks(fac: NumericFactor, nc: NumericColumnBlock,
                         target: Optional[int],
                         lock: Optional[Callable[[int], Any]]) -> None:
    """Per-pair updates through the low-rank kernels (JIT / MM sources).

    With ``config.accumulate_updates`` (the LUAR-like ablation, §5), all
    contributions of this source aimed at the same low-rank target block
    are gathered and recompressed once per target instead of once per
    contribution.  Hermitian factorizations conjugate the transposed
    operand (``A(i,j) -= L(i) L(j)ᴴ``), as in the panel path.
    """
    cfg = fac.config
    stats = fac.stats.kernels
    sym = nc.sym
    is_lu = nc.ublocks is not None
    d_scale = (np.diag(nc.diag)
               if fac.config.factotype == "ldlt" else None)
    # Hermitian facto: the transposed operand of every update is L(j)ᴴ,
    # not L(j)ᵀ (no-op for real blocks)
    hermitian = (not is_lu) and np.asarray(nc.diag).dtype.kind == "c"
    #: compute dtype to promote narrow-storage operands to (None = no-op)
    promote = fac.dtype if fac.storage_dtype is not None else None
    recompress = fac.variant.recompress if fac.variant is not None else True

    by_target = {}
    for j, bj in enumerate(sym.off_blocks()):
        by_target.setdefault(bj.facing, []).append((j, bj))

    for t in sorted(by_target):
        if target is not None and t != target:
            continue
        acc = {} if cfg.accumulate_updates else None
        if lock is not None:
            lock(t).acquire()
        try:
            for j, bj in by_target[t]:
                if is_lu:
                    ub_j = nc.ublocks[j]
                elif d_scale is not None:
                    ub_j = _scale_columns(nc.lblocks[j], d_scale,
                                          nc.pivd21, hermitian)
                else:
                    ub_j = nc.lblocks[j]
                if hermitian:
                    ub_j = ub_j.conj()
                lb_j = nc.lblocks[j]
                if promote is not None:
                    ub_j = _promote(ub_j, promote)
                    lb_j = _promote(lb_j, promote)
                for i in range(j, sym.noff):
                    bi = sym.blocks[1 + i]
                    src_l = nc.lblocks[i]
                    if promote is not None:
                        src_l = _promote(src_l, promote)
                    contrib = lr_product(src_l, ub_j,
                                         fac.comp_tol, cfg.kernel, stats,
                                         backend=fac.backend,
                                         recompress=recompress,
                                         norm_ref=fac.comp_norm_ref)
                    if contrib is not None:
                        _scatter(fac, t, bi.first_row, bi.end_row,
                                 bj.first_row, bj.end_row, contrib,
                                 side="l", acc=acc)
                    if is_lu and i > j:
                        src_u = nc.ublocks[i]
                        if promote is not None:
                            src_u = _promote(src_u, promote)
                        contrib_u = lr_product(src_u, lb_j,
                                               fac.comp_tol, cfg.kernel,
                                               stats, backend=fac.backend,
                                               recompress=recompress,
                                               norm_ref=fac.comp_norm_ref)
                        if contrib_u is not None:
                            _scatter(fac, t, bi.first_row, bi.end_row,
                                     bj.first_row, bj.end_row, contrib_u,
                                     side="u", acc=acc)
            if acc:
                _flush_accumulated(fac, t, acc)
        finally:
            if lock is not None:
                lock(t).release()


def _flush_accumulated(fac: NumericFactor, t: int, acc: dict) -> None:
    """Apply the grouped extend-adds gathered under accumulate_updates."""
    cfg = fac.config
    stats = fac.stats.kernels
    tnc = fac.cblks[t]
    tsym = tnc.sym
    for (side, i), contribs in acc.items():
        blocks = tnc.lblocks if side == "l" else tnc.ublocks
        tgt = blocks[i]
        if not isinstance(tgt, LowRankBlock):  # densified meanwhile
            for piece, ro, co in contribs:
                lr2ge_update(tgt, piece, ro, co, stats,
                             backend=fac.backend)
            continue
        block = tsym.blocks[1 + i]
        cap = rank_cap(block.nrows, tsym.ncols, cfg.rank_ratio)
        if fac.storage_dtype is not None:
            tgt = tgt.astype(fac.dtype)
        new = lr2lr_update_multi(tgt, contribs, fac.comp_tol, cfg.kernel,
                                 max_rank=cap, stats=stats,
                                 norm_ref=fac.comp_norm_ref)
        if new is None:
            dense = np.asarray(tgt.to_dense(), dtype=fac.dtype)
            for piece, ro, co in contribs:
                lr2ge_update(dense, piece, ro, co, stats,
                             backend=fac.backend)
            new = (dense if fac.storage_dtype is None
                   else dense.astype(fac.storage_dtype))
        elif fac.storage_dtype is not None:
            new = new.astype(fac.storage_dtype)
        fac.set_block(tnc, side, i, new)


def _promote(block: Optional[Block], dtype: np.dtype) -> Optional[Block]:
    """Promote a (possibly narrow-storage) operand to the compute dtype.

    The one place numpy's automatic promotion cannot be relied on is a
    product of *two* narrow operands (e.g. ``a.v.T @ b.v`` with both in
    float32): the whole chain would then run in storage precision.  Update
    arithmetic therefore promotes both operands before multiplying.
    """
    if isinstance(block, LowRankBlock):
        return block.astype(dtype)
    if isinstance(block, np.ndarray) and block.dtype != dtype:
        return block.astype(dtype)
    return block


def _scale_columns(block: Block, d: np.ndarray,
                   d21: Optional[np.ndarray] = None,
                   hermitian: bool = False) -> Block:
    """Return ``block @ D`` (the ``L D`` operand of LDLᵗ updates).

    ``D`` is diagonal (``d``) plus optional 2×2 pivot blocks whose
    subdiagonal lives in ``d21``; for a low-rank block ``u vᵀ`` the
    product lands on the rows of ``v`` (``new_v = Dᵀ v``).  Hermitian
    factorizations conjugate the 2×2 superdiagonal of D
    (``D[j, j+1] = conj(D[j+1, j])``).
    """
    if isinstance(block, LowRankBlock):
        if block.rank == 0:
            return block
        v = block.v * d[:, None]
        if d21 is not None:
            for j in np.flatnonzero(d21):
                dl = d21[j]
                du = np.conj(dl) if hermitian else dl
                v[j] = d[j] * block.v[j] + dl * block.v[j + 1]
                v[j + 1] = du * block.v[j] + d[j + 1] * block.v[j + 1]
        return LowRankBlock(block.u, v)
    return ldlt_d_mul_cols(block, d, d21, hermitian)


# ----------------------------------------------------------------------
# scatter of one contribution into the target column block
# ----------------------------------------------------------------------

def _slice_rows(contrib: Block, lo: int, hi: int) -> Block:
    if isinstance(contrib, LowRankBlock):
        if lo == 0 and hi == contrib.m:
            return contrib
        return LowRankBlock(contrib.u[lo:hi], contrib.v)
    return contrib[lo:hi]


def _transpose(contrib: Block) -> Block:
    if isinstance(contrib, LowRankBlock):
        return LowRankBlock(contrib.v, contrib.u)
    return contrib.T


def _scatter(fac: NumericFactor, t: int, rlo: int, rhi: int,
             clo: int, chi: int, contrib: Block, side: str,
             acc: Optional[dict] = None) -> None:
    """Subtract ``contrib`` (rows ``[rlo, rhi)``, cols ``[clo, chi)`` in
    global indices) from column block ``t``.

    ``side == 'l'`` updates the L storage (or the diagonal block when the
    rows fall inside ``t``'s columns); ``side == 'u'`` updates the Uᵗ
    storage (transposed into the diagonal block's upper triangle when the
    rows fall inside ``t``).
    """
    tnc = fac.cblks[t]
    tsym = tnc.sym
    stats = fac.stats.kernels
    coff = clo - tsym.first_col

    if rlo < tsym.end_col:
        # region inside the diagonal block of t (always dense)
        rloc = rlo - tsym.first_col
        if side == "l":
            lr2ge_update(tnc.diag, contrib, rloc, coff, stats,
                         backend=fac.backend)
        else:
            lr2ge_update(tnc.diag, _transpose(contrib), coff, rloc, stats,
                         backend=fac.backend)
        return

    cfg = fac.config
    for bidx, olo, ohi in fac.symb.find_blocks(t, rlo, rhi):
        if bidx == 0:  # pragma: no cover - diag handled above
            raise AssertionError("off-diagonal rows resolved to diagonal")
        i = bidx - 1
        piece = _slice_rows(contrib, olo - rlo, ohi - rlo)
        block = tsym.blocks[bidx]
        row_off_in_block = olo - block.first_row
        if tnc.panel_mode:
            panel = tnc.lpanel if side == "l" else tnc.upanel
            plo = tnc.row_offsets[i] + row_off_in_block
            m = ohi - olo
            lr2ge_update(panel[plo:plo + m], piece, 0, coff, stats,
                         backend=fac.backend)
        else:
            blocks = tnc.lblocks if side == "l" else tnc.ublocks
            tgt = blocks[i]
            if isinstance(tgt, LowRankBlock):
                if acc is not None:
                    acc.setdefault((side, i), []).append(
                        (piece, row_off_in_block, coff))
                    continue
                cap = rank_cap(block.nrows, tsym.ncols, cfg.rank_ratio)
                if fac.storage_dtype is not None:
                    tgt = tgt.astype(fac.dtype)
                new = lr2lr_update(tgt, piece, row_off_in_block, coff,
                                   fac.comp_tol, cfg.kernel,
                                   max_rank=cap, stats=stats,
                                   norm_ref=fac.comp_norm_ref)
                if new is None:
                    # rank exceeded the cap: fall back to dense storage
                    # (updated at full precision, stored at storage_dtype)
                    dense = np.asarray(tgt.to_dense(), dtype=fac.dtype)
                    lr2ge_update(dense, piece, row_off_in_block, coff,
                                 stats, backend=fac.backend)
                    new = (dense if fac.storage_dtype is None
                           else dense.astype(fac.storage_dtype))
                elif fac.storage_dtype is not None:
                    new = new.astype(fac.storage_dtype)
                fac.set_block(tnc, side, i, new)
            else:
                lr2ge_update(tgt, piece, row_off_in_block, coff, stats,
                             backend=fac.backend)
