"""Saving and loading factorizations — and partial-run checkpoints.

A factorization of a large matrix is expensive; production workflows save
it to disk and reload it for later solve campaigns (many right-hand sides
arriving over time).  The on-disk format is a single ``.npz`` archive
holding every block array plus a small JSON header describing the symbolic
structure, configuration, and permutation — no pickle, so archives are
portable and safe to load.

The compressed representation is stored as-is: a Minimal Memory
factorization's archive is proportionally smaller than a dense one, which
is itself part of the paper's value proposition (a τ-accurate factorization
as a compact reusable preconditioner).

**Checkpoints** reuse the same container for *partial* factorizations: a
completed-column-block bitmap, only the completed blocks' arrays, the
config, and a fingerprint of the (permuted) input matrix.  A resume run
(:meth:`repro.core.solver.Solver.resume_from`) restores the completed
blocks and re-runs the pull-mode sequential sweep over the rest — for
sequential float64 runs the resumed factors are bit-identical to an
uninterrupted run (see docs/robustness.md for the compatibility rules).
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from dataclasses import asdict, replace
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

import numpy as np

from repro.config import SolverConfig
from repro.core.factor import NumericColumnBlock, NumericFactor
from repro.lowrank.block import LowRankBlock
from repro.sparse.csc import CSCMatrix
from repro.symbolic.structure import (
    SymbolicBlock,
    SymbolicColumnBlock,
    SymbolicFactor,
)

#: format version written into every factor archive
FORMAT_VERSION = 1

#: format version written into every checkpoint archive
CHECKPOINT_VERSION = 1


def matrix_fingerprint(a: CSCMatrix) -> str:
    """sha256 digest of a matrix's structure and values.

    Guards checkpoint resume: restoring a partial factorization onto a
    different matrix (or the same pattern with different values or dtype)
    would silently produce garbage factors.
    """
    h = hashlib.sha256()
    h.update(str(a.n).encode())
    h.update(np.ascontiguousarray(a.colptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(a.rowind, dtype=np.int64).tobytes())
    h.update(a.values.dtype.name.encode())
    h.update(np.ascontiguousarray(a.values).tobytes())
    return h.hexdigest()


def _symbolic_to_json(symb: SymbolicFactor) -> dict:
    return {
        "n": symb.n,
        "cblks": [
            {
                "id": c.id,
                "first_col": c.first_col,
                "ncols": c.ncols,
                "snode": c.snode,
                "blocks": [[b.first_row, b.nrows, b.facing,
                            bool(b.lr_candidate)] for b in c.blocks],
            }
            for c in symb.cblks
        ],
    }


def _symbolic_from_json(data: dict) -> SymbolicFactor:
    cblks = []
    for c in data["cblks"]:
        blocks = [SymbolicBlock(fr, nr, facing, cand)
                  for fr, nr, facing, cand in c["blocks"]]
        cblks.append(SymbolicColumnBlock(
            id=c["id"], first_col=c["first_col"], ncols=c["ncols"],
            snode=c["snode"], blocks=blocks))
    return SymbolicFactor(int(data["n"]), cblks)


def _pack_cblk(nc: NumericColumnBlock, k: int, arrays: Dict[str, np.ndarray],
               kinds: List[List[Any]]) -> None:
    """Append column block ``k``'s arrays + bookkeeping to the archive
    staging dicts (shared by :func:`save_factor` and
    :func:`save_checkpoint`)."""
    arrays[f"d{k}"] = nc.diag
    # threshold-pivoting sidecars, keyed by presence: archives written by
    # static-pivoting runs (and older versions) simply omit them
    if nc.pivperm is not None:
        arrays[f"pp{k}"] = nc.pivperm
    if nc.pivd21 is not None:
        arrays[f"pd{k}"] = nc.pivd21
    for side in ("l", "u"):
        if nc.panel_mode:
            panel = nc.lpanel if side == "l" else nc.upanel
            if panel is None:
                continue
            arrays[f"{side}p{k}"] = panel
            kinds.append([k, side, -1, "panel"])
            continue
        blocks = nc.lblocks if side == "l" else nc.ublocks
        if blocks is None:
            continue
        for i, b in enumerate(blocks):
            if isinstance(b, LowRankBlock):
                arrays[f"{side}{k}_{i}u"] = b.u
                arrays[f"{side}{k}_{i}v"] = b.v
                kinds.append([k, side, i, "lr"])
            else:
                arrays[f"{side}{k}_{i}d"] = b
                kinds.append([k, side, i, "dense"])


def _write_archive(path: Path, member: str, header: dict,
                   arrays: Dict[str, np.ndarray]) -> None:
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        zf.writestr(member, json.dumps(header))
        zf.writestr("arrays.npz", buf.getvalue())


def save_factor(fac: NumericFactor, perm: np.ndarray,
                path: Union[str, Path]) -> Path:
    """Write a factorization (blocks + symbolic + config + perm) to disk."""
    path = Path(path)
    if fac.faults is not None:
        fac.faults.on_serialize(str(path))
    arrays: Dict[str, np.ndarray] = {"perm": np.asarray(perm,
                                                        dtype=np.int64)}
    kinds: List[List[Any]] = []  # (cblk, side, index, kind) bookkeeping
    for k, nc in enumerate(fac.cblks):
        if nc.diag is None or not nc.factored:
            raise ValueError("cannot save an unfactored NumericFactor")
        _pack_cblk(nc, k, arrays, kinds)
    header = {
        "format_version": FORMAT_VERSION,
        "dtype": np.dtype(fac.dtype).name,
        "storage_dtype": (np.dtype(fac.storage_dtype).name
                          if fac.storage_dtype is not None else None),
        # the telemetry bus is a runtime channel (locks, open sinks) —
        # archives store it as null and a reloaded config starts detached
        "config": asdict(replace(fac.config, telemetry=None,
                                 profiler=None)),
        "symbolic": _symbolic_to_json(fac.symb),
        "kinds": kinds,
        "nperturbed": fac.nperturbed,
    }
    _write_archive(path, "header.json", header, arrays)
    return path


def load_factor(path: Union[str, Path]) -> tuple:
    """Load ``(NumericFactor, perm)`` saved by :func:`save_factor`."""
    path = Path(path)
    with zipfile.ZipFile(path) as zf:
        header = json.loads(zf.read("header.json"))
        with zf.open("arrays.npz") as fh:
            arrays = np.load(io.BytesIO(fh.read()))
            arrays = {k: arrays[k] for k in arrays.files}
    if header.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported factor archive version "
            f"{header.get('format_version')!r}")

    config = SolverConfig(**header["config"])
    symb = _symbolic_from_json(header["symbolic"])
    fac = NumericFactor(symb, config)
    fac.nperturbed = int(header["nperturbed"])
    # archives predating the dtype field are float64 full-precision
    fac.dtype = np.dtype(header.get("dtype", "float64"))
    storage = header.get("storage_dtype")
    fac.storage_dtype = np.dtype(storage) if storage else None

    panel_sides = {(k, side) for k, side, i, kind in header["kinds"]
                   if kind == "panel"}
    for k, nc in enumerate(fac.cblks):
        nc.diag = arrays[f"d{k}"]
        nc.pivperm = arrays.get(f"pp{k}")
        nc.pivd21 = arrays.get(f"pd{k}")
        if (k, "l") in panel_sides:
            nc.lpanel = arrays[f"lp{k}"]
            if (k, "u") in panel_sides:
                nc.upanel = arrays[f"up{k}"]
        else:
            nc.lblocks = [None] * nc.sym.noff
            if not config.is_symmetric_facto:
                nc.ublocks = [None] * nc.sym.noff
        nc.factored = True
    for k, side, i, kind in header["kinds"]:
        if kind == "panel":
            continue
        nc = fac.cblks[k]
        blocks = nc.lblocks if side == "l" else nc.ublocks
        if kind == "lr":
            blocks[i] = LowRankBlock(arrays[f"{side}{k}_{i}u"],
                                     arrays[f"{side}{k}_{i}v"])
        else:
            blocks[i] = arrays[f"{side}{k}_{i}d"]
    # sanity: every expected block present
    for nc in fac.cblks:
        for blocks in (nc.lblocks, nc.ublocks):
            if blocks is not None and any(b is None for b in blocks):
                raise ValueError("corrupt factor archive: missing blocks")
    perm = arrays["perm"]
    return fac, perm


# ----------------------------------------------------------------------
# partial-factorization checkpoints
# ----------------------------------------------------------------------

def save_checkpoint(fac: NumericFactor, perm: np.ndarray,
                    path: Union[str, Path], fingerprint: str) -> Path:
    """Snapshot a (possibly partial) factorization for later resume.

    Only *completed* column blocks are stored, together with the
    completed bitmap, the config (telemetry detached), the symbolic
    structure, the permutation, and the input-matrix ``fingerprint``
    (:func:`matrix_fingerprint` of the permuted matrix) that
    :meth:`~repro.core.solver.Solver.resume_from` validates against.
    """
    path = Path(path)
    if fac.faults is not None:
        fac.faults.on_serialize(str(path))
    arrays: Dict[str, np.ndarray] = {"perm": np.asarray(perm,
                                                        dtype=np.int64)}
    kinds: List[List[Any]] = []
    completed: List[bool] = []
    for k, nc in enumerate(fac.cblks):
        done = bool(nc.factored and nc.diag is not None)
        completed.append(done)
        if done:
            _pack_cblk(nc, k, arrays, kinds)
    header = {
        "format_version": CHECKPOINT_VERSION,
        "kind": "checkpoint",
        "dtype": np.dtype(fac.dtype).name,
        "storage_dtype": (np.dtype(fac.storage_dtype).name
                          if fac.storage_dtype is not None else None),
        "config": asdict(replace(fac.config, telemetry=None,
                                 profiler=None)),
        "symbolic": _symbolic_to_json(fac.symb),
        "completed": completed,
        "kinds": kinds,
        "nperturbed": fac.nperturbed,
        "matrix_fingerprint": fingerprint,
    }
    _write_archive(path, "checkpoint.json", header, arrays)
    return path


def load_checkpoint(path: Union[str, Path]
                    ) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Load ``(header, arrays)`` written by :func:`save_checkpoint`."""
    path = Path(path)
    with zipfile.ZipFile(path) as zf:
        header = json.loads(zf.read("checkpoint.json"))
        with zf.open("arrays.npz") as fh:
            npz = np.load(io.BytesIO(fh.read()))
            arrays = {k: npz[k] for k in npz.files}
    if header.get("kind") != "checkpoint":
        raise ValueError("not a checkpoint archive")
    if header.get("format_version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version "
            f"{header.get('format_version')!r}")
    return header, arrays


def checkpoint_config(path: Union[str, Path]) -> SolverConfig:
    """The :class:`SolverConfig` a checkpoint was written under (header
    only — the block arrays are not decompressed)."""
    with zipfile.ZipFile(Path(path)) as zf:
        header = json.loads(zf.read("checkpoint.json"))
    if header.get("kind") != "checkpoint":
        raise ValueError("not a checkpoint archive")
    return SolverConfig(**header["config"])


def restore_checkpoint(fac: NumericFactor, header: dict,
                       arrays: Dict[str, np.ndarray]) -> int:
    """Overwrite ``fac``'s completed column blocks from a checkpoint.

    ``fac`` must be freshly assembled over the checkpoint's symbolic
    structure; returns the number of restored column blocks.  Restored
    blocks are marked ``factored`` so the pull-mode sweep skips them.
    """
    completed = header["completed"]
    panel_sides = {(k, side) for k, side, i, kind in header["kinds"]
                   if kind == "panel"}
    restored = 0
    befores = {k: fac.cblks[k].nbytes(fac.sides)
               for k, done in enumerate(completed) if done}
    for k, done in enumerate(completed):
        if not done:
            continue
        nc = fac.cblks[k]
        nc.diag = arrays[f"d{k}"]
        nc.pivperm = arrays.get(f"pp{k}")
        nc.pivd21 = arrays.get(f"pd{k}")
        nc.lpanel = nc.upanel = None
        nc.lblocks = nc.ublocks = None
        if (k, "l") in panel_sides:
            nc.lpanel = arrays[f"lp{k}"]
            if (k, "u") in panel_sides:
                nc.upanel = arrays[f"up{k}"]
        else:
            nc.lblocks = [None] * nc.sym.noff
            if not fac.config.is_symmetric_facto:
                nc.ublocks = [None] * nc.sym.noff
        nc.factored = True
        restored += 1
    for k, side, i, kind in header["kinds"]:
        if kind == "panel":
            continue
        nc = fac.cblks[k]
        blocks = nc.lblocks if side == "l" else nc.ublocks
        if kind == "lr":
            blocks[i] = LowRankBlock(arrays[f"{side}{k}_{i}u"],
                                     arrays[f"{side}{k}_{i}v"])
        else:
            blocks[i] = arrays[f"{side}{k}_{i}d"]
    for k, before in befores.items():
        nc = fac.cblks[k]
        for blocks in (nc.lblocks, nc.ublocks):
            if blocks is not None and any(b is None for b in blocks):
                raise ValueError("corrupt checkpoint: missing blocks "
                                 f"in column block {k}")
        fac.tracker.resize(before, nc.nbytes(fac.sides))
    return restored


class CheckpointWriter:
    """Cadence- and fault-driven checkpoint writes during a sequential run.

    Armed by :meth:`Solver.factorize(checkpoint=...)`; the pull-mode
    sequential sweep calls :meth:`task_done` after every factored column
    block (writes every ``every`` completions; 0 = never on cadence) and
    :meth:`on_fault` when the sweep dies (writes when ``write_on_fault``).
    With a recovery state armed, write failures are recorded and swallowed
    (a failing checkpoint disk must not kill a healthy factorization);
    without one they propagate.
    """

    def __init__(self, path: Union[str, Path], perm: np.ndarray,
                 fingerprint: str, every: int = 0,
                 write_on_fault: bool = True) -> None:
        self.path = Path(path)
        self.perm = np.asarray(perm, dtype=np.int64)
        self.fingerprint = fingerprint
        self.every = int(every)
        self.write_on_fault = write_on_fault
        #: number of checkpoint archives successfully written
        self.writes = 0
        self._since = 0

    def task_done(self, fac: NumericFactor, k: int) -> None:
        self._since += 1
        if self.every > 0 and self._since >= self.every:
            self._since = 0
            self.write(fac)

    def on_fault(self, fac: NumericFactor) -> None:
        if self.write_on_fault:
            self.write(fac)

    def write(self, fac: NumericFactor) -> None:
        rec = fac.recovery
        try:
            save_checkpoint(fac, self.perm, self.path, self.fingerprint)
        except Exception as exc:
            if rec is None:
                raise
            rec.record("checkpoint_failed", site="serialize",
                       error=type(exc).__name__, path=str(self.path))
            return
        self.writes += 1
        if rec is not None:
            completed = sum(1 for nc in fac.cblks if nc.factored)
            rec.record("checkpoint", site="serialize", completed=completed,
                       path=str(self.path))
