"""Saving and loading factorizations.

A factorization of a large matrix is expensive; production workflows save
it to disk and reload it for later solve campaigns (many right-hand sides
arriving over time).  The on-disk format is a single ``.npz`` archive
holding every block array plus a small JSON header describing the symbolic
structure, configuration, and permutation — no pickle, so archives are
portable and safe to load.

The compressed representation is stored as-is: a Minimal Memory
factorization's archive is proportionally smaller than a dense one, which
is itself part of the paper's value proposition (a τ-accurate factorization
as a compact reusable preconditioner).
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import asdict, replace
from pathlib import Path
from typing import Union

import numpy as np

from repro.config import SolverConfig
from repro.core.factor import NumericFactor
from repro.lowrank.block import LowRankBlock
from repro.symbolic.structure import (
    SymbolicBlock,
    SymbolicColumnBlock,
    SymbolicFactor,
)

#: format version written into every archive
FORMAT_VERSION = 1


def _symbolic_to_json(symb: SymbolicFactor) -> dict:
    return {
        "n": symb.n,
        "cblks": [
            {
                "id": c.id,
                "first_col": c.first_col,
                "ncols": c.ncols,
                "snode": c.snode,
                "blocks": [[b.first_row, b.nrows, b.facing,
                            bool(b.lr_candidate)] for b in c.blocks],
            }
            for c in symb.cblks
        ],
    }


def _symbolic_from_json(data: dict) -> SymbolicFactor:
    cblks = []
    for c in data["cblks"]:
        blocks = [SymbolicBlock(fr, nr, facing, cand)
                  for fr, nr, facing, cand in c["blocks"]]
        cblks.append(SymbolicColumnBlock(
            id=c["id"], first_col=c["first_col"], ncols=c["ncols"],
            snode=c["snode"], blocks=blocks))
    return SymbolicFactor(int(data["n"]), cblks)


def save_factor(fac: NumericFactor, perm: np.ndarray,
                path: Union[str, Path]) -> Path:
    """Write a factorization (blocks + symbolic + config + perm) to disk."""
    arrays = {"perm": np.asarray(perm, dtype=np.int64)}
    kinds = []  # (cblk, side, index, "lr"/"dense") bookkeeping
    for k, nc in enumerate(fac.cblks):
        if nc.diag is None or not nc.factored:
            raise ValueError("cannot save an unfactored NumericFactor")
        arrays[f"d{k}"] = nc.diag
        for side in ("l", "u"):
            if nc.panel_mode:
                panel = nc.lpanel if side == "l" else nc.upanel
                if panel is None:
                    continue
                arrays[f"{side}p{k}"] = panel
                kinds.append([k, side, -1, "panel"])
                continue
            blocks = nc.lblocks if side == "l" else nc.ublocks
            if blocks is None:
                continue
            for i, b in enumerate(blocks):
                if isinstance(b, LowRankBlock):
                    arrays[f"{side}{k}_{i}u"] = b.u
                    arrays[f"{side}{k}_{i}v"] = b.v
                    kinds.append([k, side, i, "lr"])
                else:
                    arrays[f"{side}{k}_{i}d"] = b
                    kinds.append([k, side, i, "dense"])
    header = {
        "format_version": FORMAT_VERSION,
        "dtype": np.dtype(fac.dtype).name,
        "storage_dtype": (np.dtype(fac.storage_dtype).name
                          if fac.storage_dtype is not None else None),
        # the telemetry bus is a runtime channel (locks, open sinks) —
        # archives store it as null and a reloaded config starts detached
        "config": asdict(replace(fac.config, telemetry=None)),
        "symbolic": _symbolic_to_json(fac.symb),
        "kinds": kinds,
        "nperturbed": fac.nperturbed,
    }
    path = Path(path)
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        zf.writestr("header.json", json.dumps(header))
        zf.writestr("arrays.npz", buf.getvalue())
    return path


def load_factor(path: Union[str, Path]) -> tuple:
    """Load ``(NumericFactor, perm)`` saved by :func:`save_factor`."""
    path = Path(path)
    with zipfile.ZipFile(path) as zf:
        header = json.loads(zf.read("header.json"))
        with zf.open("arrays.npz") as fh:
            arrays = np.load(io.BytesIO(fh.read()))
            arrays = {k: arrays[k] for k in arrays.files}
    if header.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported factor archive version "
            f"{header.get('format_version')!r}")

    config = SolverConfig(**header["config"])
    symb = _symbolic_from_json(header["symbolic"])
    fac = NumericFactor(symb, config)
    fac.nperturbed = int(header["nperturbed"])
    # archives predating the dtype field are float64 full-precision
    fac.dtype = np.dtype(header.get("dtype", "float64"))
    storage = header.get("storage_dtype")
    fac.storage_dtype = np.dtype(storage) if storage else None

    panel_sides = {(k, side) for k, side, i, kind in header["kinds"]
                   if kind == "panel"}
    for k, nc in enumerate(fac.cblks):
        nc.diag = arrays[f"d{k}"]
        if (k, "l") in panel_sides:
            nc.lpanel = arrays[f"lp{k}"]
            if (k, "u") in panel_sides:
                nc.upanel = arrays[f"up{k}"]
        else:
            nc.lblocks = [None] * nc.sym.noff
            if not config.is_symmetric_facto:
                nc.ublocks = [None] * nc.sym.noff
        nc.factored = True
    for k, side, i, kind in header["kinds"]:
        if kind == "panel":
            continue
        nc = fac.cblks[k]
        blocks = nc.lblocks if side == "l" else nc.ublocks
        if kind == "lr":
            blocks[i] = LowRankBlock(arrays[f"{side}{k}_{i}u"],
                                     arrays[f"{side}{k}_{i}v"])
        else:
            blocks[i] = arrays[f"{side}{k}_{i}d"]
    # sanity: every expected block present
    for nc in fac.cblks:
        for blocks in (nc.lblocks, nc.ublocks):
            if blocks is not None and any(b is None for b in blocks):
                raise ValueError("corrupt factor archive: missing blocks")
    perm = arrays["perm"]
    return fac, perm
