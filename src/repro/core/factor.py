"""Numerical block storage and assembly.

A :class:`NumericFactor` owns one :class:`NumericColumnBlock` per symbolic
column block.  Storage comes in two modes, mirroring how PaStiX lays factors
out:

* **panel mode** — the column block's off-diagonal part is one contiguous
  dense array (``lpanel``, rows stacked in block order).  Used by the Dense
  strategy throughout and by Just-In-Time until the column block is
  compressed; contiguity is what lets the update loop issue one BLAS3 GEMM
  per facing block instead of one per block pair.
* **blocks mode** — a list with one entry per off-diagonal block, each a
  dense array or a :class:`~repro.lowrank.block.LowRankBlock`.  Used by
  Minimal Memory from assembly onward (the dense panel is *never
  allocated* — the whole point of the strategy) and by Just-In-Time panels
  after compression.

The diagonal block is always a separate dense ``(w, w)`` array (paper §2.2:
"all diagonal blocks are considered dense").  For LU, a second structure
(``upanel`` / ``ublocks``) stores Uᵗ with the same shape as L — the paper's
"PaStiX solver stores L, and Uᵗ if required".

Every allocation, free and resize is reported to a
:class:`~repro.runtime.memory.MemoryTracker`, which is how the Figure 6/7
memory measurements are produced.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Union

import numpy as np

if TYPE_CHECKING:
    from repro.runtime.recovery import RecoveryState
    from repro.runtime.sanitizer import RaceSanitizer
    from repro.runtime.spans import SpanProfiler

from repro.config import SolverConfig
from repro.core.backend import get_backend
from repro.core.variants import (
    AdaptivePolicy,
    BlrVariant,
    VariantDecision,
    resolve_variant,
)
from repro.lowrank.block import LowRankBlock
from repro.lowrank.kernels import block_nbytes, compress_block, rank_cap
from repro.runtime.memory import MemoryTracker, array_nbytes
from repro.runtime.stats import FactorizationStats, KernelStats
from repro.sparse.csc import CSCMatrix
from repro.symbolic.structure import SymbolicColumnBlock, SymbolicFactor

Block = Union[np.ndarray, LowRankBlock]


class NumericColumnBlock:
    """Numerical storage of one column block."""

    __slots__ = ("sym", "diag", "lpanel", "upanel", "lblocks", "ublocks",
                 "row_offsets", "offrows", "factored", "pivperm", "pivd21")

    def __init__(self, sym: SymbolicColumnBlock) -> None:
        self.sym = sym
        self.diag: Optional[np.ndarray] = None
        self.lpanel: Optional[np.ndarray] = None
        self.upanel: Optional[np.ndarray] = None
        self.lblocks: Optional[List[Block]] = None
        self.ublocks: Optional[List[Block]] = None
        #: within-block pivot permutation (threshold-pivoted ldlt only):
        #: row ``i`` of the factored diagonal block is row ``pivperm[i]``
        #: of the assembled one.  ``None`` = identity (static pivoting).
        self.pivperm: Optional[np.ndarray] = None
        #: 2×2 pivot subdiagonals: ``pivd21[j]`` is ``D[j+1, j]`` when a
        #: 2×2 pivot starts at column ``j``, zero elsewhere.  ``None``
        #: when the block was factored with 1×1 pivots only.
        self.pivd21: Optional[np.ndarray] = None
        offs = np.zeros(sym.noff + 1, dtype=np.int64)
        for i, b in enumerate(sym.off_blocks()):
            offs[i + 1] = offs[i] + b.nrows
        self.row_offsets = offs
        self.offrows = int(offs[-1])
        self.factored = False

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.sym.ncols

    @property
    def panel_mode(self) -> bool:
        return self.lpanel is not None

    def lblock(self, i: int) -> Block:
        """The i-th off-diagonal L block (0-based over off blocks)."""
        if self.lpanel is not None:
            lo, hi = self.row_offsets[i], self.row_offsets[i + 1]
            return self.lpanel[lo:hi]
        return self.lblocks[i]

    def ublock(self, i: int) -> Block:
        if self.upanel is not None:
            lo, hi = self.row_offsets[i], self.row_offsets[i + 1]
            return self.upanel[lo:hi]
        return self.ublocks[i]

    def nbytes(self, sides: int) -> int:
        """Current storage (diag + off-blocks of ``sides`` factor sides)."""
        total = array_nbytes(self.diag) if self.diag is not None else 0
        if self.lpanel is not None:
            total += array_nbytes(self.lpanel) * sides
        if self.lblocks is not None:
            total += sum(block_nbytes(b) for b in self.lblocks)
            if self.ublocks is not None:
                total += sum(block_nbytes(b) for b in self.ublocks)
        return total


class NumericFactor:
    """The factorized matrix: block storage + bookkeeping.

    Created by :func:`assemble`; filled in by
    :mod:`repro.core.factorization`; consumed by
    :mod:`repro.core.trisolve`.
    """

    def __init__(self, symb: SymbolicFactor, config: SolverConfig) -> None:
        self.symb = symb
        self.config = config
        #: resolved kernel backend (``config.backend`` > ``$REPRO_BACKEND``
        #: > numpy) — every numeric hot path of the factorization and the
        #: triangular solves calls through it.  Resolved here so factors
        #: deserialized via :mod:`repro.core.serialize` get one too.
        self.backend = get_backend(config.backend)
        self.cblks: List[NumericColumnBlock] = [
            NumericColumnBlock(c) for c in symb.cblks]
        # the telemetry bus (config.telemetry, None = disabled) rides on
        # the memory tracker (high-water timeline) and the kernel stats
        # (compression / recompression metrics) so no kernel signature
        # changes; the schedulers read it from config directly
        self.tracker = MemoryTracker(telemetry=config.telemetry)
        self.stats = FactorizationStats(
            kernels=KernelStats(locked=True, telemetry=config.telemetry))
        self.nperturbed = 0
        #: run-wide threshold-pivoting aggregates (see
        #: :meth:`add_pivot_stats`); stay zero under static pivoting
        self.pivot_swaps = 0
        self.pivots_2x2 = 0
        self.pivot_growth = 0.0
        #: guards cross-task counters (``nperturbed``, pivot stats) —
        #: worker threads factor disjoint column blocks but accumulate
        #: into one factor
        self._counter_lock: Any = threading.Lock()
        #: arithmetic dtype of the factorization (resolved by
        #: :func:`assemble` from the matrix and ``config.dtype``)
        self.dtype = np.dtype(np.float64)
        #: narrower dtype compressed u/v factors are *stored* in
        #: (mixed-precision BLR), or ``None`` for full-precision storage
        self.storage_dtype = None
        #: 2 when both L and Uᵗ off-diagonal panels are stored (LU), else 1
        self.sides = 1 if config.is_symmetric_facto else 2
        #: (a_perm, at_perm) when allocation is deferred (left-looking mode)
        self.deferred = None
        #: optional :class:`~repro.runtime.trace.TaskTracer` — the drivers
        #: record one event per factor/update task when set
        self.tracer = None
        #: optional :class:`~repro.runtime.spans.SpanProfiler` — mirrored
        #: from ``config.profiler`` so the engines and kernels pay a single
        #: attribute load; the schedulers open one causal span per task and
        #: the kernels nest factor/compress/update/finalize children in it
        self.profiler: Optional["SpanProfiler"] = config.profiler
        #: optional :class:`~repro.runtime.faults.FaultInjector` — fired at
        #: the top of every factor/update task when set
        self.faults = None
        #: optional :class:`~repro.runtime.sanitizer.RaceSanitizer` — armed
        #: by the solver via :meth:`attach_sanitizer` when
        #: ``config.sanitize_enabled()``; the threaded schedulers and the
        #: pull-set bookkeeping report their shared accesses through it
        self.sanitizer: Optional["RaceSanitizer"] = None
        #: optional :class:`~repro.runtime.recovery.RecoveryState` — armed by
        #: the solver when ``config.recovery`` is set; every breakdown
        #: sentinel and fallback in the factorization path is gated on it
        self.recovery: Optional["RecoveryState"] = None
        #: resolved BLR variant of this run (None for the dense strategy)
        self.variant: Optional[BlrVariant] = resolve_variant(config)
        #: per-supernode adaptive decisions, indexed by cblk id (filled by
        #: :func:`assemble` when ``config.strategy == "adaptive"``)
        self.decisions: Optional[List[VariantDecision]] = None
        #: Frobenius norm of the permuted input matrix (reference of the
        #: global threshold modes; set by :func:`assemble`)
        self.global_norm = 0.0
        #: effective compression tolerance / norm reference of this run
        #: (``variant.compress_scale`` of ``config.tolerance``); every
        #: compression and recompression site reads these instead of the
        #: raw config tolerance
        self.comp_tol = config.tolerance
        self.comp_norm_ref: Optional[float] = None
        # FUC bookkeeping: per-source set of targets that have consumed
        # the source's updates (idempotent under task retries), guarded by
        # a lock for the threaded engines
        self._pull_lock: Any = threading.Lock()
        self._pulled: Dict[int, Set[int]] = {}
        self._pull_targets: Dict[int, int] = {}

    # -- variant dispatch --------------------------------------------------
    def variant_for(self, k: int) -> Optional[BlrVariant]:
        """The loop-order policy of column block ``k``.

        The run-wide variant unless an adaptive decision overrides it;
        ``None`` means "treat this column block dense" (either the dense
        strategy, or an adaptive ``dense`` decision).
        """
        if self.variant is None:
            return None
        if self.decisions is not None:
            d = self.decisions[k]
            if d.order == "dense":
                return None
            return self.variant.with_order(d.order)
        return self.variant

    def _n_targets_locked(self, k: int) -> int:
        n = self._pull_targets.get(k)
        if n is None:
            n = len({b.facing for b in self.symb.cblks[k].off_blocks()})
            self._pull_targets[k] = n
        return n

    def n_targets(self, k: int) -> int:
        """Distinct facing column blocks of ``k`` (who pulls its updates)."""
        with self._pull_lock:
            return self._n_targets_locked(k)

    def note_updates_pulled(self, c: int, k: int) -> bool:
        """Record that target ``k`` consumed source ``c``'s updates.

        Returns ``True`` exactly once: when the last facing target has
        consumed them — the FUC compression point for ``c``.  Idempotent
        per ``(c, k)`` pair, so task retries never double-count.
        """
        with self._pull_lock:
            if self.sanitizer is not None:
                self.sanitizer.note("factor.pulled", "write",
                                    site="factor.py:note_updates_pulled")
            pulled = self._pulled.setdefault(c, set())
            if k in pulled:
                return False
            pulled.add(k)
            return len(pulled) == self._n_targets_locked(c)

    def attach_sanitizer(self, san: "RaceSanitizer") -> None:
        """Arm the runtime race sanitizer on this factor's shared state.

        Wraps the pull-set and counter locks so worker locksets are
        tracked, and exposes the sanitizer to the schedulers
        (``fac.sanitizer``).  Called by the solver before spawning
        workers when ``config.sanitize_enabled()``."""
        self.sanitizer = san
        self._pull_lock = san.wrap_lock(self._pull_lock, "factor._pull_lock")
        self._counter_lock = san.wrap_lock(self._counter_lock,
                                           "factor._counter_lock")

    def fill_column_block(self, k: int) -> None:
        """Left-looking mode: allocate column block ``k``'s dense storage
        and scatter the matrix entries into it, on first touch."""
        if self.deferred is None:
            raise RuntimeError("fill_column_block requires left-looking "
                               "deferred assembly")
        a_perm, at_perm = self.deferred
        nc = self.cblks[k]
        if nc.diag is not None:
            return
        sym = nc.sym
        w = sym.ncols
        nc.diag = np.zeros((w, w), dtype=self.dtype)
        self.tracker.alloc(array_nbytes(nc.diag))
        nc.lpanel = np.zeros((nc.offrows, w), dtype=self.dtype)
        self.tracker.alloc(array_nbytes(nc.lpanel))
        _scatter_panel(a_perm, sym, nc.diag, nc.lpanel, nc.row_offsets)
        if at_perm is not None:
            nc.upanel = np.zeros((nc.offrows, w), dtype=self.dtype)
            self.tracker.alloc(array_nbytes(nc.upanel))
            _scatter_panel(at_perm, sym, None, nc.upanel, nc.row_offsets)

    # -- sizing ----------------------------------------------------------
    def dense_factor_nbytes(self) -> int:
        """Bytes the factors would occupy fully dense (Figure 6 baseline)."""
        total = 0
        for c in self.symb.cblks:
            w = c.ncols
            off = sum(b.nrows for b in c.off_blocks())
            total += (w * w + self.sides * off * w) * self.dtype.itemsize
        return total

    def factor_nbytes(self) -> int:
        """Current compressed storage of all blocks."""
        return sum(nc.nbytes(self.sides) for nc in self.cblks)

    def add_perturbed(self, n: int) -> None:
        """Accumulate perturbed-pivot counts from factor tasks.

        Integer addition under ``_counter_lock``: worker threads factoring
        different column blocks race on the shared counter otherwise, and
        the result stays independent of accumulation order."""
        if n:
            with self._counter_lock:
                self.nperturbed += n

    def add_pivot_stats(self, stats: Dict[str, Any]) -> None:
        """Accumulate per-block threshold-pivoting statistics.

        ``stats`` is the dict returned by the ``ldlt_pivot`` kernel
        (swaps / n2x2 / perturbed / growth).  Sums and the growth max are
        taken under ``_counter_lock`` — worker threads factoring different
        column blocks share these run-wide aggregates."""
        with self._counter_lock:
            self.pivot_swaps += int(stats.get("swaps", 0))
            self.pivots_2x2 += int(stats.get("n2x2", 0))
            self.nperturbed += int(stats.get("perturbed", 0))
            self.pivot_growth = max(self.pivot_growth,
                                    float(stats.get("growth", 0.0)))

    # -- block mutation with memory accounting ----------------------------
    def set_block(self, nc: NumericColumnBlock, side: str, i: int,
                  new: Block) -> None:
        """Replace off-block ``i`` on side ``'l'``/``'u'``, tracking bytes."""
        blocks = nc.lblocks if side == "l" else nc.ublocks
        old = blocks[i]
        self.tracker.resize(block_nbytes(old), block_nbytes(new))
        blocks[i] = new

    def convert_to_blocks(self, nc: NumericColumnBlock) -> None:
        """Switch a panel-mode column block to blocks mode (JIT compression
        point): each off block becomes an owned array; panels are freed."""
        if not nc.panel_mode:
            return
        lblocks: List[Block] = []
        ublocks: Optional[List[Block]] = [] if nc.upanel is not None else None
        new_bytes = 0
        for i in range(nc.sym.noff):
            lo, hi = nc.row_offsets[i], nc.row_offsets[i + 1]
            lb = np.ascontiguousarray(nc.lpanel[lo:hi])
            lblocks.append(lb)
            new_bytes += array_nbytes(lb)
            if ublocks is not None:
                ub = np.ascontiguousarray(nc.upanel[lo:hi])
                ublocks.append(ub)
                new_bytes += array_nbytes(ub)
        old_bytes = array_nbytes(nc.lpanel)
        if nc.upanel is not None:
            old_bytes += array_nbytes(nc.upanel)
        self.tracker.resize(old_bytes, new_bytes)
        nc.lpanel = None
        nc.upanel = None
        nc.lblocks = lblocks
        nc.ublocks = ublocks


def assemble(a_perm: CSCMatrix, symb: SymbolicFactor,
             config: SolverConfig,
             history: Optional[Dict[int, Dict[str, float]]] = None
             ) -> NumericFactor:
    """Scatter the permuted matrix into the block structure.

    * Dense / compress-late orders (``ucf``/``ufc``/``fuc``): every column
      block gets dense panels (``A`` entries scattered, structural zeros
      explicit) — the Just-In-Time memory peak therefore matches the dense
      solver, as §4.3 observes.
    * Compress-at-assembly (``cuf``, the Minimal Memory alias): Algorithm 1
      lines 1–4 — each low-rank candidate is compressed *directly from its
      sparse entries* (a transient dense scratch is built, compressed, and
      freed; only the compressed form is charged to the tracker), so the
      dense factor structure never exists.
    * Adaptive: each supernode is probe-compressed and classified
      ``cuf``/``ucf``/``dense`` per the configured
      :class:`~repro.core.variants.AdaptivePolicy`; ``history`` (per-level
      stats from :func:`~repro.core.variants.history_from_factor` of a
      previous run over the same structure) replaces the probes when given.
    """
    if not a_perm.is_pattern_symmetric():
        raise ValueError("assemble expects a pattern-symmetric matrix")
    fac = NumericFactor(symb, config)
    fac.dtype = config.resolve_dtype(a_perm.values.dtype)
    fac.storage_dtype = config.resolve_storage_dtype(fac.dtype)
    need_u = not config.is_symmetric_facto
    at_perm = a_perm.transpose() if need_u else None
    variant = fac.variant
    fac.global_norm = float(np.linalg.norm(a_perm.values))  # solverlint: ignore[backend-bypass] -- one norm of the raw CSC value array at assembly; the backend protocol is blocked-matrix only
    if variant is not None:
        fac.comp_tol, fac.comp_norm_ref = variant.compress_scale(
            config.tolerance, symb.ncblk, fac.global_norm)

    if config.left_looking:
        # §4.3's left-looking proposal: defer every allocation to the
        # moment the column block is reached (see fill_column_block).
        # Config validation forbids compress-at-assembly orders here.
        fac.deferred = (a_perm, at_perm)
        return fac

    adaptive = config.strategy == "adaptive"
    policy: Optional[AdaptivePolicy] = None
    levels: Optional[List[int]] = None
    if adaptive:
        from repro.analysis.metrics import cblk_levels

        policy = config.adaptive if config.adaptive is not None \
            else AdaptivePolicy()
        fac.decisions = []
        if history is not None and policy.use_history:
            levels = cblk_levels(fac)

    for nc in fac.cblks:
        sym = nc.sym
        w = sym.ncols
        nc.diag = np.zeros((w, w), dtype=fac.dtype)
        fac.tracker.alloc(array_nbytes(nc.diag))
        ldense = np.zeros((nc.offrows, w), dtype=fac.dtype)
        _scatter_panel(a_perm, sym, nc.diag, ldense, nc.row_offsets)
        if adaptive:
            assert policy is not None and fac.decisions is not None
            lvl_hist = (history.get(levels[sym.id])
                        if history is not None and levels is not None
                        else None)
            ratio = (None if lvl_hist is not None
                     else _probe_ratio(fac, nc, ldense, policy))
            decision = policy.decide(sym.id, ratio, lvl_hist)
            fac.decisions.append(decision)
            tele = config.telemetry
            if tele is not None:
                tele.record_variant_decision(
                    decision.cblk, decision.order, decision.reason,
                    decision.ratio)
            compress_now = decision.compress_early
        else:
            compress_now = variant is not None and variant.compress_at_assembly
        if compress_now:
            # per-block storage, candidates compressed from their entries
            nc.lblocks = _compress_assembled(fac, nc, ldense)
            if need_u:
                udense = np.zeros((nc.offrows, w), dtype=fac.dtype)
                _scatter_panel(at_perm, sym, None, udense, nc.row_offsets)
                nc.ublocks = _compress_assembled(fac, nc, udense)
            else:
                nc.ublocks = None
        else:
            nc.lpanel = ldense
            fac.tracker.alloc(array_nbytes(nc.lpanel))
            if need_u:
                nc.upanel = np.zeros((nc.offrows, w), dtype=fac.dtype)
                fac.tracker.alloc(array_nbytes(nc.upanel))
                _scatter_panel(at_perm, sym, None, nc.upanel, nc.row_offsets)
    return fac


def _probe_ratio(fac: NumericFactor, nc: NumericColumnBlock,
                 dense: np.ndarray,
                 policy: AdaptivePolicy) -> Optional[float]:
    """Mean achieved storage ratio of probe-compressing the largest
    candidate blocks of a freshly assembled supernode (``None`` when it
    has no low-rank candidates)."""
    cfg = fac.config
    candidates = [(i, b) for i, b in enumerate(nc.sym.off_blocks())
                  if b.lr_candidate]
    if not candidates:
        return None
    candidates.sort(key=lambda ib: ib[1].nrows, reverse=True)
    ratios = []
    for i, b in candidates[:policy.probe_blocks]:
        lo, hi = nc.row_offsets[i], nc.row_offsets[i + 1]
        chunk = dense[lo:hi]
        m, n = chunk.shape
        cap = rank_cap(b.nrows, nc.width, cfg.rank_ratio)
        lr = compress_block(chunk, fac.comp_tol, cfg.kernel, max_rank=cap,
                            stats=fac.stats.kernels, category="probe",
                            norm_ref=fac.comp_norm_ref)
        if lr is None or not (m and n):
            ratios.append(1.0)
        else:
            ratios.append((m + n) * max(lr.rank, 1) / (m * n))
    return float(sum(ratios) / len(ratios))


def _scatter_panel(a: CSCMatrix, sym: SymbolicColumnBlock,
                   diag: Optional[np.ndarray], panel: np.ndarray,
                   row_offsets: np.ndarray) -> None:
    """Scatter matrix entries of ``sym``'s columns into diag + off panel."""
    fc, w = sym.first_col, sym.ncols
    diag_end = fc + w
    starts = np.array([b.first_row for b in sym.off_blocks()], dtype=np.int64)
    ends = np.array([b.end_row for b in sym.off_blocks()], dtype=np.int64)
    for jj in range(w):
        rows, vals = a.column(fc + jj)
        lo = int(np.searchsorted(rows, fc))
        hi = int(np.searchsorted(rows, diag_end))
        if diag is not None and hi > lo:
            diag[rows[lo:hi] - fc, jj] = vals[lo:hi]
        if hi < len(rows):
            rr = rows[hi:]
            vv = vals[hi:]
            bidx = np.searchsorted(starts, rr, side="right") - 1
            # symbolic coverage guarantees rr < ends[bidx]
            offsets = row_offsets[bidx] + (rr - starts[bidx])
            bad = rr >= ends[bidx]
            if np.any(bad):  # pragma: no cover - symbolic coverage violated
                raise AssertionError("matrix entry outside symbolic structure")
            panel[offsets, jj] = vv


def snapshot_column_block(nc: NumericColumnBlock) -> Dict[str, Any]:
    """Deep copy of ``nc``'s numerical state (pre-task retry snapshot).

    Only the task factoring ``nc`` mutates its storage (pull-mode fan-in),
    so a snapshot taken before the task plus :func:`restore_column_block`
    on failure gives exact local retry semantics.
    """

    def _copy_block(b: Block) -> Block:
        if isinstance(b, LowRankBlock):
            return LowRankBlock(b.u.copy(), b.v.copy())
        return b.copy()

    return {
        "diag": nc.diag.copy() if nc.diag is not None else None,
        "lpanel": nc.lpanel.copy() if nc.lpanel is not None else None,
        "upanel": nc.upanel.copy() if nc.upanel is not None else None,
        "lblocks": ([_copy_block(b) for b in nc.lblocks]
                    if nc.lblocks is not None else None),
        "ublocks": ([_copy_block(b) for b in nc.ublocks]
                    if nc.ublocks is not None else None),
        "factored": nc.factored,
        "pivperm": nc.pivperm.copy() if nc.pivperm is not None else None,
        "pivd21": nc.pivd21.copy() if nc.pivd21 is not None else None,
    }


def restore_column_block(fac: NumericFactor, k: int,
                         snap: Dict[str, Any]) -> None:
    """Reinstate a :func:`snapshot_column_block` snapshot on column ``k``.

    Fresh copies are installed so the snapshot stays reusable across
    several retry attempts; the memory tracker is resized to the restored
    footprint.
    """

    def _copy_block(b: Block) -> Block:
        if isinstance(b, LowRankBlock):
            return LowRankBlock(b.u.copy(), b.v.copy())
        return b.copy()

    nc = fac.cblks[k]
    before = nc.nbytes(fac.sides)
    nc.diag = snap["diag"].copy() if snap["diag"] is not None else None
    nc.lpanel = snap["lpanel"].copy() if snap["lpanel"] is not None else None
    nc.upanel = snap["upanel"].copy() if snap["upanel"] is not None else None
    nc.lblocks = ([_copy_block(b) for b in snap["lblocks"]]
                  if snap["lblocks"] is not None else None)
    nc.ublocks = ([_copy_block(b) for b in snap["ublocks"]]
                  if snap["ublocks"] is not None else None)
    nc.factored = bool(snap["factored"])
    # .get(): snapshots predating the pivoting fields restore to identity
    pivperm = snap.get("pivperm")
    nc.pivperm = pivperm.copy() if pivperm is not None else None
    pivd21 = snap.get("pivd21")
    nc.pivd21 = pivd21.copy() if pivd21 is not None else None
    fac.tracker.resize(before, nc.nbytes(fac.sides))


def _compress_assembled(fac: NumericFactor, nc: NumericColumnBlock,
                        dense: np.ndarray) -> List[Block]:
    """Compress candidate blocks of a freshly assembled dense scratch.

    When a fault injector arms the compression site (or a kernel genuinely
    dies) and the recovery policy allows it, the whole scratch is kept
    dense — the per-block dense fallback, cheapest rung of the escalation
    ladder."""
    cfg = fac.config
    compress_ok = True
    if fac.faults is not None:
        try:
            fac.faults.on_compress(fac, nc.sym.id)
        except Exception as exc:
            rec = fac.recovery
            if rec is None or not rec.policy.dense_fallback:
                raise
            rec.record("dense_fallback", site="compress", cblk=nc.sym.id,
                       error=type(exc).__name__)
            compress_ok = False
    out: List[Block] = []
    for i, b in enumerate(nc.sym.off_blocks()):
        lo, hi = nc.row_offsets[i], nc.row_offsets[i + 1]
        chunk = dense[lo:hi]
        if b.lr_candidate and compress_ok:
            cap = rank_cap(b.nrows, nc.width, cfg.rank_ratio)
            lr = compress_block(chunk, fac.comp_tol, cfg.kernel,
                                max_rank=cap, stats=fac.stats.kernels,
                                norm_ref=fac.comp_norm_ref)
            if lr is not None:
                if fac.storage_dtype is not None:
                    lr = lr.astype(fac.storage_dtype)
                fac.tracker.alloc(lr.nbytes)
                out.append(lr)
                continue
        owned = np.ascontiguousarray(chunk)
        if fac.storage_dtype is not None:
            owned = owned.astype(fac.storage_dtype)
        fac.tracker.alloc(array_nbytes(owned))
        out.append(owned)
    return out
