#!/usr/bin/env python
"""Memory scalability study (the scenario of the paper's Figure 7).

The paper's headline for Minimal Memory: problems that do not fit in memory
with the dense solver become tractable because the dense factor structure is
never allocated.  This example sweeps 3D Laplacian sizes and reports, for
the dense solver and Minimal Memory at several tolerances, the factor size
and the tracked memory peak — the same two series Figure 7 plots.

Usage::

    python examples/memory_study.py [max_grid]
"""

import sys

import numpy as np

from repro import Solver, SolverConfig, laplacian_3d


def run(nx: int, strategy: str, tol: float) -> dict:
    cfg = SolverConfig.laptop_scale(strategy=strategy, tolerance=tol,
                                    split_size=64, split_min=32)
    solver = Solver(laplacian_3d(nx), cfg)
    stats = solver.factorize()
    return {
        "factor_mb": stats.factor_nbytes / 1e6,
        "peak_mb": stats.peak_nbytes / 1e6,
    }


def main() -> None:
    max_grid = int(sys.argv[1]) if len(sys.argv) > 1 else 22
    grids = [g for g in (10, 14, 18, 22, 26, 30) if g <= max_grid]
    tols = (1e-4, 1e-8)

    print(f"{'grid':>5} {'n':>7} | {'dense factor':>12} {'dense peak':>10} |"
          + "".join(f" {'MM ' + format(t, '.0e'):>11} {'peak':>7} |"
                    for t in tols))
    for nx in grids:
        n = nx ** 3
        dense = run(nx, "dense", 1e-8)
        row = (f"{nx:>5} {n:>7} | {dense['factor_mb']:>10.1f}MB "
               f"{dense['peak_mb']:>8.1f}MB |")
        for tol in tols:
            mm = run(nx, "minimal-memory", tol)
            row += f" {mm['factor_mb']:>9.1f}MB {mm['peak_mb']:>5.1f}MB |"
        print(row)

    print("\nThe Minimal Memory peak tracks its own (compressed) factor "
          "size,\nwhile the dense peak grows with the full structure — "
          "the separation\nwidens with problem size exactly as in Figure 7.")


if __name__ == "__main__":
    main()
