#!/usr/bin/env python
"""Quickstart: factorize a 3D Laplacian with BLR compression and solve.

Runs the same system under the three strategies of the paper — the original
dense solver, Just-In-Time (time-oriented compression, Algorithm 2) and
Minimal Memory (memory-oriented compression, Algorithm 1) — and prints the
time / memory / accuracy trade-off each one makes.

Usage::

    python examples/quickstart.py [grid_size] [tolerance]
"""

import sys
import time

import numpy as np

from repro import Solver, SolverConfig, laplacian_3d


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    tol = float(sys.argv[2]) if len(sys.argv) > 2 else 1e-8

    a = laplacian_3d(nx)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(a.n)
    print(f"3D Laplacian {nx}^3: n = {a.n}, nnz = {a.nnz}")
    print(f"tolerance tau = {tol:.0e}\n")

    header = (f"{'strategy':>16} {'kernel':>6} {'facto(s)':>9} "
              f"{'solve(s)':>9} {'mem ratio':>9} {'peak MB':>8} "
              f"{'backward err':>13}")
    print(header)
    print("-" * len(header))

    for strategy, kernel in (("dense", "-"),
                             ("just-in-time", "rrqr"),
                             ("minimal-memory", "rrqr"),
                             ("minimal-memory", "svd")):
        cfg = SolverConfig.laptop_scale(
            strategy=strategy,
            kernel=kernel if kernel != "-" else "rrqr",
            tolerance=tol,
        )
        solver = Solver(a, cfg)
        t0 = time.perf_counter()
        stats = solver.factorize()
        facto_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        x = solver.solve(b)
        solve_time = time.perf_counter() - t0

        err = solver.backward_error(x, b)
        print(f"{strategy:>16} {kernel:>6} {facto_time:9.2f} "
              f"{solve_time:9.3f} {stats.memory_ratio:9.3f} "
              f"{stats.peak_nbytes / 1e6:8.1f} {err:13.2e}")

    # the BLR factorization doubles as a preconditioner (paper §4.4)
    cfg = SolverConfig.laptop_scale(strategy="minimal-memory",
                                    tolerance=1e-4)
    solver = Solver(a, cfg)
    solver.factorize()
    res = solver.refine(b, tol=1e-12, maxiter=20)
    print(f"\nGMRES preconditioned by the tau=1e-4 factorization: "
          f"{res.iterations} iterations -> backward error "
          f"{res.backward_error:.2e}")


if __name__ == "__main__":
    main()
