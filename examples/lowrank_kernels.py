#!/usr/bin/env python
"""Standalone use of the low-rank kernels on dense blocks (paper §3).

The compression machinery is usable outside the sparse solver — e.g. on the
dense BEM-style operators of the LSTC solver the paper compares against
(§5).  This example builds a smooth kernel matrix (pairwise interactions of
two separated point clusters, the textbook low-rank situation), then:

1. compresses it with SVD and RRQR at several tolerances and compares
   ranks / errors / times (the §4.1 trade-off);
2. demonstrates the low-rank product with T-matrix recompression
   (eqs. 1-4) and the padded extend-add (Figure 4 + eqs. 9-12).

Usage::

    python examples/lowrank_kernels.py [cluster_size]
"""

import sys
import time

import numpy as np

from repro.lowrank import (
    lr2lr_update,
    lr_product,
    rrqr_compress,
    svd_compress,
)


def interaction_matrix(rng, m, n, separation=3.0):
    """1/r interactions between two separated 3D point clusters."""
    src = rng.random((m, 3))
    dst = rng.random((n, 3)) + separation
    d = np.linalg.norm(src[:, None, :] - dst[None, :, :], axis=2)
    return 1.0 / d


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    rng = np.random.default_rng(0)
    a = interaction_matrix(rng, size, size)
    norm_a = np.linalg.norm(a)
    print(f"interaction block: {size} x {size} "
          f"(dense storage {a.nbytes / 1e6:.1f} MB)\n")

    print(f"{'tau':>7} | {'SVD rank':>8} {'err':>9} {'time':>8} | "
          f"{'RRQR rank':>9} {'err':>9} {'time':>8}")
    for tol in (1e-2, 1e-4, 1e-8, 1e-12):
        t0 = time.perf_counter()
        svd_lr = svd_compress(a, tol)
        t_svd = time.perf_counter() - t0
        t0 = time.perf_counter()
        qr_lr = rrqr_compress(a, tol)
        t_qr = time.perf_counter() - t0
        e_svd = np.linalg.norm(a - svd_lr.to_dense()) / norm_a
        e_qr = np.linalg.norm(a - qr_lr.to_dense()) / norm_a
        print(f"{tol:7.0e} | {svd_lr.rank:8d} {e_svd:9.1e} {t_svd:7.3f}s | "
              f"{qr_lr.rank:9d} {e_qr:9.1e} {t_qr:7.3f}s")
    print("\nSVD finds smaller ranks; RRQR is faster — the paper's §3.1 "
          "trade-off.")

    # --- low-rank product with recompression (eqs. 1-4) -----------------
    tol = 1e-8
    b = interaction_matrix(rng, size, size, separation=4.0)
    la = rrqr_compress(a, tol)
    lb = rrqr_compress(b, tol)
    prod = lr_product(la, lb, tol, "rrqr")
    ref = a @ b.T
    err = np.linalg.norm(prod.to_dense() - ref) / np.linalg.norm(ref)
    print(f"\nlr_product: ranks {la.rank} x {lb.rank} -> {prod.rank} "
          f"(<= min, eqs. 1-4), error {err:.1e}")

    # --- extend-add with padding (Figure 4) ------------------------------
    big = rrqr_compress(interaction_matrix(rng, size + 80, size + 60), tol)
    updated = lr2lr_update(big, prod, 40, 30, tol, "rrqr")
    ref_big = big.to_dense()
    ref_big[40:40 + size, 30:30 + size] -= ref
    err = np.linalg.norm(updated.to_dense() - ref_big) / \
        np.linalg.norm(ref_big)
    print(f"lr2lr extend-add: target rank {big.rank} -> {updated.rank}, "
          f"error {err:.1e}")


if __name__ == "__main__":
    main()
