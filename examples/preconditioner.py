#!/usr/bin/env python
"""Using the BLR factorization as a preconditioner (paper §4.4, Figure 8).

A low-tolerance (τ = 1e-4 / 1e-8) Minimal Memory factorization costs a
fraction of the dense factorization's memory, and GMRES (general matrices)
or CG (SPD matrices) preconditioned with it converges to machine precision
in a few iterations.  This example reproduces that workflow on two
workloads from the evaluation suite:

* a nonsymmetric convection–diffusion operator (the Atmosmodj proxy),
  refined with GMRES;
* a heterogeneous reservoir-style Poisson problem (the Serena proxy, SPD),
  factored with Cholesky and refined with CG.

Usage::

    python examples/preconditioner.py [grid_size]
"""

import sys

import numpy as np

from repro import (
    Solver,
    SolverConfig,
    convection_diffusion_3d,
    heterogeneous_poisson_3d,
)


def study(name: str, a, factotype: str, tolerances=(1e-4, 1e-8)) -> None:
    rng = np.random.default_rng(1)
    b = rng.standard_normal(a.n)
    print(f"\n== {name} (n = {a.n}, factotype = {factotype}) ==")
    for tol in tolerances:
        cfg = SolverConfig.laptop_scale(strategy="minimal-memory",
                                        kernel="rrqr", tolerance=tol,
                                        factotype=factotype)
        solver = Solver(a, cfg)
        stats = solver.factorize()
        res = solver.refine(b, tol=1e-12, maxiter=20)
        trace = " -> ".join(f"{e:.1e}" for e in res.history[:8])
        print(f" tau={tol:.0e}: memory ratio {stats.memory_ratio:.2f}, "
              f"{res.iterations} iterations, final {res.backward_error:.2e}")
        print(f"   convergence: {trace}{' -> ...' if len(res.history) > 8 else ''}")


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 14

    study("convection-diffusion 3D (GMRES refinement)",
          convection_diffusion_3d(nx, peclet=0.6), "lu")
    study("heterogeneous Poisson 3D (CG refinement)",
          heterogeneous_poisson_3d(nx, contrast=1e4), "cholesky")

    print("\nAs in Figure 8: tau=1e-8 needs only a few iterations to reach "
          "1e-12;\ntau=1e-4 converges more slowly but still reaches ~1e-8 "
          "quickly,\nwhile using substantially less memory than the exact "
          "factorization.")


if __name__ == "__main__":
    main()
