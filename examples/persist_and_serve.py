#!/usr/bin/env python
"""Factorize once, persist, and serve many right-hand sides.

The workflow the paper motivates for Minimal Memory at low tolerance
("especially when low accuracy solutions and/or large number of right hand
sides are involved"): pay the factorization once, keep the compact BLR
factors around, and answer solve requests cheaply — here with a save/load
cycle in between, as a long-running service would do across restarts.

Usage::

    python examples/persist_and_serve.py [grid_size] [n_rhs]
"""

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import Solver, SolverConfig, laplacian_3d


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    n_rhs = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    a = laplacian_3d(nx)
    cfg = SolverConfig.laptop_scale(strategy="minimal-memory",
                                    kernel="rrqr", tolerance=1e-8)

    # --- offline: factorize and persist ---------------------------------
    solver = Solver(a, cfg)
    t0 = time.perf_counter()
    stats = solver.factorize()
    t_facto = time.perf_counter() - t0
    archive = Path(tempfile.gettempdir()) / f"lap{nx}_factor.rpz"
    solver.save_factor(archive)
    print(f"n = {a.n}: factorized in {t_facto:.2f}s "
          f"(factors {stats.factor_nbytes / 1e6:.1f} MB, "
          f"{stats.memory_ratio:.2f}x dense)")
    print(f"archive: {archive} ({archive.stat().st_size / 1e6:.1f} MB on disk)\n")

    # --- online: reload and serve ----------------------------------------
    served = Solver.load_factor(a, archive)
    rng = np.random.default_rng(0)
    t0 = time.perf_counter()
    worst = 0.0
    for _ in range(n_rhs):
        b = rng.standard_normal(a.n)
        x = served.solve(b)
        worst = max(worst, served.backward_error(x, b))
    t_solve = time.perf_counter() - t0
    print(f"served {n_rhs} right-hand sides in {t_solve:.2f}s "
          f"({t_solve / n_rhs * 1e3:.1f} ms each), "
          f"worst backward error {worst:.1e}")
    print(f"\none factorization ({t_facto:.2f}s) amortized over solves "
          f"({t_solve / max(t_facto, 1e-9):.0%} of its cost).")
    archive.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
