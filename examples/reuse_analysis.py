#!/usr/bin/env python
"""Reusing the analysis across factorizations (paper §1).

"Note that these steps can be computed once to solve multiple problems
similar in structure but with different numerical values" — the ordering
and the symbolic block structure depend only on the sparsity pattern, so a
time-stepping or parameter-sweep application pays for them once.

This example mimics an implicit time-stepper for a diffusion problem whose
coefficient field drifts over time: the matrix values change every step,
the pattern never does.  ``Solver.update_values`` swaps the values in while
keeping the cached analysis; the per-step cost is then just the numerical
factorization (or even just solves, if the matrix is reused across several
steps as a frozen preconditioner with refinement).

Usage::

    python examples/reuse_analysis.py [grid_size] [steps]
"""

import sys
import time

import numpy as np

from repro import Solver, SolverConfig
from repro.sparse.generators import heterogeneous_poisson_3d


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    cfg = SolverConfig.laptop_scale(strategy="just-in-time",
                                    factotype="cholesky", tolerance=1e-8)
    a0 = heterogeneous_poisson_3d(nx, contrast=1e3, seed=0)
    solver = Solver(a0, cfg)

    t0 = time.perf_counter()
    solver.analyze()
    analysis_time = time.perf_counter() - t0
    print(f"n = {a0.n}; one-off analysis: {analysis_time:.2f}s "
          f"({solver.symbolic.ncblk} column blocks)\n")

    rng = np.random.default_rng(42)
    x = np.zeros(a0.n)
    print(f"{'step':>5} {'refactor(s)':>12} {'solve(s)':>9} "
          f"{'backward err':>13}")
    for step in range(steps):
        # the coefficient field drifts: same layers, new permeabilities
        a_t = heterogeneous_poisson_3d(nx, contrast=1e3, seed=step)
        solver.update_values(a_t)          # keeps the cached analysis

        t0 = time.perf_counter()
        solver.factorize()
        refacto = time.perf_counter() - t0

        b = rng.standard_normal(a_t.n) + x  # source + previous state
        t0 = time.perf_counter()
        x = solver.solve(b)
        tsolve = time.perf_counter() - t0
        print(f"{step:>5} {refacto:12.2f} {tsolve:9.3f} "
              f"{solver.backward_error(x, b):13.2e}")

    print(f"\nanalysis was run once ({analysis_time:.2f}s) and amortized "
          f"over {steps} factorizations.")


if __name__ == "__main__":
    main()
