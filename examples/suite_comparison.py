#!/usr/bin/env python
"""Run the full evaluation suite (proxies of the paper's six matrices).

For each matrix the three strategies are compared on factorization time,
update flops (the machine-independent cost), factor memory and backward
error — the per-matrix view behind Figures 5 and 6.

Usage::

    python examples/suite_comparison.py [scale]

``scale`` ∈ {tiny, small, medium} controls problem sizes (default small).
"""

import sys
import time

import numpy as np

from repro import Solver, SolverConfig
from repro.sparse.generators import (
    anisotropic_laplacian_3d,
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    laplacian_3d,
)

SCALES = {
    "tiny": dict(lap=8, atmos=8, audi=4, hook=(8, 3, 3), serena=8, geo=8),
    "small": dict(lap=14, atmos=14, audi=7, hook=(16, 5, 5), serena=14,
                  geo=14),
    "medium": dict(lap=20, atmos=20, audi=10, hook=(24, 7, 7), serena=20,
                   geo=20),
}


def build_suite(scale: str):
    p = SCALES[scale]
    return {
        "lap": (laplacian_3d(p["lap"]), "lu"),
        "atmosmodj*": (convection_diffusion_3d(p["atmos"]), "lu"),
        "audi*": (elasticity_3d(p["audi"]), "cholesky"),
        "hook*": (elasticity_3d(*p["hook"]), "cholesky"),
        "serena*": (heterogeneous_poisson_3d(p["serena"]), "cholesky"),
        "geo1438*": (anisotropic_laplacian_3d(p["geo"]), "lu"),
    }


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    suite = build_suite(scale)
    tol = 1e-8
    rng = np.random.default_rng(0)

    print(f"suite scale = {scale}, tau = {tol:.0e} "
          "(* = synthetic proxy of the paper's matrix)\n")
    print(f"{'matrix':>12} {'n':>7} | {'strategy':>15} {'time(s)':>8} "
          f"{'Gflops':>7} {'mem':>6} {'backward':>10}")
    for name, (a, factotype) in suite.items():
        b = rng.standard_normal(a.n)
        for strategy in ("dense", "just-in-time", "minimal-memory"):
            cfg = SolverConfig.laptop_scale(strategy=strategy, tolerance=tol,
                                            factotype=factotype)
            solver = Solver(a, cfg)
            t0 = time.perf_counter()
            stats = solver.factorize()
            dt = time.perf_counter() - t0
            err = solver.backward_error(solver.solve(b), b)
            print(f"{name:>12} {a.n:>7} | {strategy:>15} {dt:8.2f} "
                  f"{stats.kernels.total_flops() / 1e9:7.2f} "
                  f"{stats.memory_ratio:6.3f} {err:10.1e}")
        print()


if __name__ == "__main__":
    main()
