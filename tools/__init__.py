"""Developer tooling for the repro solver (not shipped with the package)."""
