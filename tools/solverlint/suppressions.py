"""Suppression inventory and budget gate.

``--suppressions report.json`` writes a machine-readable inventory of every
``# solverlint: ignore[...]`` pragma in the tree (rule, file, line,
justification, and the pragma's age in commits via ``git blame``), so
suppressions are reviewable artifacts instead of scattered comments.

``--check-suppressions report.json`` is the CI budget gate: it fails when
the tree holds more pragmas than the committed report records — growing the
suppression count therefore forces regenerating (and reviewing) the report
in the same diff.  Shrinkage passes and only warns that the report is stale.

The git queries are best-effort: outside a git checkout (or when blame
fails) ``age_in_commits`` is ``null`` and the gate still works — it only
needs the counts.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from tools.solverlint.core import scan_pragmas


def _python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _blame_age(path: Path, line: int) -> Optional[int]:
    """How many commits ago the pragma's line was last touched (0 = HEAD)."""
    try:
        blame = subprocess.run(
            ["git", "blame", "-L", f"{line},{line}", "--line-porcelain",
             "--", path.name],
            cwd=path.parent, capture_output=True, text=True, timeout=30)
        if blame.returncode != 0 or not blame.stdout:
            return None
        sha = blame.stdout.split(None, 1)[0]
        if not sha or set(sha) == {"0"}:
            return 0  # uncommitted line
        count = subprocess.run(
            ["git", "rev-list", "--count", f"{sha}..HEAD"],
            cwd=path.parent, capture_output=True, text=True, timeout=30)
        if count.returncode != 0:
            return None
        return int(count.stdout.strip())
    except (OSError, ValueError, subprocess.SubprocessError):
        return None


def collect(paths: Iterable[str]) -> List[Dict[str, object]]:
    """Every (pragma, rule) pair in the tree, one entry per suppressed rule."""
    entries: List[Dict[str, object]] = []
    for f in _python_files(paths):
        try:
            source = f.read_text(encoding="utf-8")
        except OSError:
            continue
        pragmas = scan_pragmas(source)
        if not pragmas:
            continue
        for sup in pragmas.values():
            age = _blame_age(f, sup.line)
            for rule in sup.rules:
                entries.append({
                    "rule": rule,
                    "file": str(f),
                    "line": sup.line,
                    "reason": sup.reason,
                    "age_in_commits": age,
                })
    entries.sort(key=lambda e: (str(e["file"]), int(e["line"]), str(e["rule"])))
    return entries


def build_report(paths: Iterable[str]) -> Dict[str, object]:
    entries = collect(paths)
    by_rule: Dict[str, int] = {}
    for e in entries:
        by_rule[str(e["rule"])] = by_rule.get(str(e["rule"]), 0) + 1
    return {
        "total": len(entries),
        "by_rule": dict(sorted(by_rule.items())),
        "suppressions": entries,
    }


def write_report(paths: Iterable[str], out_path: str) -> Dict[str, object]:
    report = build_report(paths)
    Path(out_path).write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
    return report


def check_budget(paths: Iterable[str],
                 report_path: str) -> Tuple[bool, str]:
    """Gate: the tree may not hold more pragmas than the committed report."""
    try:
        recorded = json.loads(Path(report_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return False, (f"cannot read suppression report {report_path!r} "
                       f"({exc}); regenerate it with --suppressions")
    current = build_report(paths)
    rec_total = int(recorded.get("total", 0))
    cur_total = int(current["total"])
    if cur_total > rec_total:
        new = _diff_entries(current, recorded)
        listing = "\n".join(
            f"  {e['file']}:{e['line']}: ignore[{e['rule']}] -- "
            f"{e['reason'] or '(no justification)'}" for e in new)
        return False, (
            f"suppression budget exceeded: {cur_total} pragma(s) in tree "
            f"but {report_path} records {rec_total}.  New suppressions:\n"
            f"{listing}\n"
            f"Regenerate the report in the same diff:\n"
            f"  python -m tools.solverlint --suppressions {report_path}")
    if cur_total < rec_total:
        return True, (f"suppression report {report_path} is stale "
                      f"({rec_total} recorded, {cur_total} in tree) — "
                      f"consider regenerating")
    return True, f"suppression budget ok ({cur_total} pragma(s))"


def _diff_entries(current: Dict[str, object],
                  recorded: Dict[str, object]) -> List[Dict[str, object]]:
    def keys(report: Dict[str, object]) -> Dict[Tuple[str, str], int]:
        out: Dict[Tuple[str, str], int] = {}
        for e in report.get("suppressions", []):  # type: ignore[union-attr]
            k = (str(e["file"]), str(e["rule"]))
            out[k] = out.get(k, 0) + 1
        return out

    rec = keys(recorded)
    new: List[Dict[str, object]] = []
    for e in current.get("suppressions", []):  # type: ignore[union-attr]
        k = (str(e["file"]), str(e["rule"]))
        if rec.get(k, 0) > 0:
            rec[k] -= 1
        else:
            new.append(e)  # type: ignore[arg-type]
    return new
