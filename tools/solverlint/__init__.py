"""solverlint — domain-specific static analysis for the repro solver.

The solver maintains three hard invariants that reviewers cannot reliably
police by eye (see ``docs/static-analysis.md``):

1. **dtype discipline** — kernels never silently promote a float32/complex64
   factorization to 64-bit through a dtype-less allocation or a hard-coded
   Python scalar type;
2. **pure-transpose low-rank storage** — conjugation appears only at the
   declared Hermitian adjoint surface;
3. **pull-mode concurrency** — scheduler workers mutate shared state only
   under the designated lock, and never swallow exceptions.

``solverlint`` encodes each invariant as an AST rule (plus a strict-typing
gate, ``missing-annotations``, that enforces fully annotated definitions so
``mypy --strict`` stays green).  Run it with::

    python -m tools.solverlint src/repro

Findings can be suppressed line-by-line with a justified pragma::

    x = a.conj()  # solverlint: ignore[conjugation-at-adjoint] -- Hermitian residual norm
"""

from tools.solverlint.core import (
    Finding,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    register,
)

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "register",
]
