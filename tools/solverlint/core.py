"""Rule registry, pragma handling and the file/tree runner.

A :class:`Rule` inspects one parsed module and yields raw findings; a
:class:`ProjectRule` inspects *every* in-scope module at once (the lockset
engine follows call chains across files).  The runner matches raw findings
against ``# solverlint: ignore[rule]`` pragmas, attaches suppression state,
and (optionally) reports unused or unjustified pragmas.

The framework is deliberately dependency-free (``ast`` + ``re`` only) so the
gate runs anywhere the package itself runs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: pragma grammar: ``# solverlint: ignore[rule-a, rule-b] -- justification``
PRAGMA_RE = re.compile(
    r"#\s*solverlint:\s*ignore\[([A-Za-z0-9_\-, ]+)\]"
    r"(?:\s*(?:--|—)\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, after suppression matching."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    reason: str = ""

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{tag}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# solverlint: ignore[...]`` pragma."""

    line: int
    rules: Tuple[str, ...]
    reason: str


class FileContext:
    """Everything a rule may want to know about the module under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions = scan_pragmas(source)

    @property
    def parts(self) -> Tuple[str, ...]:
        return Path(self.path).parts

    @property
    def basename(self) -> str:
        return Path(self.path).name


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`name`, :attr:`description` and :attr:`invariant`
    and implement :meth:`check`, yielding ``(line, col, message)`` triples.
    :meth:`applies_to` restricts a rule to the subtree it guards; the runner
    skips out-of-scope files unless scoping is disabled (fixture tests).
    """

    name: str = ""
    description: str = ""
    #: the solver invariant the rule enforces (shown by ``--list-rules``)
    invariant: str = ""
    #: directory components any of which places a file in scope
    #: (``None`` = every file)
    scope_dirs: Optional[Tuple[str, ...]] = None
    #: file basenames excluded even when a scope dir matches
    scope_exclude: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.basename in self.scope_exclude:
            return False
        if self.scope_dirs is None:
            return True
        return any(part in self.scope_dirs for part in ctx.parts)

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that analyses every in-scope file at once.

    Subclasses implement :meth:`check_project`, yielding
    ``(path, line, col, message)`` quadruples over the whole fileset —
    the lockset engine needs the cross-file call graph (a worker closure in
    ``scheduler.py`` reaching a mutation in ``factorization.py``).  When run
    through :func:`lint_file` the "project" is that single file, so fixture
    tests and editor integrations still work per-file.
    """

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[Tuple[str, int, int, str]]:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        for _path, line, col, message in self.check_project([ctx]):
            yield line, col, message


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """Name → rule instance for every registered rule (imports them)."""
    import tools.solverlint.rules  # noqa: F401  -- registration side effect

    return dict(_REGISTRY)


def scan_pragmas(source: str) -> Dict[int, Suppression]:
    """Parse every suppression pragma, keyed by 1-based physical line."""
    out: Dict[int, Suppression] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        m = PRAGMA_RE.search(text)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
        out[i] = Suppression(line=i, rules=rules, reason=m.group("reason") or "")
    return out


def _statement_lines(tree: ast.Module) -> Dict[int, int]:
    """Map every line of a multi-line statement to the statement's first line.

    A pragma on the opening line of a statement suppresses findings anywhere
    inside that statement (long wrapped calls put the finding's column on a
    continuation line).
    """
    first: Dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and getattr(node, "end_lineno", None):
            for ln in range(node.lineno, int(node.end_lineno) + 1):
                # innermost statement wins: later (deeper) nodes overwrite
                # only when they start later than the recorded opener
                if ln not in first or node.lineno > first[ln]:
                    first[ln] = node.lineno
    return first


def _load_context(path: str) -> Tuple[Optional[FileContext], Optional[Finding]]:
    """Parse one file into a :class:`FileContext` (or a syntax finding)."""
    source = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            rule="syntax-error",
            path=path,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0),
            message=f"cannot parse file: {exc.msg}",
        )
    return FileContext(path, source, tree), None


def _lint_contexts(
    ctxs: Sequence[FileContext],
    rules: Optional[Sequence[Rule]] = None,
    enforce_scope: bool = True,
    warn_unused_ignores: bool = False,
    require_justification: bool = False,
) -> List[Finding]:
    """Run rules over pre-parsed contexts and match suppressions.

    Per-file rules run file by file; project rules run once over every
    in-scope context so they can follow cross-file call chains.  Raw
    findings are then matched against each file's pragmas.
    """
    active = list(rules if rules is not None else all_rules().values())
    file_rules = [r for r in active if not isinstance(r, ProjectRule)]
    project_rules = [r for r in active if isinstance(r, ProjectRule)]

    by_path: Dict[str, FileContext] = {ctx.path: ctx for ctx in ctxs}
    #: path → raw (rule_name, line, col, message) findings
    raw: Dict[str, List[Tuple[str, int, int, str]]] = {
        ctx.path: [] for ctx in ctxs
    }
    #: path → names of rules that actually ran on that file
    ran: Dict[str, set] = {ctx.path: set() for ctx in ctxs}

    for ctx in ctxs:
        for rule in file_rules:
            if enforce_scope and not rule.applies_to(ctx):
                continue
            ran[ctx.path].add(rule.name)
            for line, col, message in rule.check(ctx):
                raw[ctx.path].append((rule.name, line, col, message))
    for rule in project_rules:
        scoped = [
            ctx for ctx in ctxs
            if not enforce_scope or rule.applies_to(ctx)
        ]
        for ctx in scoped:
            ran[ctx.path].add(rule.name)
        if not scoped:
            continue
        for path, line, col, message in rule.check_project(scoped):
            raw.setdefault(path, []).append((rule.name, line, col, message))

    known = set(all_rules())
    findings: List[Finding] = []
    for ctx in ctxs:
        stmt_openers = _statement_lines(ctx.tree)
        used_pragmas: set = set()
        for rule_name, line, col, message in raw[ctx.path]:
            sup = _matching_suppression(
                ctx.suppressions, rule_name, line, stmt_openers
            )
            if sup is not None:
                used_pragmas.add(sup.line)
                findings.append(
                    Finding(rule_name, ctx.path, line, col, message,
                            suppressed=True, reason=sup.reason)
                )
            else:
                findings.append(Finding(rule_name, ctx.path, line, col, message))
        active_names = ran[ctx.path]
        for sup in ctx.suppressions.values():
            unknown = [r for r in sup.rules if r not in known]
            for r in unknown:
                findings.append(
                    Finding("unknown-rule", ctx.path, sup.line, 0,
                            f"pragma references unknown rule {r!r}")
                )
            if require_justification and not sup.reason:
                findings.append(
                    Finding(
                        "unjustified-suppression", ctx.path, sup.line, 0,
                        "suppression pragma lacks a justification "
                        "(append ' -- <one-line reason>')",
                    )
                )
            # a pragma for a rule excluded from this run (--rules subset) is
            # not "unused" — only warn when every pragma rule actually ran
            if (warn_unused_ignores and sup.line not in used_pragmas
                    and not unknown
                    and all(r in active_names for r in sup.rules)):
                findings.append(
                    Finding(
                        "unused-suppression", ctx.path, sup.line, 0,
                        f"pragma suppresses {', '.join(sup.rules)} but no such "
                        "finding fires on this line",
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    enforce_scope: bool = True,
    warn_unused_ignores: bool = False,
    require_justification: bool = False,
) -> List[Finding]:
    """Lint one file; returns findings (suppressed ones included)."""
    ctx, error = _load_context(path)
    if ctx is None:
        assert error is not None
        return [error]
    return _lint_contexts(
        [ctx],
        rules=rules,
        enforce_scope=enforce_scope,
        warn_unused_ignores=warn_unused_ignores,
        require_justification=require_justification,
    )


def _matching_suppression(
    suppressions: Dict[int, Suppression],
    rule_name: str,
    line: int,
    stmt_openers: Dict[int, int],
) -> Optional[Suppression]:
    """A finding is suppressed by a pragma on its own line, on the previous
    line, or on the opening line of its (multi-line) statement."""
    candidates = [line, line - 1, stmt_openers.get(line, line)]
    for ln in candidates:
        sup = suppressions.get(ln)
        if sup is not None and rule_name in sup.rules:
            return sup
    return None


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    enforce_scope: bool = True,
    warn_unused_ignores: bool = False,
    require_justification: bool = False,
) -> List[Finding]:
    """Lint files and directory trees (``*.py``, sorted, recursive).

    All files are parsed up front so project rules see the whole fileset
    in one pass (the lockset engine's cross-file call graph).
    """
    files: List[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    ctxs: List[FileContext] = []
    findings: List[Finding] = []
    for f in files:
        ctx, error = _load_context(str(f))
        if ctx is None:
            assert error is not None
            findings.append(error)
        else:
            ctxs.append(ctx)
    findings.extend(
        _lint_contexts(
            ctxs,
            rules=rules,
            enforce_scope=enforce_scope,
            warn_unused_ignores=warn_unused_ignores,
            require_justification=require_justification,
        )
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
