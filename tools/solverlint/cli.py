"""Command-line entry point: ``python -m tools.solverlint [paths...]``.

Exit status is 0 when every finding is suppressed (or none fire) and 1
otherwise, so the command slots straight into CI.  ``--format json`` emits a
machine-readable report; ``--list-rules`` documents each rule and the
invariant it enforces.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from tools.solverlint.core import Finding, all_rules, lint_paths

DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.solverlint",
        description="Domain-specific static analysis for the repro solver "
                    "(see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated subset of rules to run (default: all)")
    parser.add_argument(
        "--no-scope", action="store_true",
        help="apply every rule to every file, ignoring per-rule scopes "
             "(used by the fixture tests)")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by pragmas")
    parser.add_argument(
        "--no-warn-unused-ignores", dest="warn_unused", action="store_false",
        help="do not flag pragmas that suppress nothing")
    parser.add_argument(
        "--no-require-justification", dest="require_justification",
        action="store_false",
        help="allow suppression pragmas without a ' -- reason' tail")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe every registered rule and exit")
    parser.add_argument(
        "--suppressions", metavar="PATH", default=None,
        help="write a JSON inventory of every suppression pragma (rule, "
             "file, justification, age-in-commits) to PATH and exit")
    parser.add_argument(
        "--check-suppressions", metavar="PATH", default=None,
        help="budget gate: fail when the tree holds more pragmas than the "
             "report at PATH records (regenerate with --suppressions)")
    return parser


def _list_rules() -> str:
    lines: List[str] = []
    for name, rule in sorted(all_rules().items()):
        scope = ("/".join(rule.scope_dirs) if rule.scope_dirs
                 else "package-wide")
        lines.append(f"{name}  [scope: {scope}]")
        lines.append(f"  {rule.description}")
        lines.append(f"  invariant: {rule.invariant}")
    return "\n".join(lines)


def run(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if args.suppressions:
        from tools.solverlint import suppressions

        report = suppressions.write_report(args.paths, args.suppressions)
        print(f"wrote {report['total']} suppression(s) to "
              f"{args.suppressions}")
        return 0
    if args.check_suppressions:
        from tools.solverlint import suppressions

        ok, message = suppressions.check_budget(
            args.paths, args.check_suppressions)
        print(message, file=sys.stderr if not ok else sys.stdout)
        return 0 if ok else 1
    rules = None
    if args.rules:
        registry = all_rules()
        wanted = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in wanted if r not in registry]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [registry[r] for r in wanted]
    findings = lint_paths(
        args.paths,
        rules=rules,
        enforce_scope=not args.no_scope,
        warn_unused_ignores=args.warn_unused,
        require_justification=args.require_justification,
    )
    active = [f for f in findings if not f.suppressed]
    shown = findings if args.show_suppressed else active
    if args.format == "json":
        print(json.dumps(
            {
                "findings": [f.to_json() for f in shown],
                "total": len(active),
                "suppressed": sum(1 for f in findings if f.suppressed),
            },
            indent=2,
        ))
    else:
        for f in shown:
            print(f.format())
        nsup = sum(1 for f in findings if f.suppressed)
        print(f"solverlint: {len(active)} finding(s), {nsup} suppressed")
    return 1 if active else 0


def describe_findings(findings: Sequence[Finding]) -> str:
    """Human summary used by the test-suite on failure."""
    return "\n".join(f.format() for f in findings)
