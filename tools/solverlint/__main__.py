"""``python -m tools.solverlint`` entry point."""

import sys

from tools.solverlint.cli import run

if __name__ == "__main__":
    sys.exit(run())
