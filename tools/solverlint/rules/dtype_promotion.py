"""``dtype-literal-promotion`` — no silent 64-bit promotion in kernels.

The numeric core is dtype-generic (PR 2): a float32 or complex64
factorization must run float32/complex64 end to end.  The ways that breaks
silently are all allocation-shaped:

* ``np.zeros(...)`` / ``np.empty(...)`` / ``np.ones(...)`` / ``np.eye(...)``
  / ``np.identity(...)`` default to float64 — a workspace allocated this way
  runs the whole kernel in double (this is exactly the bug solverlint was
  built to catch, ``repro/lowrank/rrqr.py`` pre-fix);
* ``dtype=float`` / ``dtype=complex`` (or ``.astype(float)`` /
  ``.astype(complex)``) hard-code the 64-bit Python scalar types;
* a ``np.float64(...)`` / ``np.complex128(...)`` scalar inside array
  arithmetic promotes every narrower operand under NEP 50.

``np.full`` and ``np.array``/``np.asarray`` are exempt (their dtype derives
from the value argument), as are ``*_like`` allocators and ``np.arange``
(index arithmetic).  Allocations whose dtype genuinely *is* a fixed integer,
bool or deliberate 64-bit type satisfy the rule by saying so explicitly
with ``dtype=``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from tools.solverlint.core import FileContext, Rule, register
from tools.solverlint.rules.common import call_keyword, numpy_attr

#: allocators whose default dtype is float64 regardless of their inputs
DEFAULT_FLOAT64_ALLOCATORS = frozenset(
    {"zeros", "empty", "ones", "eye", "identity"}
)

#: Python builtin type names that force 64-bit when used as a dtype
BUILTIN_64BIT = frozenset({"float", "complex"})

#: numpy scalar constructors that promote narrower arrays under NEP 50
PROMOTING_SCALARS = frozenset({"float64", "complex128", "longdouble",
                               "clongdouble"})


@register
class DtypeLiteralPromotionRule(Rule):
    name = "dtype-literal-promotion"
    description = (
        "allocations and casts in the numeric core must carry an explicit "
        "dtype derived from an input array"
    )
    invariant = (
        "dtype-generic kernels never silently promote: a float32/complex64 "
        "factorization stays in its precision end to end"
    )
    scope_dirs = ("core", "lowrank", "sparse")

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(node)
            elif isinstance(node, ast.keyword) and node.arg == "dtype":
                yield from self._check_dtype_value(node.value)
            elif isinstance(node, ast.BinOp):
                yield from self._check_binop(node)

    def _check_call(self, node: ast.Call) -> Iterator[Tuple[int, int, str]]:
        attr = numpy_attr(node.func)
        if attr in DEFAULT_FLOAT64_ALLOCATORS:
            if call_keyword(node, "dtype") is None:
                yield (
                    node.lineno, node.col_offset,
                    f"np.{attr}(...) without dtype= allocates float64; "
                    "derive the dtype from an input array "
                    "(e.g. dtype=a.dtype)",
                )
        elif (isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in BUILTIN_64BIT):
            yield (
                node.lineno, node.col_offset,
                f".astype({node.args[0].id}) forces 64-bit; cast to a dtype "
                "derived from an input array instead",
            )

    def _check_dtype_value(self, value: ast.expr) -> Iterator[Tuple[int, int, str]]:
        if isinstance(value, ast.Name) and value.id in BUILTIN_64BIT:
            yield (
                value.lineno, value.col_offset,
                f"dtype={value.id} is the 64-bit Python scalar type; use an "
                "input array's dtype (or an explicit np.float64 if 64-bit "
                "is genuinely intended)",
            )

    def _check_binop(self, node: ast.BinOp) -> Iterator[Tuple[int, int, str]]:
        for side in (node.left, node.right):
            if isinstance(side, ast.Call):
                attr = numpy_attr(side.func)
                if attr in PROMOTING_SCALARS:
                    yield (
                        side.lineno, side.col_offset,
                        f"np.{attr}(...) scalar inside arithmetic promotes "
                        "narrower arrays to 64-bit (NEP 50); build the "
                        "scalar in the operand's dtype",
                    )
