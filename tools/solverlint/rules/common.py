"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: module aliases numpy is imported under in this codebase
NUMPY_NAMES = ("np", "numpy", "_np")


def numpy_attr(node: ast.expr) -> Optional[str]:
    """``np.foo`` / ``numpy.foo`` → ``"foo"``; anything else → None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in NUMPY_NAMES):
        return node.attr
    return None


def call_keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name``, or None."""
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def walk_functions(tree: ast.Module) -> Iterator[Tuple[FunctionNode, List[FunctionNode]]]:
    """Yield every function with its stack of enclosing functions."""
    stack: List[FunctionNode] = []

    def visit(node: ast.AST) -> Iterator[Tuple[FunctionNode, List[FunctionNode]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, list(stack)
                stack.append(child)
                yield from visit(child)
                stack.pop()
            else:
                yield from visit(child)

    yield from visit(tree)


def local_names(fn: FunctionNode) -> Set[str]:
    """Names bound inside ``fn`` itself: parameters, assignment targets,
    loop/with/except/comprehension bindings and nested def/class names.

    Bindings inside nested functions are *not* locals of ``fn``.
    """
    names: Set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)

    def collect_target(t: ast.expr) -> None:
        if isinstance(t, ast.Name):
            names.add(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            for el in t.elts:
                collect_target(el)
        elif isinstance(t, ast.Starred):
            collect_target(t.value)

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                names.add(child.name)
                continue  # nested scopes bind their own locals
            if isinstance(child, (ast.Assign, ast.For, ast.AsyncFor)):
                targets = (child.targets if isinstance(child, ast.Assign)
                           else [child.target])
                for t in targets:
                    collect_target(t)
            elif isinstance(child, ast.AnnAssign):
                collect_target(child.target)
            elif isinstance(child, ast.AugAssign):
                collect_target(child.target)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        collect_target(item.optional_vars)
            elif isinstance(child, ast.ExceptHandler):
                if child.name:
                    names.add(child.name)
            elif isinstance(child, (ast.ListComp, ast.SetComp, ast.DictComp,
                                    ast.GeneratorExp)):
                continue  # comprehensions have their own scope (py3)
            elif isinstance(child, ast.NamedExpr):
                collect_target(child.target)
            visit(child)

    visit(fn)
    return names


def base_name(node: ast.expr) -> Optional[str]:
    """The root ``Name`` of a ``name[...]`` / ``name.attr`` chain."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def get_docstring(node: ast.AST) -> str:
    try:
        return ast.get_docstring(node) or ""  # type: ignore[arg-type]
    except TypeError:
        return ""


def dump_no_ctx(node: ast.expr) -> str:
    """Structural fingerprint of an expression, ignoring load/store ctx."""
    return ast.dump(node, annotate_fields=False, include_attributes=False)
