"""``backend-bypass`` — all hot-path numerics go through the KernelBackend.

PR 6 routed every GEMM/TRSM/GETRF of the factorization through the
:class:`repro.core.backend.KernelBackend` protocol so backends can be
swapped, counted and conformance-tested; a direct ``np.linalg`` /
``np.dot`` / ``scipy`` call inside ``core/`` or ``lowrank/`` silently
bypasses that accounting and pins the code to one implementation (the
JOREK MUMPS/PaStiX study shows how unnoticed dense fallbacks erode BLR's
wins at scale).  This rule flags direct numeric *calls* — references such
as ``except np.linalg.LinAlgError`` are fine — outside the sanctioned
numeric surface:

* ``backend.py`` and ``dense_kernels.py`` (the protocol and its reference
  implementation) and the decomposition kernels that *are* the
  compression backend (``rrqr.py``, ``svd.py``, ``aca.py``,
  ``randomized.py``, ``recompress.py``) — these wrap LAPACK directly by
  design;
* ``refinement.py`` — iterative refinement operates on full-length
  vectors, not blocks, outside the blocked-kernel protocol;
* **declared cold paths**: any enclosing function whose docstring
  mentions ``cold path`` or ``diagnostic`` (case-insensitive), mirroring
  the conjugation rule's declared-adjoint surface — one-shot diagnostics
  like ``backward_error`` declare themselves where they live.

Everything else needs a justified pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from tools.solverlint.core import FileContext, Rule, register
from tools.solverlint.rules.common import FunctionNode, get_docstring

#: numpy module aliases (mirrors common.NUMPY_NAMES)
_NUMPY_NAMES = ("np", "numpy", "_np")

#: scipy module aliases used in this codebase
_SCIPY_NAMES = ("scipy", "sla", "spla")

#: top-level numpy functions that are numeric kernels (not array plumbing)
_NUMPY_NUMERIC = frozenset({
    "dot", "matmul", "vdot", "inner", "outer", "einsum", "tensordot",
    "kron", "solve", "lstsq",
})

#: docstring markers declaring a function a sanctioned cold path
COLD_PATH_MARKERS = ("cold path", "diagnostic")


def _bypass_call(node: ast.Call) -> Optional[str]:
    """The dotted name of a backend-bypassing numeric call, or ``None``."""
    fn = node.func
    if not isinstance(fn, ast.Attribute):
        return None
    # np.linalg.<anything>(...)
    if (isinstance(fn.value, ast.Attribute)
            and fn.value.attr == "linalg"
            and isinstance(fn.value.value, ast.Name)
            and fn.value.value.id in _NUMPY_NAMES):
        return f"{fn.value.value.id}.linalg.{fn.attr}"
    if isinstance(fn.value, ast.Name):
        root = fn.value.id
        # np.dot / np.einsum / ... (numeric kernels only)
        if root in _NUMPY_NAMES and fn.attr in _NUMPY_NUMERIC:
            return f"{root}.{fn.attr}"
        # scipy.* / sla.* — any scipy call is backend territory here
        if root in _SCIPY_NAMES:
            return f"{root}.{fn.attr}"
    return None


def _cold_path_declared(fn_stack: List[FunctionNode]) -> bool:
    for fn in fn_stack:
        doc = get_docstring(fn).lower()
        if any(marker in doc for marker in COLD_PATH_MARKERS):
            return True
    return False


@register
class BackendBypassRule(Rule):
    """Direct numeric calls must route through the KernelBackend."""

    name = "backend-bypass"
    description = (
        "no direct np.linalg/np.dot/scipy numeric calls inside core/ and "
        "lowrank/ outside backend.py and declared cold paths (docstring "
        "mentions 'cold path' or 'diagnostic')")
    invariant = (
        "every hot-path GEMM/TRSM/factorization kernel routes through the "
        "KernelBackend protocol, so backend accounting, conformance tests "
        "and backend swaps see all the flops")
    scope_dirs = ("core", "lowrank")
    scope_exclude = (
        "backend.py", "dense_kernels.py", "rrqr.py", "svd.py", "aca.py",
        "randomized.py", "recompress.py", "refinement.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        stack: List[FunctionNode] = []

        def visit(node: ast.AST) -> Iterator[Tuple[int, int, str]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    stack.append(child)
                    yield from visit(child)
                    stack.pop()
                    continue
                if isinstance(child, ast.Call):
                    dotted = _bypass_call(child)
                    if dotted is not None and not _cold_path_declared(stack):
                        yield (child.lineno, child.col_offset,
                               f"direct numeric call {dotted}() bypasses "
                               f"the KernelBackend protocol; route it "
                               f"through fac.backend / get_backend() or "
                               f"declare the function a cold path")
                yield from visit(child)

        yield from visit(ctx.tree)
