"""``variant-literal`` — strategy decisions go through the variant engine.

PR 7 made the BLR variant space explicit: loop orders (``cuf``/``ucf``/
``ufc``/``fuc``) and the legacy strategy aliases (``minimal-memory``,
``just-in-time``) resolve once, in ``core/variants.py`` /
``config.py``, into a :class:`~repro.core.variants.BlrVariant` whose
predicates (``compress_at_assembly`` …) drive the engines.  A string
comparison against one of those literals anywhere else re-implements the
dispatch ad hoc and silently diverges when the variant space grows (a new
loop order, a new alias) — exactly the "silent fallback" erosion the
JOREK study documents.

The rule flags *comparisons* only (``==``/``!=``/``in``/``not in``
against the known literals).  Dict constructions (``STRATEGY_LADDER``),
argparse ``choices=...`` lists and docstrings are not comparisons and do
not fire.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from tools.solverlint.core import FileContext, Rule, register

#: strategy aliases and loop orders owned by the variant engine
VARIANT_LITERALS = frozenset({
    "minimal-memory", "just-in-time", "cuf", "ucf", "ufc", "fuc",
})

_COMPARE_OPS = (ast.Eq, ast.NotEq, ast.In, ast.NotIn)


def _literals_in(expr: ast.expr) -> Iterator[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        if expr.value in VARIANT_LITERALS:
            yield expr.value
    elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for elt in expr.elts:
            yield from _literals_in(elt)


@register
class VariantLiteralRule(Rule):
    """Variant/strategy literals are compared only inside the engine."""

    name = "variant-literal"
    description = (
        "no \"minimal-memory\"/\"just-in-time\"/loop-order string "
        "comparisons outside core/variants.py and config.py — use the "
        "BlrVariant predicates or resolve_variant() instead")
    invariant = (
        "strategy and loop-order dispatch happens exactly once, through "
        "the variant engine; growing the variant space cannot silently "
        "miss an ad-hoc string comparison elsewhere")
    scope_exclude = ("variants.py", "config.py")

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, _COMPARE_OPS) for op in node.ops):
                continue
            hits = set(_literals_in(node.left))
            for comp in node.comparators:
                hits.update(_literals_in(comp))
            if hits:
                lits = ", ".join(sorted(repr(h) for h in hits))
                yield (node.lineno, node.col_offset,
                       f"comparison against variant literal(s) {lits} "
                       f"outside the variant engine; use BlrVariant "
                       f"predicates / resolve_variant() so new orders "
                       f"and aliases cannot be missed")
