"""``missing-annotations`` — the strict-typing gate.

``src/repro`` ships ``py.typed`` and is held to ``mypy --strict``; the
first thing strict mode demands is that every definition is fully annotated
(``disallow_untyped_defs`` / ``disallow_incomplete_defs``).  mypy itself is
not importable in every environment this repo builds in, so this rule
enforces the annotation part of the contract with zero dependencies: every
function — including nested helpers and closures — must annotate all
parameters (``self``/``cls`` excepted) and its return type.

This does not replace mypy (no inference, no call-site checking — CI runs
the real ``mypy --strict`` gate); it guarantees the *surface* stays fully
annotated so strict mode has something to check.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from tools.solverlint.core import FileContext, Rule, register
from tools.solverlint.rules.common import FunctionNode, walk_functions


@register
class MissingAnnotationsRule(Rule):
    name = "missing-annotations"
    description = (
        "every function (nested ones included) must annotate all "
        "parameters and its return type"
    )
    invariant = (
        "src/repro passes mypy --strict; fully annotated definitions are "
        "the precondition"
    )
    scope_dirs = None  # package-wide

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        for fn, stack in walk_functions(ctx.tree):
            missing = self._missing_of(fn, stack)
            if missing:
                yield (
                    fn.lineno, fn.col_offset,
                    f"'{fn.name}' is missing annotations: "
                    + ", ".join(missing),
                )

    @staticmethod
    def _missing_of(fn: FunctionNode, stack: List[FunctionNode]) -> List[str]:
        missing: List[str] = []
        args = fn.args
        ordered = [*args.posonlyargs, *args.args]
        skip_first = bool(ordered) and ordered[0].arg in ("self", "cls")
        params = ordered[1:] if skip_first else ordered
        for a in (*params, *args.kwonlyargs):
            if a.annotation is None:
                missing.append(f"parameter '{a.arg}'")
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"parameter '*{args.vararg.arg}'")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"parameter '**{args.kwarg.arg}'")
        if fn.returns is None:
            missing.append("return type")
        return missing
