"""``python-hot-loop`` — no per-element Python loops in numeric kernels.

The factorization/compression kernels are the Θ(n³)-adjacent hot paths; a
per-element Python loop there is 100-1000× slower than the vectorized or
BLAS form and silently dominates the runtime on large problems.  Legitimate
*per-column* / *per-block* loops (a Householder sweep doing vectorized work
per step) are fine — the smell is element-wise indexing on **both** sides of
an assignment inside a ``for i in range(...)`` loop, i.e.

    for i in range(n):
        y[i] = y[i] + a[i] * x[i]      # flagged: element-wise in Python

    for k in range(rank):              # not flagged: vectorized body
        w[k:, k:] -= np.outer(v, tau * (v @ w[k:, k:]))

Mechanically: a ``for`` whose iterator is ``range(...)`` is flagged when its
body contains an assignment whose *target* subscripts with the loop variable
as a bare (scalar, non-slice) index **and** whose *value* also subscripts
with the loop variable — reading and writing single elements per iteration.
Scalar bookkeeping (``taus[k] = tau``) and slice assignments are exempt.

Scope: the numeric kernels (``core``/``lowrank``) minus the orchestration
modules (scheduler/solver/serialize), whose Python loops walk task graphs,
not array elements.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from tools.solverlint.core import FileContext, Rule, register


def _range_loop_var(node: ast.For) -> Optional[str]:
    it = node.iter
    if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and isinstance(node.target, ast.Name)):
        return node.target.id
    return None


def _subscripts_with_var(expr: ast.expr, var: str) -> bool:
    """True when ``expr`` contains ``x[.., var, ..]`` with ``var`` a bare
    scalar index element (not inside a slice bound)."""
    for node in ast.walk(expr):
        if not isinstance(node, ast.Subscript):
            continue
        index = node.slice
        elements = index.elts if isinstance(index, ast.Tuple) else [index]
        for el in elements:
            if isinstance(el, ast.Name) and el.id == var:
                return True
    return False


@register
class PythonHotLoopRule(Rule):
    name = "python-hot-loop"
    description = (
        "per-element Python loops over ndarrays are forbidden in "
        "factorization/compression kernels"
    )
    invariant = (
        "hot-path work runs vectorized (numpy/BLAS); Python-level loops may "
        "step over columns/blocks, never over elements"
    )
    scope_dirs = ("core", "lowrank")
    scope_exclude = ("scheduler.py", "solver.py", "serialize.py")

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            var = _range_loop_var(node)
            if var is None:
                continue
            for stmt in ast.walk(node):
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    targets = (stmt.targets if isinstance(stmt, ast.Assign)
                               else [stmt.target])
                    value_hits = _subscripts_with_var(stmt.value, var)
                    if not value_hits:
                        continue
                    for t in targets:
                        if isinstance(t, ast.Subscript) and \
                                _subscripts_with_var(t, var):
                            yield (
                                stmt.lineno, stmt.col_offset,
                                f"per-element loop over '{var}': reads and "
                                "writes single array elements each "
                                "iteration; vectorize this kernel",
                            )
                            break
