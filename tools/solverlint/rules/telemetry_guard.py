"""``telemetry-guard`` — every telemetry/profiler call is dominated by a
None check.

``SolverConfig.telemetry`` and ``SolverConfig.profiler`` default to
``None`` and the whole observability layer's contract is "disabled costs
one attribute load and a None test".  Any ``X.telemetry.method(...)`` or
``X.profiler.method(...)`` call not dominated by an ``is not None`` check
crashes every non-instrumented run the moment the code path executes —
and such paths are exactly the rarely-exercised ones (recovery, fault
fallbacks).

The rule tracks, per function:

* direct call chains ``X.telemetry.m(...)`` / ``X.profiler.m(...)`` —
  guarded when a dominating test established the base ``is not None``;
* aliases ``tele = X.telemetry`` / ``prof = X.profiler`` (including
  closures captured by nested worker functions) — calls through the
  alias are guarded by ``tele is not None``.

Recognised guard forms: ``if x is not None: ...``, the early exit
``if x is None: return/raise/continue/break``, ``and``-conjoined tests
(``stats is not None and stats.telemetry is not None``), ternaries
(``... if x is None else x.m()``), ``while`` tests and ``assert``.
Guards never cross a function boundary (a closure must re-test).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.solverlint.core import FileContext, Rule, register
from tools.solverlint.rules.common import dump_no_ctx

#: attribute names holding optional observability objects (both default
#: to None on SolverConfig, with the same one-guarded-test contract)
_GUARDED_ATTRS = ("telemetry", "profiler")


def _key_of(expr: ast.expr, aliases: Dict[str, bool]) -> Optional[str]:
    """Guard-fact key of an expression that may hold a telemetry bus
    or span profiler."""
    if isinstance(expr, ast.Name):
        if expr.id in aliases:
            return f"name:{expr.id}"
        return None
    if isinstance(expr, ast.Attribute) and expr.attr in _GUARDED_ATTRS:
        return f"expr:{dump_no_ctx(expr)}"
    return None


def _split_facts(test: ast.expr, aliases: Dict[str, bool]
                 ) -> Tuple[Set[str], Set[str]]:
    """(facts when test is true, facts when test is false)."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        t, f = _split_facts(test.operand, aliases)
        return f, t
    if isinstance(test, ast.BoolOp):
        true_facts: Set[str] = set()
        false_facts: Set[str] = set()
        for v in test.values:
            t, f = _split_facts(v, aliases)
            if isinstance(test.op, ast.And):
                true_facts |= t
            else:
                false_facts |= f
        return ((true_facts, set()) if isinstance(test.op, ast.And)
                else (set(), false_facts))
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        key = _key_of(test.left, aliases)
        if key is not None:
            if isinstance(test.ops[0], ast.IsNot):
                return {key}, set()
            if isinstance(test.ops[0], ast.Is):
                return set(), {key}
    return set(), set()


def _terminates(stmts: List[ast.stmt]) -> bool:
    """Does this suite unconditionally leave the enclosing one?"""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register
class TelemetryGuardRule(Rule):
    """Telemetry calls must be dominated by an ``is not None`` check."""

    name = "telemetry-guard"
    description = (
        "every fac.telemetry.* / config.telemetry.* / x.profiler.* call "
        "(and calls through a 'tele = x.telemetry' or 'prof = x.profiler' "
        "alias) must be dominated by an 'is not None' check — telemetry "
        "and the span profiler default to None")
    invariant = (
        "a run without a telemetry bus or span profiler never crashes on "
        "an instrumentation site: disabled observability costs one "
        "attribute load and a None test, nothing else")

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        self._out: List[Tuple[int, int, str]] = []
        self._suite(ctx.tree.body, set(), {})
        yield from self._out

    # -- statement walk -------------------------------------------------
    def _suite(self, stmts: List[ast.stmt], facts: Set[str],
               aliases: Dict[str, bool]) -> None:
        facts = set(facts)
        aliases = dict(aliases)
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # closures inherit aliases but never guard facts
                self._suite(stmt.body, set(), aliases)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._suite(stmt.body, set(), aliases)
                continue
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                self._scan(stmt.value, facts, aliases)
                name = stmt.targets[0].id
                if (isinstance(stmt.value, ast.Attribute)
                        and stmt.value.attr in _GUARDED_ATTRS):
                    aliases[name] = True
                elif (isinstance(stmt.value, ast.Name)
                        and stmt.value.id in aliases):
                    aliases[name] = True
                    if f"name:{stmt.value.id}" in facts:
                        facts.add(f"name:{name}")
                else:
                    aliases.pop(name, None)
                    facts.discard(f"name:{name}")
                continue
            if isinstance(stmt, ast.If):
                self._scan(stmt.test, facts, aliases)
                t, f = _split_facts(stmt.test, aliases)
                self._suite(stmt.body, facts | t, aliases)
                self._suite(stmt.orelse, facts | f, aliases)
                # early exits establish the opposite fact downstream
                if _terminates(stmt.body) and not stmt.orelse:
                    facts |= f
                elif stmt.orelse and _terminates(stmt.orelse) \
                        and not _terminates(stmt.body):
                    facts |= t
                continue
            if isinstance(stmt, ast.While):
                self._scan(stmt.test, facts, aliases)
                t, _ = _split_facts(stmt.test, aliases)
                self._suite(stmt.body, facts | t, aliases)
                self._suite(stmt.orelse, facts, aliases)
                continue
            if isinstance(stmt, ast.Assert):
                self._scan(stmt.test, facts, aliases)
                t, _ = _split_facts(stmt.test, aliases)
                facts |= t
                continue
            # generic statement: scan expressions, recurse into suites
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._scan(child, facts, aliases)
                elif isinstance(child, ast.withitem):
                    self._scan(child.context_expr, facts, aliases)
                elif isinstance(child, ast.ExceptHandler):
                    self._suite(child.body, facts, aliases)
            for fname in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, fname, None)
                if sub and all(isinstance(s, ast.stmt) for s in sub):
                    self._suite(sub, facts, aliases)

    # -- expression walk ------------------------------------------------
    def _scan(self, expr: ast.expr, facts: Set[str],
              aliases: Dict[str, bool]) -> None:
        if isinstance(expr, ast.IfExp):
            self._scan(expr.test, facts, aliases)
            t, f = _split_facts(expr.test, aliases)
            self._scan(expr.body, facts | t, aliases)
            self._scan(expr.orelse, facts | f, aliases)
            return
        if isinstance(expr, ast.BoolOp):
            acc = set(facts)
            for v in expr.values:
                self._scan(v, acc, aliases)
                t, f = _split_facts(v, aliases)
                acc |= t if isinstance(expr.op, ast.And) else f
            return
        if isinstance(expr, ast.Call):
            self._check_call(expr, facts, aliases)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan(child, facts, aliases)
            elif isinstance(child, ast.keyword):
                self._scan(child.value, facts, aliases)

    def _check_call(self, call: ast.Call, facts: Set[str],
                    aliases: Dict[str, bool]) -> None:
        fn = call.func
        if not isinstance(fn, ast.Attribute):
            return
        base = fn.value
        key: Optional[str] = None
        shown = ""
        if isinstance(base, ast.Attribute) and base.attr in _GUARDED_ATTRS:
            key = f"expr:{dump_no_ctx(base)}"
            shown = f"<...>.{base.attr}.{fn.attr}"
        elif isinstance(base, ast.Name) and base.id in aliases:
            key = f"name:{base.id}"
            shown = f"{base.id}.{fn.attr}"
        if key is None or key in facts:
            return
        self._out.append(
            (call.lineno, call.col_offset,
             f"observability call {shown}(...) is not dominated by an "
             f"'is not None' check; a run without a telemetry bus / "
             f"span profiler crashes here"))
