"""Rule modules; importing this package registers every rule."""

from tools.solverlint.rules import (  # noqa: F401  -- registration side effect
    annotations,
    conjugation,
    dtype_promotion,
    hot_loop,
    lock_discipline,
)

__all__ = [
    "annotations",
    "conjugation",
    "dtype_promotion",
    "hot_loop",
    "lock_discipline",
]
