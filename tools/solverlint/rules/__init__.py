"""Rule modules; importing this package registers every rule."""

from tools.solverlint import dataflow  # noqa: F401  -- registration side effect
from tools.solverlint.rules import (  # noqa: F401  -- registration side effect
    annotations,
    backend_bypass,
    conjugation,
    dtype_promotion,
    hot_loop,
    lock_discipline,
    telemetry_guard,
    variant_literal,
)

__all__ = [
    "annotations",
    "backend_bypass",
    "conjugation",
    "dataflow",
    "dtype_promotion",
    "hot_loop",
    "lock_discipline",
    "telemetry_guard",
    "variant_literal",
]
