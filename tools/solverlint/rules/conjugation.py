"""``conjugation-at-adjoint`` — conjugate only at declared Hermitian adjoints.

Low-rank blocks are stored as the *pure transpose* product ``u @ v.T`` even
for complex data (PaStiX z-kernel convention); every structural product —
updates, trisolve panels, ``lr_product`` — is conjugation-free.  Conjugation
is mathematically required only at the Hermitian adjoint surface: ``rmatvec``,
Hermitian panel solves, recompression projections, Hermitian residual norms.
A stray ``.conj()`` elsewhere silently corrupts complex factorizations (it
still "works" for real data, which is why review misses it); a missing one
is caught by tests, a superfluous one is caught here.

A conjugation site is **allowed** when any of these hold:

* it sits inside a function literally named ``rmatvec`` or ``conj`` (the
  adjoint operators themselves);
* the enclosing function's docstring mentions ``Hermitian`` or ``adjoint``
  (case-insensitive) — the adjoint surface is *declared where it lives*, so
  a reviewer can audit it by reading the docstring;
* it is a self-inner-product norm: ``np.einsum(spec, x.conj(), x)`` or
  ``np.vdot(x, x)``, where both operands are structurally identical — ⟨x, x⟩
  is real and conjugation-correct by construction.

Everything else needs a justified pragma.  The rule flags ``.conj()`` /
``.conjugate()`` / ``np.conj`` / ``np.conjugate`` and conjugate-transpose
triangular solves (``trans="C"``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from tools.solverlint.core import FileContext, Rule, register
from tools.solverlint.rules.common import (
    FunctionNode,
    dump_no_ctx,
    get_docstring,
    numpy_attr,
)

#: function names that *are* the adjoint surface
ADJOINT_FUNCTION_NAMES = frozenset({"rmatvec", "conj", "conjugate"})

#: docstring markers declaring a function part of the adjoint surface
ADJOINT_MARKERS = ("hermitian", "adjoint")


def _is_conj_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "conj", "conjugate") and not node.args:
        return True
    return numpy_attr(node.func) in ("conj", "conjugate")


def _conj_operand(node: ast.expr) -> Optional[ast.expr]:
    """For a conjugation expression, the conjugated operand."""
    if isinstance(node, ast.Call) and _is_conj_call(node):
        if isinstance(node.func, ast.Attribute) and not node.args:
            return node.func.value
        if node.args:
            return node.args[0]
    return None


def _is_self_inner_product(call: ast.Call, conj_node: ast.Call) -> bool:
    """``np.einsum(spec, x.conj(), x)`` / ``np.vdot(x, x)``-style norms."""
    attr = numpy_attr(call.func)
    if attr not in ("einsum", "vdot", "inner", "tensordot"):
        return False
    operand = _conj_operand(conj_node)
    if operand is None:
        return False
    fingerprint = dump_no_ctx(operand)
    for arg in call.args:
        if arg is conj_node:
            continue
        if dump_no_ctx(arg) == fingerprint:
            return True
    return False


@register
class ConjugationAtAdjointRule(Rule):
    name = "conjugation-at-adjoint"
    description = (
        "conjugation is permitted only in the declared Hermitian adjoint "
        "surface (rmatvec, Hermitian solves, recompression projections, "
        "self-inner-product norms)"
    )
    invariant = (
        "low-rank storage is a pure-transpose product u @ v.T; conjugation "
        "appears only where the mathematics demands a Hermitian adjoint"
    )
    scope_dirs = ("core", "lowrank", "sparse", "analysis")

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        yield from self._visit(ctx.tree, [])

    def _visit(
        self, node: ast.AST, fn_stack: List[FunctionNode]
    ) -> Iterator[Tuple[int, int, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_stack.append(child)
                yield from self._visit(child, fn_stack)
                fn_stack.pop()
                continue
            if isinstance(child, ast.Call) and _is_conj_call(child):
                if not self._allowed(child, node, fn_stack):
                    yield (
                        child.lineno, child.col_offset,
                        "conjugation outside the declared adjoint surface; "
                        "if this is a genuine Hermitian adjoint, say so in "
                        "the enclosing function's docstring (or add a "
                        "justified pragma)",
                    )
                # still recurse: nested conj inside an allowed conj's operand
                yield from self._visit(child, fn_stack)
                continue
            if isinstance(child, ast.keyword) and child.arg == "trans" and (
                    isinstance(child.value, ast.Constant)
                    and child.value.value == "C"):
                if not self._surface_declared(fn_stack):
                    yield (
                        child.value.lineno, child.value.col_offset,
                        'trans="C" is a conjugate-transpose solve outside '
                        "the declared adjoint surface",
                    )
            yield from self._visit(child, fn_stack)

    def _allowed(
        self,
        conj_node: ast.Call,
        parent: ast.AST,
        fn_stack: List[FunctionNode],
    ) -> bool:
        if self._surface_declared(fn_stack):
            return True
        if isinstance(parent, ast.Call) and _is_self_inner_product(
                parent, conj_node):
            return True
        return False

    @staticmethod
    def _surface_declared(fn_stack: List[FunctionNode]) -> bool:
        for fn in fn_stack:
            if fn.name in ADJOINT_FUNCTION_NAMES:
                return True
            doc = get_docstring(fn).lower()
            if any(marker in doc for marker in ADJOINT_MARKERS):
                return True
        return False
