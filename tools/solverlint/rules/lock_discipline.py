"""``lock-discipline`` — pull-mode ownership or the designated lock.

The threaded schedulers owe their bit-identical factors to pull-mode
ownership (PR 1): per-column-block storage is mutated only by the one task
that owns the block, and the *shared* scheduler state — pending counters,
progress/tick counters, error lists, stop flags — is mutated only under the
single designated lock (``threading.Lock`` / ``threading.Condition``).  A
mutation of captured state outside the lock reintroduces exactly the data
races the pull-mode rewrite removed, and a swallowed worker exception turns
a crash into a silent hang (the sentinel never fires).

Mechanically, for every function passed as ``target=`` to
``threading.Thread`` (a *worker*):

* assignments and augmented assignments through a subscript/attribute whose
  base is a **free variable** (captured from the enclosing scope) must be
  lexically inside ``with <lock>:`` where ``<lock>`` was created in the
  enclosing scope via ``threading.Lock/RLock/Condition/Semaphore``;
* mutator method calls (``append``, ``extend``, ``add``, ``update``,
  ``insert``, ``pop``, ``remove``, ``clear``) on free variables likewise —
  except on ``queue.Queue`` objects, which are thread-safe by contract;
* every ``except`` handler must either re-raise or record the exception
  (append/put it somewhere) — a pass-through handler swallows worker
  failures.

Bare ``except:`` is flagged anywhere in scope (worker or not): it captures
``SystemExit``/``KeyboardInterrupt`` and hides scheduler shutdown bugs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.solverlint.core import FileContext, Rule, register
from tools.solverlint.rules.common import (
    FunctionNode,
    base_name,
    local_names,
    walk_functions,
)

LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                               "BoundedSemaphore"})
QUEUE_CONSTRUCTORS = frozenset({"Queue", "LifoQueue", "PriorityQueue",
                                "SimpleQueue", "deque"})
MUTATOR_METHODS = frozenset({"append", "extend", "add", "update", "insert",
                             "pop", "popleft", "remove", "discard", "clear",
                             "setdefault"})
#: methods allowed on lock objects themselves (wait/notify under ``with``)
LOCK_METHODS = frozenset({"acquire", "release", "wait", "notify",
                          "notify_all", "wait_for"})


def _constructor_of(value: ast.expr) -> Optional[str]:
    """``threading.Lock()`` → ``"Lock"``; ``queue.Queue()`` → ``"Queue"``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _scope_bindings(fn: FunctionNode) -> Tuple[Set[str], Set[str]]:
    """Names bound to locks / queues by simple assignment inside ``fn``."""
    locks: Set[str] = set()
    queues: Set[str] = set()
    for node in ast.walk(fn):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        ctor = _constructor_of(value)
        if ctor is None:
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                if ctor in LOCK_CONSTRUCTORS:
                    locks.add(t.id)
                elif ctor in QUEUE_CONSTRUCTORS:
                    queues.add(t.id)
    return locks, queues


def _thread_targets(fn: FunctionNode) -> Set[str]:
    """Names of functions passed as ``target=`` to ``threading.Thread``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        is_thread = (isinstance(func, ast.Attribute) and func.attr == "Thread") \
            or (isinstance(func, ast.Name) and func.id == "Thread")
        if not is_thread:
            continue
        for kw in node.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Name):
                out.add(kw.value.id)
    return out


@register
class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "scheduler workers mutate shared state only under the designated "
        "lock; worker exceptions must be aggregated, never swallowed"
    )
    invariant = (
        "pull-mode ownership: per-block storage is mutated by its owning "
        "task only, shared counters/flags/error lists under one lock — the "
        "basis of bit-identical threaded factors"
    )
    scope_dirs = ("core", "runtime")

    def check(self, ctx: FileContext) -> Iterator[Tuple[int, int, str]]:
        # bare except: flagged everywhere in scope
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield (
                    node.lineno, node.col_offset,
                    "bare 'except:' swallows SystemExit/KeyboardInterrupt; "
                    "catch a concrete exception type",
                )
        # worker-function analysis
        workers: Dict[str, Tuple[FunctionNode, FunctionNode]] = {}
        for fn, stack in walk_functions(ctx.tree):
            target_names = _thread_targets(fn)
            if not target_names:
                continue
            for nested, nstack in walk_functions(ctx.tree):
                if nested.name in target_names and nstack and nstack[-1] is fn:
                    workers[nested.name] = (nested, fn)
        for worker, owner in workers.values():
            yield from self._check_worker(worker, owner)

    def _check_worker(
        self, worker: FunctionNode, owner: FunctionNode
    ) -> Iterator[Tuple[int, int, str]]:
        locks, queues = _scope_bindings(owner)
        locals_ = local_names(worker)

        def is_free(name: Optional[str]) -> bool:
            return name is not None and name not in locals_

        findings: List[Tuple[int, int, str]] = []

        def visit(node: ast.AST, lock_depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested helpers audited via their own callers
                depth = lock_depth
                if isinstance(child, ast.With):
                    for item in child.items:
                        cname = None
                        if isinstance(item.context_expr, ast.Name):
                            cname = item.context_expr.id
                        if cname in locks:
                            depth += 1
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = (child.targets
                               if isinstance(child, ast.Assign)
                               else [child.target])
                    for t in targets:
                        if isinstance(t, (ast.Subscript, ast.Attribute)):
                            name = base_name(t)
                            if is_free(name) and depth == 0:
                                findings.append((
                                    child.lineno, child.col_offset,
                                    f"worker '{worker.name}' mutates shared "
                                    f"'{name}' outside the designated lock "
                                    "(pull-mode state must be thread-owned "
                                    "or lock-protected)",
                                ))
                elif isinstance(child, ast.Call) and isinstance(
                        child.func, ast.Attribute):
                    name = base_name(child.func.value)
                    meth = child.func.attr
                    if (is_free(name) and depth == 0
                            and meth in MUTATOR_METHODS
                            and name not in queues and name not in locks):
                        findings.append((
                            child.lineno, child.col_offset,
                            f"worker '{worker.name}' calls mutating "
                            f"'{name}.{meth}()' outside the designated lock",
                        ))
                elif isinstance(child, ast.ExceptHandler):
                    if not self._handler_records(child):
                        findings.append((
                            child.lineno, child.col_offset,
                            f"worker '{worker.name}' exception handler "
                            "neither re-raises nor records the error; "
                            "aggregate it under the state lock so the "
                            "scheduler can surface every failure",
                        ))
                visit(child, depth)

        visit(worker, 0)
        yield from findings

    @staticmethod
    def _handler_records(handler: ast.ExceptHandler) -> bool:
        """True when the handler re-raises or stores the exception."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute):
                if node.func.attr in ("append", "extend", "put",
                                      "put_nowait", "add"):
                    return True
        return False
