"""Shared-state model + lockset analysis for the threaded factorization.

The pull-mode schedulers promise bit-identical threaded factorizations; the
ownership discipline behind that promise ("only task *k* mutates column
block *k*'s storage, everything else goes through a lock") lives in
convention.  This module turns the convention into a checkable model:

1. **Worker roots.**  Functions passed as ``target=`` to
   ``threading.Thread(...)`` anywhere in the fileset are worker entry
   points.
2. **Call graph.**  A name-based intra-fileset call graph (direct calls
   resolve to module-level functions, attribute calls to any fileset class
   method of that name) closes the worker-reachable set — a worker closure
   in ``scheduler.py`` reaches ``factor_column_block`` in
   ``factorization.py`` and ``MemoryTracker.resize`` in ``runtime/``.
3. **Shared-state model.**  Inside worker-reachable functions, mutation
   sites are assignments/augmented assignments to attribute chains and
   calls of known mutator methods (``append``/``add``/``setdefault``/…)
   whose chain roots at a *shared* name: a parameter or a closure variable.
   Task-owned handles are exempt: locals bound from an indexed read
   (``nc = fac.cblks[k]``), any chain that itself passes through a
   subscript (per-element storage accessed by task index), parameters that
   every worker-reachable call site feeds an owned handle, thread-local
   attributes (``self.X`` with ``X = threading.local()``), queues and
   locks themselves, and ``self`` inside ``__init__``.
4. **Lockset inference.**  The set of locks held at each site combines the
   lexical ``with`` nesting (tracking ``threading.Lock/RLock/Condition``
   bindings, ``self._lock``-style attributes and aliases through locals)
   with an *ambient* lockset propagated through the call graph: the
   intersection, over every worker-reachable call path, of the locks held
   at the call site — so the ``_record_peak_locked``-style "caller holds
   the lock" idiom is understood, and a helper called both with and
   without the lock gets the empty ambient set.

A shared mutation with an empty lockset is reported as *unguarded*; a
group of sites mutating the same attribute under non-empty but disjoint
locksets is reported as *inconsistent*.  Lock identity is name-based
(``state`` for locals/closures, ``._lock`` for attributes), which trades
a little soundness across classes for near-zero false positives; the
dynamic sanitizer (:mod:`repro.runtime.sanitizer`) covers what the
static model cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.solverlint.core import FileContext, ProjectRule, register

#: constructors whose bindings are treated as locks (lockset members)
LOCK_CONSTRUCTORS = (
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
)

#: constructors whose bindings are exempt shared structures (internally
#: synchronized by the stdlib)
QUEUE_CONSTRUCTORS = ("Queue", "LifoQueue", "PriorityQueue", "SimpleQueue")

#: method calls that mutate their receiver in place
MUTATOR_METHODS = (
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "pop", "popitem", "remove", "discard", "clear",
)


def _call_name(node: ast.Call) -> Tuple[Optional[str], bool]:
    """(simple callee name, is_attribute_call) of a call, if nameable."""
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id, False
    if isinstance(fn, ast.Attribute):
        return fn.attr, True
    return None, False


def _chain(node: ast.expr) -> Optional[Tuple[str, List[str], bool]]:
    """Decompose an attribute/subscript chain.

    Returns ``(root_name, attr_parts, has_subscript)`` for chains rooted at
    a plain name (``fac.cblks[k].diag`` → ``("fac", ["cblks", "diag"],
    True)``), or ``None`` when the root is a call or other expression.
    """
    parts: List[str] = []
    has_sub = False
    cur = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            has_sub = True
            cur = cur.value
        elif isinstance(cur, ast.Name):
            parts.reverse()
            return cur.id, parts, has_sub
        else:
            return None


def _contains_subscript(node: ast.expr) -> bool:
    return any(isinstance(n, ast.Subscript) for n in ast.walk(node))


_FRESH_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                   ast.SetComp)


def _is_fresh_value(node: ast.expr) -> bool:
    """A freshly-constructed container literal (or None): no other thread
    can hold a reference, so a local bound to it is task-owned."""
    if isinstance(node, _FRESH_LITERALS):
        return True
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    if isinstance(node, ast.IfExp):
        return _is_fresh_value(node.body) and _is_fresh_value(node.orelse)
    return False


def _is_constructor_call(node: ast.expr, names: Sequence[str]) -> bool:
    """True for ``threading.X()`` / ``X()`` with X in ``names``."""
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr in names
    if isinstance(fn, ast.Name):
        return fn.id in names
    return False


@dataclass
class MutationSite:
    """One shared-state mutation found inside a function body."""

    line: int
    col: int
    root: str                 # root name of the target chain
    attrs: Tuple[str, ...]    # attribute path from the root
    lexical: frozenset        # locks held lexically at the site
    kind: str                 # "assign" | "augassign" | "call:<method>"

    @property
    def chain(self) -> str:
        return ".".join((self.root,) + self.attrs)


@dataclass
class CallSite:
    """One intra-fileset call found inside a function body."""

    line: int
    callee: str
    is_attr: bool
    lexical: frozenset        # locks held lexically at the call
    #: positional arguments (0-based, after any receiver) as
    #: ``(root_name, statically_owned)`` — the root name lets the fixpoint
    #: recognise an argument that is owned *via the caller's own params*
    pos_args: Tuple[Tuple[Optional[str], bool], ...]
    #: keyword arguments as ``(kwarg_name, root_name, statically_owned)``
    kw_args: Tuple[Tuple[str, Optional[str], bool], ...]
    receiver_owned: bool      # attribute calls: is the receiver task-owned?
    receiver_root: Optional[str] = None  # receiver root name, if a plain name


@dataclass
class FunctionInfo:
    """Static summary of one function/method/closure."""

    key: str                  # "<path>::<qualname>"
    path: str
    name: str                 # simple name
    qualname: str
    node: ast.AST
    params: Tuple[str, ...] = ()
    cls: Optional[str] = None  # enclosing class name for methods
    is_init: bool = False
    mutations: List[MutationSite] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    #: names that are task-owned handles within the body (locals assigned
    #: from subscript reads or from other owned roots)
    owned_locals: Set[str] = field(default_factory=set)
    #: names bound to locks / queues inside the body
    lock_locals: Set[str] = field(default_factory=set)
    queue_locals: Set[str] = field(default_factory=set)
    #: params whose default is a fresh literal (``acc: dict = None``) —
    #: owned at any call site that does not supply them
    fresh_default_params: Set[str] = field(default_factory=set)
    #: locals of the lexically enclosing functions — closure resolution
    enclosing_locals: Set[str] = field(default_factory=set)
    #: locals (incl. params) of this function — closure resolution
    locals: Set[str] = field(default_factory=set)


class SharedStateModel:
    """The fileset-wide model: functions, worker roots, lock attributes."""

    def __init__(self, ctxs: Sequence[FileContext]) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_simple_name: Dict[str, List[str]] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.worker_roots: List[str] = []
        #: attribute names ever assigned a lock / queue / threading.local()
        self.lock_attrs: Set[str] = set()
        self.queue_attrs: Set[str] = set()
        self.threadlocal_attrs: Set[str] = set()
        for ctx in ctxs:
            self._scan_attr_classes(ctx)
        for ctx in ctxs:
            self._index_module(ctx)

    # -- pass 1: classify self.X attribute bindings --------------------
    def _scan_attr_classes(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                # annotated bindings (`self._lock: Any = threading.Lock()`)
                # classify the same way as plain assignments
                targets, value = [node.target], node.value
            else:
                continue
            for tgt in targets:
                ch = _chain(tgt)
                if ch is None or len(ch[1]) != 1:
                    continue
                attr = ch[1][0]
                if _is_constructor_call(value, LOCK_CONSTRUCTORS):
                    self.lock_attrs.add(attr)
                elif _is_constructor_call(value, QUEUE_CONSTRUCTORS):
                    self.queue_attrs.add(attr)
                elif _is_constructor_call(value, ("local",)):
                    self.threadlocal_attrs.add(attr)

    # -- pass 2: per-function summaries ---------------------------------
    def _index_module(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, node, qual=node.name, cls=None,
                                     enclosing=set())
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self._index_function(
                            ctx, item, qual=f"{node.name}.{item.name}",
                            cls=node.name, enclosing=set())

    def _index_function(self, ctx: FileContext, node: ast.AST, qual: str,
                        cls: Optional[str], enclosing: Set[str]) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = tuple(a.arg for a in (node.args.posonlyargs + node.args.args
                                       + node.args.kwonlyargs))
        fresh_defaults: Set[str] = set()
        pos_params = node.args.posonlyargs + node.args.args
        for a, default in zip(pos_params[len(pos_params)
                                         - len(node.args.defaults):],
                              node.args.defaults):
            if default is not None and _is_fresh_value(default):
                fresh_defaults.add(a.arg)
        for a, kw_default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if kw_default is not None and _is_fresh_value(kw_default):
                fresh_defaults.add(a.arg)
        info = FunctionInfo(
            key=f"{ctx.path}::{qual}", path=ctx.path, name=node.name,
            qualname=qual, node=node, params=params, cls=cls,
            is_init=(node.name == "__init__"),
            fresh_default_params=fresh_defaults,
            enclosing_locals=set(enclosing))
        self.functions[info.key] = info
        if cls is None:
            self.by_simple_name.setdefault(node.name, []).append(info.key)
        else:
            self.methods_by_name.setdefault(node.name, []).append(info.key)
        info.locals = set(params) | _collect_locals(node)
        walker = _BodyWalker(self, ctx, info, enclosing)
        for stmt in node.body:
            walker.visit_stmt(stmt, frozenset())
        # nested defs become their own summaries; their enclosing-locals
        # set is this function's locals plus whatever this one closed over
        for nested in walker.nested:
            self._index_function(
                ctx, nested, qual=f"{qual}.{nested.name}", cls=None,
                enclosing=enclosing | info.locals)


class _BodyWalker:
    """Single-function statement walker maintaining the lexical lockset."""

    def __init__(self, model: SharedStateModel, ctx: FileContext,
                 info: FunctionInfo, enclosing: Set[str]) -> None:
        self.model = model
        self.ctx = ctx
        self.info = info
        self.enclosing = enclosing
        self.nested: List[ast.AST] = []
        #: local name → lock fingerprint (aliases: ``lk = self._lock``)
        self.lock_aliases: Dict[str, str] = {}

    # -- lock expression resolution -------------------------------------
    def lock_fingerprint(self, expr: ast.expr) -> Optional[str]:
        """Fingerprint of a lock-valued expression, if recognisable."""
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.lock_aliases:
                return self.lock_aliases[name]
            if name in self.info.lock_locals:
                return name
            # a closure variable bound to a lock in the enclosing scope:
            # recognised by name when the enclosing function declared it
            if name in self.enclosing and name not in self.info.locals:
                return name
            return None
        ch = _chain(expr)
        if ch is not None and ch[1] and ch[1][-1] in self.model.lock_attrs:
            return "." + ch[1][-1]
        return None

    def _is_queue(self, root: str, attrs: Tuple[str, ...]) -> bool:
        if root in self.info.queue_locals:
            return True
        return any(a in self.model.queue_attrs for a in attrs)

    def _is_threadlocal(self, attrs: Tuple[str, ...]) -> bool:
        return any(a in self.model.threadlocal_attrs for a in attrs)

    def _expr_owned(self, expr: ast.expr) -> bool:
        """Is this argument expression statically a task-owned handle?"""
        if isinstance(expr, ast.Name):
            return expr.id in self.info.owned_locals
        return _contains_subscript(expr) or _is_fresh_value(expr)

    def _arg_root(self, expr: ast.expr) -> Optional[str]:
        """Root name of an argument, for dynamic ownership resolution."""
        if isinstance(expr, ast.Name):
            return expr.id
        ch = _chain(expr)
        return ch[0] if ch is not None else None

    # -- statement walk ---------------------------------------------------
    def visit_stmt(self, stmt: ast.stmt, held: frozenset) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(stmt)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.With):
            inner = held
            for item in stmt.items:
                fp = self.lock_fingerprint(item.context_expr)
                if fp is not None:
                    inner = inner | {fp}
                else:
                    self._scan_exprs(item.context_expr, held)
            for s in stmt.body:
                self.visit_stmt(s, inner)
            return
        if isinstance(stmt, ast.Assign):
            self._record_bindings(stmt)
            for tgt in stmt.targets:
                self._record_mutation(tgt, held, "assign")
            self._scan_exprs(stmt.value, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_bindings_one(stmt.target, stmt.value)
                self._scan_exprs(stmt.value, held)
            self._record_mutation(stmt.target, held, "assign")
            return
        if isinstance(stmt, ast.AugAssign):
            self._record_mutation(stmt.target, held, "augassign")
            self._scan_exprs(stmt.value, held)
            return
        if isinstance(stmt, ast.Expr):
            self._scan_exprs(stmt.value, held)
            return
        # compound statements: walk nested bodies with the same lockset
        for fname in ("body", "orelse", "finalbody"):
            for s in getattr(stmt, fname, []) or []:
                self.visit_stmt(s, held)
        for handler in getattr(stmt, "handlers", []) or []:
            for s in handler.body:
                self.visit_stmt(s, held)
        for fname in ("test", "iter", "value", "exc"):
            sub = getattr(stmt, fname, None)
            if isinstance(sub, ast.expr):
                self._scan_exprs(sub, held)

    # -- bindings ---------------------------------------------------------
    def _record_bindings(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) == 1:
            self._record_bindings_one(stmt.targets[0], stmt.value)

    def _record_bindings_one(self, tgt: ast.expr, value: ast.expr) -> None:
        if not isinstance(tgt, ast.Name):
            return
        name = tgt.id
        if _is_constructor_call(value, LOCK_CONSTRUCTORS):
            self.info.lock_locals.add(name)
            return
        if _is_constructor_call(value, QUEUE_CONSTRUCTORS):
            self.info.queue_locals.add(name)
            return
        fp = self.lock_fingerprint(value)
        if fp is not None:
            self.lock_aliases[name] = fp
            return
        # task-owned handle: an indexed read (nc = fac.cblks[k]), a value
        # derived from an already-owned handle, or a freshly-constructed
        # container (acc = {}) that no other thread can have a reference to
        if isinstance(value, ast.Subscript) or _is_fresh_value(value):
            self.info.owned_locals.add(name)
            return
        ch = _chain(value)
        if ch is not None and (ch[0] in self.info.owned_locals or ch[2]):
            self.info.owned_locals.add(name)
        elif ch is not None:
            # rebound to a possibly-shared handle: drop any earlier mark
            self.info.owned_locals.discard(name)

    # -- mutations --------------------------------------------------------
    def _record_mutation(self, tgt: ast.expr, held: frozenset,
                         kind: str) -> None:
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._record_mutation(elt, held, kind)
            return
        if isinstance(tgt, ast.Name):
            return  # plain local rebind, never shared
        ch = _chain(tgt)
        if ch is None:
            return
        root, attrs, has_sub = ch
        if has_sub:
            return  # per-element storage accessed by task index: owned
        self.info.mutations.append(
            MutationSite(line=tgt.lineno, col=tgt.col_offset, root=root,
                         attrs=tuple(attrs), lexical=held, kind=kind))

    # -- expressions (calls, mutator methods, thread targets) -------------
    def _scan_exprs(self, expr: ast.expr, held: frozenset) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            self._record_thread_target(node)
            name, is_attr = _call_name(node)
            if name is None:
                continue
            receiver_owned = False
            receiver_root: Optional[str] = None
            if is_attr:
                assert isinstance(node.func, ast.Attribute)
                recv = node.func.value
                receiver_owned = self._expr_owned(recv)
                receiver_root = self._arg_root(recv)
                if name in MUTATOR_METHODS:
                    self._record_mutator_call(recv, name, node, held)
            pos = tuple((self._arg_root(a), self._expr_owned(a))
                        for a in node.args)
            kws = tuple((kw.arg, self._arg_root(kw.value),
                         self._expr_owned(kw.value))
                        for kw in node.keywords if kw.arg is not None)
            self.info.calls.append(
                CallSite(line=node.lineno, callee=name, is_attr=is_attr,
                         lexical=held, pos_args=pos, kw_args=kws,
                         receiver_owned=receiver_owned,
                         receiver_root=receiver_root))

    def _record_mutator_call(self, recv: ast.expr, method: str,
                             node: ast.Call, held: frozenset) -> None:
        ch = _chain(recv)
        if ch is None:
            return  # receiver rooted at a call: not a trackable chain
        root, attrs, has_sub = ch
        if has_sub:
            return
        if self._is_queue(root, tuple(attrs)):
            return
        self.info.mutations.append(
            MutationSite(line=node.lineno, col=node.col_offset, root=root,
                         attrs=tuple(attrs), lexical=held,
                         kind=f"call:{method}"))

    def _record_thread_target(self, node: ast.Call) -> None:
        if not _is_constructor_call(node, ("Thread",)):
            return
        for kw in node.keywords:
            if kw.arg == "target" and isinstance(kw.value, ast.Name):
                self.model.worker_roots.append(kw.value.id)


def _collect_locals(fn: ast.AST) -> Set[str]:
    """Names assigned anywhere in a function body (excluding nested defs)."""
    out: Set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.add(child.name)
                continue
            if isinstance(child, ast.Name) and isinstance(
                    child.ctx, (ast.Store, ast.Del)):
                out.add(child.id)
            if isinstance(child, ast.ExceptHandler) and child.name:
                out.add(child.name)
            if isinstance(child, (ast.Global, ast.Nonlocal)):
                out.difference_update(child.names)
            visit(child)

    visit(fn)
    return out


@dataclass
class _State:
    """Propagated per-function analysis state (shrinks monotonically)."""

    ambient: frozenset           # locks held on every worker-reachable path
    owned_params: frozenset      # params fed an owned handle at every site


class LocksetAnalysis:
    """Worker-reachability + ambient-lockset fixpoint over the model."""

    def __init__(self, model: SharedStateModel) -> None:
        self.model = model
        self.states: Dict[str, _State] = {}
        self._run()

    def _resolve(self, call: CallSite) -> List[str]:
        if call.is_attr:
            return self.model.methods_by_name.get(call.callee, [])
        return self.model.by_simple_name.get(call.callee, [])

    def _run(self) -> None:
        work: List[str] = []
        for root_name in self.model.worker_roots:
            for key in self.model.by_simple_name.get(root_name, []):
                self.states[key] = _State(ambient=frozenset(),
                                          owned_params=frozenset())
                work.append(key)
        steps = 0
        limit = 20000  # generous fixpoint bound; sets only shrink
        while work and steps < limit:
            steps += 1
            key = work.pop()
            info = self.model.functions[key]
            st = self.states[key]
            for call in info.calls:
                at_call = st.ambient | call.lexical
                for callee_key in self._resolve(call):
                    callee = self.model.functions[callee_key]
                    if callee.is_init:
                        continue  # fresh objects: constructor state is owned
                    owned = self._owned_params(callee, call, st)
                    prev = self.states.get(callee_key)
                    if prev is None:
                        self.states[callee_key] = _State(
                            ambient=frozenset(at_call), owned_params=owned)
                        work.append(callee_key)
                        continue
                    new_amb = prev.ambient & at_call
                    new_owned = prev.owned_params & owned
                    if (new_amb != prev.ambient
                            or new_owned != prev.owned_params):
                        self.states[callee_key] = _State(new_amb, new_owned)
                        work.append(callee_key)

    def _owned_params(self, callee: FunctionInfo, call: CallSite,
                      caller_state: _State) -> frozenset:
        """Which callee params receive a task-owned handle at this call.

        An argument is owned statically (owned local / subscript read /
        fresh literal) or dynamically, when its root is one of the caller's
        own owned params — that is how ownership flows through call chains
        (``factor_column_block`` → ``_compress_panels`` →
        ``convert_to_blocks``)."""
        def arg_owned(root: Optional[str], static: bool) -> bool:
            return static or (root is not None
                              and root in caller_state.owned_params)

        owned: Set[str] = set()
        params = list(callee.params)
        if call.is_attr and params and params[0] == "self":
            if arg_owned(call.receiver_root, call.receiver_owned):
                owned.add("self")
            params = params[1:]
        for i, (root, static) in enumerate(call.pos_args):
            if i < len(params) and arg_owned(root, static):
                owned.add(params[i])
        for kwarg, root, static in call.kw_args:
            if kwarg in params and arg_owned(root, static):
                owned.add(kwarg)
        # params left to their (fresh-literal) defaults are owned here
        supplied = set(params[:len(call.pos_args)])
        supplied.update(k for k, _, _ in call.kw_args)
        for p in params:
            if p not in supplied and p in callee.fresh_default_params:
                owned.add(p)
        return frozenset(owned)

    # -- findings ---------------------------------------------------------
    def findings(self) -> Iterator[Tuple[str, int, int, str]]:
        sites: List[Tuple[FunctionInfo, MutationSite, frozenset]] = []
        for key, st in self.states.items():
            info = self.model.functions[key]
            if info.is_init:
                continue
            for mut in info.mutations:
                if not self._is_shared(info, st, mut):
                    continue
                sites.append((info, mut, st.ambient | mut.lexical))

        # empty locksets: unguarded shared mutation
        for info, mut, lockset in sites:
            if not lockset:
                yield (info.path, mut.line, mut.col,
                       f"worker-reachable mutation of shared "
                       f"{mut.chain!r} in {info.qualname}() holds no lock "
                       f"(reached from a threading.Thread target)")

        # disjoint locksets across sites of the same attribute
        groups: Dict[Tuple[str, ...], List[Tuple[FunctionInfo, MutationSite,
                                                 frozenset]]] = {}
        for info, mut, lockset in sites:
            if lockset and mut.attrs:
                groups.setdefault(mut.attrs, []).append((info, mut, lockset))
        for attrs, group in groups.items():
            if len(group) < 2:
                continue
            common = frozenset.intersection(*(ls for _, _, ls in group))
            if common:
                continue
            held = sorted({", ".join(sorted(ls)) for _, _, ls in group})
            for info, mut, lockset in group:
                yield (info.path, mut.line, mut.col,
                       f"shared {'.'.join(attrs)!r} is mutated under "
                       f"inconsistent locksets across sites "
                       f"({' / '.join(held)}): no common lock orders "
                       f"the accesses")

    def _is_shared(self, info: FunctionInfo, st: _State,
                   mut: MutationSite) -> bool:
        root = mut.root
        if root in info.owned_locals or root in st.owned_params:
            return False
        if root in info.lock_locals or root in info.queue_locals:
            return False
        if self._threadlocal(mut.attrs) or self._queue_attr(mut.attrs):
            return False
        if root in info.params:
            return True
        # closure variable: a name that is not local here but is a local of
        # an enclosing function (recorded during indexing)
        if root not in info.locals and root in info.enclosing_locals:
            return True
        return False

    def _threadlocal(self, attrs: Tuple[str, ...]) -> bool:
        return any(a in self.model.threadlocal_attrs for a in attrs)

    def _queue_attr(self, attrs: Tuple[str, ...]) -> bool:
        return any(a in self.model.queue_attrs for a in attrs)


def analyze(ctxs: Sequence[FileContext]) -> List[Tuple[str, int, int, str]]:
    """Run the full shared-state + lockset analysis over a fileset."""
    model = SharedStateModel(ctxs)
    analysis = LocksetAnalysis(model)
    return sorted(set(analysis.findings()))


@register
class SharedMutationLocksetRule(ProjectRule):
    """Worker-reachable shared mutations must hold a consistent lock."""

    name = "shared-mutation-lockset"
    description = (
        "dataflow engine: every mutation of shared state reachable from a "
        "threading.Thread worker must hold a non-empty, consistent lockset "
        "(with-scope tracking, lock aliasing, cross-function ambient "
        "propagation, task-ownership exemptions)")
    invariant = (
        "threaded factorization stays bit-identical to sequential: shared "
        "scheduler/factor state is only mutated under its designated lock; "
        "per-column-block storage is only touched by its owning task")
    scope_dirs = ("core", "runtime")

    def check_project(
        self, ctxs: Sequence[FileContext]
    ) -> Iterator[Tuple[str, int, int, str]]:
        yield from analyze(ctxs)
