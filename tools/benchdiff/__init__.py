"""benchdiff — compare two benchmark/RunReport JSON artifacts.

CI needs a gate, not a dashboard: given a committed baseline and a fresh
run, decide whether the new numbers are acceptable.  The comparison is
deliberately asymmetric across metric classes:

* **time metrics** (``facto_time_s``, ``solve_time_s``, ``factor_time``)
  only *warn* on slowdowns — wall-clock on shared CI runners is noisy, and
  a hard gate on it would flake;
* **byte metrics** (``factor_nbytes``, ``peak_nbytes``) *fail* on
  regressions beyond the threshold — memory of a deterministic
  factorization is reproducible, so growth is a real regression;
* **accuracy** (``backward_error``) *fails* when it degrades by more than
  a configurable factor — the paper's τ-accuracy contract is the one
  property a BLR solver must never silently lose;
* **speedup metrics** (``multirhs_speedup``) *fail* when the current
  value drops below an absolute floor — the blocked multi-RHS solve must
  stay meaningfully faster than sequential single-RHS solves, regardless
  of what the baseline measured.

Inputs may be ``BENCH_*.json`` files (both the current history format and
the legacy single-run layout) or ``RunReport`` artifacts
(:mod:`repro.analysis.report`); the two files must be the same flavour.

Exit codes: ``0`` no findings (or warnings only), ``1`` at least one
failure (or any warning under ``--fail-on-warn``), ``2`` usage error.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "Finding",
    "Thresholds",
    "attribution_notes",
    "compare",
    "extract_metrics",
    "load_artifact",
    "render_findings",
]

#: metrics compared, with their class ("time" warns, "bytes"/"error"
#: fail on ratio regressions, "speedup" fails below an absolute floor)
METRIC_CLASSES: Dict[str, str] = {
    "facto_time_s": "time",
    "solve_time_s": "time",
    "solve_seq_time_s": "time",
    "analyze_time": "time",
    "factor_time": "time",
    "solve_time": "time",
    "factor_nbytes": "bytes",
    "peak_nbytes": "bytes",
    "backward_error": "error",
    "multirhs_speedup": "speedup",
}


@dataclass(frozen=True)
class Thresholds:
    """Per-class regression tolerances (ratios above 1.0).

    ``time_warn=0.25`` warns when a time metric grows by more than 25 %;
    ``bytes_fail=0.10`` fails when a byte metric grows by more than 10 %;
    ``error_fail=10.0`` fails when the backward error degrades by more
    than a factor of 10 (errors are compared multiplicatively — they live
    on a log scale); ``speedup_floor=3.0`` fails when a speedup metric
    falls below 3x (an absolute gate, not a baseline ratio — a slow
    baseline must not grandfather in a slow current run).
    """

    time_warn: float = 0.25
    bytes_fail: float = 0.10
    error_fail: float = 10.0
    speedup_floor: float = 3.0


@dataclass(frozen=True)
class Finding:
    """One detected regression."""

    severity: str  # "warn" | "fail"
    label: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 1.0
        return self.current / self.baseline

    def describe(self) -> str:
        return (f"[{self.severity.upper()}] {self.label}: {self.metric} "
                f"{self.baseline:.6g} -> {self.current:.6g} "
                f"({self.ratio:.2f}x)")


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a JSON artifact, raising ``ValueError`` on non-JSON input."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: cannot read artifact ({exc})") from exc
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    return data


def extract_metrics(data: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Normalize an artifact into ``{label: {metric: value}}``.

    Understands three layouts: bench history files (``history`` array —
    the *last* entry is compared), legacy single-run bench files (a
    top-level ``results`` array), and RunReport documents.
    """
    if data.get("schema", "").startswith("repro.run_report"):
        out: Dict[str, float] = {}
        timings = data.get("timings") or {}
        for k in ("analyze_time", "factor_time", "solve_time"):
            if isinstance(timings.get(k), (int, float)):
                out[k] = float(timings[k])
        stats = data.get("stats") or {}
        for k in ("factor_nbytes", "peak_nbytes"):
            if isinstance(stats.get(k), (int, float)):
                out[k] = float(stats[k])
        if isinstance(data.get("backward_error"), (int, float)):
            out["backward_error"] = float(data["backward_error"])
        label = str(data.get("workload") or "run")
        return {label: out}

    if "history" in data:
        history = data["history"]
        if not isinstance(history, list) or not history:
            raise ValueError("bench artifact has an empty history")
        results = history[-1].get("results", [])
    elif "results" in data:  # legacy single-run layout
        results = data["results"]
    else:
        raise ValueError(
            "unrecognized artifact: neither a RunReport (schema field) "
            "nor a bench file (history/results field)")

    table: Dict[str, Dict[str, float]] = {}
    for rec in results:
        label = str(rec.get("label", "?"))
        table[label] = {k: float(v) for k, v in rec.items()
                        if k in METRIC_CLASSES
                        and isinstance(v, (int, float))}
    return table


def _floor_findings(label: str, metrics: Dict[str, float],
                    th: Thresholds) -> List[Finding]:
    """Absolute-floor checks that apply without a baseline (speedups)."""
    return [
        Finding("fail", label, metric, th.speedup_floor, cv)
        for metric, cv in sorted(metrics.items())
        if METRIC_CLASSES[metric] == "speedup" and cv < th.speedup_floor
    ]


def _load_attribution_module() -> Any:
    """Load ``repro/analysis/profile.py`` standalone.

    The attribution engine behind ``repro diff-report`` is deliberately
    stdlib-only and self-contained, so benchdiff can execute it straight
    from the source tree without importing (or even having installed)
    the numpy-backed ``repro`` package.  Returns ``None`` when the
    module is unavailable — attribution is then silently skipped.
    """
    import importlib.util

    path = (Path(__file__).resolve().parents[2] / "src" / "repro"
            / "analysis" / "profile.py")
    if not path.is_file():
        return None
    spec = importlib.util.spec_from_file_location("_benchdiff_profile",
                                                  path)
    if spec is None or spec.loader is None:  # pragma: no cover
        return None
    mod = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(mod)
    except Exception:  # pragma: no cover - corrupt checkout
        return None
    return mod


def attribution_notes(baseline: Dict[str, Any],
                      current: Dict[str, Any]) -> List[str]:
    """Guilty-phase note for two RunReport artifacts (else empty).

    Runs the ``repro diff-report`` attribution engine over the two
    reports and names the phase that lost the most time — so a gate
    failure points at ordering/assemble/factorize/solve/… instead of
    only the top-level metric.
    """
    if not (str(baseline.get("schema", "")).startswith("repro.run_report")
            and str(current.get("schema", ""))
            .startswith("repro.run_report")):
        return []
    mod = _load_attribution_module()
    if mod is None:
        return []
    note = mod.summarize_attribution(
        mod.report_attribution(baseline, current))
    return [note] if note else []


def compare(baseline: Dict[str, Any], current: Dict[str, Any],
            thresholds: Optional[Thresholds] = None
            ) -> Tuple[List[Finding], List[str]]:
    """Diff two artifacts; returns ``(findings, notes)``.

    ``notes`` reports labels/metrics present on one side only (these are
    informational, never failures: adding a variant must not break CI).
    The exception is the absolute ``speedup`` class: its floor applies to
    the *current* value even when the label or metric has no baseline —
    a brand-new speedup entry below the floor is already a failure (the
    finding's ``baseline`` field then reports the floor itself).
    When both artifacts are RunReports and a finding fired, a
    guilty-phase attribution note (:func:`attribution_notes`) is
    appended.
    """
    th = thresholds or Thresholds()
    base = extract_metrics(baseline)
    cur = extract_metrics(current)
    findings: List[Finding] = []
    notes: List[str] = []

    for label in sorted(set(base) | set(cur)):
        if label not in cur:
            notes.append(f"label {label!r} missing from current run")
            continue
        if label not in base:
            notes.append(f"label {label!r} is new (no baseline)")
            findings.extend(_floor_findings(label, cur[label], th))
            continue
        b, c = base[label], cur[label]
        for metric in sorted(set(b) | set(c)):
            if metric not in c:
                notes.append(f"{label}: metric {metric!r} missing "
                             "from current run")
                continue
            if metric not in b:
                notes.append(f"{label}: metric {metric!r} is new")
                findings.extend(_floor_findings(
                    label, {metric: c[metric]}, th))
                continue
            bv, cv = b[metric], c[metric]
            cls = METRIC_CLASSES[metric]
            if cls == "time":
                if bv > 0 and cv > bv * (1.0 + th.time_warn):
                    findings.append(Finding("warn", label, metric, bv, cv))
            elif cls == "bytes":
                if bv > 0 and cv > bv * (1.0 + th.bytes_fail):
                    findings.append(Finding("fail", label, metric, bv, cv))
            elif cls == "speedup":
                if cv < th.speedup_floor:
                    findings.append(Finding("fail", label, metric, bv, cv))
            else:  # error
                if bv > 0 and cv > bv * th.error_fail:
                    findings.append(Finding("fail", label, metric, bv, cv))
    if findings:
        notes.extend(attribution_notes(baseline, current))
    return findings, notes


def render_findings(findings: List[Finding], notes: List[str]) -> str:
    """Human-readable comparison summary."""
    lines: List[str] = []
    for f in findings:
        lines.append(f.describe())
    for n in notes:
        lines.append(f"[NOTE] {n}")
    if not findings:
        lines.append("benchdiff: no regressions detected")
    return "\n".join(lines)
