"""``python -m tools.benchdiff`` — CI gate comparing two benchmark files.

Usage::

    python -m tools.benchdiff BASELINE CURRENT \
        [--time-warn 0.25] [--bytes-fail 0.10] [--error-fail 10] \
        [--speedup-floor 3.0] [--fail-on-warn]

Exit codes: 0 no findings (or warnings only), 1 failures (or warnings
under ``--fail-on-warn``), 2 usage errors (unreadable/mismatched files).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from tools.benchdiff import Thresholds, compare, load_artifact, render_findings


def run(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchdiff",
        description="compare two BENCH_*.json / RunReport artifacts")
    parser.add_argument("baseline", help="baseline JSON artifact")
    parser.add_argument("current", help="current JSON artifact")
    parser.add_argument("--time-warn", type=float, default=0.25,
                        metavar="RATIO",
                        help="warn when a time metric grows by more than "
                             "this fraction (default 0.25)")
    parser.add_argument("--bytes-fail", type=float, default=0.10,
                        metavar="RATIO",
                        help="fail when a byte metric grows by more than "
                             "this fraction (default 0.10)")
    parser.add_argument("--error-fail", type=float, default=10.0,
                        metavar="FACTOR",
                        help="fail when the backward error degrades by "
                             "more than this factor (default 10)")
    parser.add_argument("--speedup-floor", type=float, default=3.0,
                        metavar="FACTOR",
                        help="fail when a speedup metric (e.g. the blocked "
                             "multi-RHS solve) drops below this absolute "
                             "factor (default 3.0)")
    parser.add_argument("--fail-on-warn", action="store_true",
                        help="treat warnings as failures (exit 1)")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return int(exc.code or 0)

    if (args.time_warn < 0 or args.bytes_fail < 0 or args.error_fail < 1.0
            or args.speedup_floor < 0):
        print("benchdiff: thresholds must be >= 0 (error factor >= 1)",
              file=sys.stderr)
        return 2

    try:
        baseline = load_artifact(args.baseline)
        current = load_artifact(args.current)
        findings, notes = compare(
            baseline, current,
            Thresholds(time_warn=args.time_warn,
                       bytes_fail=args.bytes_fail,
                       error_fail=args.error_fail,
                       speedup_floor=args.speedup_floor))
    except ValueError as exc:
        print(f"benchdiff: {exc}", file=sys.stderr)
        return 2

    print(render_findings(findings, notes))
    if any(f.severity == "fail" for f in findings):
        return 1
    if findings and args.fail_on_warn:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(run())
