"""Tests for symmetric permutations."""

import numpy as np
import pytest

from repro.sparse.generators import laplacian_2d
from repro.sparse.permute import (
    invert_permutation,
    is_permutation,
    permute_symmetric,
    permute_vector,
    unpermute_vector,
)


class TestIsPermutation:
    def test_identity(self):
        assert is_permutation(np.arange(5), 5)

    def test_shuffled(self, rng):
        p = rng.permutation(10)
        assert is_permutation(p, 10)

    def test_wrong_length(self):
        assert not is_permutation(np.arange(4), 5)

    def test_duplicate(self):
        assert not is_permutation(np.array([0, 0, 2]), 3)

    def test_out_of_range(self):
        assert not is_permutation(np.array([0, 1, 5]), 3)


class TestInvert:
    def test_roundtrip(self, rng):
        p = rng.permutation(20)
        ip = invert_permutation(p)
        np.testing.assert_array_equal(p[ip], np.arange(20))
        np.testing.assert_array_equal(ip[p], np.arange(20))


class TestPermuteSymmetric:
    def test_matches_dense_permutation(self, rng):
        a = laplacian_2d(5)
        p = rng.permutation(a.n)
        ap = permute_symmetric(a, p)
        d = a.to_dense()
        np.testing.assert_allclose(ap.to_dense(), d[np.ix_(p, p)])

    def test_identity_is_noop(self):
        a = laplacian_2d(4)
        ap = permute_symmetric(a, np.arange(a.n))
        np.testing.assert_allclose(ap.to_dense(), a.to_dense())

    def test_rejects_invalid_permutation(self):
        a = laplacian_2d(3)
        with pytest.raises(ValueError, match="permutation"):
            permute_symmetric(a, np.zeros(a.n, dtype=np.int64))

    def test_permutation_preserves_symmetry(self, rng):
        a = laplacian_2d(4)
        p = rng.permutation(a.n)
        assert permute_symmetric(a, p).is_symmetric()


class TestVectorPermutation:
    def test_permute_then_unpermute(self, rng):
        x = rng.standard_normal(12)
        p = rng.permutation(12)
        np.testing.assert_allclose(unpermute_vector(permute_vector(x, p), p), x)

    def test_consistency_with_matrix(self, rng):
        """(PAPᵗ)(Px) == P(Ax) — the identity the solver relies on."""
        a = laplacian_2d(4)
        p = rng.permutation(a.n)
        x = rng.standard_normal(a.n)
        ap = permute_symmetric(a, p)
        lhs = ap.matvec(permute_vector(x, p))
        rhs = permute_vector(a.matvec(x), p)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)
