"""Tests for the solverlint static-analysis framework.

Golden-file fixtures under ``tests/lint_fixtures/`` pin each rule's
behaviour: every ``*_trigger.py`` must produce at least one finding of its
rule, every ``*_clean.py`` none.  The suite also locks down the pragma
machinery (placement, justification, unused/unknown warnings), the CLI exit
codes, and — the actual gate — that ``src/repro`` is clean under every rule.
"""

from pathlib import Path

import pytest

from tools.solverlint import all_rules, lint_file, lint_paths
from tools.solverlint.cli import run

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

#: rule name -> (trigger fixture, clean fixture, minimum trigger findings)
GOLDEN = {
    "dtype-literal-promotion": ("dtype_trigger.py", "dtype_clean.py", 5),
    "conjugation-at-adjoint": ("conj_trigger.py", "conj_clean.py", 3),
    "lock-discipline": ("lock_trigger.py", "lock_clean.py", 3),
    "python-hot-loop": ("hot_loop_trigger.py", "hot_loop_clean.py", 2),
    "missing-annotations": ("annotations_trigger.py", "annotations_clean.py", 4),
    "backend-bypass": ("backend_trigger.py", "backend_clean.py", 4),
    "variant-literal": ("variant_trigger.py", "variant_clean.py", 4),
    "telemetry-guard": ("teleguard_trigger.py", "teleguard_clean.py", 6),
    "shared-mutation-lockset": ("lockset_trigger.py", "lockset_clean.py", 3),
}


def run_rule(rule_name, path, **kwargs):
    rule = all_rules()[rule_name]
    return lint_file(str(path), rules=[rule], enforce_scope=False, **kwargs)


class TestGoldenFixtures:
    @pytest.mark.parametrize("rule_name", sorted(GOLDEN))
    def test_trigger_fires(self, rule_name):
        trigger, _, min_count = GOLDEN[rule_name]
        findings = run_rule(rule_name, FIXTURES / trigger)
        active = [f for f in findings if not f.suppressed]
        assert len(active) >= min_count, (
            f"{trigger} should produce >= {min_count} {rule_name} findings, "
            f"got {[(f.line, f.message) for f in active]}")
        assert all(f.rule == rule_name for f in active)

    @pytest.mark.parametrize("rule_name", sorted(GOLDEN))
    def test_clean_is_silent(self, rule_name):
        _, clean, _ = GOLDEN[rule_name]
        findings = run_rule(rule_name, FIXTURES / clean)
        active = [f for f in findings if not f.suppressed]
        assert active == [], [(f.line, f.message) for f in active]

    def test_every_rule_has_a_golden_pair(self):
        assert sorted(GOLDEN) == sorted(all_rules())


class TestPragmas:
    @pytest.fixture(scope="class")
    def findings(self):
        rule = all_rules()["dtype-literal-promotion"]
        return lint_file(str(FIXTURES / "pragmas.py"), rules=[rule],
                         enforce_scope=False, warn_unused_ignores=True,
                         require_justification=True)

    def _suppressed_lines(self, findings):
        return {f.line for f in findings
                if f.rule == "dtype-literal-promotion" and f.suppressed}

    def test_same_line_pragma(self, findings):
        src = (FIXTURES / "pragmas.py").read_text().splitlines()
        line = next(i for i, l in enumerate(src, 1)
                    if "same-line pragma" in l)
        assert line in self._suppressed_lines(findings)

    def test_previous_line_pragma(self, findings):
        src = (FIXTURES / "pragmas.py").read_text().splitlines()
        line = next(i for i, l in enumerate(src, 1)
                    if "previous-line pragma" in l)
        assert (line + 1) in self._suppressed_lines(findings)

    def test_statement_opener_pragma(self, findings):
        src = (FIXTURES / "pragmas.py").read_text().splitlines()
        line = next(i for i, l in enumerate(src, 1)
                    if "multi-line statement opener" in l)
        assert line in self._suppressed_lines(findings)

    def test_suppressed_findings_carry_reason(self, findings):
        reasons = [f.reason for f in findings
                   if f.suppressed and f.rule == "dtype-literal-promotion"]
        # three placement pragmas carry a "fixture: ..." reason; the
        # deliberately unjustified one suppresses with an empty reason
        assert sorted(bool(r) for r in reasons) == [False, True, True, True]
        assert all("fixture" in r for r in reasons if r)

    def test_unjustified_pragma_flagged(self, findings):
        unjust = [f for f in findings if f.rule == "unjustified-suppression"]
        assert len(unjust) == 1

    def test_unused_pragma_flagged(self, findings):
        unused = [f for f in findings if f.rule == "unused-suppression"]
        assert len(unused) == 1

    def test_unknown_rule_flagged(self, findings):
        unknown = [f for f in findings if f.rule == "unknown-rule"]
        assert len(unknown) == 1
        assert "no-such-rule" in unknown[0].message

    def test_rule_subset_does_not_warn_foreign_pragmas(self):
        # running only missing-annotations must not call the hot-loop
        # pragma "unused" — that rule simply did not run
        rule = all_rules()["missing-annotations"]
        findings = lint_file(str(FIXTURES / "pragmas.py"), rules=[rule],
                             enforce_scope=False, warn_unused_ignores=True)
        assert not [f for f in findings if f.rule == "unused-suppression"]


class TestScoping:
    def test_out_of_scope_file_is_skipped(self, tmp_path):
        # python-hot-loop scopes to core/lowrank; a file elsewhere is exempt
        bad = tmp_path / "free_code.py"
        bad.write_text(FIXTURES.joinpath("hot_loop_trigger.py").read_text())
        rule = all_rules()["python-hot-loop"]
        assert lint_file(str(bad), rules=[rule], enforce_scope=True) == []
        assert lint_file(str(bad), rules=[rule], enforce_scope=False)

    def test_scope_exclude_wins_over_scope_dir(self, tmp_path):
        d = tmp_path / "core"
        d.mkdir()
        sched = d / "scheduler.py"
        sched.write_text(FIXTURES.joinpath("hot_loop_trigger.py").read_text())
        rule = all_rules()["python-hot-loop"]
        assert lint_file(str(sched), rules=[rule], enforce_scope=True) == []


class TestRunner:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_file(str(bad))
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_lint_paths_walks_directories(self):
        findings = lint_paths([str(FIXTURES)], enforce_scope=False)
        assert {Path(f.path).name for f in findings} >= {
            "dtype_trigger.py", "conj_trigger.py", "lock_trigger.py",
            "hot_loop_trigger.py", "annotations_trigger.py"}

    def test_finding_json_roundtrip(self):
        findings = run_rule("dtype-literal-promotion",
                            FIXTURES / "dtype_trigger.py")
        d = findings[0].to_json()
        assert d["rule"] == "dtype-literal-promotion"
        assert isinstance(d["line"], int) and d["line"] > 0


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        rc = run([str(FIXTURES / "dtype_clean.py"), "--no-scope",
                  "--rules", "dtype-literal-promotion"])
        assert rc == 0

    def test_exit_one_on_findings(self, capsys):
        rc = run([str(FIXTURES / "dtype_trigger.py"), "--no-scope",
                  "--rules", "dtype-literal-promotion"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "dtype-literal-promotion" in out

    def test_exit_two_on_unknown_rule(self, capsys):
        rc = run([str(FIXTURES / "dtype_clean.py"), "--rules", "nope"])
        assert rc == 2

    def test_json_format(self, capsys):
        import json
        rc = run([str(FIXTURES / "dtype_trigger.py"), "--no-scope",
                  "--rules", "dtype-literal-promotion", "--format", "json"])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["total"] >= 5
        assert all("rule" in f for f in report["findings"])

    def test_list_rules(self, capsys):
        assert run(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in all_rules():
            assert name in out


class TestLocksetEngine:
    """Acceptance pair for the dataflow layer: the unguarded fixture must
    fail the CLI gate and its locked twin must pass it."""

    def test_unguarded_fixture_exits_one(self, capsys):
        rc = run([str(FIXTURES / "lockset_trigger.py"), "--no-scope",
                  "--rules", "shared-mutation-lockset"])
        assert rc == 1
        assert "shared-mutation-lockset" in capsys.readouterr().out

    def test_locked_twin_exits_zero(self, capsys):
        rc = run([str(FIXTURES / "lockset_clean.py"), "--no-scope",
                  "--rules", "shared-mutation-lockset"])
        assert rc == 0

    def test_unguarded_mutations_name_the_attribute(self):
        findings = run_rule("shared-mutation-lockset",
                            FIXTURES / "lockset_trigger.py")
        unguarded = [f for f in findings if "holds no lock" in f.message]
        assert {a for f in unguarded for a in ("counter", "log")
                if f"'self.{a}'" in f.message} == {"counter", "log"}

    def test_inconsistent_locksets_reported_at_every_site(self):
        findings = run_rule("shared-mutation-lockset",
                            FIXTURES / "lockset_trigger.py")
        inconsistent = [f for f in findings if "inconsistent" in f.message]
        assert len(inconsistent) == 2
        assert all("split" in f.message for f in inconsistent)
        # the disjoint locks are named so the fix is obvious
        assert all("._aux" in f.message and "._lock" in f.message
                   for f in inconsistent)

    def test_alias_and_nested_with_count_as_guarded(self):
        # lockset_clean.py guards through `lk = self._lock` aliasing and a
        # nested `with` — the engine must see through both
        findings = run_rule("shared-mutation-lockset",
                            FIXTURES / "lockset_clean.py")
        assert findings == [], [(f.line, f.message) for f in findings]


class TestSuppressionsReport:
    def _tree(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "x = 1  # solverlint: ignore[python-hot-loop] -- fixture reason\n")
        return mod

    def test_collect_inventories_pragmas(self, tmp_path):
        from tools.solverlint import suppressions as sup
        self._tree(tmp_path)
        entries = sup.collect([str(tmp_path)])
        assert len(entries) == 1
        e = entries[0]
        assert e["rule"] == "python-hot-loop"
        assert e["reason"] == "fixture reason"
        assert e["line"] == 1

    def test_budget_passes_when_report_is_current(self, tmp_path):
        from tools.solverlint import suppressions as sup
        self._tree(tmp_path)
        report = tmp_path / "rep.json"
        sup.write_report([str(tmp_path)], str(report))
        ok, msg = sup.check_budget([str(tmp_path)], str(report))
        assert ok, msg

    def test_budget_fails_on_new_pragma(self, tmp_path):
        from tools.solverlint import suppressions as sup
        mod = self._tree(tmp_path)
        report = tmp_path / "rep.json"
        sup.write_report([str(tmp_path)], str(report))
        mod.write_text(mod.read_text() +
                       "y = 2  # solverlint: ignore[backend-bypass] -- new\n")
        ok, msg = sup.check_budget([str(tmp_path)], str(report))
        assert not ok
        assert "backend-bypass" in msg and "--suppressions" in msg

    def test_budget_warns_stale_on_shrinkage(self, tmp_path):
        from tools.solverlint import suppressions as sup
        mod = self._tree(tmp_path)
        report = tmp_path / "rep.json"
        sup.write_report([str(tmp_path)], str(report))
        mod.write_text("x = 1\n")
        ok, msg = sup.check_budget([str(tmp_path)], str(report))
        assert ok
        assert "stale" in msg

    def test_cli_roundtrip(self, tmp_path, capsys):
        self._tree(tmp_path)
        report = tmp_path / "rep.json"
        assert run(["--suppressions", str(report), str(tmp_path)]) == 0
        assert run(["--check-suppressions", str(report),
                    str(tmp_path)]) == 0
        capsys.readouterr()

    def test_committed_report_matches_tree(self):
        from tools.solverlint import suppressions as sup
        ok, msg = sup.check_budget([str(SRC)],
                                   str(REPO_ROOT / "lint-suppressions.json"))
        assert ok, msg


class TestRepoIsClean:
    """The acceptance gate: the package passes its own linter."""

    def test_src_repro_zero_unsuppressed_findings(self):
        findings = lint_paths([str(SRC)], warn_unused_ignores=True,
                              require_justification=True)
        active = [f for f in findings if not f.suppressed]
        assert active == [], "\n".join(f.format() for f in active)

    def test_all_suppressions_are_justified(self):
        findings = lint_paths([str(SRC)], require_justification=True)
        suppressed = [f for f in findings if f.suppressed]
        assert suppressed, "expected the documented pragmas to be exercised"
        assert all(f.reason for f in suppressed)

    def test_cli_gate_exits_zero(self, capsys):
        assert run([str(SRC)]) == 0
