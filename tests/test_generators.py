"""Tests for the problem generators (the evaluation workload suite)."""

import numpy as np
import pytest

from repro.sparse.generators import (
    anisotropic_laplacian_3d,
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
    random_spd,
)


def smallest_eigenvalue(a):
    return float(np.linalg.eigvalsh(a.to_dense()).min())


class TestLaplacians:
    def test_1d_values(self):
        a = laplacian_1d(4).to_dense()
        expected = [[2, -1, 0, 0], [-1, 2, -1, 0],
                    [0, -1, 2, -1], [0, 0, -1, 2]]
        np.testing.assert_allclose(a, expected)

    def test_1d_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            laplacian_1d(0)

    def test_2d_shape_and_stencil(self):
        a = laplacian_2d(3)
        assert a.n == 9
        d = a.to_dense()
        assert d[4, 4] == 4.0
        # center vertex has 4 neighbours
        assert (d[4] != 0).sum() == 5

    def test_2d_rectangular(self):
        a = laplacian_2d(3, 5)
        assert a.n == 15

    def test_3d_shape_and_stencil(self):
        a = laplacian_3d(3)
        assert a.n == 27
        d = a.to_dense()
        center = 13  # (1,1,1)
        assert d[center, center] == 6.0
        assert (d[center] != 0).sum() == 7

    def test_3d_anisotropic_dims(self):
        a = laplacian_3d(2, 3, 4)
        assert a.n == 24

    @pytest.mark.parametrize("gen", [lambda: laplacian_1d(8),
                                     lambda: laplacian_2d(4),
                                     lambda: laplacian_3d(3)])
    def test_spd(self, gen):
        a = gen()
        assert a.is_symmetric()
        assert smallest_eigenvalue(a) > 0


class TestConvectionDiffusion:
    def test_nonsymmetric_but_pattern_symmetric(self):
        a = convection_diffusion_3d(4, peclet=0.8)
        assert a.is_pattern_symmetric()
        assert not a.is_symmetric(tol=1e-14)

    def test_zero_peclet_is_laplacian(self):
        a = convection_diffusion_3d(3, peclet=0.0)
        np.testing.assert_allclose(a.to_dense(), laplacian_3d(3).to_dense())

    def test_deterministic_by_seed(self):
        a = convection_diffusion_3d(3, seed=7)
        b = convection_diffusion_3d(3, seed=7)
        np.testing.assert_allclose(a.to_dense(), b.to_dense())

    def test_nonsingular(self):
        a = convection_diffusion_3d(4, peclet=0.5)
        assert abs(np.linalg.det(a.to_dense())) > 0


class TestElasticity:
    def test_three_dofs_per_node(self):
        a = elasticity_3d(3)
        assert a.n == 3 * 27

    def test_spd(self):
        a = elasticity_3d(3)
        assert a.is_symmetric(tol=1e-12)
        assert smallest_eigenvalue(a) > 0

    def test_elongated_geometry(self):
        a = elasticity_3d(8, 2, 2)
        assert a.n == 3 * 8 * 2 * 2

    def test_components_coupled(self):
        d = elasticity_3d(2).to_dense()
        # cross-component entries must exist (grad-div coupling)
        coupling = 0.0
        for node in range(8):
            for other in range(8):
                blk = d[3 * node:3 * node + 3, 3 * other:3 * other + 3]
                coupling += np.abs(blk - np.diag(np.diag(blk))).sum()
        assert coupling > 0


class TestHeterogeneousPoisson:
    def test_spd(self):
        a = heterogeneous_poisson_3d(4, contrast=1e3)
        assert a.is_symmetric(tol=1e-10)
        assert smallest_eigenvalue(a) > 0

    def test_contrast_shows_in_coefficients(self):
        lo = heterogeneous_poisson_3d(4, contrast=1.0)
        hi = heterogeneous_poisson_3d(4, contrast=1e6)
        ratio_lo = np.abs(lo.values).max() / np.abs(lo.values[lo.values != 0]).min()
        ratio_hi = np.abs(hi.values).max() / np.abs(hi.values[hi.values != 0]).min()
        assert ratio_hi > ratio_lo * 10


class TestAnisotropicLaplacian:
    def test_spd(self):
        a = anisotropic_laplacian_3d(3)
        assert a.is_symmetric()
        assert smallest_eigenvalue(a) > 0

    def test_isotropic_limit(self):
        a = anisotropic_laplacian_3d(3, epsx=1.0, epsy=1.0, epsz=1.0)
        np.testing.assert_allclose(a.to_dense(), laplacian_3d(3).to_dense())

    def test_axis_weights(self):
        a = anisotropic_laplacian_3d(3, epsx=1.0, epsy=10.0, epsz=100.0)
        d = a.to_dense()
        # +x neighbour of center has weight -1, +y -10, +z -100
        center = 13
        assert d[center, center + 1] == pytest.approx(-1.0)
        assert d[center, center + 3] == pytest.approx(-10.0)
        assert d[center, center + 9] == pytest.approx(-100.0)


class TestRandomSPD:
    def test_spd_and_symmetric(self):
        a = random_spd(40, density=0.1, seed=2)
        assert a.is_symmetric(tol=1e-12)
        assert smallest_eigenvalue(a) > 0

    def test_seed_determinism(self):
        a = random_spd(30, seed=5)
        b = random_spd(30, seed=5)
        np.testing.assert_allclose(a.to_dense(), b.to_dense())


class TestLaplacian27pt:
    def test_full_neighbourhood(self):
        from repro.sparse.generators import laplacian_3d_27pt
        a = laplacian_3d_27pt(4)
        d = a.to_dense()
        center = 1 + 4 + 16  # node (1,1,1)
        assert (d[center] != 0).sum() == 27

    def test_spd(self):
        from repro.sparse.generators import laplacian_3d_27pt
        a = laplacian_3d_27pt(3)
        assert a.is_symmetric(tol=1e-12)
        assert np.linalg.eigvalsh(a.to_dense()).min() > 0

    def test_anisotropic_dims(self):
        from repro.sparse.generators import laplacian_3d_27pt
        assert laplacian_3d_27pt(2, 3, 4).n == 24

    def test_solver_end_to_end(self):
        from repro.sparse.generators import laplacian_3d_27pt
        from repro.core.solver import Solver
        from tests.conftest import tiny_blr_config
        a = laplacian_3d_27pt(5)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-8))
        s.factorize()
        b = np.ones(a.n)
        assert np.linalg.norm(a.matvec(s.solve(b)) - b) <= 1e-5


class TestHelmholtz:
    def test_indefinite_at_high_wavenumber(self):
        from repro.sparse.generators import helmholtz_3d
        a = helmholtz_3d(4, wavenumber=1.5)
        eig = np.linalg.eigvalsh(a.to_dense())
        assert eig.min() < 0 < eig.max()

    def test_zero_wavenumber_is_laplacian(self):
        from repro.sparse.generators import helmholtz_3d, laplacian_3d
        a = helmholtz_3d(3, wavenumber=0.0)
        np.testing.assert_allclose(a.to_dense(), laplacian_3d(3).to_dense())

    def test_ldlt_solves_indefinite_helmholtz(self):
        from repro.sparse.generators import helmholtz_3d
        from repro.core.solver import Solver
        from tests.conftest import tiny_blr_config
        a = helmholtz_3d(5, wavenumber=1.2)
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt"))
        s.factorize()
        b = np.ones(a.n)
        x = s.solve(b)
        assert np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b) <= 1e-8

    def test_inertia_counts_negative_modes(self):
        from repro.sparse.generators import helmholtz_3d
        from repro.core.solver import Solver
        from tests.conftest import tiny_blr_config
        a = helmholtz_3d(4, wavenumber=1.5)
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt"))
        neg, zero, pos = s.inertia()
        eig = np.linalg.eigvalsh(a.to_dense())
        assert neg == int((eig < 0).sum())
