"""Tests for timers, kernel stats, and memory tracking."""

import time

import numpy as np
import pytest

from repro.runtime.memory import (
    MemoryTracker,
    array_nbytes,
    nbytes_dense,
    nbytes_lowrank,
)
from repro.runtime.stats import FactorizationStats, KernelStats, KERNEL_CATEGORIES
from repro.runtime.timers import CategoryTimers, Timer


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        first = t.elapsed
        with t:
            time.sleep(0.002)
        assert t.elapsed > first

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestCategoryTimers:
    def test_independent_categories(self):
        ct = CategoryTimers()
        with ct.time("a"):
            time.sleep(0.001)
        assert ct.elapsed("a") > 0
        assert ct.elapsed("b") == 0.0

    def test_merge_sums(self):
        a, b = CategoryTimers(), CategoryTimers()
        a.timer("x").elapsed = 1.0
        b.timer("x").elapsed = 2.0
        b.timer("y").elapsed = 3.0
        a.merge(b)
        assert a.elapsed("x") == 3.0
        assert a.elapsed("y") == 3.0
        assert a.total() == 6.0


class TestKernelStats:
    def test_add_and_query(self):
        ks = KernelStats()
        ks.add("compress", seconds=0.5, flops=100.0)
        ks.add("compress", seconds=0.25, flops=50.0)
        assert ks.time("compress") == pytest.approx(0.75)
        assert ks.flop("compress") == 150.0
        assert ks.call_count("compress") == 2

    def test_locked_instance(self):
        ks = KernelStats(locked=True)
        ks.add("x", flops=1.0)
        assert ks.flop("x") == 1.0

    def test_merge(self):
        a, b = KernelStats(), KernelStats()
        a.add("x", flops=1.0)
        b.add("x", flops=2.0)
        b.add("y", seconds=1.0)
        a.merge(b)
        assert a.flop("x") == 3.0
        assert a.time("y") == 1.0

    def test_as_dict(self):
        ks = KernelStats()
        ks.add("compress", seconds=1.0, flops=2.0)
        d = ks.as_dict()
        assert d["compress"]["time"] == 1.0
        assert d["compress"]["flops"] == 2.0
        assert d["compress"]["calls"] == 1

    def test_totals(self):
        ks = KernelStats()
        ks.add("a", seconds=1.0, flops=10.0)
        ks.add("b", seconds=2.0, flops=20.0)
        assert ks.total_time() == 3.0
        assert ks.total_flops() == 30.0


class TestFactorizationStats:
    def test_memory_ratio(self):
        st = FactorizationStats(factor_nbytes=50, dense_factor_nbytes=100)
        assert st.memory_ratio == 0.5

    def test_memory_ratio_zero_dense(self):
        assert FactorizationStats().memory_ratio == 1.0

    def test_summary_covers_all_categories(self):
        st = FactorizationStats()
        summary = st.summary()
        for c in KERNEL_CATEGORIES:
            assert f"time_{c}" in summary
            assert f"flops_{c}" in summary
        assert "memory_ratio" in summary


class TestMemoryTracker:
    def test_peak_tracking(self):
        mt = MemoryTracker()
        mt.alloc(100)
        mt.alloc(50)
        mt.free(120)
        mt.alloc(10)
        assert mt.current == 40
        assert mt.peak == 150

    def test_resize(self):
        mt = MemoryTracker()
        mt.alloc(100)
        mt.resize(100, 300)
        assert mt.current == 300
        assert mt.peak == 300
        mt.resize(300, 10)
        assert mt.current == 10
        assert mt.peak == 300

    def test_reset(self):
        mt = MemoryTracker()
        mt.alloc(5)
        mt.reset()
        assert mt.current == 0 and mt.peak == 0

    def test_checkpoint(self):
        mt = MemoryTracker()
        mt.alloc(7)
        assert mt.checkpoint() == 7


class TestByteHelpers:
    def test_nbytes_dense(self):
        assert nbytes_dense(10, 20) == 1600

    def test_nbytes_lowrank(self):
        assert nbytes_lowrank(10, 20, 3) == (10 + 20) * 3 * 8

    def test_array_nbytes(self):
        assert array_nbytes(np.zeros((4, 4))) == 128
