"""Tests for the Adaptive Cross Approximation kernel."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.lowrank.aca import aca_compress
from repro.sparse.generators import laplacian_3d
from tests.conftest import random_lowrank, tiny_blr_config


class TestAcaKernel:
    @pytest.mark.parametrize("tol", [1e-4, 1e-8, 1e-12])
    def test_error_bound(self, rng, tol):
        a = random_lowrank(rng, 50, 40, 20, decay=0.4)
        lr = aca_compress(a, tol)
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= tol * 1.05

    def test_u_orthonormal(self, rng):
        a = random_lowrank(rng, 30, 25, 10)
        lr = aca_compress(a, 1e-8)
        np.testing.assert_allclose(lr.u.T @ lr.u, np.eye(lr.rank),
                                   atol=1e-10)

    def test_exact_rank_found(self, rng):
        u = rng.standard_normal((25, 4))
        v = rng.standard_normal((20, 4))
        lr = aca_compress(u @ v.T, 1e-10)
        assert lr.rank == 4

    def test_zero_matrix(self):
        lr = aca_compress(np.zeros((8, 6)), 1e-8)
        assert lr.rank == 0

    def test_empty_dimension(self):
        lr = aca_compress(np.zeros((0, 5)), 1e-8)
        assert lr.shape == (0, 5)

    def test_max_rank_rejection(self, rng):
        a = rng.standard_normal((16, 16))
        assert aca_compress(a, 1e-14, max_rank=3) is None

    def test_rank_monotone_in_tolerance(self, rng):
        a = random_lowrank(rng, 40, 40, 30, decay=0.6)
        ranks = [aca_compress(a, tol).rank for tol in (1e-2, 1e-6, 1e-10)]
        assert ranks == sorted(ranks)

    def test_roundoff_pivot_terminates(self, rng):
        """Regression: an exactly rank-1 block under an unreachable
        tolerance must terminate on the pivot-magnitude floor, not spin
        through eps-sized noise crosses until it hits max_rank (the old
        ``pivot == 0.0`` test only stopped on *exact* zeros)."""
        u = rng.standard_normal(40)
        v = rng.standard_normal(30)
        a = np.outer(u, v)
        lr = aca_compress(a, tol=1e-17, max_rank=8)
        assert lr is not None, "noise crosses consumed the rank budget"
        assert lr.rank <= 3
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= 1e-13

    def test_roundoff_pivot_terminates_complex(self, rng):
        u = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        v = rng.standard_normal(24) + 1j * rng.standard_normal(24)
        a = np.outer(u, v)
        lr = aca_compress(a, tol=1e-17, max_rank=8)
        assert lr is not None
        assert lr.rank <= 3
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= 1e-13

    def test_smooth_kernel_matrix(self, rng):
        """The BEM-style case ACA is designed for: separated clusters."""
        src = rng.random((60, 3))
        dst = rng.random((50, 3)) + 4.0
        d = np.linalg.norm(src[:, None] - dst[None, :], axis=2)
        a = 1.0 / d
        lr = aca_compress(a, 1e-8)
        assert lr.rank < 25  # far-field interaction compresses hard
        err = np.linalg.norm(a - lr.to_dense()) / np.linalg.norm(a)
        assert err <= 1.1e-8


class TestAcaInSolver:
    def test_end_to_end(self, rng):
        a = laplacian_3d(8)
        cfg = tiny_blr_config(strategy="minimal-memory", kernel="aca",
                              tolerance=1e-6)
        s = Solver(a, cfg)
        stats = s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-3
        assert stats.nblocks_compressed > 0

    def test_config_accepts_aca(self):
        from repro.config import SolverConfig
        assert SolverConfig(kernel="aca").kernel == "aca"
