"""Tests for the RCM ordering and matrix equilibration."""

import numpy as np

from repro.ordering.graph import Graph
from repro.ordering.rcm import bandwidth, reverse_cuthill_mckee
from repro.sparse.generators import (
    heterogeneous_poisson_3d,
    laplacian_1d,
    laplacian_2d,
)
from repro.sparse.permute import is_permutation
from repro.sparse.scaling import equilibrate, scaled_extremes


class TestRcm:
    def test_valid_permutation(self):
        g = Graph.from_matrix(laplacian_2d(6))
        perm = reverse_cuthill_mckee(g)
        assert is_permutation(perm, g.n)

    def test_path_bandwidth_one(self):
        g = Graph.from_matrix(laplacian_1d(20))
        perm = reverse_cuthill_mckee(g)
        assert bandwidth(g, perm) == 1

    def test_reduces_bandwidth_on_shuffled_grid(self, rng):
        from repro.sparse.permute import permute_symmetric
        a = laplacian_2d(8)
        shuffled = permute_symmetric(a, rng.permutation(a.n))
        g = Graph.from_matrix(shuffled)
        natural_bw = bandwidth(g, np.arange(g.n))
        rcm_bw = bandwidth(g, reverse_cuthill_mckee(g))
        assert rcm_bw < natural_bw

    def test_disconnected_graph(self):
        g = Graph.from_edges(6, [(0, 1), (3, 4), (4, 5)])
        perm = reverse_cuthill_mckee(g)
        assert is_permutation(perm, 6)

    def test_deterministic(self):
        g = Graph.from_matrix(laplacian_2d(5))
        np.testing.assert_array_equal(reverse_cuthill_mckee(g),
                                      reverse_cuthill_mckee(g))


class TestEquilibration:
    def test_normalizes_entry_magnitudes(self):
        a = heterogeneous_poisson_3d(5, contrast=1e6)
        lo_before, hi_before = scaled_extremes(a)
        scaled, _ = equilibrate(a)
        lo, hi = scaled_extremes(scaled)
        assert hi <= 1.0 + 1e-10
        assert (hi / lo) < (hi_before / lo_before)

    def test_symmetric_scaling_preserves_symmetry(self):
        a = heterogeneous_poisson_3d(4, contrast=1e4)
        scaled, _ = equilibrate(a, symmetric=True)
        assert scaled.is_symmetric(tol=1e-12)

    def test_solution_transform_roundtrip(self, rng):
        """Solving the scaled system and unscaling must solve the original."""
        a = heterogeneous_poisson_3d(4, contrast=1e5)
        scaled, sc = equilibrate(a)
        b = rng.standard_normal(a.n)
        y = np.linalg.solve(scaled.to_dense(), sc.scale_rhs(b))
        x = sc.unscale_solution(y)
        res = np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)
        assert res <= 1e-10

    def test_nonsymmetric_mode(self):
        from repro.sparse.generators import convection_diffusion_3d
        a = convection_diffusion_3d(4)
        scaled, _ = equilibrate(a, symmetric=False)
        _, hi = scaled_extremes(scaled)
        assert hi <= 1.0 + 1e-10

    def test_multi_rhs_transforms(self, rng):
        a = laplacian_2d(4)
        _, sc = equilibrate(a)
        b = rng.standard_normal((a.n, 3))
        assert sc.scale_rhs(b).shape == b.shape
        assert sc.unscale_solution(b).shape == b.shape

    def test_solver_on_equilibrated_system(self, rng):
        """End-to-end: equilibrate, factorize, solve, unscale."""
        from repro.core.solver import Solver
        from tests.conftest import tiny_blr_config
        a = heterogeneous_poisson_3d(5, contrast=1e6)
        scaled, sc = equilibrate(a)
        s = Solver(scaled, tiny_blr_config(strategy="dense"))
        s.factorize()
        b = rng.standard_normal(a.n)
        x = sc.unscale_solution(s.solve(sc.scale_rhs(b)))
        res = np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)
        assert res <= 1e-9
