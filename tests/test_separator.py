"""Tests for vertex separators."""

import numpy as np

from repro.ordering.graph import Graph
from repro.ordering.separator import check_separator, find_vertex_separator
from repro.sparse.generators import laplacian_2d, laplacian_3d


def assert_valid_split(g, verts, pa, pb, sep):
    all_v = np.sort(np.concatenate([pa, pb, sep]))
    np.testing.assert_array_equal(all_v, np.sort(verts))
    assert check_separator(g, pa, pb, sep)


class TestGrid:
    def test_2d_grid_separator_is_thin(self):
        g = Graph.from_matrix(laplacian_2d(10))
        verts = np.arange(g.n)
        pa, pb, sep = find_vertex_separator(g, verts)
        assert_valid_split(g, verts, pa, pb, sep)
        # a 10x10 grid has a width-10 separating line
        assert 0 < sep.size <= 20
        assert min(pa.size, pb.size) >= g.n // 5

    def test_3d_grid_separator_is_a_plane(self):
        g = Graph.from_matrix(laplacian_3d(6))
        verts = np.arange(g.n)
        pa, pb, sep = find_vertex_separator(g, verts)
        assert_valid_split(g, verts, pa, pb, sep)
        assert sep.size <= 2 * 36  # within 2x of a 6x6 plane
        assert min(pa.size, pb.size) >= g.n // 5

    def test_subset_split(self):
        g = Graph.from_matrix(laplacian_2d(8))
        verts = np.arange(32)  # half the grid
        pa, pb, sep = find_vertex_separator(g, verts)
        assert_valid_split(g, verts, pa, pb, sep)
        assert sep.size <= 10


class TestPath:
    def test_path_separator_is_single_vertex(self):
        g = Graph.from_edges(11, [(i, i + 1) for i in range(10)])
        pa, pb, sep = find_vertex_separator(g, np.arange(11))
        assert_valid_split(g, np.arange(11), pa, pb, sep)
        assert sep.size == 1
        assert abs(pa.size - pb.size) <= 1


class TestDegenerate:
    def test_single_vertex(self):
        g = Graph.from_edges(1, [])
        pa, pb, sep = find_vertex_separator(g, np.array([0]))
        assert pa.size == 1 and pb.size == 0 and sep.size == 0

    def test_two_vertices(self):
        g = Graph.from_edges(2, [(0, 1)])
        pa, pb, sep = find_vertex_separator(g, np.arange(2))
        total = pa.size + pb.size + sep.size
        assert total == 2
        assert check_separator(g, pa, pb, sep)

    def test_complete_graph(self):
        n = 6
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        g = Graph.from_edges(n, edges)
        pa, pb, sep = find_vertex_separator(g, np.arange(n))
        # K6 has no useful separator; whatever comes back must be a
        # legitimate split
        assert pa.size + pb.size + sep.size == n
        assert check_separator(g, pa, pb, sep)

    def test_star_graph(self):
        g = Graph.from_edges(7, [(0, i) for i in range(1, 7)])
        pa, pb, sep = find_vertex_separator(g, np.arange(7))
        assert_valid_split(g, np.arange(7), pa, pb, sep)
        # the centre is the only separator
        if sep.size:
            assert 0 in sep


class TestCheckSeparator:
    def test_detects_violation(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert not check_separator(g, np.array([0]), np.array([2]),
                                   np.array([1]))
        g2 = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert check_separator(g2, np.array([0]), np.array([2]),
                               np.array([1]))
