"""Tests for the runtime task tracer (repro.runtime.trace).

Covers the recorder itself, the JSON round-trip, the trace invariants that
must hold for every execution engine, the utilization/critical-path
summaries, the Gantt renderer, and the disabled-tracing overhead bound.
"""

import json
import threading
import time

import pytest

from repro.analysis.charts import gantt_chart
from repro.core.solver import Solver
from repro.runtime.trace import TaskTracer
from repro.sparse.generators import laplacian_2d, laplacian_3d
from tests.conftest import tiny_blr_config

#: engine name -> config overrides producing that engine through Solver
ENGINES = {
    "sequential": dict(threads=1),
    "left-looking": dict(threads=1, left_looking=True,
                         strategy="just-in-time"),
    "threaded-dynamic": dict(threads=4, scheduler="dynamic"),
    "threaded-static": dict(threads=4, scheduler="static"),
}


def traced_solver(a, **overrides):
    s = Solver(a, tiny_blr_config(trace=True, **overrides))
    s.factorize()
    return s


class TestTracerUnit:
    def test_record_and_events_sorted(self):
        tr = TaskTracer()
        t0 = tr.clock()
        tr.record("factor", 1, t0)
        tr.record("update", 1, tr.clock(), target=2, tag="panel")
        evs = tr.events()
        assert [ev.kind for ev in evs] == ["factor", "update"]
        assert evs[0].t0 <= evs[1].t0
        assert evs[1].target == 2 and evs[1].tag == "panel"
        assert all(ev.t1 >= ev.t0 for ev in evs)

    def test_dense_thread_indices(self):
        tr = TaskTracer()

        def work():
            tr.record("factor", 0, tr.clock())

        threads = [threading.Thread(target=work) for _ in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert sorted({ev.thread for ev in tr.events()}) == [0, 1, 2]
        assert tr.nthreads() == 3

    def test_empty_tracer_summaries(self):
        tr = TaskTracer()
        assert tr.events() == []
        assert tr.span() == 0.0
        assert tr.critical_path() == 0.0
        assert tr.summary()["n_events"] == 0
        assert tr.check_invariants() == []

    def test_meta_is_free_form(self):
        tr = TaskTracer()
        tr.meta["engine"] = "unit-test"
        assert tr.summary()["meta"]["engine"] == "unit-test"


class TestJsonRoundTrip:
    def test_round_trip_identity(self, tmp_path):
        s = traced_solver(laplacian_3d(5), threads=2)
        path = tmp_path / "trace.json"
        doc = s.tracer.to_json(path)
        assert path.exists()
        assert doc == json.loads(path.read_text())
        back = TaskTracer.from_json(path)
        assert back.events() == s.tracer.events()
        assert back.meta == s.tracer.meta
        assert back.task_counts() == s.tracer.task_counts()

    def test_from_json_accepts_dict(self):
        s = traced_solver(laplacian_2d(6))
        back = TaskTracer.from_json(s.tracer.to_json())
        assert back.events() == s.tracer.events()

    def test_schema_fields(self):
        s = traced_solver(laplacian_2d(6))
        doc = s.tracer.to_json()
        assert doc["version"] == 1
        for raw in doc["events"]:
            assert set(raw) == {"kind", "cblk", "target", "tag",
                                "thread", "t0", "t1"}


class TestTraceInvariants:
    """The properties every engine's trace must satisfy."""

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_factor_tasks_cover_every_block_once(self, engine):
        s = traced_solver(laplacian_3d(6), **ENGINES[engine])
        ncblk = s.symbolic.ncblk
        factors = [ev for ev in s.tracer.events() if ev.kind == "factor"]
        assert len(factors) == ncblk
        assert sorted(ev.cblk for ev in factors) == list(range(ncblk))
        assert s.tracer.meta["engine"] == engine

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_begin_before_end_and_no_thread_overlap(self, engine):
        s = traced_solver(laplacian_3d(6), **ENGINES[engine])
        evs = s.tracer.events()
        assert all(ev.t1 >= ev.t0 for ev in evs)
        by_thread = {}
        for ev in evs:
            by_thread.setdefault(ev.thread, []).append(ev)
        for tevs in by_thread.values():
            tevs.sort(key=lambda ev: ev.t0)
            for a, b in zip(tevs, tevs[1:]):
                assert b.t0 >= a.t1 - 1e-9
        assert s.tracer.check_invariants(s.symbolic.ncblk) == []

    @pytest.mark.parametrize("engine", ["threaded-dynamic",
                                        "threaded-static"])
    def test_pull_mode_updates_have_explicit_targets(self, engine):
        s = traced_solver(laplacian_3d(6), **ENGINES[engine])
        updates = [ev for ev in s.tracer.events() if ev.kind == "update"]
        assert updates, "threaded runs must trace update tasks"
        assert all(ev.target >= 0 for ev in updates)
        # one pulled update per (contributor, target) edge
        edges = {(ev.cblk, ev.target) for ev in updates}
        want = {(c, t) for t in range(s.symbolic.ncblk)
                for c in s.symbolic.contributors(t)}
        assert edges == want

    def test_invariant_checker_flags_corruption(self):
        tr = TaskTracer()
        t = tr.clock()
        tr.record("factor", 0, t)
        tr.record("factor", 0, tr.clock())  # duplicate factor
        problems = tr.check_invariants(ncblk=2)
        assert any("factored 2 times" in p for p in problems)
        assert any("1/2" in p or "factored 1/2" in p for p in problems)


class TestSummaries:
    def test_thread_counts_reproduced(self):
        s = traced_solver(laplacian_3d(6), threads=2)
        summ = s.tracer.summary()
        assert summ["meta"]["threads"] == 2
        assert summ["n_threads"] == 2  # both workers genuinely ran tasks
        assert set(summ["utilization"]) == set(summ["thread_busy"])
        assert all(0.0 <= u <= 1.0 + 1e-9
                   for u in summ["utilization"].values())

    def test_sequential_critical_path_is_busy_time(self):
        s = traced_solver(laplacian_2d(7))
        busy = sum(ev.duration for ev in s.tracer.events())
        assert s.tracer.critical_path() == pytest.approx(busy)

    def test_threaded_critical_path_bounds(self):
        s = traced_solver(laplacian_3d(6), threads=4)
        tr = s.tracer
        cp = tr.critical_path()
        busy = sum(ev.duration for ev in tr.events())
        # the chain is at most all work, at least the heaviest single task
        assert max(ev.duration for ev in tr.events()) <= cp + 1e-12
        assert cp <= busy + 1e-9
        assert tr.summary()["parallelism"] >= 1.0 - 1e-9

    def test_span_covers_events(self):
        s = traced_solver(laplacian_3d(5), threads=2)
        evs = s.tracer.events()
        assert s.tracer.span() == pytest.approx(
            max(ev.t1 for ev in evs) - min(ev.t0 for ev in evs))


class TestGantt:
    def test_renders_lanes_and_legend(self, tmp_path):
        s = traced_solver(laplacian_3d(5), threads=2)
        path = tmp_path / "gantt.svg"
        out = gantt_chart(path, s.tracer.events(), title="tasks")
        svg = out.read_text()
        assert svg.startswith("<svg")
        for tid in sorted({ev.thread for ev in s.tracer.events()}):
            assert f"thread {tid}" in svg
        assert "factor" in svg and "update" in svg
        # one rect per event (plus background + legend swatches)
        assert svg.count("<rect") >= len(s.tracer.events())

    def test_accepts_json_dicts(self, tmp_path):
        s = traced_solver(laplacian_2d(6))
        doc = s.tracer.to_json()
        out = gantt_chart(tmp_path / "g.svg", doc["events"])
        assert out.exists()


class TestDisabledOverhead:
    def test_tracing_is_off_by_default(self):
        s = Solver(laplacian_2d(6), tiny_blr_config())
        s.factorize()
        assert s.tracer is None
        assert s.factor.tracer is None

    def test_disabled_overhead_under_5_percent(self):
        """Benchmark-style bound: enabling the trace hooks must not slow a
        laplacian_3d(8) JIT/RRQR factorization by more than 5% (plus a
        small absolute epsilon for scheduler noise).  With tracing
        *disabled* the hooks are a single attribute load + None test per
        task, so the enabled run bounds the disabled overhead from above.
        """
        from repro.config import SolverConfig

        a = laplacian_3d(8)

        def best_of(trace, reps=3):
            times = []
            for _ in range(reps):
                cfg = SolverConfig.laptop_scale(
                    strategy="just-in-time", kernel="rrqr", trace=trace)
                s = Solver(a, cfg)
                s.analyze()
                t0 = time.perf_counter()
                s.factorize()
                times.append(time.perf_counter() - t0)
            return min(times)

        best_of(False, reps=1)  # warm the caches
        t_off = best_of(False)
        t_on = best_of(True)
        assert t_on <= 1.05 * t_off + 0.02, (
            f"tracing overhead too high: off={t_off:.4f}s on={t_on:.4f}s")


class TestGanttKindColors:
    def test_compress_and_finalize_get_stable_legend_colors(self, tmp_path):
        """The ufc "compress" pass and the fuc "finalize" pass render
        with their own palette entries (not the hashed fallback), and
        both appear in the legend."""
        from repro.analysis.charts import _GANTT_KIND_COLORS, PALETTE

        assert _GANTT_KIND_COLORS["compress"] == PALETTE[2]
        assert _GANTT_KIND_COLORS["finalize"] == PALETTE[5]
        assert len(set(_GANTT_KIND_COLORS.values())) == 4

        tr = TaskTracer()
        t0 = tr.clock()
        tr.record("factor", 0, t0)
        tr.record("update", 1, t0, target=2)
        tr.record("compress", 1, t0, tag="ufc")
        tr.record("finalize", 2, t0, tag="fuc")
        out = gantt_chart(tmp_path / "g.svg", tr.events())
        svg = out.read_text()
        for kind, color in _GANTT_KIND_COLORS.items():
            assert kind in svg
            assert color in svg

    def test_variant_runs_trace_their_extra_kinds(self):
        a = laplacian_2d(10)
        ufc = traced_solver(a, strategy="just-in-time", variant="ufc")
        assert ufc.tracer.task_counts().get("compress", 0) > 0
        fuc = traced_solver(a, strategy="just-in-time", variant="fuc")
        assert fuc.tracer.task_counts().get("finalize", 0) > 0
