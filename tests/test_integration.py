"""Cross-module integration tests reproducing the paper's headline claims
at test scale."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.sparse.generators import (
    anisotropic_laplacian_3d,
    convection_diffusion_3d,
    elasticity_3d,
    heterogeneous_poisson_3d,
    laplacian_3d,
)
from tests.conftest import tiny_blr_config

SUITE = {
    "lap": lambda: laplacian_3d(7),
    "atmos": lambda: convection_diffusion_3d(7),
    "elasticity": lambda: elasticity_3d(4),
    "hetero": lambda: heterogeneous_poisson_3d(7),
    "aniso": lambda: anisotropic_laplacian_3d(7),
}


@pytest.mark.parametrize("name", sorted(SUITE))
class TestFullSuite:
    def test_all_strategies_solve_suite(self, name):
        a = SUITE[name]()
        rng = np.random.default_rng(7)
        b = rng.standard_normal(a.n)
        errors = {}
        for strategy in ("dense", "just-in-time", "minimal-memory"):
            cfg = tiny_blr_config(strategy=strategy, tolerance=1e-8)
            s = Solver(a, cfg)
            s.factorize()
            errors[strategy] = s.backward_error(s.solve(b), b)
        assert errors["dense"] <= 1e-9
        assert errors["just-in-time"] <= 1e-4
        assert errors["minimal-memory"] <= 1e-3

    def test_refinement_recovers_precision(self, name):
        """§4.4: a τ=1e-8 BLR factorization + a few refinement iterations
        reaches near machine precision on the whole suite."""
        a = SUITE[name]()
        rng = np.random.default_rng(8)
        b = rng.standard_normal(a.n)
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-8)
        s = Solver(a, cfg)
        s.factorize()
        res = s.refine(b, tol=1e-12, maxiter=20)
        assert res.backward_error <= 1e-10


class TestPaperShapeClaims:
    def test_mm_is_slower_in_flops_than_jit(self):
        """Table 1/2: the extend-add makes Minimal Memory cost more than
        Just-In-Time in update flops."""
        a = laplacian_3d(8)
        flops = {}
        for strategy in ("just-in-time", "minimal-memory"):
            cfg = tiny_blr_config(strategy=strategy, tolerance=1e-8)
            s = Solver(a, cfg)
            st = s.factorize()
            flops[strategy] = st.kernels.total_flops()
        assert flops["minimal-memory"] > flops["just-in-time"]

    def test_svd_memory_not_worse_than_rrqr(self):
        """Figure 6: SVD compresses at least as well as RRQR."""
        a = laplacian_3d(8)
        ratios = {}
        for kernel in ("svd", "rrqr"):
            cfg = tiny_blr_config(strategy="minimal-memory", kernel=kernel,
                                  tolerance=1e-4)
            st = Solver(a, cfg).factorize()
            ratios[kernel] = st.memory_ratio
        assert ratios["svd"] <= ratios["rrqr"] * 1.05

    def test_backward_error_tracks_tolerance_ordering(self):
        """Figure 5: looser tolerance => worse first-residual accuracy."""
        a = laplacian_3d(7)
        rng = np.random.default_rng(9)
        b = rng.standard_normal(a.n)
        errs = []
        for tol in (1e-4, 1e-8, 1e-12):
            cfg = tiny_blr_config(strategy="just-in-time", tolerance=tol)
            s = Solver(a, cfg)
            s.factorize()
            errs.append(s.backward_error(s.solve(b), b))
        assert errs[0] >= errs[1] >= errs[2]

    def test_solve_faster_with_compression_in_flops(self):
        """Table 2: the solve step benefits from compression (work
        proportional to ranks).  Compare factor sizes as the proxy."""
        a = laplacian_3d(8)
        sizes = {}
        for strategy in ("dense", "minimal-memory"):
            cfg = tiny_blr_config(strategy=strategy, tolerance=1e-4)
            st = Solver(a, cfg).factorize()
            sizes[strategy] = st.factor_nbytes
        assert sizes["minimal-memory"] < sizes["dense"]


class TestReusableAnalysis:
    def test_same_pattern_different_values(self):
        """Steps 1-2 are value-free: reuse the symbolic factorization for a
        second matrix with the same pattern (paper §1)."""
        a1 = heterogeneous_poisson_3d(6, contrast=10.0, seed=1)
        a2 = heterogeneous_poisson_3d(6, contrast=1e4, seed=2)
        cfg = tiny_blr_config(strategy="dense")
        s1 = Solver(a1, cfg)
        s1.factorize()
        # graft the cached analysis into a solver for the second matrix
        s2 = Solver(a2, cfg)
        s2.symbolic, s2.perm = s1.symbolic, s1.perm
        s2.factorize()
        rng = np.random.default_rng(0)
        b = rng.standard_normal(a2.n)
        assert s2.backward_error(s2.solve(b), b) <= 1e-9
