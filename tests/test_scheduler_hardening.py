"""Concurrency tests for the hardened threaded schedulers.

Covers the PR's tentpole guarantees:

* **Seeded determinism stress** — threaded factors are bit-identical to the
  sequential run (the pull-mode fan-in reduction fixes the floating-point
  reduction order per target).
* **Error aggregation** — every worker exception is collected; several
  simultaneous failures surface as one :class:`SchedulerError` carrying all
  of them.
* **Sentinel shutdown** — workers exit promptly after completion or
  failure; no scheduler thread outlives a run.
* **Deadlock watchdog** — a synthetic stall (fault-injected worker hang)
  raises :class:`DeadlockError` with a pending-counter dump instead of
  hanging the caller forever.

``REPRO_STRESS_REPS`` scales the stress repetition count (CI runs more).
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.factor import assemble
from repro.core.scheduler import (
    DeadlockError,
    SchedulerError,
    proportional_mapping,
    run_sequential,
    run_threaded,
    run_threaded_static,
)
from repro.lowrank.block import LowRankBlock
from repro.runtime.faults import FaultError, FaultInjector
from repro.core.solver import Solver
from repro.sparse.generators import laplacian_2d, laplacian_3d
from repro.sparse.permute import permute_symmetric
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization
from tests.conftest import tiny_blr_config

STRESS_REPS = int(os.environ.get("REPRO_STRESS_REPS", "5"))
STRESS_THREADS = tuple(
    int(t) for t in os.environ.get("REPRO_STRESS_THREADS", "2,4").split(","))


def _prepared(a, **overrides):
    cfg = tiny_blr_config(**overrides)
    opts = SymbolicOptions.from_config(cfg)
    symb, perm = symbolic_factorization(a, opts)
    return cfg, symb, permute_symmetric(a, perm)


def _assert_bit_identical(ref, other, context=""):
    for nc_r, nc_o in zip(ref.cblks, other.cblks):
        assert np.array_equal(nc_r.diag, nc_o.diag), \
            f"diag of cblk {nc_r.sym.id} differs {context}"
        for i in range(nc_r.sym.noff):
            br, bo = nc_r.lblock(i), nc_o.lblock(i)
            assert isinstance(br, LowRankBlock) == \
                isinstance(bo, LowRankBlock), \
                f"storage mode of block ({nc_r.sym.id},{i}) differs {context}"
            if isinstance(br, LowRankBlock):
                assert np.array_equal(br.u, bo.u) \
                    and np.array_equal(br.v, bo.v), \
                    f"LR block ({nc_r.sym.id},{i}) differs {context}"
            else:
                assert np.array_equal(np.asarray(br), np.asarray(bo)), \
                    f"dense block ({nc_r.sym.id},{i}) differs {context}"
        if nc_r.ublocks is not None or nc_r.upanel is not None:
            for i in range(nc_r.sym.noff):
                br, bo = nc_r.ublock(i), nc_o.ublock(i)
                if isinstance(br, LowRankBlock):
                    assert np.array_equal(br.u, bo.u) \
                        and np.array_equal(br.v, bo.v)
                else:
                    assert np.array_equal(np.asarray(br), np.asarray(bo))


class TestDeterminismStress:
    """Satellite: ~20 threaded factorizations, all bit-identical to the
    sequential run, for both engines and 2/4 threads."""

    @pytest.mark.parametrize("strategy", ["dense", "just-in-time"])
    def test_threaded_factors_bit_identical(self, strategy):
        a = laplacian_3d(6)
        cfg, symb, ap = _prepared(a, strategy=strategy, tolerance=1e-8)
        ref = assemble(ap, symb, cfg)
        run_sequential(ref)
        runs = 0
        for rep in range(STRESS_REPS):
            for nthreads in STRESS_THREADS:
                for engine, label in ((run_threaded, "dynamic"),
                                      (run_threaded_static, "static")):
                    fac = assemble(ap, symb, cfg)
                    engine(fac, nthreads)
                    _assert_bit_identical(
                        ref, fac,
                        f"({label}, {nthreads} threads, rep {rep})")
                    runs += 1
        assert runs >= 20

    def test_minimal_memory_also_deterministic(self):
        a = laplacian_3d(6)
        cfg, symb, ap = _prepared(a, strategy="minimal-memory",
                                  tolerance=1e-8)
        ref = assemble(ap, symb, cfg)
        run_sequential(ref)
        for engine in (run_threaded, run_threaded_static):
            fac = assemble(ap, symb, cfg)
            engine(fac, 4)
            _assert_bit_identical(ref, fac, f"({engine.__name__})")

    def test_repeated_solves_identical(self):
        """End-to-end: repeated threaded factorize+solve yields the exact
        same solution vector every time."""
        a = laplacian_3d(5)
        b = np.arange(a.n, dtype=np.float64)
        ref = None
        for scheduler in ("dynamic", "static"):
            for _ in range(2):
                s = Solver(a, tiny_blr_config(threads=4,
                                              scheduler=scheduler))
                s.factorize()
                x = s.solve(b)
                if ref is None:
                    ref = x
                else:
                    assert np.array_equal(ref, x)


class TestErrorAggregation:
    """Satellite: unsynchronized error collection is gone — all failures
    are gathered under a lock and surfaced together."""

    def test_two_simultaneous_failures_aggregate(self):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(threads=2))
        s.analyze()
        leaves = [t for t in range(s.symbolic.ncblk)
                  if not s.symbolic.contributors(t)]
        assert len(leaves) >= 2
        inj = FaultInjector()
        # both initial leaves fail after a delay long enough that both
        # workers are guaranteed to be mid-task when the first error lands
        inj.fail_factor(leaves[0], delay=0.3)
        inj.fail_factor(leaves[1], delay=0.3)
        with pytest.raises(SchedulerError) as info:
            s.factorize(faults=inj)
        exc = info.value
        assert len(exc.errors) == 2
        assert all(isinstance(e, FaultError) for e in exc.errors)
        assert "2 scheduler workers failed" in str(exc)
        assert exc.__cause__ is exc.errors[0]

    def test_static_engine_aggregates_too(self):
        a = laplacian_3d(6)
        cfg, symb, ap = _prepared(a)
        owner = proportional_mapping(symb, 2)
        first_of = {}
        for k in range(symb.ncblk):
            first_of.setdefault(owner[k], k)
        assert len(first_of) == 2
        inj = FaultInjector()
        for k in first_of.values():
            inj.fail_factor(k, delay=0.3)
        fac = assemble(ap, symb, cfg)
        fac.faults = inj
        with pytest.raises(SchedulerError) as info:
            run_threaded_static(fac, 2)
        assert len(info.value.errors) == 2

    def test_single_failure_raises_itself(self):
        """One failure must re-raise as the original exception type, not
        wrapped — callers keep matching on semantic exception classes."""
        a = laplacian_2d(6)
        s = Solver(a, tiny_blr_config(threads=2))
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(0, exc=ArithmeticError("singular-ish"))
        with pytest.raises(ArithmeticError, match="singular-ish"):
            s.factorize(faults=inj)


class TestSentinelShutdown:
    def test_no_scheduler_threads_survive_success(self):
        a = laplacian_3d(5)
        for scheduler in ("dynamic", "static"):
            s = Solver(a, tiny_blr_config(threads=4, scheduler=scheduler))
            s.factorize()
            leftovers = [th for th in threading.enumerate()
                         if th.name.startswith(("repro-dyn",
                                                "repro-static"))]
            assert not leftovers

    def test_no_scheduler_threads_survive_failure(self):
        a = laplacian_3d(5)
        for scheduler in ("dynamic", "static"):
            s = Solver(a, tiny_blr_config(threads=4, scheduler=scheduler))
            s.analyze()
            inj = FaultInjector()
            inj.fail_factor(0)
            with pytest.raises((FaultError, SchedulerError)):
                s.factorize(faults=inj)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                leftovers = [th for th in threading.enumerate()
                             if th.name.startswith(("repro-dyn",
                                                    "repro-static"))
                             and th.is_alive()]
                if not leftovers:
                    break
                time.sleep(0.01)
            assert not leftovers

    def test_completion_is_prompt_without_watchdog(self):
        """Sentinel shutdown replaced the 50ms polling loop: a tiny run
        must complete and join essentially immediately."""
        a = laplacian_2d(5)
        cfg, symb, ap = _prepared(a, strategy="dense")
        fac = assemble(ap, symb, cfg)
        t0 = time.perf_counter()
        run_threaded(fac, 4)
        assert all(nc.factored for nc in fac.cblks)
        assert time.perf_counter() - t0 < 5.0


class TestDeadlockWatchdog:
    """Satellite/tentpole: a synthetic stall trips the watchdog, which
    raises with a pending-counter dump instead of hanging."""

    @pytest.mark.parametrize("scheduler", ["dynamic", "static"])
    def test_watchdog_fires_with_pending_dump(self, scheduler):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(threads=2, scheduler=scheduler,
                                      watchdog_timeout=0.4))
        s.analyze()
        inj = FaultInjector()
        release = inj.stall_factor(s.symbolic.ncblk - 1)  # hang on the root
        t0 = time.monotonic()
        try:
            with pytest.raises(DeadlockError) as info:
                s.factorize(faults=inj)
        finally:
            release.set()  # let the stalled daemon worker exit
        elapsed = time.monotonic() - t0
        msg = str(info.value)
        assert "stalled for 0.4s" in msg
        assert "pending counters" in msg
        assert "column blocks" in msg and "factored" in msg
        assert elapsed < 30.0, "watchdog did not bound the stall"

    def test_watchdog_reports_waiting_blocks(self):
        """Stall a mid-tree block: blocks depending on it must show up in
        the dump with their unfactored-contributor counts."""
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(threads=2, watchdog_timeout=0.4))
        s.analyze()
        symb = s.symbolic
        # a block someone depends on
        stalled = next(c for t in range(symb.ncblk)
                       for c in symb.contributors(t))
        inj = FaultInjector()
        release = inj.stall_factor(stalled)
        try:
            with pytest.raises(DeadlockError) as info:
                s.factorize(faults=inj)
        finally:
            release.set()
        assert "unfactored contributor" in str(info.value)

    def test_healthy_run_does_not_trip_watchdog(self):
        a = laplacian_3d(6)
        for scheduler in ("dynamic", "static"):
            s = Solver(a, tiny_blr_config(threads=4, scheduler=scheduler,
                                          watchdog_timeout=30.0))
            s.factorize()  # must not raise
            b = np.ones(a.n)
            assert s.backward_error(s.solve(b), b) <= 1e-6

    def test_watchdog_config_validation(self):
        from repro.config import SolverConfig

        with pytest.raises(ValueError, match="watchdog"):
            SolverConfig(watchdog_timeout=0.0)
        with pytest.raises(ValueError, match="watchdog"):
            SolverConfig(watchdog_timeout=-1.0)
        SolverConfig(watchdog_timeout=None)  # disabled is fine
        SolverConfig(watchdog_timeout=5.0)
