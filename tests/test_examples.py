"""Smoke tests: every example script must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

CASES = [
    ("quickstart.py", ["10", "1e-6"]),
    ("memory_study.py", ["12"]),
    ("preconditioner.py", ["8"]),
    ("suite_comparison.py", ["tiny"]),
    ("lowrank_kernels.py", ["120"]),
    ("reuse_analysis.py", ["8", "2"]),
    ("persist_and_serve.py", ["8", "3"]),
]


@pytest.mark.parametrize("script,args", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_directory_complete():
    """The deliverable requires a quickstart plus at least two scenarios."""
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3
