"""Tests for the adjacency-graph substrate."""

import numpy as np

from repro.ordering.graph import Graph
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_1d, laplacian_2d


def path_graph(n):
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestConstruction:
    def test_from_matrix_drops_diagonal(self):
        g = Graph.from_matrix(laplacian_1d(4))
        assert g.n == 4
        assert g.nedges == 3
        np.testing.assert_array_equal(g.neighbors(1), [0, 2])

    def test_from_matrix_symmetrizes(self):
        a = CSCMatrix.from_coo(3, [1], [0], [5.0])
        g = Graph.from_matrix(a)
        np.testing.assert_array_equal(g.neighbors(0), [1])
        np.testing.assert_array_equal(g.neighbors(1), [0])

    def test_from_edges_dedups_and_symmetrizes(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)])
        assert g.nedges == 2
        np.testing.assert_array_equal(g.neighbors(1), [0, 2])

    def test_from_edges_drops_self_loops(self):
        g = Graph.from_edges(2, [(0, 0), (0, 1)])
        assert g.nedges == 1

    def test_degrees(self):
        g = path_graph(4)
        np.testing.assert_array_equal(g.degrees(), [1, 2, 2, 1])
        assert g.degree(1) == 2


class TestBFS:
    def test_levels_on_path(self):
        g = path_graph(5)
        np.testing.assert_array_equal(g.bfs_levels(0), [0, 1, 2, 3, 4])
        np.testing.assert_array_equal(g.bfs_levels(2), [2, 1, 0, 1, 2])

    def test_unreachable_is_minus_one(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        lv = g.bfs_levels(0)
        assert lv[2] == -1 and lv[3] == -1

    def test_mask_restricts_traversal(self):
        g = path_graph(5)
        mask = np.array([True, True, False, True, True])
        lv = g.bfs_levels(0, mask)
        assert lv[1] == 1
        assert lv[3] == -1  # blocked by the masked-out vertex 2

    def test_masked_start_returns_all_unreached(self):
        g = path_graph(3)
        mask = np.array([False, True, True])
        lv = g.bfs_levels(0, mask)
        assert (lv == -1).all()


class TestPseudoPeripheral:
    def test_path_finds_an_end(self):
        g = path_graph(9)
        root, levels = g.pseudo_peripheral(4)
        assert root in (0, 8)
        assert levels.max() == 8

    def test_grid_eccentricity_reasonable(self):
        g = Graph.from_matrix(laplacian_2d(6))
        root, levels = g.pseudo_peripheral(17)
        # 6x6 grid diameter is 10; pseudo-peripheral must get close
        assert levels.max() >= 8


class TestComponents:
    def test_single_component(self):
        g = path_graph(4)
        comps = g.connected_components()
        assert len(comps) == 1
        assert comps[0].size == 4

    def test_multiple_components(self):
        g = Graph.from_edges(6, [(0, 1), (2, 3), (3, 4)])
        comps = g.connected_components()
        sizes = sorted(c.size for c in comps)
        assert sizes == [1, 2, 3]

    def test_mask_restricts_components(self):
        g = path_graph(5)
        mask = np.array([True, True, False, True, True])
        comps = g.connected_components(mask)
        sizes = sorted(c.size for c in comps)
        assert sizes == [2, 2]


class TestSubgraph:
    def test_induced_edges(self):
        g = Graph.from_matrix(laplacian_2d(3))
        verts = np.array([0, 1, 3, 4])  # a 2x2 corner of the grid
        sub, echo = g.subgraph(verts)
        np.testing.assert_array_equal(echo, verts)
        assert sub.n == 4
        assert sub.nedges == 4  # the 2x2 square

    def test_no_external_edges(self):
        g = path_graph(5)
        sub, _ = g.subgraph(np.array([0, 2, 4]))
        assert sub.nedges == 0
