"""Tests for factor-based diagnostics (slogdet / inertia / condest)."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    convection_diffusion_3d,
    laplacian_2d,
    laplacian_3d,
    random_spd,
)
from tests.conftest import tiny_blr_config


class TestSlogdet:
    @pytest.mark.parametrize("factotype", ["lu", "cholesky", "ldlt"])
    def test_matches_numpy_spd(self, factotype):
        a = laplacian_2d(5)
        s = Solver(a, tiny_blr_config(strategy="dense", factotype=factotype))
        sign, logdet = s.slogdet()
        ref_sign, ref_logdet = np.linalg.slogdet(a.to_dense())
        assert sign == pytest.approx(ref_sign)
        assert logdet == pytest.approx(ref_logdet, rel=1e-10)

    def test_nonsymmetric(self):
        a = convection_diffusion_3d(4, peclet=0.6)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        sign, logdet = s.slogdet()
        ref_sign, ref_logdet = np.linalg.slogdet(a.to_dense())
        assert sign == pytest.approx(ref_sign)
        assert logdet == pytest.approx(ref_logdet, rel=1e-9)

    def test_negative_determinant(self):
        d = np.diag([2.0, -3.0, 4.0])
        d[0, 1] = d[1, 0] = 0.5
        a = CSCMatrix.from_dense(d)
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt"))
        sign, logdet = s.slogdet()
        ref_sign, ref_logdet = np.linalg.slogdet(d)
        assert sign == pytest.approx(ref_sign)
        assert logdet == pytest.approx(ref_logdet, rel=1e-10)

    def test_blr_close_to_exact(self):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy="minimal-memory",
                                      tolerance=1e-8))
        _, logdet = s.slogdet()
        _, ref = np.linalg.slogdet(a.to_dense())
        assert logdet == pytest.approx(ref, rel=1e-4)


class TestInertia:
    def test_spd_all_positive(self):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt"))
        assert s.inertia() == (0, 0, a.n)

    def test_cholesky_shortcut(self):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config(strategy="dense",
                                      factotype="cholesky"))
        assert s.inertia() == (0, 0, a.n)

    def test_indefinite_counts(self):
        from tests.test_ldlt import indefinite_matrix
        a = indefinite_matrix()
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="ldlt"))
        neg, zero, pos = s.inertia()
        eig = np.linalg.eigvalsh(a.to_dense())
        assert neg == int(np.sum(eig < 0))
        assert pos == int(np.sum(eig > 0))
        assert zero == 0

    def test_lu_rejected(self):
        a = laplacian_2d(4)
        s = Solver(a, tiny_blr_config(strategy="dense", factotype="lu"))
        with pytest.raises(ValueError, match="ldlt"):
            s.inertia()


class TestCondest:
    def test_exact_on_small_laplacian(self):
        a = laplacian_2d(5)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        d = a.to_dense()
        true_k1 = np.linalg.norm(d, 1) * np.linalg.norm(np.linalg.inv(d), 1)
        est = s.condest()
        assert est <= true_k1 * 1.001       # lower bound
        assert est >= true_k1 / 10          # within a small factor

    def test_identity_is_one(self):
        a = CSCMatrix.from_dense(np.eye(10))
        s = Solver(a, tiny_blr_config(strategy="dense"))
        assert s.condest() == pytest.approx(1.0)

    def test_ill_conditioned_detected(self, rng):
        a = random_spd(30, 0.15, seed=1)
        d = a.to_dense()
        d[0, :] *= 1e-8  # scale a whole row+column: near-singular
        d[:, 0] *= 1e-8
        bad = CSCMatrix.from_dense((d + d.T) / 2)
        s = Solver(bad, tiny_blr_config(strategy="dense"))
        assert s.condest() > 1e6
