"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sparse.generators import laplacian_2d
from repro.sparse.io import write_matrix_market


class TestSolveCommand:
    def test_generated_workload(self, capsys):
        rc = main(["solve", "--generate", "lap3d:6", "--tolerance", "1e-8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backward error" in out
        assert "factor size" in out

    def test_matrix_market_input(self, tmp_path, capsys):
        path = tmp_path / "m.mtx"
        write_matrix_market(laplacian_2d(5), path)
        rc = main(["solve", str(path)])
        assert rc == 0
        assert "backward error" in capsys.readouterr().out

    def test_refine_flag(self, capsys):
        rc = main(["solve", "--generate", "lap3d:5",
                   "--strategy", "minimal-memory",
                   "--tolerance", "1e-4", "--refine"])
        assert rc == 0
        assert "refined" in capsys.readouterr().out

    def test_cholesky_option(self, capsys):
        rc = main(["solve", "--generate", "lap3d:5",
                   "--factotype", "cholesky"])
        assert rc == 0

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["solve"])

    def test_unknown_generator_errors(self):
        with pytest.raises(SystemExit):
            main(["solve", "--generate", "hss:10"])


class TestAnalyzeCommand:
    def test_stats_printed(self, capsys):
        rc = main(["analyze", "--generate", "lap3d:6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "column blocks" in out

    def test_svg_output(self, tmp_path, capsys):
        svg = tmp_path / "s.svg"
        rc = main(["analyze", "--generate", "lap3d:5", "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_ascii_output(self, capsys):
        rc = main(["analyze", "--generate", "lap3d:5", "--ascii", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "#" in out


class TestBenchCommand:
    def test_three_strategies_reported(self, capsys):
        rc = main(["bench", "--generate", "lap3d:5"])
        assert rc == 0
        out = capsys.readouterr().out
        for strategy in ("dense", "just-in-time", "minimal-memory"):
            assert strategy in out


class TestLintCommand:
    def test_src_tree_is_clean_by_default(self, capsys):
        rc = main(["lint"])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_report(self, capsys):
        import json
        from pathlib import Path
        target = (Path(__file__).resolve().parent.parent
                  / "src" / "repro" / "core" / "variants.py")
        rc = main(["lint", "--json", str(target)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 0

    def test_trigger_fixture_fails(self, capsys):
        from pathlib import Path
        trigger = (Path(__file__).resolve().parent
                   / "lint_fixtures" / "lockset_trigger.py")
        rc = main(["lint", "--no-scope", "--rules", "shared-mutation-lockset",
                   str(trigger)])
        assert rc == 1
