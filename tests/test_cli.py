"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sparse.generators import laplacian_2d
from repro.sparse.io import write_matrix_market


class TestSolveCommand:
    def test_generated_workload(self, capsys):
        rc = main(["solve", "--generate", "lap3d:6", "--tolerance", "1e-8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "backward error" in out
        assert "factor size" in out

    def test_matrix_market_input(self, tmp_path, capsys):
        path = tmp_path / "m.mtx"
        write_matrix_market(laplacian_2d(5), path)
        rc = main(["solve", str(path)])
        assert rc == 0
        assert "backward error" in capsys.readouterr().out

    def test_refine_flag(self, capsys):
        rc = main(["solve", "--generate", "lap3d:5",
                   "--strategy", "minimal-memory",
                   "--tolerance", "1e-4", "--refine"])
        assert rc == 0
        assert "refined" in capsys.readouterr().out

    def test_cholesky_option(self, capsys):
        rc = main(["solve", "--generate", "lap3d:5",
                   "--factotype", "cholesky"])
        assert rc == 0

    def test_missing_input_errors(self):
        with pytest.raises(SystemExit):
            main(["solve"])

    def test_unknown_generator_errors(self):
        with pytest.raises(SystemExit):
            main(["solve", "--generate", "hss:10"])


class TestAnalyzeCommand:
    def test_stats_printed(self, capsys):
        rc = main(["analyze", "--generate", "lap3d:6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "column blocks" in out

    def test_svg_output(self, tmp_path, capsys):
        svg = tmp_path / "s.svg"
        rc = main(["analyze", "--generate", "lap3d:5", "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_ascii_output(self, capsys):
        rc = main(["analyze", "--generate", "lap3d:5", "--ascii", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "#" in out


class TestBenchCommand:
    def test_three_strategies_reported(self, capsys):
        rc = main(["bench", "--generate", "lap3d:5"])
        assert rc == 0
        out = capsys.readouterr().out
        for strategy in ("dense", "just-in-time", "minimal-memory"):
            assert strategy in out


class TestLintCommand:
    def test_src_tree_is_clean_by_default(self, capsys):
        rc = main(["lint"])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_report(self, capsys):
        import json
        from pathlib import Path
        target = (Path(__file__).resolve().parent.parent
                  / "src" / "repro" / "core" / "variants.py")
        rc = main(["lint", "--json", str(target)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 0

    def test_trigger_fixture_fails(self, capsys):
        from pathlib import Path
        trigger = (Path(__file__).resolve().parent
                   / "lint_fixtures" / "lockset_trigger.py")
        rc = main(["lint", "--no-scope", "--rules", "shared-mutation-lockset",
                   str(trigger)])
        assert rc == 1


class TestProfileCommands:
    def _profiled_run(self, tmp_path, capsys, name="spans.json"):
        spans = tmp_path / name
        rc = main(["solve", "--generate", "lap2d:10",
                   "--profile", str(spans)])
        capsys.readouterr()
        assert rc == 0
        return spans

    def test_solve_profile_writes_span_document(self, tmp_path, capsys):
        import json

        spans = self._profiled_run(tmp_path, capsys)
        doc = json.loads(spans.read_text())
        assert doc["version"] == 1
        names = {s["name"] for s in doc["spans"]}
        assert {"run", "analyze", "factorize", "solve"} <= names

    def test_flame_exports_speedscope_and_chrome(self, tmp_path, capsys):
        import json

        spans = self._profiled_run(tmp_path, capsys)
        chrome = tmp_path / "chrome.json"
        rc = main(["flame", str(spans), "--chrome", str(chrome)])
        out = capsys.readouterr().out
        assert rc == 0
        ss = tmp_path / "spans.speedscope.json"
        assert ss.exists(), "default speedscope path derives from input"
        assert json.loads(ss.read_text())["profiles"]
        assert json.loads(chrome.read_text())["traceEvents"]
        assert "factorize" in out

    def test_diff_report_json_output(self, tmp_path, capsys):
        import json
        from pathlib import Path

        reports = (Path(__file__).resolve().parent.parent
                   / "benchmarks" / "reports")
        att_path = tmp_path / "attribution.json"
        rc = main(["diff-report",
                   str(reports / "RUN_tier0_baseline.json"),
                   str(reports / "RUN_tier0_current.json"),
                   "--json", str(att_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Regression attribution" in out
        att = json.loads(att_path.read_text())
        assert att["phases"]
        deltas = [abs(r["delta"]) for r in att["phases"]
                  if r["delta"] is not None]
        assert deltas == sorted(deltas, reverse=True)

    def test_bench_variants_phase_attribution(self, tmp_path, capsys):
        import json

        out_json = tmp_path / "variants.json"
        rc = main(["bench-variants", "--generate", "lap2d:10",
                   "--json", str(out_json)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(out_json.read_text())
        runs = {r["variant"]: r for r in payload["runs"]}
        assert "ucf/local" in runs and "adaptive" in runs
        for rec in payload["runs"]:
            assert rec["phases"].get("factorize", 0) > 0
            assert "analyze" in rec["phases"]
            assert rec["kernels"].get("task", 0) > 0
