"""Tests for low-rank extend-add recompression (paper eqs. 7-12)."""

import numpy as np
import pytest

from repro.lowrank.recompress import recompress_rrqr, recompress_svd
from repro.lowrank.rrqr import rrqr_compress
from tests.conftest import random_lowrank

KERNELS = {"svd": recompress_svd, "rrqr": recompress_rrqr}


def make_pair(rng, m=30, n=24, rc=6, rab=4):
    """An orthonormal-u target and a padded contribution."""
    c = rrqr_compress(random_lowrank(rng, m, n, rc, 0.3), 1e-12)
    ab = rrqr_compress(random_lowrank(rng, m, n, rab, 0.3), 1e-12)
    return c, ab


@pytest.mark.parametrize("kernel", sorted(KERNELS))
class TestExactness:
    def test_matches_dense_arithmetic(self, rng, kernel):
        c, ab = make_pair(rng)
        ref = c.to_dense() - ab.to_dense()
        out = KERNELS[kernel](c.u, c.v, ab.u, ab.v, 1e-10)
        err = np.linalg.norm(out.to_dense() - ref) / np.linalg.norm(ref)
        assert err <= 1e-9

    def test_error_scales_with_tolerance(self, rng, kernel):
        c, ab = make_pair(rng, rc=10, rab=8)
        ref = c.to_dense() - ab.to_dense()
        for tol in (1e-4, 1e-8):
            out = KERNELS[kernel](c.u, c.v, ab.u, ab.v, tol)
            err = np.linalg.norm(out.to_dense() - ref) / np.linalg.norm(ref)
            assert err <= tol * 3

    def test_rank_is_recompressed(self, rng, kernel):
        """Subtracting a block from itself must collapse the rank."""
        c, _ = make_pair(rng, rc=5)
        out = KERNELS[kernel](c.u, c.v, c.u, c.v, 1e-10)
        assert out.rank <= 1

    def test_u_stays_orthonormal(self, rng, kernel):
        c, ab = make_pair(rng)
        out = KERNELS[kernel](c.u, c.v, ab.u, ab.v, 1e-10)
        if out.rank:
            np.testing.assert_allclose(out.u.T @ out.u, np.eye(out.rank),
                                       atol=1e-10)

    def test_max_rank_cap_returns_none(self, rng, kernel):
        c, ab = make_pair(rng, rc=8, rab=8)
        out = KERNELS[kernel](c.u, c.v, ab.u, ab.v, 1e-14, max_rank=2)
        assert out is None

    def test_zero_contribution_keeps_target(self, rng, kernel):
        c, _ = make_pair(rng)
        z_u = np.zeros((c.m, 0))
        z_v = np.zeros((c.n, 0))
        out = KERNELS[kernel](c.u, c.v, z_u, z_v, 1e-10)
        ref = c.to_dense()
        np.testing.assert_allclose(out.to_dense(), ref, atol=1e-12)

    def test_zero_target_compresses_contribution(self, rng, kernel):
        _, ab = make_pair(rng)
        z_u = np.zeros((ab.m, 0))
        z_v = np.zeros((ab.n, 0))
        out = KERNELS[kernel](z_u, z_v, ab.u, ab.v, 1e-10)
        ref = -ab.to_dense()
        err = np.linalg.norm(out.to_dense() - ref) / np.linalg.norm(ref)
        assert err <= 1e-9


class TestRankGrowthControl:
    def test_repeated_updates_stay_bounded(self, rng):
        """Accumulate 15 random rank-2 contributions living in a fixed
        rank-6 subspace: the recompressed rank must stay ~6, not 30."""
        m, n = 40, 32
        basis_u = np.linalg.qr(rng.standard_normal((m, 6)))[0]
        basis_v = rng.standard_normal((n, 6))
        target = rrqr_compress(np.zeros((m, n)), 1e-10)
        ref = np.zeros((m, n))
        for _ in range(15):
            w = rng.standard_normal((6, 2))
            u_ab = basis_u @ np.linalg.qr(w)[0]
            v_ab = basis_v @ w @ np.linalg.inv(np.linalg.qr(w)[1])
            contrib = u_ab @ v_ab.T
            ref -= contrib
            target = recompress_rrqr(target.u, target.v, u_ab, v_ab, 1e-10)
        assert target.rank <= 8
        err = np.linalg.norm(target.to_dense() - ref)
        assert err <= 1e-8 * max(np.linalg.norm(ref), 1.0)
