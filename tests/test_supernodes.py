"""Tests for supernode machinery (quotient symbolic, amalgamation, split)."""

import numpy as np
import pytest

from repro.ordering.graph import Graph
from repro.ordering.nested_dissection import nested_dissection
from repro.sparse.generators import laplacian_1d, laplacian_2d, laplacian_3d
from repro.sparse.permute import permute_symmetric
from repro.symbolic.supernodes import (
    Supernode,
    amalgamate,
    detect_fundamental_supernodes,
    split_supernodes,
    supernode_row_sets,
)


def dense_fill_pattern(a):
    """Exact no-pivot fill pattern of an already-ordered matrix."""
    d = (a.to_dense() != 0)
    n = a.n
    for k in range(n):
        nz = np.flatnonzero(d[k + 1:, k]) + k + 1
        for i in nz:
            d[i, nz] = True
            d[nz, i] = True
    return d


def nd_snodes(a, cmin=6):
    nd = nested_dissection(Graph.from_matrix(a), cmin=cmin)
    ap = permute_symmetric(a, nd.perm)
    intervals = [(p.start, p.size) for p in nd.partitions]
    return ap, supernode_row_sets(ap, intervals)


class TestRowSets:
    def test_rows_cover_exact_fill(self):
        """The quotient row sets must cover every entry of the true fill
        pattern (dense-diagonal supernodes may add rows, never miss)."""
        a = laplacian_2d(7)
        ap, snodes = nd_snodes(a)
        fill = dense_fill_pattern(ap)
        for s in snodes:
            covered = np.zeros(a.n, dtype=bool)
            covered[s.rows] = True
            for j in range(s.first_col, s.end):
                for i in np.flatnonzero(fill[:, j]):
                    if i >= s.end:
                        assert covered[i], f"row {i} of col {j} missing"

    def test_rows_sorted_and_beyond_supernode(self):
        a = laplacian_3d(4)
        _, snodes = nd_snodes(a)
        for s in snodes:
            assert np.all(np.diff(s.rows) > 0)
            if s.rows.size:
                assert s.rows[0] >= s.end

    def test_parent_owns_first_row(self):
        a = laplacian_2d(6)
        _, snodes = nd_snodes(a)
        for s in snodes:
            if s.rows.size:
                p = snodes[s.parent]
                assert p.first_col <= s.rows[0] < p.end
            else:
                assert s.parent == -1

    def test_rejects_bad_partition(self):
        a = laplacian_1d(5)
        with pytest.raises(ValueError, match="tile"):
            supernode_row_sets(a, [(0, 2), (3, 2)])


class TestAmalgamation:
    def test_zero_frat_is_identity(self):
        a = laplacian_2d(6)
        _, snodes = nd_snodes(a)
        before = [(s.first_col, s.ncols) for s in snodes]
        merged = amalgamate(list(snodes), frat=0.0)
        assert [(s.first_col, s.ncols) for s in merged] == before

    def test_merging_reduces_count(self):
        a = laplacian_3d(5)
        _, snodes = nd_snodes(a, cmin=15)
        merged = amalgamate(snodes, frat=0.08)
        assert len(merged) <= len(snodes)

    def test_merged_partition_still_tiles(self):
        a = laplacian_3d(5)
        _, snodes = nd_snodes(a)
        merged = amalgamate(snodes, frat=0.2)
        pos = 0
        for s in merged:
            assert s.first_col == pos
            pos = s.end
        assert pos == a.n

    def test_merged_rows_still_cover_fill(self):
        a = laplacian_2d(7)
        ap, snodes = nd_snodes(a)
        merged = amalgamate(snodes, frat=0.3)
        fill = dense_fill_pattern(ap)
        for s in merged:
            covered = np.zeros(a.n, dtype=bool)
            covered[s.rows] = True
            for j in range(s.first_col, s.end):
                for i in np.flatnonzero(fill[:, j]):
                    if i >= s.end:
                        assert covered[i]

    def test_max_width_respected(self):
        a = laplacian_3d(5)
        _, snodes = nd_snodes(a)
        widest_before = max(s.ncols for s in snodes)
        merged = amalgamate(snodes, frat=10.0, max_width=widest_before)
        assert max(s.ncols for s in merged) <= widest_before

    def test_huge_frat_merges_chains(self):
        """A 1D Laplacian's ND tree is a chain; huge frat collapses it."""
        a = laplacian_1d(32)
        _, snodes = nd_snodes(a, cmin=4)
        merged = amalgamate(snodes, frat=100.0)
        assert len(merged) < len(snodes)


class TestSplitting:
    def test_narrow_supernodes_untouched(self):
        s = [Supernode(0, 10), Supernode(10, 20)]
        tiles = split_supernodes(s, split_size=32, split_min=16)
        assert tiles == [(0, 10, 0), (10, 20, 1)]

    def test_wide_supernode_split_balanced(self):
        s = [Supernode(0, 300)]
        tiles = split_supernodes(s, split_size=128, split_min=64)
        sizes = [t[1] for t in tiles]
        assert sum(sizes) == 300
        assert all(sz >= 64 for sz in sizes)
        assert max(sizes) - min(sizes) <= 1

    def test_boundary_exactly_split_size(self):
        s = [Supernode(0, 128)]
        tiles = split_supernodes(s, split_size=128, split_min=64)
        assert len(tiles) == 1

    def test_tiles_are_contiguous(self):
        s = [Supernode(0, 97), Supernode(97, 500)]
        tiles = split_supernodes(s, split_size=100, split_min=50)
        pos = 0
        for fc, nc, _ in tiles:
            assert fc == pos
            pos += nc
        assert pos == 597

    def test_invalid_split_params(self):
        with pytest.raises(ValueError):
            split_supernodes([Supernode(0, 10)], split_size=16, split_min=32)


class TestFundamentalSupernodes:
    def test_tridiagonal_is_one_chain_of_supernodes(self):
        a = laplacian_1d(6)
        intervals = detect_fundamental_supernodes(a)
        # tridiagonal: every column has colcount exactly one less than its
        # predecessor only at the end; expect a single big supernode
        assert intervals[-1][0] + intervals[-1][1] == 6

    def test_intervals_tile(self, small_matrix):
        a = small_matrix.symmetrize_pattern()
        intervals = detect_fundamental_supernodes(a)
        pos = 0
        for fc, nc in intervals:
            assert fc == pos
            pos += nc
        assert pos == a.n

    def test_dense_matrix_single_supernode(self):
        from repro.sparse.csc import CSCMatrix
        d = np.ones((5, 5)) + 4 * np.eye(5)
        a = CSCMatrix.from_dense(d)
        intervals = detect_fundamental_supernodes(a)
        assert intervals == [(0, 5)]

    def test_diagonal_matrix_all_singletons(self):
        from repro.sparse.csc import CSCMatrix
        a = CSCMatrix.from_coo(4, range(4), range(4), [1.0] * 4)
        intervals = detect_fundamental_supernodes(a)
        assert intervals == [(0, 1), (1, 1), (2, 1), (3, 1)]
