"""Tests for the unified telemetry bus (repro.runtime.telemetry).

Covers the metric primitives (counters, gauges, histograms and their
Prometheus exposition round-trip), the event sinks (ring buffer, JSONL
round-trip, summary), the bounded series decimation, thread-safety of
shared counters under real threaded factorizations, and the two
disabled-path guarantees: zero telemetry calls and a bounded overhead
when ``SolverConfig.telemetry`` is ``None``.
"""

import io
import json
import threading
import time

import numpy as np
import pytest

from repro.config import SolverConfig
from repro.core.solver import Solver
from repro.runtime.telemetry import (
    Counter,
    Gauge,
    Histogram,
    JSONLSink,
    RingBufferSink,
    SeriesBuffer,
    SummarySink,
    Telemetry,
    parse_prometheus_text,
)
from repro.sparse.generators import laplacian_2d, laplacian_3d
from tests.conftest import tiny_blr_config


# ----------------------------------------------------------------------
# metric primitives
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_tracks_max(self):
        g = Gauge()
        g.set_value(5.0)
        g.set_value(2.0)
        g.inc(1.0)
        assert g.value == 3.0
        assert g.max_value == 5.0

    def test_histogram_buckets_and_mean(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert h.count == 3
        assert h.mean() == pytest.approx(55.5 / 3)

    def test_registry_labels_and_kind_mismatch(self):
        tele = Telemetry(ring_capacity=None)
        a = tele.counter("blocks", kernel="rrqr")
        b = tele.counter("blocks", kernel="svd")
        assert a is not b
        assert tele.counter("blocks", kernel="rrqr") is a
        with pytest.raises(TypeError):
            tele.gauge("blocks")

    def test_counter_thread_safety(self):
        """N threads x M increments must land exactly N*M (no lost updates)."""
        tele = Telemetry(ring_capacity=None)
        c = tele.counter("shared")
        nthreads, reps = 8, 5000

        def hammer():
            for _ in range(reps):
                c.inc()

        threads = [threading.Thread(target=hammer)
                   for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == nthreads * reps


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------

class TestSinks:
    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_ring_buffer_keeps_last_and_counts_drops(self):
        tele = Telemetry(ring_capacity=4)
        for i in range(10):
            tele.emit("tick", i=i)
        events = tele.ring.events()
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert tele.ring.dropped == 6
        assert tele.events_emitted == 10

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tele = Telemetry(ring_capacity=None)
        sink = tele.add_sink(JSONLSink(path))
        tele.emit("compress", rank=5, kernel="rrqr")
        tele.emit("recompress", rank_before=5, rank_after=7)
        tele.close()
        events = JSONLSink.read(path)
        assert sink.written == 2
        assert [e["kind"] for e in events] == ["compress", "recompress"]
        assert events[0]["rank"] == 5
        assert events[1]["rank_after"] == 7
        assert all(isinstance(e["t"], float) for e in events)

    def test_jsonl_accepts_file_object(self):
        buf = io.StringIO()
        tele = Telemetry(sinks=[JSONLSink(buf)], ring_capacity=None)
        tele.emit("x", a=1)
        tele.close()
        assert json.loads(buf.getvalue())["a"] == 1

    def test_summary_sink_aggregates(self):
        tele = Telemetry(ring_capacity=None)
        summ = tele.add_sink(SummarySink())
        tele.emit("a")
        tele.emit("a")
        tele.emit("b")
        s = summ.summary()
        assert s["counts"] == {"a": 2, "b": 1}
        assert s["total"] == 3
        assert s["first_t"] <= s["last_t"]

    def test_remove_sink_stops_delivery(self):
        tele = Telemetry(ring_capacity=None)
        summ = tele.add_sink(SummarySink())
        tele.emit("a")
        tele.remove_sink(summ)
        tele.emit("a")
        assert summ.summary()["total"] == 1


# ----------------------------------------------------------------------
# bounded series
# ----------------------------------------------------------------------

class TestSeriesBuffer:
    def test_bounded_with_decimation(self):
        s = SeriesBuffer("mem", maxlen=16)
        for i in range(1000):
            s.append(float(i), v=i)
        assert len(s) <= 16
        assert s.seen == 1000
        pts = s.points()
        # decimated but still ordered and spanning the record
        assert pts == sorted(pts, key=lambda p: p["t"])
        assert pts[0]["t"] == 0.0
        assert pts[-1]["t"] >= 500.0

    def test_short_series_lossless(self):
        s = SeriesBuffer("r", maxlen=16)
        for i in range(10):
            s.append(float(i), rank=i)
        assert [p["rank"] for p in s.points()] == list(range(10))


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

class TestPrometheus:
    def test_counter_gauge_round_trip(self):
        tele = Telemetry(ring_capacity=None)
        tele.counter("compress_blocks", kernel="rrqr").inc(3)
        tele.counter("compress_blocks", kernel="svd").inc()
        tele.gauge("queue_depth").set_value(7)
        parsed = parse_prometheus_text(tele.prometheus_text())
        assert parsed["types"]["compress_blocks_total"] == "counter"
        assert parsed["types"]["queue_depth"] == "gauge"
        samples = parsed["samples"]
        assert samples[("compress_blocks_total",
                        (("kernel", "rrqr"),))] == 3.0
        assert samples[("compress_blocks_total",
                        (("kernel", "svd"),))] == 1.0
        assert samples[("queue_depth", ())] == 7.0

    def test_histogram_cumulative_buckets(self):
        tele = Telemetry(ring_capacity=None)
        h = tele.histogram("ratio", buckets=(0.5, 1.0))
        for v in (0.1, 0.7, 2.0):
            h.observe(v)
        parsed = parse_prometheus_text(tele.prometheus_text())
        samples = parsed["samples"]
        assert samples[("ratio_bucket", (("le", "0.5"),))] == 1.0
        assert samples[("ratio_bucket", (("le", "1"),))] == 2.0
        assert samples[("ratio_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("ratio_count", ())] == 3.0
        assert samples[("ratio_sum", ())] == pytest.approx(2.8)


# ----------------------------------------------------------------------
# solver integration
# ----------------------------------------------------------------------

class TestSolverIntegration:
    def test_compression_metrics_recorded(self):
        tele = Telemetry()
        s = Solver(laplacian_2d(24), tiny_blr_config(
            strategy="just-in-time", telemetry=tele))
        s.factorize()
        snap = tele.snapshot()
        assert s.stats.nblocks_compressed > 0
        total = sum(c["value"]
                    for c in snap["counters"]["compress_blocks"])
        lowrank = sum(
            c["value"] for c in snap["counters"]["compress_blocks"]
            if c["labels"]["outcome"] == "lowrank")
        # stats counts L blocks only; LU compresses U panels too
        assert lowrank >= s.stats.nblocks_compressed
        assert total >= lowrank
        assert len(snap["series"]["rank_evolution"]) > 0
        assert len(snap["series"]["memory_highwater"]) > 0

    def test_recompression_metrics_minimal_memory(self):
        tele = Telemetry()
        s = Solver(laplacian_2d(24), tiny_blr_config(
            strategy="minimal-memory", telemetry=tele))
        s.factorize()
        snap = tele.snapshot()
        assert "recompress_blocks" in snap["counters"]
        sites = {p["site"] for p in snap["series"]["rank_evolution"]}
        assert "recompress" in sites

    def test_threaded_scheduler_counters_exact(self):
        tele = Telemetry()
        s = Solver(laplacian_3d(8), tiny_blr_config(
            strategy="just-in-time", threads=4, telemetry=tele))
        s.factorize()
        snap = tele.snapshot()
        tasks = sum(c["value"] for c in snap["counters"]["scheduler_tasks"])
        assert tasks == s.symbolic.ncblk
        assert snap["gauges"]["scheduler_threads"][0]["value"] == 4
        assert len(snap["series"]["scheduler_queue_depth"]) > 0

    def test_static_scheduler_counters_exact(self):
        tele = Telemetry()
        s = Solver(laplacian_3d(8), tiny_blr_config(
            strategy="just-in-time", threads=4, scheduler="static",
            telemetry=tele))
        s.factorize()
        snap = tele.snapshot()
        tasks = sum(c["value"] for c in snap["counters"]["scheduler_tasks"])
        assert tasks == s.symbolic.ncblk
        labels = {c["labels"]["engine"]
                  for c in snap["counters"]["scheduler_tasks"]}
        assert labels == {"static"}

    def test_refinement_history_on_bus(self):
        tele = Telemetry()
        a = laplacian_2d(16)
        s = Solver(a, tiny_blr_config(telemetry=tele))
        res = s.refine(np.ones(a.n))
        assert res.residual_history == res.history
        pts = tele.snapshot()["series"]["refinement_residual"]
        assert [p["residual"] for p in pts] == res.residual_history
        events = [e for e in tele.ring.events()
                  if e["kind"] == "refinement"]
        assert len(events) == 1
        assert events[0]["residual_history"] == res.residual_history


# ----------------------------------------------------------------------
# disabled path
# ----------------------------------------------------------------------

class TestDisabledPath:
    def test_no_telemetry_calls_when_disabled(self, monkeypatch):
        """With telemetry=None (the default) not a single bus method may
        run: every record helper, emit, and series append is patched to
        raise, and a full factorize+solve+refine must still pass.
        """
        def boom(*args, **kwargs):
            raise AssertionError("telemetry touched on the disabled path")

        for name in ("emit", "record_compress", "record_recompress",
                     "record_memory", "record_refinement", "counter",
                     "gauge", "histogram", "series"):
            monkeypatch.setattr(Telemetry, name, boom)
        monkeypatch.setattr(SeriesBuffer, "append", boom)

        a = laplacian_2d(16)
        for overrides in (dict(strategy="just-in-time"),
                          dict(strategy="minimal-memory"),
                          dict(strategy="just-in-time", threads=2)):
            s = Solver(a, tiny_blr_config(**overrides))
            assert s.config.telemetry is None
            s.factorize()
            b = np.ones(a.n)
            s.solve(b)
            s.refine(b)

    def test_disabled_overhead_bounded(self):
        """Attaching a bus bounds the disabled path from above: with
        telemetry=None the per-site cost is one attribute load + None
        test, so the telemetry-off run must not be slower than the
        telemetry-on run by more than scheduler noise.
        """
        a = laplacian_3d(8)

        def best_of(telemetry_on, reps=3):
            times = []
            for _ in range(reps):
                cfg = SolverConfig.laptop_scale(
                    strategy="just-in-time", kernel="rrqr",
                    telemetry=Telemetry() if telemetry_on else None)
                s = Solver(a, cfg)
                s.analyze()
                t0 = time.perf_counter()
                s.factorize()
                times.append(time.perf_counter() - t0)
            return min(times)

        best_of(False, reps=1)  # warm the caches
        t_off = best_of(False)
        t_on = best_of(True)
        assert t_off <= 1.05 * t_on + 0.02, (
            f"disabled path slower than enabled: "
            f"off={t_off:.4f}s on={t_on:.4f}s")

    def test_config_serialization_excludes_bus(self, tmp_path):
        """telemetry is compare/repr-excluded and strips to null in saved
        factor archives."""
        tele = Telemetry()
        cfg = tiny_blr_config(telemetry=tele)
        assert cfg == tiny_blr_config()
        assert "telemetry" not in repr(cfg)
        a = laplacian_2d(12)
        s = Solver(a, cfg)
        s.factorize()
        path = tmp_path / "factor.npz"
        s.save_factor(path)
        s2 = Solver.load_factor(a, path)
        assert s2.config.telemetry is None
        b = np.ones(a.n)
        np.testing.assert_allclose(s2.solve(b), s.solve(b), rtol=1e-10)


# ----------------------------------------------------------------------
# JSONL rotation (bounded sinks for long-running services)
# ----------------------------------------------------------------------

class TestJSONLRotation:
    def test_max_bytes_validated(self):
        with pytest.raises(ValueError):
            JSONLSink(io.StringIO(), max_bytes=100)

    def test_unbounded_by_default(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JSONLSink(path)
        assert sink.max_bytes is None
        for i in range(500):
            sink.handle({"kind": "tick", "i": i})
        sink.close()
        assert len(JSONLSink.read(path)) == 500
        assert sink.rotations == 0 and sink.dropped == 0

    def test_rotation_keeps_last_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JSONLSink(path, max_bytes=2048)
        for i in range(1000):
            sink.handle({"kind": "tick", "i": i})
        sink.close()
        assert path.stat().st_size <= 2048
        events = JSONLSink.read(path)
        # keep-last semantics: the retained suffix is contiguous and
        # ends with the final event
        kept = [e["i"] for e in events]
        assert kept == list(range(1000 - len(kept), 1000))
        assert sink.rotations >= 1
        assert sink.dropped == 1000 - len(kept)

    def test_rotated_file_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tele = Telemetry(ring_capacity=None)
        tele.add_sink(JSONLSink(path, max_bytes=1024))
        for i in range(300):
            tele.emit("tick", i=i, payload="x" * 20)
        tele.close()
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_non_seekable_target_disables_bound(self):
        class Pipe(io.StringIO):
            def seekable(self):
                return False

        sink = JSONLSink(Pipe(), max_bytes=1024)
        for i in range(200):
            sink.handle({"kind": "tick", "i": i, "pad": "y" * 30})
        assert sink.max_bytes is None
        assert sink.rotations == 0 and sink.dropped == 0


# ----------------------------------------------------------------------
# Prometheus exposition edge cases
# ----------------------------------------------------------------------

class TestPrometheusEdgeCases:
    def test_escaped_label_values_round_trip(self):
        tele = Telemetry(ring_capacity=None)
        tricky = 'back\\slash "quoted"\nnewline'
        tele.counter("events", source=tricky).inc(2)
        text = tele.prometheus_text()
        assert '\\\\' in text and '\\"' in text and '\\n' in text
        samples = parse_prometheus_text(text)["samples"]
        assert samples[("events_total", (("source", tricky),))] == 2.0

    def test_label_value_with_braces_and_commas(self):
        tele = Telemetry(ring_capacity=None)
        tele.counter("events", expr='{a="1",b="2"}').inc()
        samples = parse_prometheus_text(tele.prometheus_text())["samples"]
        assert samples[("events_total",
                        (("expr", '{a="1",b="2"}'),))] == 1.0

    def test_nan_and_infinities_parse(self):
        tele = Telemetry(ring_capacity=None)
        tele.gauge("nan_gauge").set_value(float("nan"))
        tele.gauge("pos_inf").set_value(float("inf"))
        tele.gauge("neg_inf").set_value(float("-inf"))
        samples = parse_prometheus_text(tele.prometheus_text())["samples"]
        assert np.isnan(samples[("nan_gauge", ())])
        assert samples[("pos_inf", ())] == float("inf")
        assert samples[("neg_inf", ())] == float("-inf")

    def test_empty_label_family(self):
        tele = Telemetry(ring_capacity=None)
        tele.counter("plain").inc(4)
        parsed = parse_prometheus_text(tele.prometheus_text())
        assert parsed["samples"][("plain_total", ())] == 4.0
        assert parsed["types"]["plain_total"] == "counter"
