"""Tests for the minimum-degree ordering."""

import numpy as np
import pytest

from repro.ordering.amd import minimum_degree
from repro.ordering.graph import Graph
from repro.sparse.generators import laplacian_1d, laplacian_2d, random_spd
from repro.sparse.permute import is_permutation, permute_symmetric


def fill_count(a, perm):
    """Count fill-in entries of the no-pivot factorization of P A Pᵗ."""
    d = permute_symmetric(a, perm).to_dense()
    pattern = (d != 0)
    n = a.n
    fill = 0
    for k in range(n):
        nz = np.flatnonzero(pattern[k + 1:, k]) + k + 1
        for i in nz:
            new = ~pattern[i, nz]
            fill += int(new.sum())
            pattern[i, nz] = True
            pattern[nz, i] = True
    return fill


class TestValidity:
    @pytest.mark.parametrize("gen", [lambda: laplacian_1d(12),
                                     lambda: laplacian_2d(5),
                                     lambda: random_spd(30, 0.1, seed=9)])
    def test_produces_permutation(self, gen):
        a = gen()
        perm = minimum_degree(Graph.from_matrix(a))
        assert is_permutation(perm, a.n)

    def test_deterministic(self):
        g = Graph.from_matrix(laplacian_2d(5))
        np.testing.assert_array_equal(minimum_degree(g), minimum_degree(g))

    def test_edgeless_graph(self):
        g = Graph.from_edges(4, [])
        assert is_permutation(minimum_degree(g), 4)


class TestQuality:
    def test_path_has_zero_fill(self):
        """A path graph eliminated from the ends produces no fill."""
        a = laplacian_1d(15)
        perm = minimum_degree(Graph.from_matrix(a))
        assert fill_count(a, perm) == 0

    def test_beats_natural_on_grid(self):
        a = laplacian_2d(7)
        md_fill = fill_count(a, minimum_degree(Graph.from_matrix(a)))
        nat_fill = fill_count(a, np.arange(a.n))
        assert md_fill <= nat_fill

    def test_star_center_last(self):
        """On a star the centre must be eliminated last (any leaf first)."""
        g = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
        perm = minimum_degree(g)
        assert perm[-1] == 0 or perm[-2] == 0  # centre near the end
