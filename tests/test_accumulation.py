"""Tests for the LUAR-like grouped extend-add (accumulate_updates)."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.lowrank.kernels import lr2lr_update_multi
from repro.lowrank.rrqr import rrqr_compress
from repro.sparse.generators import laplacian_3d
from tests.conftest import random_lowrank, tiny_blr_config


class TestMultiKernel:
    def make(self, rng, m=30, n=24, r=5):
        return rrqr_compress(random_lowrank(rng, m, n, r, 0.3), 1e-13)

    @pytest.mark.parametrize("kernel", ["rrqr", "svd"])
    def test_matches_sequential_extend_adds(self, rng, kernel):
        target = self.make(rng)
        contribs = []
        ref = target.to_dense()
        for _ in range(4):
            c = self.make(rng, 10, 8, 2)
            ro = int(rng.integers(0, target.m - c.m))
            co = int(rng.integers(0, target.n - c.n))
            contribs.append((c, ro, co))
            ref[ro:ro + c.m, co:co + c.n] -= c.to_dense()
        out = lr2lr_update_multi(target, contribs, 1e-10, kernel)
        err = np.linalg.norm(out.to_dense() - ref) / np.linalg.norm(ref)
        assert err <= 1e-8

    def test_empty_contribution_list(self, rng):
        target = self.make(rng)
        assert lr2lr_update_multi(target, [], 1e-10, "rrqr") is target

    def test_zero_rank_contributions_skipped(self, rng):
        from repro.lowrank.block import LowRankBlock
        target = self.make(rng)
        out = lr2lr_update_multi(
            target, [(LowRankBlock.zero(5, 5), 0, 0)], 1e-10, "rrqr")
        np.testing.assert_allclose(out.to_dense(), target.to_dense(),
                                   atol=1e-12)

    def test_dense_contributions_compressed(self, rng):
        target = self.make(rng)
        dense_c = random_lowrank(rng, 8, 6, 2, 0.2)
        ref = target.to_dense()
        ref[2:10, 3:9] -= dense_c
        out = lr2lr_update_multi(target, [(dense_c, 2, 3)], 1e-10, "rrqr")
        err = np.linalg.norm(out.to_dense() - ref) / np.linalg.norm(ref)
        assert err <= 1e-8

    def test_rank_cap_returns_none(self, rng):
        target = self.make(rng, r=4)
        big = rrqr_compress(rng.standard_normal((30, 24)), 1e-14)
        out = lr2lr_update_multi(target, [(big, 0, 0)], 1e-14, "rrqr",
                                 max_rank=3)
        assert out is None


class TestSolverAblation:
    def test_same_accuracy_fewer_recompressions(self, rng):
        """LUAR-like grouping must preserve accuracy while reducing the
        number of extend-add recompressions."""
        a = laplacian_3d(8)
        b = rng.standard_normal(a.n)
        runs = {}
        for accumulate in (False, True):
            cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-8,
                                  accumulate_updates=accumulate)
            s = Solver(a, cfg)
            stats = s.factorize()
            runs[accumulate] = {
                "err": s.backward_error(s.solve(b), b),
                "calls": stats.kernels.call_count("lr_addition"),
                "memory": stats.memory_ratio,
            }
        assert runs[True]["calls"] <= runs[False]["calls"]
        assert runs[True]["err"] <= max(runs[False]["err"] * 50, 1e-6)
        assert abs(runs[True]["memory"] - runs[False]["memory"]) < 0.05

    def test_accumulated_jit_unaffected(self, rng):
        """JIT has no LR targets, so accumulation must be a no-op there."""
        a = laplacian_3d(6)
        b = rng.standard_normal(a.n)
        errs = []
        for accumulate in (False, True):
            cfg = tiny_blr_config(strategy="just-in-time", tolerance=1e-8,
                                  accumulate_updates=accumulate)
            s = Solver(a, cfg)
            s.factorize()
            errs.append(s.backward_error(s.solve(b), b))
        assert abs(errs[0] - errs[1]) <= 1e-10
