"""Tests for the sequential and threaded execution engines."""

import numpy as np
import pytest

from repro.core.factor import assemble
from repro.core.scheduler import run_sequential, run_threaded
from repro.core.solver import Solver
from repro.sparse.generators import (
    convection_diffusion_3d,
    laplacian_2d,
    laplacian_3d,
)
from repro.sparse.permute import permute_symmetric
from repro.symbolic.factorization import SymbolicOptions, symbolic_factorization
from tests.conftest import tiny_blr_config


def run(a, nthreads, **cfg_overrides):
    cfg = tiny_blr_config(threads=nthreads, **cfg_overrides)
    s = Solver(a, cfg)
    stats = s.factorize()
    rng = np.random.default_rng(0)
    b = rng.standard_normal(a.n)
    return s, s.backward_error(s.solve(b), b)


class TestThreadedCorrectness:
    @pytest.mark.parametrize("nthreads", [2, 4])
    def test_dense_strategy(self, nthreads):
        a = laplacian_3d(6)
        _, err = run(a, nthreads, strategy="dense")
        assert err <= 1e-10

    @pytest.mark.parametrize("strategy", ["just-in-time", "minimal-memory"])
    def test_blr_strategies(self, strategy):
        a = laplacian_3d(7)
        _, err = run(a, 4, strategy=strategy, tolerance=1e-8)
        assert err <= 1e-4

    def test_nonsymmetric(self):
        a = convection_diffusion_3d(5)
        _, err = run(a, 3, strategy="dense")
        assert err <= 1e-10

    def test_cholesky(self):
        a = laplacian_3d(5)
        _, err = run(a, 2, strategy="dense", factotype="cholesky")
        assert err <= 1e-10

    def test_single_thread_falls_back_to_sequential(self):
        a = laplacian_2d(5)
        _, err = run(a, 1, strategy="dense")
        assert err <= 1e-10


class TestThreadedMatchesSequential:
    def test_dense_factors_identical(self):
        """Dense arithmetic is deterministic regardless of interleaving:
        the factors must match bit-for-bit up to roundoff of reductions."""
        a = laplacian_2d(7)
        cfg = tiny_blr_config(strategy="dense")
        opts = SymbolicOptions.from_config(cfg)
        symb, perm = symbolic_factorization(a, opts)
        ap = permute_symmetric(a, perm)

        fac_seq = assemble(ap, symb, cfg)
        run_sequential(fac_seq)
        fac_thr = assemble(ap, symb, cfg)
        run_threaded(fac_thr, 4)

        for nc_s, nc_t in zip(fac_seq.cblks, fac_thr.cblks):
            np.testing.assert_allclose(nc_s.diag, nc_t.diag, atol=1e-9)
            for i in range(nc_s.sym.noff):
                np.testing.assert_allclose(np.asarray(nc_s.lblock(i)),
                                           np.asarray(nc_t.lblock(i)),
                                           atol=1e-9)

    def test_stats_totals_comparable(self):
        a = laplacian_3d(5)
        _, err1 = run(a, 1, strategy="dense")
        _, err4 = run(a, 4, strategy="dense")
        assert abs(err1 - err4) < 1e-10


class TestStaticScheduler:
    @pytest.mark.parametrize("strategy", ["dense", "just-in-time",
                                          "minimal-memory"])
    def test_correct_across_strategies(self, strategy):
        a = laplacian_3d(7)
        cfg = tiny_blr_config(strategy=strategy, tolerance=1e-8, threads=4,
                              scheduler="static")
        s = Solver(a, cfg)
        s.factorize()
        rng = np.random.default_rng(0)
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-4

    def test_dense_factors_match_sequential(self):
        from repro.core.scheduler import run_threaded_static
        a = laplacian_2d(7)
        cfg = tiny_blr_config(strategy="dense")
        opts = SymbolicOptions.from_config(cfg)
        symb, perm = symbolic_factorization(a, opts)
        ap = permute_symmetric(a, perm)
        fac_seq = assemble(ap, symb, cfg)
        run_sequential(fac_seq)
        fac_st = assemble(ap, symb, cfg)
        run_threaded_static(fac_st, 3)
        for nc_s, nc_t in zip(fac_seq.cblks, fac_st.cblks):
            np.testing.assert_allclose(nc_s.diag, nc_t.diag, atol=1e-9)

    def test_single_thread_falls_back(self):
        from repro.core.scheduler import run_threaded_static
        a = laplacian_2d(5)
        cfg = tiny_blr_config(strategy="dense")
        opts = SymbolicOptions.from_config(cfg)
        symb, perm = symbolic_factorization(a, opts)
        fac = assemble(permute_symmetric(a, perm), symb, cfg)
        run_threaded_static(fac, 1)  # must not hang
        assert all(nc.factored for nc in fac.cblks)

    def test_config_validates_scheduler_name(self):
        from repro.config import SolverConfig
        with pytest.raises(ValueError, match="scheduler"):
            SolverConfig(scheduler="work-stealing")


class TestProportionalMapping:
    def _mapping(self, nthreads):
        from repro.core.scheduler import proportional_mapping
        a = laplacian_3d(6)
        cfg = tiny_blr_config()
        opts = SymbolicOptions.from_config(cfg)
        symb, _ = symbolic_factorization(a, opts)
        return symb, proportional_mapping(symb, nthreads)

    def test_every_block_owned(self):
        symb, owner = self._mapping(4)
        assert len(owner) == symb.ncblk
        assert all(0 <= t < 4 for t in owner)

    def test_all_threads_used(self):
        _, owner = self._mapping(4)
        assert len(set(owner)) == 4

    def test_balance_reasonable(self):
        """Proportional mapping must not starve a thread: every thread's
        share of the work proxy stays within a loose band."""
        symb, owner = self._mapping(2)
        loads = [0.0, 0.0]
        for k, t in enumerate(owner):
            c = symb.cblks[k]
            loads[t] += float(c.ncols) ** 3 / 3.0 + c.nnz() * c.ncols
        ratio = max(loads) / max(min(loads), 1.0)
        assert ratio < 10.0

    def test_single_thread_mapping_trivial(self):
        _, owner = self._mapping(1)
        assert set(owner) == {0}
