"""Tests for deterministic fault injection (repro.runtime.faults).

The point of the module is making scheduler failure paths testable: these
tests assert that injected errors surface within a timeout under both
threaded engines, that all worker threads join, and that NaN / latency
injection behave as documented.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.scheduler import SchedulerError
from repro.core.solver import Solver
from repro.runtime.faults import FaultError, FaultInjector
from repro.sparse.generators import laplacian_2d, laplacian_3d
from tests.conftest import tiny_blr_config

SCHEDULERS = ("dynamic", "static")


def factorize_with_timeout(solver, faults=None, timeout=60.0):
    """Run ``solver.factorize(faults=...)`` on a helper thread and fail the
    test if it does not return (normally or exceptionally) in time."""
    outcome = {}

    def target():
        try:
            outcome["stats"] = solver.factorize(faults=faults)
        except BaseException as exc:  # noqa: BLE001 - reraised by caller
            outcome["exc"] = exc

    th = threading.Thread(target=target, daemon=True)
    th.start()
    th.join(timeout)
    assert not th.is_alive(), "factorization hung past the timeout"
    return outcome


def no_scheduler_threads_left():
    return not [th for th in threading.enumerate()
                if th.name.startswith(("repro-dyn", "repro-static"))
                and th.is_alive()]


class TestInjectorUnit:
    def test_pick_block_is_seed_deterministic(self):
        a = FaultInjector(seed=7)
        b = FaultInjector(seed=7)
        picks = [a.pick_block(50) for _ in range(10)]
        assert picks == [b.pick_block(50) for _ in range(10)]
        assert all(0 <= k < 50 for k in picks)
        with pytest.raises(ValueError):
            a.pick_block(0)

    def test_fail_factor_raises_and_records(self):
        inj = FaultInjector()
        inj.fail_factor(3)
        with pytest.raises(FaultError, match="column block 3"):
            inj.on_factor(None, 3)
        inj.on_factor(None, 4)  # other blocks unaffected
        assert inj.fired == [("factor", 3, None, "raise")]

    def test_fail_update_target_filter(self):
        inj = FaultInjector()
        inj.fail_update(2, target=5)
        inj.on_update(None, 2, 4)  # different target: no fault
        with pytest.raises(FaultError, match="from column block 2 to 5"):
            inj.on_update(None, 2, 5)

    def test_fail_update_any_target(self):
        inj = FaultInjector()
        inj.fail_update(2)
        with pytest.raises(FaultError):
            inj.on_update(None, 2, None)

    def test_custom_exception(self):
        inj = FaultInjector()
        inj.fail_factor(0, exc=ZeroDivisionError("boom"))
        with pytest.raises(ZeroDivisionError, match="boom"):
            inj.on_factor(None, 0)

    def test_latency_sleeps(self):
        inj = FaultInjector()
        inj.add_latency("factor", 0.05)
        t0 = time.perf_counter()
        inj.on_factor(None, 0)
        assert time.perf_counter() - t0 >= 0.045
        assert ("factor", 0, None, "delay") in inj.fired
        with pytest.raises(ValueError):
            inj.add_latency("panel_solve", 0.1)

    def test_stall_returns_releasable_event(self):
        inj = FaultInjector()
        ev = inj.stall_factor(1)
        ev.set()  # pre-release: on_factor must not block
        inj.on_factor(None, 1)
        assert ("factor", 1, None, "stall") in inj.fired


class TestNewFaultSites:
    """Satellite: compression / trisolve / serialization fault sites and
    the transient (fire-once) mode the recovery layer retries against."""

    def test_transient_fault_fires_exactly_once(self):
        inj = FaultInjector()
        inj.fail_factor(0, transient=True)
        with pytest.raises(FaultError):
            inj.on_factor(None, 0)
        inj.on_factor(None, 0)  # healed: second pass is clean
        assert inj.fired.count(("factor", 0, None, "raise")) == 1

    def test_transient_claim_is_race_safe(self):
        inj = FaultInjector()
        inj.fail_trisolve(transient=True)
        raised = []

        def hit():
            try:
                inj.on_trisolve(None)
            except FaultError:
                raised.append(1)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(raised) == 1

    def test_fail_compress_surfaces_in_jit_run(self):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(strategy="just-in-time",
                                      tolerance=1e-8))
        s.analyze()
        inj = FaultInjector()
        for k in range(s.symbolic.ncblk):
            inj.fail_compress(k)
        with pytest.raises(FaultError, match="compression"):
            s.factorize(faults=inj)
        assert any(f[0] == "compress" for f in inj.fired)

    def test_fail_trisolve_surfaces_in_solve(self):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        s.factorize()
        inj = FaultInjector()
        inj.fail_trisolve()
        s.factor.faults = inj
        with pytest.raises(FaultError, match="triangular"):
            s.solve(np.ones(a.n))
        assert ("trisolve", -1, None, "raise") in inj.fired

    def test_fail_serialize_surfaces_in_save_factor(self, tmp_path):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        s.analyze()
        inj = FaultInjector()
        s.factorize(faults=inj)
        inj.fail_serialize()
        with pytest.raises(FaultError, match="archive"):
            s.save_factor(tmp_path / "f.blr")
        assert ("serialize", -1, None, "raise") in inj.fired


class TestErrorPropagation:
    """Satellite: injected errors surface, threads join, nothing hangs."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("nthreads", [2, 4])
    def test_factor_fault_surfaces(self, scheduler, nthreads):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(threads=nthreads,
                                      scheduler=scheduler))
        s.analyze()
        inj = FaultInjector(seed=nthreads)  # fixed seed: reproducible k
        k = inj.pick_block(s.symbolic.ncblk)
        inj.fail_factor(k)
        outcome = factorize_with_timeout(s, faults=inj)
        exc = outcome.get("exc")
        assert isinstance(exc, (FaultError, SchedulerError))
        if isinstance(exc, SchedulerError):
            assert any(isinstance(e, FaultError) for e in exc.errors)
        assert ("factor", k, None, "raise") in inj.fired
        assert no_scheduler_threads_left()

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_update_fault_surfaces(self, scheduler):
        a = laplacian_3d(6)
        s = Solver(a, tiny_blr_config(threads=4, scheduler=scheduler))
        s.analyze()
        # pick a block that actually contributes to someone
        symb = s.symbolic
        src = next(c for t in range(symb.ncblk)
                   for c in symb.contributors(t))
        inj = FaultInjector()
        inj.fail_update(src)
        outcome = factorize_with_timeout(s, faults=inj)
        exc = outcome.get("exc")
        assert isinstance(exc, (FaultError, SchedulerError))
        assert no_scheduler_threads_left()

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_sequential_engines_also_fault(self, scheduler):
        s = Solver(laplacian_2d(6), tiny_blr_config(scheduler=scheduler))
        s.analyze()
        inj = FaultInjector()
        inj.fail_factor(0)
        with pytest.raises(FaultError):
            s.factorize(faults=inj)

    def test_fault_runs_are_deterministic(self):
        """Same seed, same matrix, same config → the same block fails with
        the same exception type on every repetition."""
        a = laplacian_3d(5)
        seen = set()
        for _ in range(3):
            s = Solver(a, tiny_blr_config(threads=2))
            s.analyze()
            inj = FaultInjector(seed=123)
            k = inj.pick_block(s.symbolic.ncblk)
            inj.fail_factor(k)
            outcome = factorize_with_timeout(s, faults=inj)
            seen.add((k, type(outcome.get("exc")).__name__))
        assert len(seen) == 1


class TestNanInjection:
    @pytest.mark.parametrize("strategy", ["dense", "just-in-time"])
    def test_nan_poisons_factors_silently(self, strategy):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy=strategy))
        s.analyze()
        inj = FaultInjector()
        inj.nan_in_panel(0)
        s.factorize(faults=inj)
        assert ("factor", 0, None, "nan") in inj.fired
        poisoned = any(
            (nc.diag is not None and not np.all(np.isfinite(nc.diag)))
            or (nc.lpanel is not None
                and not np.all(np.isfinite(nc.lpanel)))
            for nc in s.factor.cblks)
        assert poisoned, "NaN was injected but vanished from the factors"

    def test_nan_reaches_the_solution(self):
        a = laplacian_3d(5)
        s = Solver(a, tiny_blr_config(strategy="dense"))
        s.analyze()
        inj = FaultInjector()
        inj.nan_in_panel(0)
        s.factorize(faults=inj)
        x = s.solve(np.ones(a.n))
        assert not np.all(np.isfinite(x))


class TestLatencyInjection:
    def test_latency_stretches_the_trace(self):
        a = laplacian_2d(5)
        s = Solver(a, tiny_blr_config(trace=True))
        s.analyze()
        ncblk_estimate = 4  # at least a handful of column blocks
        inj = FaultInjector()
        inj.add_latency("factor", 0.002)
        t0 = time.perf_counter()
        s.factorize(faults=inj)
        elapsed = time.perf_counter() - t0
        ncblk = s.symbolic.ncblk
        assert ncblk >= ncblk_estimate
        assert elapsed >= 0.002 * ncblk
        assert sum(1 for f in inj.fired if f[3] == "delay") == ncblk
