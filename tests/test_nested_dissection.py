"""Tests for nested dissection."""

import numpy as np
import pytest

from repro.ordering.graph import Graph
from repro.ordering.nested_dissection import nested_dissection
from repro.sparse.generators import laplacian_2d, laplacian_3d
from repro.sparse.permute import is_permutation


class TestBasicProperties:
    @pytest.mark.parametrize("gen,cmin", [(lambda: laplacian_2d(8), 8),
                                          (lambda: laplacian_3d(5), 15)])
    def test_valid_permutation_and_tiling(self, gen, cmin):
        g = Graph.from_matrix(gen())
        nd = nested_dissection(g, cmin=cmin)
        assert is_permutation(nd.perm, g.n)
        pos = 0
        for p in nd.partitions:
            assert p.start == pos
            pos = p.end
        assert pos == g.n

    def test_leaves_respect_cmin(self):
        g = Graph.from_matrix(laplacian_2d(10))
        nd = nested_dissection(g, cmin=10)
        for p in nd.partitions:
            if not p.is_separator:
                assert p.size <= 10

    def test_separator_placed_after_its_region(self):
        """Every separator's columns come after everything it separates."""
        g = Graph.from_matrix(laplacian_2d(8))
        nd = nested_dissection(g, cmin=8)
        for i, p in enumerate(nd.partitions):
            if p.parent >= 0:
                parent = nd.partitions[p.parent]
                assert parent.is_separator
                assert parent.start >= p.end
                assert parent.level == p.level - 1

    def test_root_has_no_parent(self):
        g = Graph.from_matrix(laplacian_2d(6))
        nd = nested_dissection(g, cmin=6)
        roots = [p for p in nd.partitions if p.parent == -1]
        assert roots
        for p in roots:
            assert p.level == 0

    def test_supernode_of_maps_every_column(self):
        g = Graph.from_matrix(laplacian_2d(6))
        nd = nested_dissection(g, cmin=6)
        sup = nd.supernode_of()
        assert sup.shape == (g.n,)
        for i, p in enumerate(nd.partitions):
            assert (sup[p.start:p.end] == i).all()


class TestSeparatorsDisconnect:
    def test_no_cross_edges_between_siblings(self):
        """Vertices ordered inside disjoint sub-regions must not be adjacent
        unless one of them is in a separator above both."""
        a = laplacian_2d(8)
        g = Graph.from_matrix(a)
        nd = nested_dissection(g, cmin=8)
        sup = nd.supernode_of()
        parts = nd.partitions

        def ancestors(i):
            out = set()
            while i >= 0:
                out.add(i)
                i = parts[i].parent
            return out

        inv = np.empty(g.n, dtype=np.int64)
        inv[nd.perm] = np.arange(g.n)
        for u in range(g.n):
            pu = int(sup[inv[u]])
            for v in g.neighbors(u):
                pv = int(sup[inv[int(v)]])
                if pu == pv:
                    continue
                # adjacency is only allowed along ancestor chains
                assert pv in ancestors(pu) or pu in ancestors(pv), \
                    f"edge ({u},{v}) crosses unrelated regions {pu},{pv}"


class TestSpecialGraphs:
    def test_disconnected_graph(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (4, 5), (5, 6)])
        nd = nested_dissection(g, cmin=2)
        assert is_permutation(nd.perm, 7)

    def test_edgeless_graph(self):
        g = Graph.from_edges(5, [])
        nd = nested_dissection(g, cmin=2)
        assert is_permutation(nd.perm, 5)

    def test_complete_graph_single_leaf(self):
        edges = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        g = Graph.from_edges(8, edges)
        nd = nested_dissection(g, cmin=4)
        assert is_permutation(nd.perm, 8)

    def test_max_levels_cap(self):
        g = Graph.from_matrix(laplacian_2d(8))
        nd = nested_dissection(g, cmin=2, max_levels=1)
        assert max(p.level for p in nd.partitions) <= 1

    def test_cmin_validation(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError, match="cmin"):
            nested_dissection(g, cmin=0)


class TestQuality:
    def test_top_separator_is_small_on_3d_grid(self):
        g = Graph.from_matrix(laplacian_3d(8))
        nd = nested_dissection(g, cmin=15)
        top = [p for p in nd.partitions if p.is_separator and p.level == 0]
        assert len(top) == 1
        # the ideal plane has 64 vertices; stay within 2x
        assert top[0].size <= 128

    def test_determinism(self):
        g = Graph.from_matrix(laplacian_3d(5))
        nd1 = nested_dissection(g, cmin=10)
        nd2 = nested_dissection(g, cmin=10)
        np.testing.assert_array_equal(nd1.perm, nd2.perm)
