"""Tests for geometric nested dissection."""

import numpy as np
import pytest

from repro.core.solver import Solver
from repro.ordering.geometric import (
    geometric_nested_dissection,
    grid_coords,
    make_plane_splitter,
)
from repro.ordering.graph import Graph
from repro.ordering.separator import check_separator
from repro.sparse.generators import elasticity_3d, laplacian_2d, laplacian_3d
from repro.sparse.permute import is_permutation
from tests.conftest import tiny_blr_config


class TestGridCoords:
    def test_lexicographic_order_matches_generators(self):
        c = grid_coords(3, 2, 2)
        assert c.shape == (12, 3)
        np.testing.assert_array_equal(c[0], [0, 0, 0])
        np.testing.assert_array_equal(c[1], [1, 0, 0])  # x fastest
        np.testing.assert_array_equal(c[3], [0, 1, 0])
        np.testing.assert_array_equal(c[6], [0, 0, 1])

    def test_dofs_per_node_repeats(self):
        c = grid_coords(2, 2, 1, dofs_per_node=3)
        assert c.shape == (12, 3)
        np.testing.assert_array_equal(c[0], c[1])
        np.testing.assert_array_equal(c[1], c[2])

    def test_2d_default(self):
        c = grid_coords(4, 5)
        assert c.shape == (20, 3)
        assert (c[:, 2] == 0).all()


class TestPlaneSplitter:
    def test_separator_disconnects_grid(self):
        a = laplacian_2d(8)
        g = Graph.from_matrix(a)
        splitter = make_plane_splitter(grid_coords(8, 8))
        pa, pb, sep = splitter(g, np.arange(g.n))
        assert check_separator(g, pa, pb, sep)
        assert sep.size == 8  # exactly one grid line

    def test_3d_separator_is_a_plane(self):
        a = laplacian_3d(6)
        g = Graph.from_matrix(a)
        splitter = make_plane_splitter(grid_coords(6, 6, 6))
        pa, pb, sep = splitter(g, np.arange(g.n))
        assert check_separator(g, pa, pb, sep)
        assert sep.size == 36  # exactly one 6x6 plane

    def test_widest_axis_chosen(self):
        a = laplacian_3d(12, 3, 3)
        g = Graph.from_matrix(a)
        splitter = make_plane_splitter(grid_coords(12, 3, 3))
        pa, pb, sep = splitter(g, np.arange(g.n))
        # cutting the long x axis gives a 3x3 plane separator
        assert sep.size == 9

    def test_colocated_points_fail_gracefully(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        splitter = make_plane_splitter(np.zeros((4, 3)))
        pa, pb, sep = splitter(g, np.arange(4))
        assert sep.size == 0  # signals "no geometric split"


class TestGeometricND:
    def test_valid_permutation(self):
        a = laplacian_3d(6)
        g = Graph.from_matrix(a)
        nd = geometric_nested_dissection(g, grid_coords(6, 6, 6), cmin=8)
        assert is_permutation(nd.perm, g.n)

    def test_coords_length_checked(self):
        g = Graph.from_matrix(laplacian_2d(4))
        with pytest.raises(ValueError, match="rows"):
            geometric_nested_dissection(g, np.zeros((3, 3)))

    def test_fewer_offdiag_blocks_than_algebraic(self):
        """Plane separators are contiguous in the grid ordering, so the
        block structure fragments less."""
        from repro.symbolic.factorization import (
            SymbolicOptions,
            symbolic_factorization,
        )
        a = laplacian_3d(8)
        coords = grid_coords(8, 8, 8)
        opts_alg = SymbolicOptions(cmin=8, ordering="nested-dissection")
        opts_geo = SymbolicOptions(cmin=8, ordering="geometric")
        s_alg, _ = symbolic_factorization(a, opts_alg)
        s_geo, _ = symbolic_factorization(a, opts_geo, coords=coords)
        assert s_geo.total_off_blocks() < s_alg.total_off_blocks()


class TestSolverIntegration:
    def test_solver_with_geometric_ordering(self, rng):
        a = laplacian_3d(7)
        cfg = tiny_blr_config(strategy="minimal-memory", tolerance=1e-8,
                              ordering="geometric")
        s = Solver(a, cfg, coords=grid_coords(7, 7, 7))
        s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-4

    def test_missing_coords_rejected(self):
        a = laplacian_3d(4)
        cfg = tiny_blr_config(ordering="geometric")
        s = Solver(a, cfg)
        with pytest.raises(ValueError, match="coordinates"):
            s.analyze()

    def test_vector_problem_with_dof_coords(self, rng):
        a = elasticity_3d(4)
        cfg = tiny_blr_config(strategy="dense", factotype="cholesky",
                              ordering="geometric")
        s = Solver(a, cfg, coords=grid_coords(4, 4, 4, dofs_per_node=3))
        s.factorize()
        b = rng.standard_normal(a.n)
        assert s.backward_error(s.solve(b), b) <= 1e-9
